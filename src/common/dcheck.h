// FLIX_DCHECK: debug assertions for structural invariants on hot paths.
//
// Compiled in only under -DFLIX_CHECKS (the FLIX_CHECKS=ON CMake option, on
// by default in the sanitizer CI jobs); release builds pay nothing. Unlike
// assert(), a failure prints the violated condition with a caller-supplied
// context message before aborting, so a corrupted index structure pinpoints
// itself instead of dying in a distant consumer.
//
//   FLIX_DCHECK(pre_[n] < order_.size(), "ppo preorder out of range");
//
// The condition must be side-effect free: it is not evaluated at all when
// checks are off.
#ifndef FLIX_COMMON_DCHECK_H_
#define FLIX_COMMON_DCHECK_H_

#ifdef FLIX_CHECKS

#include <cstdio>
#include <cstdlib>

namespace flix::internal {

[[noreturn]] inline void DcheckFail(const char* condition, const char* message,
                                    const char* file, int line) {
  std::fprintf(stderr, "FLIX_DCHECK failed: %s (%s) at %s:%d\n", condition,
               message, file, line);
  std::abort();
}

}  // namespace flix::internal

#define FLIX_DCHECK(condition, message)                                  \
  do {                                                                   \
    if (!(condition)) {                                                  \
      ::flix::internal::DcheckFail(#condition, (message), __FILE__,      \
                                   __LINE__);                            \
    }                                                                    \
  } while (false)

#else

// The condition is not evaluated, but sizeof() still odr-uses the names it
// mentions, so variables kept solely for a DCHECK do not trip
// -Wunused-but-set-variable in release builds.
#define FLIX_DCHECK(condition, message)       \
  do {                                        \
    (void)sizeof((condition) ? true : false); \
  } while (false)

#endif  // FLIX_CHECKS

#endif  // FLIX_COMMON_DCHECK_H_
