// Helpers for reporting memory footprints, used by index size accounting
// (paper Table 1 reports index sizes in megabytes).
#ifndef FLIX_COMMON_BYTES_H_
#define FLIX_COMMON_BYTES_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace flix {

// Bytes held by the heap buffer of a vector (capacity, not size, since that
// is what the allocator actually reserved).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// Pretty "12.34 MB" style rendering.
inline std::string FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1u << 20));
  } else if (bytes >= (1u << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1u << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace flix

#endif  // FLIX_COMMON_BYTES_H_
