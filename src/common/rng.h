// Deterministic pseudo-random number generation for workload synthesis and
// property tests. All generators in FliX are seeded explicitly so that every
// experiment is reproducible bit-for-bit.
#ifndef FLIX_COMMON_RNG_H_
#define FLIX_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace flix {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and stable across
// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
// output is implementation-defined for the distribution part).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes of state.
    uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Zipf-distributed sampler over {0, ..., n-1} with exponent `s`. Used to
// give synthetic DBLP citations the skewed popularity the real corpus has.
// Keeps raw cumulative weights, so the domain can grow incrementally with
// Grow() (the DBLP generator extends it by one publication at a time);
// sampling is a binary search over the cumulative sums.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : s_(s) { Grow(n); }

  // Extends the domain to max(current, n) values.
  void Grow(size_t n) {
    while (cumulative_.size() < n) {
      const double weight =
          1.0 / std::pow(static_cast<double>(cumulative_.size() + 1), s_);
      cumulative_.push_back(
          (cumulative_.empty() ? 0.0 : cumulative_.back()) + weight);
    }
  }

  size_t size() const { return cumulative_.size(); }

  size_t Sample(Rng& rng) const {
    assert(!cumulative_.empty());
    const double u = rng.NextDouble() * cumulative_.back();
    // First index whose cumulative weight exceeds u.
    size_t lo = 0;
    size_t hi = cumulative_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  double s_;
  std::vector<double> cumulative_;
};

}  // namespace flix

#endif  // FLIX_COMMON_RNG_H_
