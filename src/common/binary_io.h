// Minimal binary (de)serialization over iostreams, used to persist built
// FliX indexes to disk. Little-endian, no alignment, explicit sizes.
//
// Writers never fail at this level (stream state is checked by the caller
// via stream.good()); readers track a sticky failure flag that the caller
// checks once at the end — mirroring how a failed stream behaves.
#ifndef FLIX_COMMON_BINARY_IO_H_
#define FLIX_COMMON_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace flix {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  template <typename T>
  void WritePod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void WriteU32(uint32_t v) { WritePod(v); }
  void WriteU64(uint64_t v) { WritePod(v); }
  void WriteI32(int32_t v) { WritePod(v); }
  void WriteBool(bool v) { WritePod(static_cast<uint8_t>(v ? 1 : 0)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void WriteVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  // Same wire format as WriteVec, for data that lives in a span (e.g. a
  // mapped view being re-saved as a stream).
  template <typename T>
  void WriteSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size_bytes()));
  }

  template <typename T>
  void WriteNestedVec(const std::vector<std::vector<T>>& v) {
    WriteU64(v.size());
    for (const auto& inner : v) WriteVec(inner);
  }

  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {
    // Capture the stream length (when seekable) so corrupted size headers
    // are rejected before allocating: a vector can never hold more bytes
    // than the stream has left.
    const std::istream::pos_type current = in_.tellg();
    if (current != std::istream::pos_type(-1)) {
      in_.seekg(0, std::ios::end);
      const std::istream::pos_type end = in_.tellg();
      in_.seekg(current);
      if (end != std::istream::pos_type(-1) && end >= current) {
        stream_bytes_ = static_cast<uint64_t>(end - current);
      }
    }
  }

  template <typename T>
  T ReadPod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_.good()) failed_ = true;
    return value;
  }

  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int32_t ReadI32() { return ReadPod<int32_t>(); }
  bool ReadBool() { return ReadPod<uint8_t>() != 0; }

  std::string ReadString() {
    const uint64_t size = ReadU64();
    if (failed_ || size > MaxBytesLeft()) {
      failed_ = true;
      return {};
    }
    std::string s(size, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(size));
    if (!in_.good()) {
      failed_ = true;
      return {};
    }
    return s;
  }

  template <typename T>
  std::vector<T> ReadVec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t size = ReadU64();
    if (failed_ || size > MaxBytesLeft() / sizeof(T)) {
      failed_ = true;
      return {};
    }
    std::vector<T> v(size);
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(size * sizeof(T)));
    if (!in_.good()) {
      failed_ = true;
      return {};
    }
    return v;
  }

  template <typename T>
  std::vector<std::vector<T>> ReadNestedVec() {
    const uint64_t size = ReadU64();
    // Each element needs at least an 8-byte size header in the stream.
    if (failed_ || size > MaxBytesLeft() / sizeof(uint64_t)) {
      failed_ = true;
      return {};
    }
    std::vector<std::vector<T>> v(size);
    for (auto& inner : v) {
      inner = ReadVec<T>();
      if (failed_) break;
    }
    return v;
  }

  bool ok() const { return !failed_ && in_.good(); }
  bool failed() const { return failed_; }

  // Lets composite loaders flag semantic corruption (e.g. an out-of-range
  // id) so the caller's final ok() check catches it.
  void MarkFailed() { failed_ = true; }

 private:
  // Fallback cap for non-seekable streams: truncated/corrupt inputs must
  // not trigger multi-gigabyte allocations.
  static constexpr uint64_t kMaxAllocation = uint64_t{1} << 34;  // 16 GiB

  // Upper bound for one allocation: the remaining stream bytes when the
  // stream is seekable, the static cap otherwise.
  uint64_t MaxBytesLeft() const {
    return stream_bytes_ != 0 ? stream_bytes_ : kMaxAllocation;
  }

  std::istream& in_;
  uint64_t stream_bytes_ = 0;
  bool failed_ = false;
};

}  // namespace flix

#endif  // FLIX_COMMON_BINARY_IO_H_
