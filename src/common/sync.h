// Annotated synchronization primitives: the only way FliX code takes a lock.
//
// Every mutex and spinlock in src/ goes through the wrappers in this header
// (enforced by tools/lint_flix.py in CI), so Clang's Thread Safety Analysis
// can prove at compile time what the TSan jobs could previously only catch
// dynamically: that every guarded field is read and written under its lock,
// that lock pre/postconditions hold across function boundaries, and that no
// code path acquires locks against the global order. Under GCC (which has no
// thread-safety attributes) the annotations expand to nothing and the
// wrappers are zero-cost shims over the std primitives.
//
// Enabled by any clang build (-Wthread-safety -Wthread-safety-beta, see the
// top-level CMakeLists.txt); FLIX_STRICT promotes the warnings to errors.
// The negative-compile tests under tests/tsa/ prove the analysis actually
// rejects a guarded-field access without the lock and a lock-order
// inversion.
//
// Lock-order hierarchy (DESIGN.md section 8). A thread holding a lock may
// only acquire locks of a *later* rank:
//
//   engine            Flix::stats_mutex_, StrategyMigrator::mutex_,
//                     LandmarkRefresher::mutex_
//     │
//   partition handle  IndexHandle::lock_, LandmarkHandle::lock_
//     │
//   cache             QueryCache::mutex_, StreamedList::mutex_
//     │
//   metrics           MetricsRegistry::mutex_, WorkloadProfiler::info_mutex_,
//                     TraceCollector::mutex_, SlowQueryLog::mutex_,
//                     the trace-log stream mutex
//
// The ranks are materialized as the never-locked tag mutexes in
// flix::lockorder below; each real mutex declares ACQUIRED_AFTER its own
// rank tag and ACQUIRED_BEFORE the next, so -Wthread-safety-beta turns a
// lock-order inversion anywhere in the codebase into a compile error via
// the transitive acquired-before graph.
#ifndef FLIX_COMMON_SYNC_H_
#define FLIX_COMMON_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros.
//
// The full set from the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Conventions:
//   * GUARDED_BY(mu) on every field a lock protects; PT_GUARDED_BY(mu) when
//     the pointer itself is unguarded but the pointee is not.
//   * REQUIRES(mu) on functions that must be entered with `mu` held;
//     ACQUIRE/RELEASE on functions that take or drop it.
//   * EXCLUDES(mu) on public entry points that take `mu` themselves, so a
//     re-entrant call from a callback is flagged instead of deadlocking.
//   * NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort and MUST
//     carry an adjacent "// SAFETY: ..." comment explaining why the
//     unchecked access is sound (enforced by tools/lint_flix.py).
// ---------------------------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define FLIX_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define FLIX_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) FLIX_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY FLIX_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) FLIX_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) FLIX_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  FLIX_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace flix {

// Annotated std::mutex. Lowercase lock()/unlock() make it BasicLockable so
// CondVar (std::condition_variable_any) can wait on it directly; FliX code
// uses the RAII wrappers below, never the raw methods (lint-enforced style).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, for std::condition_variable_any.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// Annotated test-and-set spinlock: one uncontended atomic exchange to
// acquire, for critical sections of a few instructions (the refcounted
// handle swaps in flix/meta_document.h). Never hold across a blocking call.
class CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;  // C++20 default-initializes atomic_flag to clear
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() ACQUIRE() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Unlock() RELEASE() { flag_.clear(std::memory_order_release); }
  bool TryLock() TRY_ACQUIRE(true) {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

 private:
  std::atomic_flag flag_;
};

// Annotated std::shared_mutex for read-mostly structures (reserved for the
// flixd daemon's session tables; nothing in the engine needs it yet).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over a Mutex (the std::lock_guard replacement).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive lock over a SpinLock.
class SCOPED_CAPABILITY SpinLockHolder {
 public:
  explicit SpinLockHolder(SpinLock& lock) ACQUIRE(lock) : lock_(lock) {
    lock_.Lock();
  }
  ~SpinLockHolder() RELEASE() { lock_.Unlock(); }

  SpinLockHolder(const SpinLockHolder&) = delete;
  SpinLockHolder& operator=(const SpinLockHolder&) = delete;

 private:
  SpinLock& lock_;
};

// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable that waits on a flix::Mutex. The predicate-taking
// std::condition_variable overloads are deliberately absent: the analysis
// cannot see a lambda's captured guarded reads, so callers write the
// predicate as an explicit while-loop in the locked scope, where every
// guarded access is visible to the analysis:
//
//   MutexLock lock(mutex_);
//   while (!done_) cv_.Wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // All waits require `mu` held on entry and hold it again on return (the
  // internal unlock/relock is invisible to callers, as with std waits).
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// Lock-order rank tags (see the header comment for the hierarchy). These
// mutexes are never locked at runtime — they exist so real mutexes anywhere
// in the codebase can declare their rank (ACQUIRED_AFTER their own tag,
// ACQUIRED_BEFORE the next) and the analysis can connect mutexes that never
// appear in one translation unit through the transitive
// acquired-before graph. Mutexes of the same rank are mutually unordered;
// never acquire two of them together.
namespace lockorder {

inline Mutex kEngine;
inline Mutex kPartitionHandle ACQUIRED_AFTER(kEngine);
inline Mutex kCache ACQUIRED_AFTER(kPartitionHandle);
inline Mutex kMetrics ACQUIRED_AFTER(kCache);

}  // namespace lockorder

}  // namespace flix

#endif  // FLIX_COMMON_SYNC_H_
