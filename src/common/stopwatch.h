// Wall-clock (steady_clock) stopwatch used by the benchmark harnesses and
// the observability spans (obs/trace.h).
#ifndef FLIX_COMMON_STOPWATCH_H_
#define FLIX_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace flix {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Integer nanoseconds — the unit the metrics histograms record.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flix

#endif  // FLIX_COMMON_STOPWATCH_H_
