// Minimal error-handling vocabulary: Status and StatusOr<T>.
//
// FliX is built without exceptions (following the style guide used for this
// project); fallible operations return Status / StatusOr instead.
#ifndef FLIX_COMMON_STATUS_H_
#define FLIX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace flix {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

// Value-semantics result of an operation: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering for logs and test output.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

// Either a value of T or a non-OK Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace flix

#endif  // FLIX_COMMON_STATUS_H_
