// Core identifier types shared by every FliX subsystem.
#ifndef FLIX_COMMON_TYPES_H_
#define FLIX_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace flix {

// Identifies a node (XML element) inside one graph. Graphs are dense and
// zero-based, so a plain 32-bit index suffices for collections of up to
// ~4 billion elements.
using NodeId = uint32_t;

// Identifies an interned element tag name (see xml::NamePool).
using TagId = uint32_t;

// Identifies a document within a collection.
using DocId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr TagId kInvalidTag = std::numeric_limits<TagId>::max();
inline constexpr DocId kInvalidDoc = std::numeric_limits<DocId>::max();

// Distance between two elements measured in edges (parent-child steps and
// link traversals both count 1, matching the paper's distance model).
// kUnreachable marks "no path".
using Distance = int32_t;
inline constexpr Distance kUnreachable = -1;

}  // namespace flix

#endif  // FLIX_COMMON_TYPES_H_
