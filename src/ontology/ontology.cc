#include "ontology/ontology.h"

#include <algorithm>
#include <queue>

namespace flix::ontology {

uint32_t Ontology::InternTerm(std::string_view term) {
  const auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  adjacency_.emplace_back();
  return id;
}

int Ontology::FindTerm(std::string_view term) const {
  const auto it = index_.find(std::string(term));
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

void Ontology::AddSimilarity(std::string_view a, std::string_view b,
                             double score) {
  if (score <= 0 || score > 1 || a == b) return;
  const uint32_t ia = InternTerm(a);
  const uint32_t ib = InternTerm(b);
  // Keep the maximum if the pair exists.
  for (auto& [other, weight] : adjacency_[ia]) {
    if (other == ib) {
      weight = std::max(weight, score);
      for (auto& [other2, weight2] : adjacency_[ib]) {
        if (other2 == ia) weight2 = weight;
      }
      return;
    }
  }
  adjacency_[ia].push_back({ib, score});
  adjacency_[ib].push_back({ia, score});
}

std::vector<double> Ontology::BestScores(uint32_t source, double floor) const {
  // Max-product Dijkstra: scores only decrease along a path, so a standard
  // best-first search with a max-heap is exact.
  std::vector<double> best(terms_.size(), 0.0);
  best[source] = 1.0;
  std::priority_queue<std::pair<double, uint32_t>> heap;
  heap.push({1.0, source});
  while (!heap.empty()) {
    const auto [score, term] = heap.top();
    heap.pop();
    if (score < best[term]) continue;
    for (const auto& [other, weight] : adjacency_[term]) {
      const double next = score * weight;
      if (next >= floor && next > best[other]) {
        best[other] = next;
        heap.push({next, other});
      }
    }
  }
  return best;
}

double Ontology::Similarity(std::string_view a, std::string_view b,
                            double floor) const {
  if (a == b) return 1.0;
  const int ia = FindTerm(a);
  const int ib = FindTerm(b);
  if (ia < 0 || ib < 0) return 0.0;
  const std::vector<double> best = BestScores(static_cast<uint32_t>(ia), floor);
  const double score = best[static_cast<uint32_t>(ib)];
  return score >= floor ? score : 0.0;
}

std::vector<std::pair<std::string, double>> Ontology::SimilarTerms(
    std::string_view term, double floor) const {
  std::vector<std::pair<std::string, double>> result;
  result.push_back({std::string(term), 1.0});
  const int id = FindTerm(term);
  if (id < 0) return result;
  const std::vector<double> best = BestScores(static_cast<uint32_t>(id), floor);
  for (uint32_t t = 0; t < terms_.size(); ++t) {
    if (t != static_cast<uint32_t>(id) && best[t] >= floor) {
      result.push_back({terms_[t], best[t]});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const auto& x, const auto& y) { return x.second > y.second; });
  return result;
}

Ontology Ontology::MovieOntology() {
  Ontology o;
  o.AddSimilarity("movie", "film", 0.95);
  o.AddSimilarity("movie", "science-fiction", 0.9);
  o.AddSimilarity("movie", "documentary", 0.85);
  o.AddSimilarity("film", "short-film", 0.9);
  o.AddSimilarity("actor", "actress", 0.95);
  o.AddSimilarity("actor", "performer", 0.85);
  o.AddSimilarity("actor", "cast-member", 0.9);
  o.AddSimilarity("director", "filmmaker", 0.9);
  o.AddSimilarity("title", "name", 0.8);
  return o;
}

}  // namespace flix::ontology
