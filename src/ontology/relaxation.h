// Query relaxation with structural and semantic vagueness (paper Section 1):
// a path query like
//     movie/actor/movie        or        //~movie//~actor
// is relaxed so that every child step becomes a descendants step and every
// ~-prefixed tag matches ontologically similar tags; the relevance of a
// match decays with tag dissimilarity and path length:
//     score = prod(tag similarities) * alpha^(extra edges beyond the
//             minimal one per step).
#ifndef FLIX_ONTOLOGY_RELAXATION_H_
#define FLIX_ONTOLOGY_RELAXATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "flix/flix.h"
#include "ontology/ontology.h"
#include "text/text_index.h"

namespace flix::ontology {

// Content predicate on a step, e.g. [title~"Matrix: Revolutions"]: the
// matched element must have a child with the given tag whose text is
// (approximately) the given value. `similar` selects fuzzy text matching
// (token overlap) instead of exact equality — the paper's ~ operator on
// content.
struct ContentPredicate {
  std::string child_tag;
  std::string text;
  bool similar = false;

  friend bool operator==(const ContentPredicate&,
                         const ContentPredicate&) = default;
};

struct QueryStep {
  std::string tag;
  bool descendant_axis = false;  // true for //, false for /
  bool similar = false;          // true for ~tag
  std::vector<ContentPredicate> predicates;
};

struct PathQuery {
  std::vector<QueryStep> steps;
};

// Parses "a/b//c" / "//~movie//actor" / "movie[title~\"Matrix\"]/actor"
// syntax. A leading "//" (or "/") applies to the first step; "~" before a
// name enables ontology expansion; [child op "text"] with op in {=, ~}
// attaches a content predicate.
StatusOr<PathQuery> ParsePathQuery(std::string_view text);

// Fuzzy text similarity in [0, 1]: case-insensitive token overlap (Jaccard)
// with a containment bonus, so "Matrix 3" matches "Matrix: Revolutions"
// weakly and "matrix revolutions" matches "Matrix: Revolutions" strongly.
double TextSimilarity(std::string_view a, std::string_view b);

// Relaxes all child axes to descendant axes (structural vagueness).
PathQuery Relax(const PathQuery& query);

struct ScoredMatch {
  NodeId node = kInvalidNode;
  double score = 0.0;
  // Total path length from the matched first-step element.
  Distance path_length = 0;

  friend bool operator==(const ScoredMatch&, const ScoredMatch&) = default;
};

struct RelaxedQueryOptions {
  // Per-extra-edge decay.
  double alpha = 0.8;
  // Matches below this score are dropped.
  double min_score = 0.05;
  // Ontology similarity floor for ~tags.
  double similarity_floor = 0.5;
  // Minimum text similarity for ~"..." content predicates.
  double text_floor = 0.3;
  // Optional inverted text index: when set, fuzzy content predicates score
  // by TF-IDF cosine over it instead of plain token overlap (the XXL-style
  // content scoring).
  const text::TextIndex* text_index = nullptr;
  // Frontier cap per step (guards against explosion on dense data).
  size_t max_frontier = 100000;
};

// Evaluates a (relaxed) path query over a built FliX instance: elements
// matching the final step, ranked by descending score. Child axes are
// honored as written; call Relax() first for full structural vagueness.
std::vector<ScoredMatch> EvaluatePathQuery(
    const core::Flix& flix, const Ontology& ontology, const PathQuery& query,
    const RelaxedQueryOptions& options = {});

}  // namespace flix::ontology

#endif  // FLIX_ONTOLOGY_RELAXATION_H_
