// Tag ontology with similarity scores, after the XXL search engine the
// paper builds on (Section 1): a query tag matches semantically similar
// element names with a relevance penalty, e.g. ~movie accepts
// "science-fiction" at similarity 0.9.
//
// The ontology is a weighted undirected term graph; the similarity of two
// terms is the maximum product of edge weights along a connecting path
// (computed with a Dijkstra-style search over -log weights).
#ifndef FLIX_ONTOLOGY_ONTOLOGY_H_
#define FLIX_ONTOLOGY_ONTOLOGY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flix::ontology {

class Ontology {
 public:
  Ontology() = default;

  // Declares terms `a` and `b` similar with the given score in (0, 1].
  // Symmetric; repeated calls keep the maximum score.
  void AddSimilarity(std::string_view a, std::string_view b, double score);

  // Similarity in [0, 1]: 1 for identical terms, max path product for
  // connected terms, 0 for unrelated ones. Scores below `floor` are treated
  // as unrelated (cuts off long low-confidence chains).
  double Similarity(std::string_view a, std::string_view b,
                    double floor = 0.1) const;

  // All terms with Similarity(term, other) >= floor, including `term`
  // itself at 1.0, sorted by descending similarity.
  std::vector<std::pair<std::string, double>> SimilarTerms(
      std::string_view term, double floor = 0.1) const;

  size_t NumTerms() const { return terms_.size(); }

  // A small movie-domain ontology reproducing the paper's example: a
  // science-fiction element qualifies for ~movie queries.
  static Ontology MovieOntology();

 private:
  uint32_t InternTerm(std::string_view term);
  int FindTerm(std::string_view term) const;

  // Best-product scores from a source term to all terms above `floor`.
  std::vector<double> BestScores(uint32_t source, double floor) const;

  std::vector<std::string> terms_;
  std::unordered_map<std::string, uint32_t> index_;
  // adjacency_[t] = (other term, weight)
  std::vector<std::vector<std::pair<uint32_t, double>>> adjacency_;
};

}  // namespace flix::ontology

#endif  // FLIX_ONTOLOGY_ONTOLOGY_H_
