#include "ontology/relaxation.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_map>

namespace flix::ontology {

namespace {

// Parses one [child op "text"] predicate starting at text[i] == '['.
// Advances i past the closing bracket.
Status ParsePredicate(std::string_view text, size_t& i, QueryStep& step) {
  ++i;  // consume '['
  ContentPredicate pred;
  const size_t tag_begin = i;
  while (i < text.size() && text[i] != '=' && text[i] != '~') ++i;
  if (i >= text.size()) {
    return InvalidArgumentError("unterminated predicate in query");
  }
  pred.child_tag = std::string(text.substr(tag_begin, i - tag_begin));
  if (pred.child_tag.empty()) {
    return InvalidArgumentError("empty predicate tag in query");
  }
  pred.similar = text[i] == '~';
  ++i;
  if (i >= text.size() || text[i] != '"') {
    return InvalidArgumentError("predicate value must be quoted");
  }
  ++i;
  const size_t value_begin = i;
  while (i < text.size() && text[i] != '"') ++i;
  if (i >= text.size()) {
    return InvalidArgumentError("unterminated predicate value");
  }
  pred.text = std::string(text.substr(value_begin, i - value_begin));
  ++i;  // closing quote
  if (i >= text.size() || text[i] != ']') {
    return InvalidArgumentError("expected ']' after predicate value");
  }
  ++i;  // closing bracket
  step.predicates.push_back(std::move(pred));
  return Status::Ok();
}

}  // namespace

StatusOr<PathQuery> ParsePathQuery(std::string_view text) {
  PathQuery query;
  size_t i = 0;
  while (i < text.size()) {
    QueryStep step;
    if (text.substr(i).starts_with("//")) {
      step.descendant_axis = true;
      i += 2;
    } else if (text[i] == '/') {
      i += 1;
    } else if (!query.steps.empty()) {
      return InvalidArgumentError("expected '/' or '//' in query");
    }
    if (i < text.size() && text[i] == '~') {
      step.similar = true;
      ++i;
    }
    const size_t begin = i;
    while (i < text.size() && text[i] != '/' && text[i] != '[') ++i;
    step.tag = std::string(text.substr(begin, i - begin));
    if (step.tag.empty()) {
      return InvalidArgumentError("empty step name in query '" +
                                  std::string(text) + "'");
    }
    while (i < text.size() && text[i] == '[') {
      if (Status s = ParsePredicate(text, i, step); !s.ok()) return s;
    }
    query.steps.push_back(std::move(step));
  }
  if (query.steps.empty()) {
    return InvalidArgumentError("empty query");
  }
  return query;
}

double TextSimilarity(std::string_view a, std::string_view b) {
  const auto tokenize = [](std::string_view s) {
    std::vector<std::string> tokens;
    std::string current;
    for (const char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        current.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      } else if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    }
    if (!current.empty()) tokens.push_back(std::move(current));
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    return tokens;
  };
  const std::vector<std::string> ta = tokenize(a);
  const std::vector<std::string> tb = tokenize(b);
  if (ta.empty() || tb.empty()) return ta.empty() && tb.empty() ? 1.0 : 0.0;

  size_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < ta.size() && j < tb.size()) {
    if (ta[i] < tb[j]) {
      ++i;
    } else if (ta[i] > tb[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  const double jaccard =
      static_cast<double>(common) /
      static_cast<double>(ta.size() + tb.size() - common);
  // Containment bonus: all query tokens present scores at least 0.8.
  const double containment =
      common == std::min(ta.size(), tb.size()) && common > 0 ? 0.8 : 0.0;
  return std::max(jaccard, containment);
}

PathQuery Relax(const PathQuery& query) {
  PathQuery relaxed = query;
  for (QueryStep& step : relaxed.steps) step.descendant_axis = true;
  return relaxed;
}

namespace {

struct FrontierEntry {
  double score;
  Distance path_length;
};

using Frontier = std::unordered_map<NodeId, FrontierEntry>;

// Tag expansions for a step: (tag id, similarity), skipping tags that do
// not occur in the collection.
std::vector<std::pair<TagId, double>> ExpandStep(
    const core::Flix& flix, const Ontology& ontology, const QueryStep& step,
    double floor) {
  std::vector<std::pair<TagId, double>> expansions;
  if (step.similar) {
    for (const auto& [term, sim] : ontology.SimilarTerms(step.tag, floor)) {
      const TagId tag = flix.LookupTag(term);
      if (tag != kInvalidTag) expansions.push_back({tag, sim});
    }
  } else {
    const TagId tag = flix.LookupTag(step.tag);
    if (tag != kInvalidTag) expansions.push_back({tag, 1.0});
  }
  return expansions;
}

void Offer(Frontier& frontier, NodeId node, double score, Distance length) {
  const auto [it, inserted] = frontier.emplace(
      node, FrontierEntry{score, length});
  if (!inserted && score > it->second.score) {
    it->second = {score, length};
  }
}

// Multiplicative score of a step's content predicates on `node`: per
// predicate, the best matching child (exact tag, exact or fuzzy text).
// 0 = some predicate has no matching child.
double PredicateScore(const core::Flix& flix, NodeId node,
                      const QueryStep& step,
                      const RelaxedQueryOptions& options) {
  if (step.predicates.empty()) return 1.0;
  const xml::Collection& collection = flix.collection();
  const auto loc = collection.Locate(node);
  const xml::Document& doc = collection.document(loc.doc);
  double score = 1.0;
  for (const ContentPredicate& pred : step.predicates) {
    const TagId child_tag = collection.pool().Lookup(pred.child_tag);
    double best = 0.0;
    if (child_tag != kInvalidTag) {
      for (const xml::ElementId child : doc.element(loc.elem).children) {
        if (doc.element(child).tag != child_tag) continue;
        const std::string& text = doc.element(child).text;
        if (pred.similar) {
          if (options.text_index != nullptr) {
            best = std::max(best, options.text_index->Score(
                                      collection.GlobalId(loc.doc, child),
                                      pred.text));
          } else {
            best = std::max(best, TextSimilarity(text, pred.text));
          }
        } else if (text == pred.text) {
          best = 1.0;
        }
        if (best == 1.0) break;
      }
    }
    if (pred.similar && best < options.text_floor) best = 0.0;
    score *= best;
    if (score == 0.0) return 0.0;
  }
  return score;
}

}  // namespace

std::vector<ScoredMatch> EvaluatePathQuery(const core::Flix& flix,
                                           const Ontology& ontology,
                                           const PathQuery& query,
                                           const RelaxedQueryOptions& options) {
  if (query.steps.empty()) return {};

  // Step 0: all elements carrying a (similar) first-step tag that satisfy
  // its content predicates.
  Frontier frontier;
  for (const auto& [tag, sim] :
       ExpandStep(flix, ontology, query.steps[0], options.similarity_floor)) {
    for (const core::MetaDocument& meta : flix.meta_documents().docs) {
      for (const NodeId local : meta.graph.NodesWithTag(tag)) {
        const NodeId global = meta.global_nodes[local];
        const double score =
            sim * PredicateScore(flix, global, query.steps[0], options);
        if (score >= options.min_score) {
          Offer(frontier, global, score, 0);
        }
      }
    }
  }

  for (size_t s = 1; s < query.steps.size() && !frontier.empty(); ++s) {
    const QueryStep& step = query.steps[s];
    const std::vector<std::pair<TagId, double>> expansions =
        ExpandStep(flix, ontology, step, options.similarity_floor);

    // Distance budget: beyond it the alpha decay alone drops every match
    // under min_score.
    Distance max_extra = -1;
    if (options.alpha < 1.0) {
      max_extra = static_cast<Distance>(
          std::log(options.min_score) / std::log(options.alpha)) + 1;
    }

    Frontier next;
    for (const auto& [node, entry] : frontier) {
      for (const auto& [tag, sim] : expansions) {
        core::QueryOptions qopts;
        qopts.max_distance = step.descendant_axis ? max_extra : 1;
        flix.pee().FindDescendantsByTag(
            node, tag, qopts, [&](const core::Result& r) {
              if (!step.descendant_axis && r.distance != 1) return true;
              double score =
                  entry.score * sim *
                  std::pow(options.alpha, static_cast<double>(r.distance - 1));
              if (score >= options.min_score && !step.predicates.empty()) {
                score *= PredicateScore(flix, r.node, step, options);
              }
              if (score >= options.min_score) {
                Offer(next, r.node, score,
                      entry.path_length + r.distance);
              }
              return next.size() < options.max_frontier;
            });
      }
    }
    frontier = std::move(next);
  }

  std::vector<ScoredMatch> matches;
  matches.reserve(frontier.size());
  for (const auto& [node, entry] : frontier) {
    matches.push_back({node, entry.score, entry.path_length});
  }
  std::sort(matches.begin(), matches.end(),
            [](const ScoredMatch& a, const ScoredMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.node < b.node;
            });
  return matches;
}

}  // namespace flix::ontology
