#include "xml/collection.h"

#include <cassert>

namespace flix::xml {

StatusOr<DocId> Collection::AddDocument(Document doc) {
  if (by_name_.contains(doc.name())) {
    return InvalidArgumentError("duplicate document name '" + doc.name() +
                                "'");
  }
  const DocId id = static_cast<DocId>(documents_.size());
  by_name_.emplace(doc.name(), id);
  offsets_.push_back(static_cast<NodeId>(total_elements_));
  total_elements_ += doc.NumElements();
  documents_.push_back(std::move(doc));
  return id;
}

StatusOr<DocId> Collection::AddXml(std::string_view text, std::string name,
                                   const ParseOptions& options) {
  StatusOr<Document> doc = ParseDocument(text, std::move(name), pool_, options);
  if (!doc.ok()) return doc.status();
  return AddDocument(std::move(doc).value());
}

DocId Collection::FindDocument(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidDoc : it->second;
}

Collection::Location Collection::Locate(NodeId node) const {
  assert(node < total_elements_);
  // offsets_ is sorted; find the last offset <= node.
  size_t lo = 0;
  size_t hi = offsets_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi + 1) / 2;
    if (offsets_[mid] <= node) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return {static_cast<DocId>(lo), node - offsets_[lo]};
}

const LinkResolution& Collection::ResolveAllLinks(const LinkOptions& options) {
  links_ = ResolveLinks(*this, options);
  return links_;
}

graph::Digraph Collection::BuildGraph() const {
  graph::Digraph g(total_elements_);
  for (DocId d = 0; d < documents_.size(); ++d) {
    const Document& doc = documents_[d];
    for (ElementId e = 0; e < doc.NumElements(); ++e) {
      const NodeId node = GlobalId(d, e);
      g.SetTag(node, doc.element(e).tag);
      for (const ElementId child : doc.element(e).children) {
        g.AddEdge(node, GlobalId(d, child), graph::EdgeKind::kTree);
      }
    }
  }
  for (const Link& link : links_.links) {
    g.AddEdge(GlobalId(link.src_doc, link.src_elem),
              GlobalId(link.dst_doc, link.dst_elem), graph::EdgeKind::kLink);
  }
  return g;
}

std::vector<uint32_t> Collection::DocOfNode() const {
  std::vector<uint32_t> doc_of(total_elements_);
  for (DocId d = 0; d < documents_.size(); ++d) {
    for (ElementId e = 0; e < documents_[d].NumElements(); ++e) {
      doc_of[GlobalId(d, e)] = d;
    }
  }
  return doc_of;
}

namespace {
constexpr uint32_t kCollectionMagic = 0x464C4358;  // "FLCX"
constexpr uint32_t kCollectionVersion = 1;
}  // namespace

Status Collection::Save(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.WriteU32(kCollectionMagic);
  writer.WriteU32(kCollectionVersion);
  pool_.Save(writer);
  writer.WriteU64(documents_.size());
  for (const Document& doc : documents_) doc.Save(writer);
  writer.WriteU64(links_.links.size());
  for (const Link& link : links_.links) {
    writer.WriteU32(link.src_doc);
    writer.WriteU32(link.src_elem);
    writer.WriteU32(link.dst_doc);
    writer.WriteU32(link.dst_elem);
  }
  writer.WriteU64(links_.unresolved);
  if (!writer.ok()) return InternalError("write failed while saving collection");
  return Status::Ok();
}

StatusOr<Collection> Collection::Load(std::istream& in) {
  BinaryReader reader(in);
  if (reader.ReadU32() != kCollectionMagic) {
    return InvalidArgumentError("not a FliX collection file (bad magic)");
  }
  if (const uint32_t version = reader.ReadU32();
      version != kCollectionVersion) {
    return InvalidArgumentError("unsupported collection version " +
                                std::to_string(version));
  }
  Collection collection;
  collection.pool_ = NamePool::Load(reader);
  const uint64_t num_docs = reader.ReadU64();
  for (uint64_t d = 0; d < num_docs && reader.ok(); ++d) {
    StatusOr<DocId> added = collection.AddDocument(Document::Load(reader));
    if (!added.ok()) return added.status();
  }
  const uint64_t num_links = reader.ReadU64();
  for (uint64_t i = 0; i < num_links && reader.ok(); ++i) {
    Link link;
    link.src_doc = reader.ReadU32();
    link.src_elem = reader.ReadU32();
    link.dst_doc = reader.ReadU32();
    link.dst_elem = reader.ReadU32();
    // Endpoints must exist: BuildGraph turns them into edges unchecked.
    if (link.src_doc >= collection.NumDocuments() ||
        link.dst_doc >= collection.NumDocuments() ||
        link.src_elem >= collection.document(link.src_doc).NumElements() ||
        link.dst_elem >= collection.document(link.dst_doc).NumElements()) {
      return InvalidArgumentError("corrupt link table");
    }
    collection.links_.links.push_back(link);
  }
  collection.links_.unresolved = reader.ReadU64();
  if (!reader.ok()) {
    return InvalidArgumentError("truncated or corrupt collection file");
  }
  return collection;
}

size_t Collection::MemoryBytes() const {
  size_t bytes = pool_.MemoryBytes();
  for (const Document& doc : documents_) bytes += doc.MemoryBytes();
  bytes += links_.links.capacity() * sizeof(Link);
  return bytes;
}

}  // namespace flix::xml
