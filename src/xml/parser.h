// Hand-written, dependency-free XML parser.
//
// Supports the subset of XML that document collections in the paper's
// setting actually use: the XML declaration, processing instructions,
// comments, DOCTYPE (skipped), elements with attributes, self-closing
// elements, character data with the five predefined entities plus decimal
// and hexadecimal character references, and CDATA sections. Namespaces are
// not expanded; qualified names like "xlink:href" are kept verbatim.
//
// Errors are reported with 1-based line/column positions.
#ifndef FLIX_XML_PARSER_H_
#define FLIX_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/document.h"
#include "xml/name_pool.h"

namespace flix::xml {

struct ParseOptions {
  // Trim leading/trailing whitespace of text nodes and drop whitespace-only
  // text (typical for data-centric XML like DBLP).
  bool trim_whitespace = true;
  // Attribute names treated as anchor declarations (id sinks for links).
  // The defaults match the paper's id/idref model.
  std::vector<std::string> id_attributes = {"id", "xml:id", "key"};
  // Maximum element nesting depth; deeper input is rejected with an error
  // (the parser recurses per level, so this bounds stack usage).
  size_t max_depth = 1000;
};

// Parses `input` into a Document named `name`, interning tags in `pool`.
StatusOr<Document> ParseDocument(std::string_view input, std::string name,
                                 NamePool& pool,
                                 const ParseOptions& options = {});

}  // namespace flix::xml

#endif  // FLIX_XML_PARSER_H_
