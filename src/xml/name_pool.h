// Interning pool for element tag names. Tags are compared and stored as
// dense TagIds throughout the engine; the pool is the only place that keeps
// the strings.
#ifndef FLIX_XML_NAME_POOL_H_
#define FLIX_XML_NAME_POOL_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/binary_io.h"
#include "common/types.h"

namespace flix::xml {

class NamePool {
 public:
  NamePool() = default;

  // Not copyable (ids would silently diverge); movable.
  NamePool(const NamePool&) = delete;
  NamePool& operator=(const NamePool&) = delete;
  NamePool(NamePool&&) = default;
  NamePool& operator=(NamePool&&) = default;

  // Returns the id for `name`, interning it on first use.
  TagId Intern(std::string_view name);

  // Returns the id for `name` or kInvalidTag if never interned.
  TagId Lookup(std::string_view name) const;

  // The name for a valid id.
  const std::string& Name(TagId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  size_t MemoryBytes() const;

  // Binary persistence; ids are preserved (interning order is stored).
  void Save(BinaryWriter& writer) const;
  static NamePool Load(BinaryReader& reader);

 private:
  // Deque: element addresses are stable, so the string_view keys in index_
  // (which point into these strings, including their SSO buffers) never
  // dangle as the pool grows.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, TagId> index_;
};

}  // namespace flix::xml

#endif  // FLIX_XML_NAME_POOL_H_
