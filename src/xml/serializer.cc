#include "xml/serializer.h"

namespace flix::xml {
namespace {

void SerializeElement(const Document& doc, const NamePool& pool,
                      const SerializeOptions& options, ElementId id,
                      int depth, std::string& out) {
  const Element& e = doc.element(id);
  const std::string& tag = pool.Name(e.tag);
  if (options.pretty) out.append(static_cast<size_t>(depth) * 2, ' ');
  out.push_back('<');
  out.append(tag);
  for (const Attribute& attr : e.attributes) {
    out.push_back(' ');
    out.append(attr.name);
    out.append("=\"");
    out.append(EscapeXml(attr.value));
    out.push_back('"');
  }
  if (e.children.empty() && e.text.empty()) {
    out.append("/>");
    if (options.pretty) out.push_back('\n');
    return;
  }
  out.push_back('>');
  if (!e.text.empty()) {
    out.append(EscapeXml(e.text));
  }
  if (!e.children.empty()) {
    if (options.pretty) out.push_back('\n');
    for (const ElementId child : e.children) {
      SerializeElement(doc, pool, options, child, depth + 1, out);
    }
    if (options.pretty) out.append(static_cast<size_t>(depth) * 2, ' ');
  }
  out.append("</");
  out.append(tag);
  out.push_back('>');
  if (options.pretty) out.push_back('\n');
}

}  // namespace

std::string EscapeXml(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '<': out.append("&lt;"); break;
      case '>': out.append("&gt;"); break;
      case '&': out.append("&amp;"); break;
      case '"': out.append("&quot;"); break;
      case '\'': out.append("&apos;"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Serialize(const Document& doc, const NamePool& pool,
                      const SerializeOptions& options) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  if (options.pretty) out.push_back('\n');
  if (doc.root() != kInvalidElement) {
    SerializeElement(doc, pool, options, doc.root(), 0, out);
  }
  return out;
}

}  // namespace flix::xml
