// Resolution of intra- and inter-document links.
//
// The paper's data model (Section 2.1) adds an edge for every id/idref
// reference and every XLink. We recognize:
//   * idref / ref / cite attributes: whitespace-separated anchor ids within
//     the same document (or "#id" syntax);
//   * href / xlink:href attributes: "document", "document#anchor" or
//     "#anchor" URIs, where "document" is the Document::name() of another
//     collection member and a missing anchor targets its root.
#ifndef FLIX_XML_LINK_RESOLVER_H_
#define FLIX_XML_LINK_RESOLVER_H_

#include <vector>

#include "common/types.h"
#include "xml/document.h"

namespace flix::xml {

struct Link {
  DocId src_doc = kInvalidDoc;
  ElementId src_elem = kInvalidElement;
  DocId dst_doc = kInvalidDoc;
  ElementId dst_elem = kInvalidElement;

  bool IsInterDocument() const { return src_doc != dst_doc; }

  friend bool operator==(const Link&, const Link&) = default;
};

struct LinkResolution {
  std::vector<Link> links;
  // References whose target document or anchor does not exist. Dangling
  // links are dropped (the Web is full of them), only counted.
  size_t unresolved = 0;
};

class Collection;  // defined in xml/collection.h

struct LinkOptions {
  std::vector<std::string> idref_attributes = {"idref", "ref", "cite"};
  std::vector<std::string> href_attributes = {"href", "xlink:href"};
};

// Scans all documents of `collection` and resolves link attributes.
LinkResolution ResolveLinks(const Collection& collection,
                            const LinkOptions& options = {});

}  // namespace flix::xml

#endif  // FLIX_XML_LINK_RESOLVER_H_
