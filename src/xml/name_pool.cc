#include "xml/name_pool.h"

namespace flix::xml {

TagId NamePool::Intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

TagId NamePool::Lookup(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? kInvalidTag : it->second;
}

void NamePool::Save(BinaryWriter& writer) const {
  writer.WriteU64(names_.size());
  for (const std::string& name : names_) writer.WriteString(name);
}

NamePool NamePool::Load(BinaryReader& reader) {
  NamePool pool;
  const uint64_t size = reader.ReadU64();
  for (uint64_t i = 0; i < size && reader.ok(); ++i) {
    pool.Intern(reader.ReadString());
  }
  return pool;
}

size_t NamePool::MemoryBytes() const {
  size_t bytes = names_.size() * sizeof(std::string);
  for (const std::string& s : names_) bytes += s.capacity();
  bytes += index_.size() * (sizeof(std::string_view) + sizeof(TagId) + 16);
  return bytes;
}

}  // namespace flix::xml
