#include "xml/link_resolver.h"

#include <algorithm>

#include "xml/collection.h"

namespace flix::xml {
namespace {

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

// Splits a whitespace-separated IDREFS value into tokens.
std::vector<std::string_view> SplitTokens(std::string_view value) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < value.size()) {
    while (i < value.size() && value[i] == ' ') ++i;
    const size_t begin = i;
    while (i < value.size() && value[i] != ' ') ++i;
    if (i > begin) tokens.push_back(value.substr(begin, i - begin));
  }
  return tokens;
}

// Resolves one idref token within `doc`; "#id" and "id" are equivalent.
ElementId ResolveAnchor(const Document& doc, std::string_view token) {
  if (token.starts_with('#')) token.remove_prefix(1);
  return doc.FindAnchor(token);
}

}  // namespace

LinkResolution ResolveLinks(const Collection& collection,
                            const LinkOptions& options) {
  LinkResolution result;
  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    const Document& doc = collection.document(d);
    for (ElementId e = 0; e < doc.NumElements(); ++e) {
      for (const Attribute& attr : doc.element(e).attributes) {
        if (Contains(options.idref_attributes, attr.name)) {
          for (const std::string_view token : SplitTokens(attr.value)) {
            const ElementId target = ResolveAnchor(doc, token);
            if (target == kInvalidElement) {
              ++result.unresolved;
            } else {
              result.links.push_back({d, e, d, target});
            }
          }
        } else if (Contains(options.href_attributes, attr.name)) {
          const std::string_view value = attr.value;
          const size_t hash = value.find('#');
          const std::string_view doc_part =
              hash == std::string_view::npos ? value : value.substr(0, hash);
          const std::string_view anchor_part =
              hash == std::string_view::npos ? std::string_view{}
                                             : value.substr(hash + 1);
          DocId target_doc = d;
          if (!doc_part.empty()) {
            target_doc = collection.FindDocument(doc_part);
            if (target_doc == kInvalidDoc) {
              ++result.unresolved;
              continue;
            }
          }
          const Document& target = collection.document(target_doc);
          ElementId target_elem;
          if (anchor_part.empty()) {
            target_elem = target.root();
          } else {
            target_elem = target.FindAnchor(anchor_part);
          }
          if (target_elem == kInvalidElement) {
            ++result.unresolved;
          } else {
            result.links.push_back({d, e, target_doc, target_elem});
          }
        }
      }
    }
  }
  return result;
}

}  // namespace flix::xml
