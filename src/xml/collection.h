// A collection of interlinked XML documents and its global element graph.
//
// Elements get collection-wide dense NodeIds (document offset + local
// element index). BuildGraph() materializes the XML data graph G_X of the
// paper: tree edges for parent-child relations, link edges for resolved
// id/idref and XLink references.
#ifndef FLIX_XML_COLLECTION_H_
#define FLIX_XML_COLLECTION_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/digraph.h"
#include "xml/document.h"
#include "xml/link_resolver.h"
#include "xml/name_pool.h"
#include "xml/parser.h"

namespace flix::xml {

class Collection {
 public:
  Collection() = default;

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;
  Collection(Collection&&) = default;
  Collection& operator=(Collection&&) = default;

  NamePool& pool() { return pool_; }
  const NamePool& pool() const { return pool_; }

  // Adds a parsed document. Its name must be unique within the collection.
  StatusOr<DocId> AddDocument(Document doc);

  // Parses `text` and adds the result.
  StatusOr<DocId> AddXml(std::string_view text, std::string name,
                         const ParseOptions& options = {});

  size_t NumDocuments() const { return documents_.size(); }
  const Document& document(DocId id) const { return documents_[id]; }

  DocId FindDocument(std::string_view name) const;

  // Total number of elements across all documents.
  size_t NumElements() const { return total_elements_; }

  // Global node id for (doc, element).
  NodeId GlobalId(DocId doc, ElementId elem) const {
    return offsets_[doc] + elem;
  }

  struct Location {
    DocId doc;
    ElementId elem;
  };
  // Inverse of GlobalId.
  Location Locate(NodeId node) const;

  // Resolves links across the collection (idempotent to recall; resolution
  // is recomputed each time). Stored for inspection via links().
  const LinkResolution& ResolveAllLinks(const LinkOptions& options = {});
  const LinkResolution& links() const { return links_; }

  // Materializes the XML data graph over all elements. ResolveAllLinks()
  // must have been called if link edges are desired; tree edges are always
  // present. Node tags come from the shared pool.
  graph::Digraph BuildGraph() const;

  // Document id per global node — the atomic-unit vector handed to the
  // partitioner so documents are never split across meta documents.
  std::vector<uint32_t> DocOfNode() const;

  size_t MemoryBytes() const;

  // Binary persistence of the whole collection (pool, documents, resolved
  // links). Element ids and tag ids are preserved exactly, so indexes saved
  // against this collection remain valid after a load.
  Status Save(std::ostream& out) const;
  static StatusOr<Collection> Load(std::istream& in);

 private:
  NamePool pool_;
  std::vector<Document> documents_;
  std::unordered_map<std::string, DocId> by_name_;
  std::vector<NodeId> offsets_;
  size_t total_elements_ = 0;
  LinkResolution links_;
};

}  // namespace flix::xml

#endif  // FLIX_XML_COLLECTION_H_
