// In-memory XML document model.
//
// An element holds its interned tag, attributes, concatenated direct text,
// and tree structure via indices into the document's element array. Elements
// are stored in document (pre-) order, so the index doubles as a preorder
// rank within the document.
#ifndef FLIX_XML_DOCUMENT_H_
#define FLIX_XML_DOCUMENT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/types.h"
#include "xml/name_pool.h"

namespace flix::xml {

// Index of an element within its document.
using ElementId = uint32_t;
inline constexpr ElementId kInvalidElement = UINT32_MAX;

struct Attribute {
  std::string name;
  std::string value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

struct Element {
  TagId tag = kInvalidTag;
  ElementId parent = kInvalidElement;
  std::vector<ElementId> children;
  std::vector<Attribute> attributes;
  // Direct text content (all text children concatenated, entity-decoded).
  std::string text;
};

// One XML document. Tag names are interned in an external NamePool shared by
// the whole collection so that TagIds are comparable across documents.
class Document {
 public:
  // `name` identifies the document within its collection (acts as the URI
  // that inter-document links refer to).
  explicit Document(std::string name) : name_(std::move(name)) {}

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  const std::string& name() const { return name_; }

  // Appends an element; parent == kInvalidElement makes it the root (only
  // valid once, as the first element).
  ElementId AddElement(TagId tag, ElementId parent);

  size_t NumElements() const { return elements_.size(); }
  const Element& element(ElementId id) const { return elements_[id]; }
  Element& element(ElementId id) { return elements_[id]; }

  ElementId root() const { return elements_.empty() ? kInvalidElement : 0; }

  // Value of the attribute `name` on `id`, or empty view if absent.
  std::string_view AttributeValue(ElementId id, std::string_view name) const;

  // Registers `value` as an anchor id for `id` (from id= / xml:id=
  // attributes). Later registrations of the same value are ignored, matching
  // the XML rule that ids are unique (first wins on malformed input).
  void RegisterAnchor(std::string_view value, ElementId id);

  // Element carrying the anchor id `value`, or kInvalidElement.
  ElementId FindAnchor(std::string_view value) const;

  // Depth of the element below the root (root = 0).
  int Depth(ElementId id) const;

  size_t MemoryBytes() const;

  // Binary persistence (tag ids refer to the collection's shared pool).
  void Save(BinaryWriter& writer) const;
  static Document Load(BinaryReader& reader);

 private:
  std::string name_;
  std::vector<Element> elements_;
  std::unordered_map<std::string, ElementId> anchors_;
};

}  // namespace flix::xml

#endif  // FLIX_XML_DOCUMENT_H_
