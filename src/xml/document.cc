#include "xml/document.h"

#include <cassert>

namespace flix::xml {

ElementId Document::AddElement(TagId tag, ElementId parent) {
  const ElementId id = static_cast<ElementId>(elements_.size());
  assert((parent == kInvalidElement) == (id == 0));
  Element e;
  e.tag = tag;
  e.parent = parent;
  elements_.push_back(std::move(e));
  if (parent != kInvalidElement) elements_[parent].children.push_back(id);
  return id;
}

std::string_view Document::AttributeValue(ElementId id,
                                          std::string_view name) const {
  for (const Attribute& attr : elements_[id].attributes) {
    if (attr.name == name) return attr.value;
  }
  return {};
}

void Document::RegisterAnchor(std::string_view value, ElementId id) {
  anchors_.emplace(std::string(value), id);
}

ElementId Document::FindAnchor(std::string_view value) const {
  const auto it = anchors_.find(std::string(value));
  return it == anchors_.end() ? kInvalidElement : it->second;
}

int Document::Depth(ElementId id) const {
  int depth = 0;
  while (elements_[id].parent != kInvalidElement) {
    id = elements_[id].parent;
    ++depth;
  }
  return depth;
}

void Document::Save(BinaryWriter& writer) const {
  writer.WriteString(name_);
  writer.WriteU64(elements_.size());
  for (const Element& e : elements_) {
    writer.WriteU32(e.tag);
    writer.WriteU32(e.parent);
    writer.WriteU64(e.attributes.size());
    for (const Attribute& a : e.attributes) {
      writer.WriteString(a.name);
      writer.WriteString(a.value);
    }
    writer.WriteString(e.text);
  }
  writer.WriteU64(anchors_.size());
  for (const auto& [value, element] : anchors_) {
    writer.WriteString(value);
    writer.WriteU32(element);
  }
}

Document Document::Load(BinaryReader& reader) {
  Document doc(reader.ReadString());
  const uint64_t num_elements = reader.ReadU64();
  for (uint64_t i = 0; i < num_elements && reader.ok(); ++i) {
    const TagId tag = reader.ReadU32();
    const ElementId parent = reader.ReadU32();
    // Structural validation: the first element is the root (no parent),
    // every later element hangs under an already-loaded one.
    const bool valid_parent =
        i == 0 ? parent == kInvalidElement : parent < i;
    if (!valid_parent) {
      reader.MarkFailed();
      break;
    }
    const ElementId id = doc.AddElement(tag, parent);
    Element& e = doc.element(id);
    const uint64_t num_attributes = reader.ReadU64();
    for (uint64_t a = 0; a < num_attributes && reader.ok(); ++a) {
      Attribute attr;
      attr.name = reader.ReadString();
      attr.value = reader.ReadString();
      e.attributes.push_back(std::move(attr));
    }
    e.text = reader.ReadString();
  }
  const uint64_t num_anchors = reader.ReadU64();
  for (uint64_t i = 0; i < num_anchors && reader.ok(); ++i) {
    const std::string value = reader.ReadString();
    const ElementId element = reader.ReadU32();
    if (element >= doc.NumElements()) {
      reader.MarkFailed();
      break;
    }
    doc.RegisterAnchor(value, element);
  }
  return doc;
}

size_t Document::MemoryBytes() const {
  size_t bytes = name_.capacity() + elements_.capacity() * sizeof(Element);
  for (const Element& e : elements_) {
    bytes += e.children.capacity() * sizeof(ElementId);
    bytes += e.attributes.capacity() * sizeof(Attribute);
    for (const Attribute& a : e.attributes) {
      bytes += a.name.capacity() + a.value.capacity();
    }
    bytes += e.text.capacity();
  }
  for (const auto& [key, value] : anchors_) {
    (void)value;
    bytes += key.capacity() + sizeof(ElementId) + 16;
  }
  return bytes;
}

}  // namespace flix::xml
