#include "xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace flix::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  char Advance() {
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool Consume(std::string_view literal) {
    if (input_.substr(pos_).starts_with(literal)) {
      for (size_t i = 0; i < literal.size(); ++i) Advance();
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  // Advances until `terminator` is consumed; returns false on EOF.
  bool SkipUntil(std::string_view terminator) {
    while (!AtEnd()) {
      if (Consume(terminator)) return true;
      Advance();
    }
    return false;
  }

  size_t pos() const { return pos_; }
  int line() const { return line_; }
  int column() const { return column_; }
  std::string_view Slice(size_t begin, size_t end) const {
    return input_.substr(begin, end - begin);
  }

  std::string Where() const {
    return "line " + std::to_string(line_) + ", column " +
           std::to_string(column_);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

class Parser {
 public:
  Parser(std::string_view input, std::string name, NamePool& pool,
         const ParseOptions& options)
      : cursor_(input),
        doc_(std::move(name)),
        pool_(pool),
        options_(options) {}

  StatusOr<Document> Parse() {
    if (Status s = SkipProlog(); !s.ok()) return s;
    if (cursor_.AtEnd() || cursor_.Peek() != '<') {
      return InvalidArgumentError("expected root element at " +
                                  cursor_.Where());
    }
    if (Status s = ParseElement(kInvalidElement); !s.ok()) return s;
    // Trailing misc: comments, PIs, whitespace.
    for (;;) {
      cursor_.SkipSpace();
      if (cursor_.AtEnd()) break;
      if (cursor_.Consume("<!--")) {
        if (!cursor_.SkipUntil("-->")) {
          return InvalidArgumentError("unterminated comment after root");
        }
      } else if (cursor_.Consume("<?")) {
        if (!cursor_.SkipUntil("?>")) {
          return InvalidArgumentError("unterminated PI after root");
        }
      } else {
        return InvalidArgumentError("unexpected content after root at " +
                                    cursor_.Where());
      }
    }
    return std::move(doc_);
  }

 private:
  Status SkipProlog() {
    for (;;) {
      cursor_.SkipSpace();
      if (cursor_.Consume("<?")) {
        if (!cursor_.SkipUntil("?>")) {
          return InvalidArgumentError("unterminated processing instruction");
        }
      } else if (cursor_.Consume("<!--")) {
        if (!cursor_.SkipUntil("-->")) {
          return InvalidArgumentError("unterminated comment");
        }
      } else if (cursor_.Consume("<!DOCTYPE")) {
        // Skip to the matching '>', honoring an internal subset in [...].
        int bracket_depth = 0;
        for (;;) {
          if (cursor_.AtEnd()) {
            return InvalidArgumentError("unterminated DOCTYPE");
          }
          const char c = cursor_.Advance();
          if (c == '[') ++bracket_depth;
          if (c == ']') --bracket_depth;
          if (c == '>' && bracket_depth == 0) break;
        }
      } else {
        return Status::Ok();
      }
    }
  }

  Status ParseName(std::string_view& out) {
    if (cursor_.AtEnd() || !IsNameStartChar(cursor_.Peek())) {
      return InvalidArgumentError("expected name at " + cursor_.Where());
    }
    const size_t begin = cursor_.pos();
    while (!cursor_.AtEnd() && IsNameChar(cursor_.Peek())) cursor_.Advance();
    out = cursor_.Slice(begin, cursor_.pos());
    return Status::Ok();
  }

  // Decodes &...; references in `raw` into `out`.
  Status DecodeText(std::string_view raw, std::string& out) {
    out.reserve(out.size() + raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return InvalidArgumentError("unterminated entity reference");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity.starts_with("#")) {
        uint32_t code = 0;
        const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
        const std::string_view digits = entity.substr(hex ? 2 : 1);
        if (digits.empty()) {
          return InvalidArgumentError("empty character reference");
        }
        for (const char c : digits) {
          uint32_t digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (hex && c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (hex && c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            return InvalidArgumentError("bad character reference &" +
                                        std::string(entity) + ";");
          }
          code = code * (hex ? 16 : 10) + digit;
          if (code > 0x10FFFF) {
            return InvalidArgumentError("character reference out of range");
          }
        }
        AppendUtf8(code, out);
      } else {
        return InvalidArgumentError("unknown entity &" + std::string(entity) +
                                    ";");
      }
      i = semi;
    }
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code, std::string& out) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseAttributes(ElementId element) {
    for (;;) {
      cursor_.SkipSpace();
      if (cursor_.AtEnd()) {
        return InvalidArgumentError("unterminated start tag");
      }
      if (cursor_.Peek() == '>' || cursor_.Peek() == '/') return Status::Ok();

      std::string_view name;
      if (Status s = ParseName(name); !s.ok()) return s;
      cursor_.SkipSpace();
      if (cursor_.AtEnd() || cursor_.Advance() != '=') {
        return InvalidArgumentError("expected '=' after attribute '" +
                                    std::string(name) + "' at " +
                                    cursor_.Where());
      }
      cursor_.SkipSpace();
      if (cursor_.AtEnd() ||
          (cursor_.Peek() != '"' && cursor_.Peek() != '\'')) {
        return InvalidArgumentError("expected quoted attribute value at " +
                                    cursor_.Where());
      }
      const char quote = cursor_.Advance();
      const size_t begin = cursor_.pos();
      while (!cursor_.AtEnd() && cursor_.Peek() != quote) {
        if (cursor_.Peek() == '<') {
          return InvalidArgumentError("'<' in attribute value at " +
                                      cursor_.Where());
        }
        cursor_.Advance();
      }
      if (cursor_.AtEnd()) {
        return InvalidArgumentError("unterminated attribute value");
      }
      const std::string_view raw = cursor_.Slice(begin, cursor_.pos());
      cursor_.Advance();  // closing quote

      Attribute attr;
      attr.name = std::string(name);
      if (Status s = DecodeText(raw, attr.value); !s.ok()) return s;

      for (const std::string& id_attr : options_.id_attributes) {
        if (attr.name == id_attr) {
          doc_.RegisterAnchor(attr.value, element);
          break;
        }
      }
      doc_.element(element).attributes.push_back(std::move(attr));
    }
  }

  Status ParseElement(ElementId parent) {
    if (++depth_ > options_.max_depth) {
      return InvalidArgumentError("element nesting deeper than " +
                                  std::to_string(options_.max_depth));
    }
    const Status status = ParseElementImpl(parent);
    --depth_;
    return status;
  }

  Status ParseElementImpl(ElementId parent) {
    // Caller guarantees cursor is at '<'.
    cursor_.Advance();
    std::string_view tag_name;
    if (Status s = ParseName(tag_name); !s.ok()) return s;

    const ElementId element = doc_.AddElement(pool_.Intern(tag_name), parent);
    if (Status s = ParseAttributes(element); !s.ok()) return s;

    if (cursor_.Consume("/>")) return Status::Ok();
    if (!cursor_.Consume(">")) {
      return InvalidArgumentError("malformed start tag <" +
                                  std::string(tag_name) + "> at " +
                                  cursor_.Where());
    }
    return ParseContent(element, tag_name);
  }

  Status ParseContent(ElementId element, std::string_view tag_name) {
    std::string text;
    for (;;) {
      if (cursor_.AtEnd()) {
        return InvalidArgumentError("unexpected end of input inside <" +
                                    std::string(tag_name) + ">");
      }
      if (cursor_.Peek() == '<') {
        if (cursor_.Consume("<!--")) {
          if (!cursor_.SkipUntil("-->")) {
            return InvalidArgumentError("unterminated comment");
          }
        } else if (cursor_.Consume("<![CDATA[")) {
          const size_t begin = cursor_.pos();
          if (!cursor_.SkipUntil("]]>")) {
            return InvalidArgumentError("unterminated CDATA section");
          }
          const std::string_view cdata =
              cursor_.Slice(begin, cursor_.pos() - 3);
          text.append(cdata);
        } else if (cursor_.Consume("<?")) {
          if (!cursor_.SkipUntil("?>")) {
            return InvalidArgumentError("unterminated processing instruction");
          }
        } else if (cursor_.PeekAt(1) == '/') {
          cursor_.Consume("</");
          std::string_view close_name;
          if (Status s = ParseName(close_name); !s.ok()) return s;
          cursor_.SkipSpace();
          if (!cursor_.Consume(">")) {
            return InvalidArgumentError("malformed end tag at " +
                                        cursor_.Where());
          }
          if (close_name != tag_name) {
            return InvalidArgumentError("mismatched end tag </" +
                                        std::string(close_name) +
                                        ">, expected </" +
                                        std::string(tag_name) + "> at " +
                                        cursor_.Where());
          }
          CommitText(element, std::move(text));
          return Status::Ok();
        } else {
          if (Status s = ParseElement(element); !s.ok()) return s;
        }
      } else {
        const size_t begin = cursor_.pos();
        while (!cursor_.AtEnd() && cursor_.Peek() != '<') cursor_.Advance();
        if (Status s = DecodeText(cursor_.Slice(begin, cursor_.pos()), text);
            !s.ok()) {
          return s;
        }
      }
    }
  }

  void CommitText(ElementId element, std::string text) {
    if (options_.trim_whitespace) {
      size_t begin = 0;
      size_t end = text.size();
      while (begin < end && IsSpace(text[begin])) ++begin;
      while (end > begin && IsSpace(text[end - 1])) --end;
      text = text.substr(begin, end - begin);
    }
    doc_.element(element).text = std::move(text);
  }

  Cursor cursor_;
  Document doc_;
  NamePool& pool_;
  const ParseOptions& options_;
  size_t depth_ = 0;
};

}  // namespace

StatusOr<Document> ParseDocument(std::string_view input, std::string name,
                                 NamePool& pool, const ParseOptions& options) {
  Parser parser(input, std::move(name), pool, options);
  return parser.Parse();
}

}  // namespace flix::xml
