// XML serialization: the inverse of the parser (modulo whitespace and
// comments). Used by the workload generators' tests to round-trip documents.
#ifndef FLIX_XML_SERIALIZER_H_
#define FLIX_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"
#include "xml/name_pool.h"

namespace flix::xml {

struct SerializeOptions {
  bool pretty = true;   // newlines + two-space indentation
};

// Serializes `doc` to XML text. Attribute values and text are entity-escaped
// so that Parse(Serialize(doc)) reproduces the document.
std::string Serialize(const Document& doc, const NamePool& pool,
                      const SerializeOptions& options = {});

// Escapes <, >, &, ", ' for embedding in XML text or attribute values.
std::string EscapeXml(std::string_view raw);

}  // namespace flix::xml

#endif  // FLIX_XML_SERIALIZER_H_
