// Indexing Strategy Selector (ISS): picks the path indexing strategy for a
// meta document from its structure (paper Section 2.2's rule of thumb:
// PPO for trees; HOPI for long, wildcard-heavy paths over linked data;
// APEX when 2-hop construction would be too expensive).
#ifndef FLIX_FLIX_ISS_H_
#define FLIX_FLIX_ISS_H_

#include "flix/config.h"
#include "graph/digraph.h"
#include "index/path_index.h"

namespace flix::core {

// Chooses a strategy for one meta document under the given options.
index::StrategyKind SelectStrategy(const graph::Digraph& meta_graph,
                                   const FlixOptions& options);

}  // namespace flix::core

#endif  // FLIX_FLIX_ISS_H_
