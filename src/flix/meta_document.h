// Meta documents: the unit FliX indexes (paper Section 3.1).
//
// A meta document owns the induced local element graph of its member
// elements (minus any edges the MDB decided to keep *outside* the index),
// the path index built for it, and the bookkeeping for cross links: the set
// L_i of elements with outgoing links not reflected in the index, and the
// entry points reachable from other meta documents.
#ifndef FLIX_FLIX_META_DOCUMENT_H_
#define FLIX_FLIX_META_DOCUMENT_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "common/types.h"
#include "graph/digraph.h"
#include "index/path_index.h"
#include "storage/flat.h"

namespace flix::core {

// A refcounted, swappable handle to a meta document's path index.
//
// The workload-adaptive ISS (flix/adapt.h) replaces indexes while queries
// run. Cursors hold raw pointers into index internals, and PathIndex's
// contract requires an index to outlive its cursors — so the query paths
// take Acquire() snapshots (shared_ptr) and pin them for as long as any
// cursor they opened is alive. Replace() publishes a new index without
// disturbing snapshots already handed out; the displaced index dies when
// the last in-flight query holding it drains.
//
// Acquire/Replace synchronize through a spinlock around a shared_ptr copy —
// one uncontended atomic exchange per entry point processed, no allocation.
// The unsynchronized conveniences (get, ->, *, bool) are for the
// single-writer phases (build, load, tests); code that can race a migration
// must go through Acquire().
class IndexHandle {
 public:
  IndexHandle() = default;
  IndexHandle(const IndexHandle&) = delete;
  IndexHandle& operator=(const IndexHandle&) = delete;
  // SAFETY: moves happen only while the MDB grows its docs vector
  // (single-threaded build phase), never concurrently with Acquire/Replace,
  // so reading `other.index_` without `other.lock_` cannot race. The
  // analysis cannot see cross-object phases, hence the opt-out.
  IndexHandle(IndexHandle&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : index_(std::move(other.index_)) {}
  // SAFETY: same single-threaded build-phase contract as the move ctor.
  IndexHandle& operator=(IndexHandle&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    index_ = std::move(other.index_);
    return *this;
  }
  IndexHandle& operator=(std::unique_ptr<index::PathIndex> index) {
    Replace(std::shared_ptr<index::PathIndex>(std::move(index)));
    return *this;
  }

  // Snapshot for query-path use; keeps the index alive past a Replace().
  std::shared_ptr<index::PathIndex> Acquire() const EXCLUDES(lock_) {
    std::shared_ptr<index::PathIndex> snapshot;
    {
      SpinLockHolder hold(lock_);
      snapshot = index_;
    }
    return snapshot;
  }

  // Publishes `next` as the current index. The displaced index is released
  // outside the lock (its destruction may be the heavy part).
  void Replace(std::shared_ptr<index::PathIndex> next) EXCLUDES(lock_) {
    {
      SpinLockHolder hold(lock_);
      index_.swap(next);
    }
  }

  // SAFETY: the unsynchronized conveniences below are for the single-writer
  // phases (build, load, tests) documented in the class comment; code that
  // can race a migration must go through Acquire().
  index::PathIndex* get() const NO_THREAD_SAFETY_ANALYSIS {
    return index_.get();
  }
  // SAFETY: single-writer phases only, as get().
  index::PathIndex* operator->() const NO_THREAD_SAFETY_ANALYSIS {
    return index_.get();
  }
  // SAFETY: single-writer phases only, as get().
  index::PathIndex& operator*() const NO_THREAD_SAFETY_ANALYSIS {
    return *index_;
  }
  // SAFETY: single-writer phases only, as get().
  explicit operator bool() const NO_THREAD_SAFETY_ANALYSIS {
    return index_ != nullptr;
  }
  // SAFETY: single-writer phases only, as get().
  friend bool operator==(const IndexHandle& handle,
                         std::nullptr_t) NO_THREAD_SAFETY_ANALYSIS {
    return handle.index_ == nullptr;
  }

 private:
  mutable SpinLock lock_ ACQUIRED_AFTER(lockorder::kPartitionHandle)
      ACQUIRED_BEFORE(lockorder::kCache);
  std::shared_ptr<index::PathIndex> index_ GUARDED_BY(lock_);
};

// A refcounted, swappable handle to the framework-wide ALT landmark cache
// (src/flix/landmarks.h), with the same spinlock-around-shared_ptr shape as
// IndexHandle: point queries take Acquire() snapshots, the background
// LandmarkRefresher publishes rebuilt caches through Replace() without
// disturbing snapshots already handed out. A displaced cache stays valid
// (merely stale) for the queries still holding it — the heuristic it serves
// is admissible for the graph it was built from, which never changes under
// a refresh, so stale reads are counted but never wrong.
//
// The handle additionally carries the runtime enable switch (`flixctl
// --no-landmarks`, the differential tests): when disabled, Acquire()
// returns null and the PEE falls back to the blind Dijkstra; Snapshot()
// ignores the switch for save/stats/validation paths.
class LandmarkCache;

class LandmarkHandle {
 public:
  LandmarkHandle() = default;
  LandmarkHandle(const LandmarkHandle&) = delete;
  LandmarkHandle& operator=(const LandmarkHandle&) = delete;
  // SAFETY: moves happen only while the MDB output is assembled
  // (single-threaded), never concurrently with Acquire/Replace, so reading
  // `other.cache_` without `other.lock_` cannot race.
  LandmarkHandle(LandmarkHandle&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : enabled_(other.enabled_.load(std::memory_order_relaxed)),
        cache_(std::move(other.cache_)) {}
  // SAFETY: same single-threaded assembly contract as the move ctor.
  LandmarkHandle& operator=(LandmarkHandle&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    enabled_.store(other.enabled_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    cache_ = std::move(other.cache_);
    return *this;
  }

  // Query-path snapshot: null when no cache is installed or the switch is
  // off. Callers must also check LandmarkCache::empty().
  std::shared_ptr<const LandmarkCache> Acquire() const EXCLUDES(lock_) {
    if (!enabled_.load(std::memory_order_relaxed)) return nullptr;
    return Snapshot();
  }

  // Unconditional snapshot (persistence, stats, validation).
  std::shared_ptr<const LandmarkCache> Snapshot() const EXCLUDES(lock_) {
    std::shared_ptr<const LandmarkCache> snapshot;
    {
      SpinLockHolder hold(lock_);
      snapshot = cache_;
    }
    return snapshot;
  }

  // Publishes `next` as the current cache and returns how many in-flight
  // queries still hold the displaced one (the stale-read count; the
  // displaced cache itself is released outside the lock).
  size_t Replace(std::shared_ptr<const LandmarkCache> next) EXCLUDES(lock_) {
    {
      SpinLockHolder hold(lock_);
      cache_.swap(next);
    }
    if (next == nullptr) return 0;
    const long readers = next.use_count() - 1;  // minus our own reference
    return readers > 0 ? static_cast<size_t>(readers) : 0;
  }

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  mutable SpinLock lock_ ACQUIRED_AFTER(lockorder::kPartitionHandle)
      ACQUIRED_BEFORE(lockorder::kCache);
  std::atomic<bool> enabled_{true};
  std::shared_ptr<const LandmarkCache> cache_ GUARDED_BY(lock_);
};

class MetaDocument {
 public:
  MetaDocument() = default;
  MetaDocument(MetaDocument&&) = default;
  MetaDocument& operator=(MetaDocument&&) = default;

  uint32_t id = 0;

  // All link bookkeeping below is dual-mode (storage/flat.h): owned vectors
  // and hash maps while the MDB builds, borrowed spans into the file mapping
  // after a paged load. The read accessors are identical either way.

  // Local node i corresponds to global element global_nodes[i].
  storage::FlatVec<NodeId> global_nodes;

  // Local element graph (the edges the index will reflect).
  graph::Digraph graph;

  // The index built by the Index Builder (null until then); a refcounted
  // handle so the adaptive ISS can swap strategies under live queries.
  IndexHandle index;

  // L_i: local ids of elements with outgoing links that are *not* reflected
  // in the index, ascending. The PEE intersects descendants(e) with this set
  // via PathIndex::ReachableAmong.
  storage::FlatVec<NodeId> link_sources;

  // Outgoing link targets per link source (global element ids).
  storage::FlatMultiMap link_targets;

  // Reverse direction, for ancestor queries: local ids of elements that are
  // targets of unindexed links, ascending, plus their global link origins.
  storage::FlatVec<NodeId> entry_nodes;
  storage::FlatMultiMap entry_origins;

  size_t NumNodes() const { return graph.NumNodes(); }

  // Registers an outgoing cross link (source local, target global).
  void AddCrossLink(NodeId local_source, NodeId global_target);
  // Registers an incoming cross link (target local, origin global).
  void AddEntry(NodeId local_target, NodeId global_origin);

  // Sorts/dedups link_sources and entry_nodes; call once after construction.
  void FinalizeLinks();

  size_t MemoryBytes() const;
};

// The full output of the Meta Document Builder: the meta documents plus the
// global-node -> (meta document, local node) mapping.
struct MetaDocumentSet {
  std::vector<MetaDocument> docs;
  storage::FlatVec<uint32_t> meta_of_node;
  storage::FlatVec<NodeId> local_of_node;
  // Total number of cross (meta-document-spanning or unindexed) links.
  size_t num_cross_links = 0;
  // Framework-wide ALT landmark cache (flix/landmarks.h); null until built
  // or loaded. The PEE snapshots it per point query, so a background
  // refresh can swap it mid-stream without stalling readers.
  LandmarkHandle landmarks;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_META_DOCUMENT_H_
