// Meta documents: the unit FliX indexes (paper Section 3.1).
//
// A meta document owns the induced local element graph of its member
// elements (minus any edges the MDB decided to keep *outside* the index),
// the path index built for it, and the bookkeeping for cross links: the set
// L_i of elements with outgoing links not reflected in the index, and the
// entry points reachable from other meta documents.
#ifndef FLIX_FLIX_META_DOCUMENT_H_
#define FLIX_FLIX_META_DOCUMENT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/digraph.h"
#include "index/path_index.h"

namespace flix::core {

class MetaDocument {
 public:
  MetaDocument() = default;
  MetaDocument(MetaDocument&&) = default;
  MetaDocument& operator=(MetaDocument&&) = default;

  uint32_t id = 0;

  // Local node i corresponds to global element global_nodes[i].
  std::vector<NodeId> global_nodes;

  // Local element graph (the edges the index will reflect).
  graph::Digraph graph;

  // The index built by the Index Builder (null until then).
  std::unique_ptr<index::PathIndex> index;

  // L_i: local ids of elements with outgoing links that are *not* reflected
  // in the index, ascending. The PEE intersects descendants(e) with this set
  // via PathIndex::ReachableAmong.
  std::vector<NodeId> link_sources;

  // Outgoing link targets per link source (global element ids).
  std::unordered_map<NodeId, std::vector<NodeId>> link_targets;

  // Reverse direction, for ancestor queries: local ids of elements that are
  // targets of unindexed links, ascending, plus their global link origins.
  std::vector<NodeId> entry_nodes;
  std::unordered_map<NodeId, std::vector<NodeId>> entry_origins;

  size_t NumNodes() const { return graph.NumNodes(); }

  // Registers an outgoing cross link (source local, target global).
  void AddCrossLink(NodeId local_source, NodeId global_target);
  // Registers an incoming cross link (target local, origin global).
  void AddEntry(NodeId local_target, NodeId global_origin);

  // Sorts/dedups link_sources and entry_nodes; call once after construction.
  void FinalizeLinks();

  size_t MemoryBytes() const;
};

// The full output of the Meta Document Builder: the meta documents plus the
// global-node -> (meta document, local node) mapping.
struct MetaDocumentSet {
  std::vector<MetaDocument> docs;
  std::vector<uint32_t> meta_of_node;
  std::vector<NodeId> local_of_node;
  // Total number of cross (meta-document-spanning or unindexed) links.
  size_t num_cross_links = 0;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_META_DOCUMENT_H_
