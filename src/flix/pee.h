// Path Expression Evaluator (PEE): evaluates connection queries over the
// meta documents by combining per-meta-document index probes with run-time
// link traversal (paper Section 5, Figure 4).
//
// The default evaluation mode is fully streamed: instead of materializing
// each meta document's local result block, the PEE holds one lazy cursor per
// probe (index::NodeDistCursor) and merges them through its priority queue.
// Results therefore reach the sink in globally ascending distance order —
// strictly tighter than the paper's per-block emission, which it reports as
// 8-13% out-of-order — and an early stop (top-k, max_distance, sink cancel)
// abandons the cursors before they traverse the rest of their ranges.
// The result *set* is exact either way: every reachable matching element is
// emitted exactly once (duplicate elimination via per-meta-document entry
// points, Section 5.1, backed by an emitted-set membership filter).
//
// `QueryOptions::materialize` restores the legacy drain-then-emit probes
// (one ascending block per meta document) for comparison; exact mode always
// materializes, since it must relax all candidate distances before sorting.
#ifndef FLIX_FLIX_PEE_H_
#define FLIX_FLIX_PEE_H_

#include <functional>
#include <memory>
#include <thread>

#include "common/types.h"
#include "flix/meta_document.h"
#include "flix/streamed_list.h"
#include "obs/profile.h"

namespace flix::core {

// Receives results as they are found; return false to stop the query (e.g.,
// top-k reached).
using ResultSink = std::function<bool(const Result&)>;

struct QueryOptions {
  // Stop once the queue's lower bound exceeds this distance (< 0: none).
  Distance max_distance = -1;
  // Stop after this many results (< 0: all).
  int64_t max_results = -1;
  // Exact mode (the "returning results exactly sorted instead of
  // approximately" improvement of Section 7): entry points are not pruned
  // by the duplicate-elimination rule, per-result distances are relaxed to
  // their true minima, and the stream is emitted fully sorted. Trades the
  // early first results for exact distances and order.
  bool exact = false;
  // Legacy evaluation path: drain each index probe into a sorted vector
  // before emitting (the paper's per-block behaviour) instead of merging
  // lazy cursors. Exact mode implies this.
  bool materialize = false;
};

// Counters the PEE accumulates per query — raw material for the paper's
// self-tuning idea (Section 7: "if most queries have to follow many links,
// the choice of meta documents is no longer optimal").
struct QueryStats {
  size_t entries_processed = 0;   // priority-queue pops that did work
  size_t entries_dominated = 0;   // pops skipped by duplicate elimination
  size_t links_followed = 0;      // cross-meta-document hops enqueued
  size_t index_probes = 0;        // local index queries issued
  size_t cursors_opened = 0;      // lazy probe cursors created (streaming)
  size_t cursor_pulls = 0;        // Next() calls across all cursors
  size_t cursor_saved = 0;        // results left unpulled by an early stop
};

// RAII handle for an asynchronous streamed query (the paper's multithreaded
// client decoupling, Section 3.1): owns both the worker thread and the
// result list. Destruction cancels the stream and joins the worker, so a
// partially consumed query can simply go out of scope — no leaked thread,
// and the streaming evaluator stops pulling its cursors at the next push.
class AsyncQuery {
 public:
  AsyncQuery(AsyncQuery&&) = default;
  AsyncQuery& operator=(AsyncQuery&&) = delete;
  AsyncQuery(const AsyncQuery&) = delete;
  AsyncQuery& operator=(const AsyncQuery&) = delete;
  ~AsyncQuery();

  // Consumer side; see StreamedList for blocking semantics.
  std::optional<Result> Next() { return list_->Next(); }
  std::optional<Result> TryNext() { return list_->TryNext(); }
  std::vector<Result> DrainAll() { return list_->DrainAll(); }

  // Aborts the query: the producer observes the cancel on its next push and
  // abandons its remaining work. Destruction does this implicitly.
  void Cancel() { list_->Cancel(); }

  // Direct access to the underlying list (progress reporting, tests).
  StreamedList& results() { return *list_; }

 private:
  friend class PathExpressionEvaluator;
  explicit AsyncQuery(size_t capacity)
      : list_(std::make_unique<StreamedList>(capacity)) {}

  std::unique_ptr<StreamedList> list_;  // stable address for the worker
  std::thread worker_;
};

class PathExpressionEvaluator {
 public:
  // Keeps a reference; `set` (with built indexes) must outlive the PEE.
  // `profiler`, when non-null (and enabled), receives per-meta-document
  // attribution of every query's work — entries, probes, cursor pulls,
  // cross-link fan-out, emitted results, whole-query latency. Queries
  // accumulate deltas in locals and flush once at query end, so the hot
  // path stays free of shared-state writes.
  explicit PathExpressionEvaluator(const MetaDocumentSet& set,
                                   obs::WorkloadProfiler* profiler = nullptr)
      : set_(set), profiler_(profiler) {}

  // a//B — descendants of `start` with tag `tag`. `stats`, when non-null,
  // receives the traversal counters (all query entry points below too).
  void FindDescendantsByTag(NodeId start, TagId tag,
                            const QueryOptions& options,
                            const ResultSink& sink,
                            QueryStats* stats = nullptr) const;

  // a//* — all descendants of `start`.
  void FindDescendants(NodeId start, const QueryOptions& options,
                       const ResultSink& sink,
                       QueryStats* stats = nullptr) const;

  // Reverse axis: ancestors of `start` with tag `tag`.
  void FindAncestorsByTag(NodeId start, TagId tag, const QueryOptions& options,
                          const ResultSink& sink,
                          QueryStats* stats = nullptr) const;

  // A//B — descendants with tag `result_tag` of *any* element with tag
  // `start_tag` (all starts enter the queue at priority 0, Section 5.2).
  void EvaluateTypeQuery(TagId start_tag, TagId result_tag,
                         const QueryOptions& options, const ResultSink& sink,
                         QueryStats* stats = nullptr) const;

  // Connection test a//b (Section 5.2). max_distance < 0: unbounded.
  bool IsConnected(NodeId a, NodeId b, Distance max_distance = -1) const;

  // Length of the true shortest path a -> b, or kUnreachable. The walk is
  // an A* over entry points when the landmark cache (flix/landmarks.h) is
  // resident — same answers as the blind Dijkstra, typically far fewer
  // queue pops — and falls back to the blind walk when it is not. Always
  // exact.
  Distance FindDistance(NodeId a, NodeId b, Distance max_distance = -1) const;

  // Bidirectional connection test (the optimization sketched in Section
  // 5.2): expands the smaller frontier of a forward search from `a` and a
  // backward search from `b`.
  bool IsConnectedBidirectional(NodeId a, NodeId b,
                                Distance max_distance = -1) const;

  // Step axes (Section 5: "the algorithms can be adapted easily for other
  // cases, e.g., to support the child axis as in a/b"). Children are the
  // distance-1 successors — tree children plus direct link targets;
  // parents symmetrically. Both cross meta-document boundaries.
  std::vector<Result> Children(NodeId node) const;
  std::vector<Result> Parents(NodeId node) const;
  std::vector<Result> ChildrenByTag(NodeId node, TagId tag) const;
  // Siblings: children of any parent, excluding `node` itself.
  std::vector<Result> Siblings(NodeId node) const;

  // Runs FindDescendantsByTag on a worker thread that streams into the
  // returned handle's list. Consume via AsyncQuery::Next/DrainAll; dropping
  // the handle cancels and joins.
  AsyncQuery FindDescendantsByTagAsync(NodeId start, TagId tag,
                                       QueryOptions options,
                                       size_t capacity = 1024) const;

 private:
  enum class Axis { kDescendants, kAncestors };

  void Run(const std::vector<NodeId>& starts, TagId tag, bool wildcard,
           Axis axis, const QueryOptions& options, const ResultSink& sink,
           QueryStats* stats) const;

  // Default path: merges lazy per-probe cursors through the priority queue.
  void RunStreaming(const std::vector<NodeId>& starts, TagId tag,
                    bool wildcard, Axis axis, const QueryOptions& options,
                    const ResultSink& sink, QueryStats* stats) const;

  // Legacy path: materializes each probe as one sorted block (also carries
  // exact mode, which needs every candidate before it can sort).
  void RunMaterialized(const std::vector<NodeId>& starts, TagId tag,
                       bool wildcard, Axis axis, const QueryOptions& options,
                       const ResultSink& sink, QueryStats* stats) const;

  // Shared core of IsConnected/FindDistance: Dijkstra over entry points,
  // upgraded to landmark-guided A* when the MetaDocumentSet carries a
  // LandmarkCache (see flix/landmarks.h for the admissibility argument).
  Distance PointQuery(NodeId a, NodeId b, Distance max_distance) const;

  const MetaDocumentSet& set_;
  obs::WorkloadProfiler* profiler_ = nullptr;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_PEE_H_
