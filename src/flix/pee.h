// Path Expression Evaluator (PEE): evaluates connection queries over the
// meta documents by combining per-meta-document index probes with run-time
// link traversal (paper Section 5, Figure 4).
//
// Results stream to a caller-provided sink in approximately ascending
// distance: the priority queue of intermediate elements is processed in
// ascending accumulated distance, but each meta document's local results are
// emitted as one ascending block, so globally the order is approximate —
// exactly the paper's behaviour (it reports an 8-13% out-of-order rate).
// The result *set* is exact: every reachable matching element is emitted
// exactly once (duplicate elimination via per-meta-document entry points,
// Section 5.1, backed by an emitted-set membership filter).
#ifndef FLIX_FLIX_PEE_H_
#define FLIX_FLIX_PEE_H_

#include <functional>
#include <thread>

#include "common/types.h"
#include "flix/meta_document.h"
#include "flix/streamed_list.h"

namespace flix::core {

// Receives results as they are found; return false to stop the query (e.g.,
// top-k reached).
using ResultSink = std::function<bool(const Result&)>;

struct QueryOptions {
  // Stop once the queue's lower bound exceeds this distance (< 0: none).
  Distance max_distance = -1;
  // Stop after this many results (< 0: all).
  int64_t max_results = -1;
  // Exact mode (the "returning results exactly sorted instead of
  // approximately" improvement of Section 7): entry points are not pruned
  // by the duplicate-elimination rule, per-result distances are relaxed to
  // their true minima, and the stream is emitted fully sorted. Trades the
  // early first results for exact distances and order.
  bool exact = false;
};

// Counters the PEE accumulates per query — raw material for the paper's
// self-tuning idea (Section 7: "if most queries have to follow many links,
// the choice of meta documents is no longer optimal").
struct QueryStats {
  size_t entries_processed = 0;   // priority-queue pops that did work
  size_t entries_dominated = 0;   // pops skipped by duplicate elimination
  size_t links_followed = 0;      // cross-meta-document hops enqueued
  size_t index_probes = 0;        // local index queries issued
};

class PathExpressionEvaluator {
 public:
  // Keeps a reference; `set` (with built indexes) must outlive the PEE.
  explicit PathExpressionEvaluator(const MetaDocumentSet& set) : set_(set) {}

  // a//B — descendants of `start` with tag `tag`. `stats`, when non-null,
  // receives the traversal counters (all query entry points below too).
  void FindDescendantsByTag(NodeId start, TagId tag,
                            const QueryOptions& options,
                            const ResultSink& sink,
                            QueryStats* stats = nullptr) const;

  // a//* — all descendants of `start`.
  void FindDescendants(NodeId start, const QueryOptions& options,
                       const ResultSink& sink,
                       QueryStats* stats = nullptr) const;

  // Reverse axis: ancestors of `start` with tag `tag`.
  void FindAncestorsByTag(NodeId start, TagId tag, const QueryOptions& options,
                          const ResultSink& sink,
                          QueryStats* stats = nullptr) const;

  // A//B — descendants with tag `result_tag` of *any* element with tag
  // `start_tag` (all starts enter the queue at priority 0, Section 5.2).
  void EvaluateTypeQuery(TagId start_tag, TagId result_tag,
                         const QueryOptions& options, const ResultSink& sink,
                         QueryStats* stats = nullptr) const;

  // Connection test a//b (Section 5.2). max_distance < 0: unbounded.
  bool IsConnected(NodeId a, NodeId b, Distance max_distance = -1) const;

  // Length of the discovered shortest path a -> b, or kUnreachable. The
  // value can exceed the true shortest distance when duplicate elimination
  // prunes an entry point that carried the shorter continuation (same
  // approximation the ordering has). `exact` disables that pruning and
  // returns the true shortest distance.
  Distance FindDistance(NodeId a, NodeId b, Distance max_distance = -1,
                        bool exact = false) const;

  // Bidirectional connection test (the optimization sketched in Section
  // 5.2): expands the smaller frontier of a forward search from `a` and a
  // backward search from `b`.
  bool IsConnectedBidirectional(NodeId a, NodeId b,
                                Distance max_distance = -1) const;

  // Step axes (Section 5: "the algorithms can be adapted easily for other
  // cases, e.g., to support the child axis as in a/b"). Children are the
  // distance-1 successors — tree children plus direct link targets;
  // parents symmetrically. Both cross meta-document boundaries.
  std::vector<Result> Children(NodeId node) const;
  std::vector<Result> Parents(NodeId node) const;
  std::vector<Result> ChildrenByTag(NodeId node, TagId tag) const;
  // Siblings: children of any parent, excluding `node` itself.
  std::vector<Result> Siblings(NodeId node) const;

  // Convenience: runs FindDescendantsByTag on a worker thread that pushes
  // into `list` and closes it — the paper's multithreaded client decoupling.
  // The caller must join the returned thread (after consuming `list`).
  std::thread FindDescendantsByTagAsync(NodeId start, TagId tag,
                                        QueryOptions options,
                                        StreamedList* list) const;

 private:
  enum class Axis { kDescendants, kAncestors };

  void Run(const std::vector<NodeId>& starts, TagId tag, bool wildcard,
           Axis axis, const QueryOptions& options, const ResultSink& sink,
           QueryStats* stats) const;

  Distance PointQuery(NodeId a, NodeId b, Distance max_distance,
                      bool exact) const;

  const MetaDocumentSet& set_;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_PEE_H_
