// Meta Document Builder (MDB): partitions the collection's element graph
// into meta documents according to the configured strategy (paper
// Section 4.1/4.3) and materializes the local graphs plus cross-link
// bookkeeping.
#ifndef FLIX_FLIX_MDB_H_
#define FLIX_FLIX_MDB_H_

#include <vector>

#include "common/types.h"
#include "flix/config.h"
#include "flix/meta_document.h"
#include "graph/digraph.h"

namespace flix::core {

struct MdbInput {
  // Global element graph of the collection (tree + link edges).
  const graph::Digraph* graph = nullptr;
  // Document id per global node.
  const std::vector<uint32_t>* doc_of = nullptr;
  // Global node id of each document's root element.
  const std::vector<NodeId>* doc_roots = nullptr;
};

// Builds the meta documents. Edges that the configuration decides not to
// reflect in any index (partition-crossing edges, and — for Maximal PPO —
// links removed to keep a partition tree-shaped, cf. Figure 3) are recorded
// as cross links to be followed by the PEE at query time.
MetaDocumentSet BuildMetaDocuments(const MdbInput& input,
                                   const FlixOptions& options);

// Exposed for tests: the Maximal PPO document grouping. Returns a group id
// per document; documents whose internal graph is not a tree get group
// UINT32_MAX (to be handled by the caller's fallback). Accepted link edges
// (those that become part of a group's forest) are appended to
// `accepted_edges` as (global source, global target) pairs.
std::vector<uint32_t> GrowTreeGroups(
    const MdbInput& input,
    std::vector<std::pair<NodeId, NodeId>>* accepted_edges);

}  // namespace flix::core

#endif  // FLIX_FLIX_MDB_H_
