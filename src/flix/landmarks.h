// ALT-style landmark distance cache for goal-directed point queries.
//
// The PEE's connection tests (IsConnected / FindDistance) walk the
// cross-link graph by accumulated distance and, blind, expand every
// partition reachable within the bound. This module precomputes exact BFS
// distances between every element and a small set of landmark elements and
// derives the classic differential lower bound (Goldberg & Harrelson's ALT):
//
//   d(n, g) >= d(n, l)  - d(g, l)      (distances TO landmark l)
//   d(n, g) >= d(l, g)  - d(l, n)      (distances FROM landmark l)
//
// h(n, g) = max over landmarks of both bounds (clamped at 0) is admissible
// (never overstates d(n, g)) and consistent across any edge relaxation whose
// weight is an upper bound on nothing — i.e. whose weight w(x, y) satisfies
// d(x, g) <= w + d(y, g), which holds for the PEE's super edges because each
// is a real path in the element graph. A* keyed on distance + h therefore
// returns exactly the blind Dijkstra's answers while popping far fewer queue
// entries; the landmark rows additionally yield *proofs* of unreachability
// (n cannot reach g if some landmark is reachable from g but not from n, or
// reaches n but not g), which lets unreachable point queries return without
// expanding anything.
//
// Landmarks are chosen by farthest-point seeding on the partition quotient
// graph (one node per meta document, edges where cross links connect them),
// so they spread across the collection's link structure rather than packing
// into one partition. The per-node tables live in storage/flat.h containers:
// heap-owned after a build, zero-copy views into the file mapping after a
// paged load. A damaged or missing cache is never an error — the PEE simply
// runs blind.
#ifndef FLIX_FLIX_LANDMARKS_H_
#define FLIX_FLIX_LANDMARKS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>

#include "common/binary_io.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"
#include "flix/meta_document.h"
#include "graph/digraph.h"
#include "storage/flat.h"
#include "storage/segment.h"

namespace flix::xml {
class Collection;
}  // namespace flix::xml

namespace flix::core {

// Immutable once built; queries share it through LandmarkHandle snapshots.
class LandmarkCache {
 public:
  // Distances are stored as uint16 (4 bytes per node per landmark for both
  // directions). kFar marks unreachable; finite distances clamp at kCap, and
  // a clamped value is treated as "no information" when bounding — the true
  // distance may be anything >= kCap, so using it could overstate h.
  static constexpr uint16_t kFar = 0xFFFF;
  static constexpr uint16_t kCap = 0xFFFE;

  LandmarkCache() = default;
  LandmarkCache(LandmarkCache&&) = default;
  LandmarkCache& operator=(LandmarkCache&&) = default;

  // Selects min(landmark_count, #partitions) landmarks and runs 2 BFS per
  // landmark over `graph` (the global element graph the set was built from).
  // Deterministic for a given (graph, set, count).
  static LandmarkCache Build(const graph::Digraph& graph,
                             const MetaDocumentSet& set,
                             size_t landmark_count);

  bool empty() const { return landmarks_.size() == 0; }
  size_t num_landmarks() const { return landmarks_.size(); }
  size_t num_nodes() const { return num_nodes_; }
  std::span<const NodeId> landmarks() const { return landmarks_.span(); }

  // Monotonic rebuild counter; the refresher bumps it on every swap so
  // `flixctl info` / stats can report cache staleness.
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t generation) { generation_ = generation; }

  bool Covers(NodeId n) const { return static_cast<size_t>(n) < num_nodes_; }

  // The goal's two landmark rows, extracted once per point query.
  struct GoalView {
    std::span<const uint16_t> to_land;    // d(goal -> l) per landmark
    std::span<const uint16_t> from_land;  // d(l -> goal) per landmark
  };
  GoalView Goal(NodeId goal) const {
    const size_t k = landmarks_.size();
    return GoalView{
        std::span<const uint16_t>(to_land_.data() + size_t{goal} * k, k),
        std::span<const uint16_t>(from_land_.data() + size_t{goal} * k, k)};
  }

  // Admissible lower bound on d(n, goal); >= 0, 0 when nothing is known.
  Distance LowerBound(NodeId n, const GoalView& goal) const {
    const size_t k = landmarks_.size();
    const uint16_t* to_n = to_land_.data() + size_t{n} * k;
    const uint16_t* from_n = from_land_.data() + size_t{n} * k;
    int32_t h = 0;
    for (size_t l = 0; l < k; ++l) {
      // Clamped rows (>= kCap) carry no usable bound; see kCap above.
      if (to_n[l] < kCap && goal.to_land[l] < kCap) {
        h = std::max(h, int32_t{to_n[l]} - int32_t{goal.to_land[l]});
      }
      if (from_n[l] < kCap && goal.from_land[l] < kCap) {
        h = std::max(h, int32_t{goal.from_land[l]} - int32_t{from_n[l]});
      }
    }
    return h;
  }

  // Exact unreachability proof: true means no path n -> goal exists in the
  // graph this cache was built from. (If goal reaches landmark l but n does
  // not, a path n -> goal would extend to n -> l; symmetrically for
  // landmarks that reach n but not goal.)
  bool ProvablyUnreachable(NodeId n, const GoalView& goal) const {
    const size_t k = landmarks_.size();
    const uint16_t* to_n = to_land_.data() + size_t{n} * k;
    const uint16_t* from_n = from_land_.data() + size_t{n} * k;
    for (size_t l = 0; l < k; ++l) {
      if (to_n[l] == kFar && goal.to_land[l] != kFar) return true;
      if (from_n[l] != kFar && goal.from_land[l] == kFar) return true;
    }
    return false;
  }

  // Stream persistence (heap copies).
  void Save(BinaryWriter& writer) const;
  static StatusOr<LandmarkCache> Load(BinaryReader& reader,
                                      size_t expected_nodes);

  // Paged persistence: arrays inside one kLandmarks segment. FromSegment
  // borrows the mapping (zero copy) and validates shape; any mismatch is an
  // error the caller downgrades to "run blind".
  void AppendArrays(storage::SegmentWriter& writer) const;
  static StatusOr<LandmarkCache> FromSegment(const storage::SegmentView& view,
                                             size_t expected_nodes);

  // Deep validation against BFS ground truth: recomputes both BFS rows for
  // every landmark and compares `sample_nodes` randomly chosen entries per
  // row. Backs `flixctl check --deep`.
  Status Validate(const graph::Digraph& graph, size_t sample_nodes,
                  uint64_t seed) const;

  size_t MemoryBytes() const {
    return landmarks_.MemoryBytes() + to_land_.MemoryBytes() +
           from_land_.MemoryBytes();
  }

 private:
  static uint16_t Pack(Distance d) {
    if (d == kUnreachable) return kFar;
    return d >= kCap ? kCap : static_cast<uint16_t>(d);
  }

  storage::FlatVec<NodeId> landmarks_;     // global element id per landmark
  storage::FlatVec<uint16_t> to_land_;     // [n * k + l] = d(n -> landmark l)
  storage::FlatVec<uint16_t> from_land_;   // [n * k + l] = d(landmark l -> n)
  size_t num_nodes_ = 0;
  uint64_t generation_ = 1;
};

// Rebuilds the landmark cache off the query path and publishes it through
// MetaDocumentSet::landmarks — the same shape as adapt.h's StrategyMigrator:
// RunOnce() for a single synchronous refresh, Start(interval)/Stop() for a
// background cadence. Queries racing a swap finish on the displaced cache
// (stale but still admissible for the unchanged graph); the swap reports how
// many such readers were in flight via flix.pee.guided.stale_reads.
class LandmarkRefresher {
 public:
  struct Options {
    size_t landmark_count = 16;
    // Test-only: runs on the freshly built cache before it is published
    // (e.g. to corrupt it and exercise the validation paths).
    std::function<void(LandmarkCache&)> replacement_hook;
  };

  // References must outlive the refresher; Stop() is implied by destruction.
  LandmarkRefresher(const xml::Collection& collection, MetaDocumentSet& set);
  LandmarkRefresher(const xml::Collection& collection, MetaDocumentSet& set,
                    Options options);
  ~LandmarkRefresher();

  LandmarkRefresher(const LandmarkRefresher&) = delete;
  LandmarkRefresher& operator=(const LandmarkRefresher&) = delete;

  // One synchronous rebuild + swap; returns the number of in-flight queries
  // that still held the displaced cache (also added to stale_reads).
  size_t RunOnce();

  // Starts/stops the background refresh thread.
  void Start(std::chrono::milliseconds interval) EXCLUDES(mutex_);
  void Stop() EXCLUDES(mutex_);

 private:
  const xml::Collection& collection_;
  MetaDocumentSet& set_;
  const Options options_;

  // Engine rank: held only around the stop flag and the wakeup wait —
  // never across RunOnce, which takes the landmark-handle lock itself.
  Mutex mutex_ ACQUIRED_AFTER(lockorder::kEngine)
      ACQUIRED_BEFORE(lockorder::kPartitionHandle);
  CondVar cv_;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_LANDMARKS_H_
