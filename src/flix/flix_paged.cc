// Paged-format persistence of the Flix facade (see storage/format.h for the
// file layout and DESIGN.md "Paged storage format" for the rationale).
//
// Layout produced by SavePaged:
//   superblock            framework identity (options, element/partition
//                         counts) — everything Load needs before segments
//   kFramework segment    meta_of_node / local_of_node
//   per meta document:
//     kPartition segment  global_nodes, cross-link tables, local graph
//     kIndex segment      the strategy payload (kind in the table entry)
//   segment table
//
// LoadPaged mmaps the file and binds every container as a view into the
// mapping: no per-node copies, so time-to-first-result is governed by page
// faults on the arrays a query actually touches, not by file size. Semantic
// validation is intentionally skipped here — the segment checksums prove the
// bytes are exactly what the writer produced, and `flixctl check --deep`
// covers writer bugs.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "flix/flix.h"
#include "flix/landmarks.h"
#include "index/path_index.h"
#include "storage/paged_file.h"
#include "storage/segment.h"

namespace flix::core {
namespace {

// Framework segment (SegmentKind::kFramework, partition 0).
constexpr uint32_t kMetaOfNodeArray = 1;
constexpr uint32_t kLocalOfNodeArray = 2;

// Partition segment (SegmentKind::kPartition, one per meta document).
constexpr uint32_t kGlobalNodesArray = 1;
constexpr uint32_t kLinkSourcesArray = 2;
constexpr uint32_t kEntryNodesArray = 3;
constexpr uint32_t kLinkTargetKeys = 4;
constexpr uint32_t kLinkTargetOffsets = 5;
constexpr uint32_t kLinkTargetFlat = 6;
constexpr uint32_t kEntryOriginKeys = 7;
constexpr uint32_t kEntryOriginOffsets = 8;
constexpr uint32_t kEntryOriginFlat = 9;
// The local graph's arrays occupy ids 10..15 (Digraph::AppendArrays).
constexpr uint32_t kGraphBase = 10;

void AppendMultiMap(storage::SegmentWriter& seg,
                    const storage::FlatMultiMap& map, uint32_t keys_id,
                    uint32_t offsets_id, uint32_t flat_id) {
  std::vector<NodeId> keys;
  std::vector<uint64_t> offsets;
  std::vector<NodeId> flat;
  map.Flatten(keys, offsets, flat);
  seg.Add(keys_id, keys);
  seg.Add(offsets_id, offsets);
  seg.Add(flat_id, flat);
}

StatusOr<storage::FlatMultiMap> MultiMapFromSegment(
    const storage::SegmentView& view, uint32_t keys_id, uint32_t offsets_id,
    uint32_t flat_id) {
  const auto keys = view.GetArray<NodeId>(keys_id);
  if (!keys.ok()) return keys.status();
  const auto offsets = view.GetArray<uint64_t>(offsets_id);
  if (!offsets.ok()) return offsets.status();
  const auto flat = view.GetArray<NodeId>(flat_id);
  if (!flat.ok()) return flat.status();
  return storage::FlatMultiMap::FromView(keys.value(), offsets.value(),
                                         flat.value());
}

// Replaces `path` with the freshly written `tmp`. The rename keeps the old
// inode alive for any live mapping of the previous file (a paged instance
// re-saving over its own backing file must not truncate what it still
// serves queries from) and makes the save all-or-nothing.
Status CommitTempFile(const std::string& tmp, const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return InternalError("cannot move temporary index file into " + path);
  }
  return Status::Ok();
}

}  // namespace

Status Flix::Save(const std::string& path, IndexFormat format) const {
  const std::string tmp = path + ".tmp";
  if (format == IndexFormat::kMapped) {
    const Status status = SavePaged(tmp);
    if (!status.ok()) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return status;
    }
    return CommitTempFile(tmp, path);
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return NotFoundError("cannot open " + tmp + " for writing");
    }
    const Status status = Save(out);
    out.flush();
    if (!status.ok() || !out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return status.ok() ? InternalError("write failed while saving " + path)
                         : status;
    }
  }
  return CommitTempFile(tmp, path);
}

StatusOr<std::unique_ptr<Flix>> Flix::Load(const std::string& path,
                                           const xml::Collection& collection,
                                           const LoadOptions& options) {
  if (storage::PagedFileReader::SniffPagedFile(path)) {
    return LoadPaged(path, collection, options);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open " + path);
  return Load(in, collection);
}

Status Flix::SavePaged(const std::string& path) const {
  storage::Superblock sb;
  sb.num_elements = collection_.NumElements();
  sb.num_partitions = static_cast<uint32_t>(set_.docs.size());
  sb.config = static_cast<uint32_t>(options_.config);
  sb.iss_policy = static_cast<uint32_t>(options_.iss_policy);
  sb.element_level_partitions = options_.element_level_partitions ? 1 : 0;
  sb.partition_bound = options_.partition_bound;
  sb.hopi_max_nodes = options_.hopi_max_nodes;
  sb.hybrid_dense_link_threshold = options_.hybrid_dense_link_threshold;
  sb.query_cache_capacity = options_.query_cache_capacity;
  sb.num_cross_links = set_.num_cross_links;
  // Snapshot (not Acquire): a cache disabled at run time still persists.
  const std::shared_ptr<const LandmarkCache> landmarks =
      set_.landmarks.Snapshot();
  const bool has_landmarks = landmarks != nullptr && !landmarks->empty();
  sb.landmark_count_plus_one = options_.landmark_count + 1;
  sb.landmark_generation = has_landmarks ? landmarks->generation() : 0;

  StatusOr<storage::PagedFileWriter> writer =
      storage::PagedFileWriter::Create(path, sb);
  if (!writer.ok()) return writer.status();

  {
    storage::SegmentWriter seg;
    seg.Add(kMetaOfNodeArray, set_.meta_of_node.span());
    seg.Add(kLocalOfNodeArray, set_.local_of_node.span());
    const std::vector<std::byte> payload = seg.Finish();
    const Status status = writer->AddSegment(storage::SegmentKind::kFramework,
                                             /*partition=*/0, /*strategy=*/0,
                                             payload);
    if (!status.ok()) return status;
  }

  for (const MetaDocument& meta : set_.docs) {
    {
      storage::SegmentWriter seg;
      seg.Add(kGlobalNodesArray, meta.global_nodes.span());
      seg.Add(kLinkSourcesArray, meta.link_sources.span());
      seg.Add(kEntryNodesArray, meta.entry_nodes.span());
      AppendMultiMap(seg, meta.link_targets, kLinkTargetKeys,
                     kLinkTargetOffsets, kLinkTargetFlat);
      AppendMultiMap(seg, meta.entry_origins, kEntryOriginKeys,
                     kEntryOriginOffsets, kEntryOriginFlat);
      meta.graph.AppendArrays(seg, kGraphBase);
      const std::vector<std::byte> payload = seg.Finish();
      const Status status = writer->AddSegment(
          storage::SegmentKind::kPartition, meta.id, /*strategy=*/0, payload);
      if (!status.ok()) return status;
    }
    {
      // Snapshot so a concurrent migration cannot free the index mid-write.
      const std::shared_ptr<index::PathIndex> index = meta.index.Acquire();
      if (index == nullptr) {
        return FailedPreconditionError("meta document " +
                                       std::to_string(meta.id) +
                                       " has no index to save");
      }
      storage::SegmentWriter seg;
      index::SaveIndexSegment(*index, seg);
      const std::vector<std::byte> payload = seg.Finish();
      const Status status = writer->AddSegment(
          storage::SegmentKind::kIndex, meta.id,
          static_cast<uint32_t>(index->kind()), payload);
      if (!status.ok()) return status;
    }
  }

  if (has_landmarks) {
    storage::SegmentWriter seg;
    landmarks->AppendArrays(seg);
    const std::vector<std::byte> payload = seg.Finish();
    const Status status =
        writer->AddSegment(storage::SegmentKind::kLandmarks, /*partition=*/0,
                           /*strategy=*/0, payload);
    if (!status.ok()) return status;
  }
  return writer->Finish();
}

StatusOr<std::unique_ptr<Flix>> Flix::LoadPaged(
    const std::string& path, const xml::Collection& collection,
    const LoadOptions& load_options) {
  Stopwatch watch;
  StatusOr<storage::PagedFileReader> opened =
      storage::PagedFileReader::Open(path, load_options.verify_checksums);
  if (!opened.ok()) return opened.status();
  auto mapping =
      std::make_shared<storage::PagedFileReader>(std::move(opened).value());
  const storage::Superblock& sb = mapping->superblock();

  if (sb.num_elements != collection.NumElements()) {
    return InvalidArgumentError(
        "index was built for a different collection (element count "
        "mismatch)");
  }

  FlixOptions options;
  options.config = static_cast<MdbConfig>(sb.config);
  options.iss_policy = static_cast<IssPolicy>(sb.iss_policy);
  options.partition_bound = sb.partition_bound;
  options.hopi_max_nodes = sb.hopi_max_nodes;
  options.hybrid_dense_link_threshold = sb.hybrid_dense_link_threshold;
  options.element_level_partitions = sb.element_level_partitions != 0;
  options.query_cache_capacity = sb.query_cache_capacity;
  // 0 = written before the landmark field existed; keep the default then.
  if (sb.landmark_count_plus_one > 0) {
    options.landmark_count = sb.landmark_count_plus_one - 1;
  }

  auto flix = std::unique_ptr<Flix>(new Flix(collection, options));
  flix->mapping_ = mapping;
  MetaDocumentSet& set = flix->set_;
  set.num_cross_links = sb.num_cross_links;

  {
    const storage::SegmentEntry* entry =
        mapping->Find(storage::SegmentKind::kFramework, 0);
    if (entry == nullptr) {
      return InvalidArgumentError("paged index: missing framework segment");
    }
    StatusOr<storage::SegmentView> view = mapping->View(*entry);
    if (!view.ok()) return view.status();
    const auto meta_of = view->GetArray<uint32_t>(kMetaOfNodeArray);
    if (!meta_of.ok()) return meta_of.status();
    const auto local_of = view->GetArray<NodeId>(kLocalOfNodeArray);
    if (!local_of.ok()) return local_of.status();
    if (meta_of.value().size() != sb.num_elements ||
        local_of.value().size() != sb.num_elements) {
      return InvalidArgumentError(
          "paged index: node-mapping size does not match the element count");
    }
    set.meta_of_node = storage::FlatVec<uint32_t>::FromView(meta_of.value());
    set.local_of_node = storage::FlatVec<NodeId>::FromView(local_of.value());
  }

  // Fill the docs vector in place: indexes loaded below keep references
  // into their meta document's graph, which must not move afterwards.
  set.docs.resize(sb.num_partitions);
  for (uint32_t m = 0; m < sb.num_partitions; ++m) {
    MetaDocument& meta = set.docs[m];
    meta.id = m;

    const storage::SegmentEntry* entry =
        mapping->Find(storage::SegmentKind::kPartition, m);
    if (entry == nullptr) {
      return InvalidArgumentError("paged index: missing partition segment " +
                                  std::to_string(m));
    }
    StatusOr<storage::SegmentView> view = mapping->View(*entry);
    if (!view.ok()) return view.status();

    const auto global_nodes = view->GetArray<NodeId>(kGlobalNodesArray);
    if (!global_nodes.ok()) return global_nodes.status();
    meta.global_nodes = storage::FlatVec<NodeId>::FromView(global_nodes.value());
    const auto link_sources = view->GetArray<NodeId>(kLinkSourcesArray);
    if (!link_sources.ok()) return link_sources.status();
    meta.link_sources = storage::FlatVec<NodeId>::FromView(link_sources.value());
    const auto entry_nodes = view->GetArray<NodeId>(kEntryNodesArray);
    if (!entry_nodes.ok()) return entry_nodes.status();
    meta.entry_nodes = storage::FlatVec<NodeId>::FromView(entry_nodes.value());

    StatusOr<storage::FlatMultiMap> link_targets = MultiMapFromSegment(
        *view, kLinkTargetKeys, kLinkTargetOffsets, kLinkTargetFlat);
    if (!link_targets.ok()) return link_targets.status();
    meta.link_targets = std::move(link_targets).value();
    StatusOr<storage::FlatMultiMap> entry_origins = MultiMapFromSegment(
        *view, kEntryOriginKeys, kEntryOriginOffsets, kEntryOriginFlat);
    if (!entry_origins.ok()) return entry_origins.status();
    meta.entry_origins = std::move(entry_origins).value();

    StatusOr<graph::Digraph> graph =
        graph::Digraph::FromSegment(*view, kGraphBase);
    if (!graph.ok()) return graph.status();
    meta.graph = std::move(graph).value();
    if (meta.graph.NumNodes() != meta.global_nodes.size()) {
      return InvalidArgumentError("paged index: partition " +
                                  std::to_string(m) +
                                  " graph/global-node size mismatch");
    }

    const storage::SegmentEntry* index_entry =
        mapping->Find(storage::SegmentKind::kIndex, m);
    if (index_entry == nullptr) {
      return InvalidArgumentError("paged index: missing index segment " +
                                  std::to_string(m));
    }
    StatusOr<storage::SegmentView> index_view = mapping->View(*index_entry);
    if (!index_view.ok()) return index_view.status();
    StatusOr<std::unique_ptr<index::PathIndex>> loaded =
        index::LoadIndexSegment(
            *index_view, static_cast<index::StrategyKind>(index_entry->strategy),
            meta.graph);
    if (!loaded.ok()) return loaded.status();
    meta.index = std::move(loaded).value();
    meta.index->RegisterLinkSources(meta.link_sources.span());
    meta.index->RegisterEntryNodes(meta.entry_nodes.span());
  }

  // Landmark segment (optional, advisory). Open skipped it in the up-front
  // checksum sweep, so verify here; any damage — bad checksum, malformed
  // directory, wrong shape — downgrades to blind point queries with a
  // warning rather than failing the load.
  if (const storage::SegmentEntry* landmark_entry =
          mapping->Find(storage::SegmentKind::kLandmarks, 0);
      landmark_entry != nullptr) {
    StatusOr<LandmarkCache> cache = [&]() -> StatusOr<LandmarkCache> {
      if (Status verified = mapping->VerifySegment(*landmark_entry);
          !verified.ok()) {
        return verified;
      }
      StatusOr<storage::SegmentView> view = mapping->View(*landmark_entry);
      if (!view.ok()) return view.status();
      return LandmarkCache::FromSegment(*view, sb.num_elements);
    }();
    if (cache.ok()) {
      set.landmarks.Replace(
          std::make_shared<const LandmarkCache>(std::move(cache).value()));
    } else {
      std::fprintf(stderr,
                   "flix: ignoring damaged landmark segment (%s); point "
                   "queries fall back to blind search\n",
                   cache.status().ToString().c_str());
    }
  }

  flix->FinishLoadedInstance(watch.ElapsedNanos());
  return flix;
}

}  // namespace flix::core
