// Index Builder (IB): instantiates the selected path index for every meta
// document (paper Section 4.2) and reports per-meta-document statistics.
#ifndef FLIX_FLIX_INDEX_BUILDER_H_
#define FLIX_FLIX_INDEX_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "flix/config.h"
#include "flix/meta_document.h"
#include "obs/profile.h"

namespace flix::core {

struct MetaIndexStats {
  uint32_t meta_id = 0;
  index::StrategyKind strategy = index::StrategyKind::kPpo;
  size_t nodes = 0;
  size_t edges = 0;
  size_t index_bytes = 0;
  double build_ms = 0;
  double select_ms = 0;  // ISS strategy-selection share of the build
};

// Builds an index for every meta document in `set` (ISS choice per
// document). On a PPO selection whose graph turns out not to be a forest
// (defensive; the MDB should prevent it) the builder falls back to HOPI.
// `profiler`, when non-null, is resized to the partition count and given
// each partition's identity (strategy, node count, build time), so query
// attribution can start from a described baseline.
StatusOr<std::vector<MetaIndexStats>> BuildIndexes(
    MetaDocumentSet& set, const FlixOptions& options,
    obs::WorkloadProfiler* profiler = nullptr);

}  // namespace flix::core

#endif  // FLIX_FLIX_INDEX_BUILDER_H_
