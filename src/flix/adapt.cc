#include "flix/adapt.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "graph/tree_utils.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace flix::core {
namespace {

using index::StrategyKind;

bool Eligible(StrategyKind kind) {
  // TC and the structure summaries are experiment baselines the Index
  // Builder never emits; leave a partition carrying one alone.
  return kind == StrategyKind::kPpo || kind == StrategyKind::kHopi ||
         kind == StrategyKind::kApex;
}

double ProjectedCost(const StrategyCosts& c, uint64_t probes, uint64_t pulls,
                     uint64_t nodes, double memory_weight) {
  return static_cast<double>(probes) * c.probe_ns +
         static_cast<double>(pulls) * c.pull_ns +
         memory_weight * c.bytes_per_node * static_cast<double>(nodes);
}

// Canonical (distance, node) order; strategies may break distance ties
// differently, so both sides sort before the diff.
void SortCanonical(std::vector<index::NodeDist>& v) {
  std::sort(v.begin(), v.end(),
            [](const index::NodeDist& a, const index::NodeDist& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.node < b.node;
            });
}

Status EnumerationDiff(const char* what, uint32_t partition, NodeId source,
                       std::vector<index::NodeDist> old_results,
                       std::vector<index::NodeDist> new_results) {
  SortCanonical(old_results);
  SortCanonical(new_results);
  if (old_results == new_results) return Status::Ok();
  return InternalError(
      "differential probe: partition " + std::to_string(partition) + " " +
      what + " from local node " + std::to_string(source) + " differ (" +
      std::to_string(old_results.size()) + " results vs " +
      std::to_string(new_results.size()) + " on the replacement)");
}

// Sampled old-vs-new diff: the replacement must answer exactly like the
// index it displaces. Runs the probes the PEE actually issues (point
// reachability/distance, tag-free enumeration, the ReachableAmong /
// AncestorsAmong frontier probes over this partition's link sets).
Status DifferentialProbe(const index::PathIndex& old_index,
                         const index::PathIndex& new_index,
                         const MetaDocument& doc,
                         const MigrationOptions& options) {
  const uint64_t n = doc.graph.NumNodes();
  if (n == 0) return Status::Ok();
  Rng rng(options.seed);
  for (size_t i = 0; i < options.sample_pairs; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    const NodeId v = static_cast<NodeId>(rng.Uniform(n));
    if (old_index.IsReachable(u, v) != new_index.IsReachable(u, v)) {
      return InternalError("differential probe: partition " +
                           std::to_string(doc.id) + " IsReachable(" +
                           std::to_string(u) + ", " + std::to_string(v) +
                           ") differs on the replacement");
    }
    if (old_index.DistanceBetween(u, v) != new_index.DistanceBetween(u, v)) {
      return InternalError("differential probe: partition " +
                           std::to_string(doc.id) + " DistanceBetween(" +
                           std::to_string(u) + ", " + std::to_string(v) +
                           ") differs on the replacement");
    }
  }
  for (size_t i = 0; i < options.sample_sources; ++i) {
    const NodeId u = static_cast<NodeId>(rng.Uniform(n));
    if (Status status =
            EnumerationDiff("descendants", doc.id, u, old_index.Descendants(u),
                            new_index.Descendants(u));
        !status.ok()) {
      return status;
    }
    if (!doc.link_sources.empty()) {
      if (Status status = EnumerationDiff(
              "ReachableAmong(L_i)", doc.id, u,
              old_index.ReachableAmong(u, doc.link_sources),
              new_index.ReachableAmong(u, doc.link_sources));
          !status.ok()) {
        return status;
      }
    }
    if (!doc.entry_nodes.empty()) {
      if (Status status = EnumerationDiff(
              "AncestorsAmong(entries)", doc.id, u,
              old_index.AncestorsAmong(u, doc.entry_nodes),
              new_index.AncestorsAmong(u, doc.entry_nodes));
          !status.ok()) {
        return status;
      }
    }
  }
  return Status::Ok();
}

}  // namespace

const StrategyCosts& CostModel::For(StrategyKind kind) const {
  switch (kind) {
    case StrategyKind::kPpo: return ppo;
    case StrategyKind::kApex: return apex;
    case StrategyKind::kHopi:
    case StrategyKind::kTransitiveClosure:
    case StrategyKind::kSummary:
      break;
  }
  return hopi;
}

CostModel CostModel::Measured() {
  // bench_strategy_costs output on the reference container (20k nodes, best
  // of 3 builds, half-reachable probe mix). Ratios are what matter, and they
  // order cleanly: a PPO interval test is near-free, a HOPI label join is
  // ~20x that, and an APEX probe — a pruned BFS that must actually walk
  // whenever the pair is reachable — is another ~15x. APEX is also by far
  // the most memory-hungry (~2.3 KB/node of summary + residual structure)
  // and the slowest to build; PPO is the cheapest on every axis, which is
  // why forest-shaped partitions migrate toward it under almost any
  // workload.
  CostModel model;
  model.ppo = {/*probe_ns=*/5, /*pull_ns=*/244, /*bytes_per_node=*/28,
               /*build_ns_per_node=*/202};
  model.hopi = {/*probe_ns=*/85, /*pull_ns=*/863, /*bytes_per_node=*/274,
                /*build_ns_per_node=*/1916};
  model.apex = {/*probe_ns=*/1171, /*pull_ns=*/912, /*bytes_per_node=*/2311,
                /*build_ns_per_node=*/3533};
  return model;
}

std::vector<Recommendation> RecommendStrategies(
    const Flix& flix, const obs::WorkloadProfile& profile,
    const CostModel& model, const AdaptOptions& options) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& recommended = reg.GetCounter(obs::names::kAdaptRecommended);
  obs::Counter& rejected = reg.GetCounter(obs::names::kAdaptRejectedHysteresis);

  const MetaDocumentSet& set = flix.meta_documents();
  std::vector<Recommendation> recs;
  recs.reserve(set.docs.size());
  for (uint32_t p = 0; p < set.docs.size(); ++p) {
    const MetaDocument& doc = set.docs[p];
    const std::shared_ptr<index::PathIndex> live = doc.index.Acquire();
    if (live == nullptr || !Eligible(live->kind())) continue;

    Recommendation rec;
    rec.partition = p;
    rec.current = live->kind();
    rec.nodes = doc.graph.NumNodes();
    uint64_t probes = 0;
    uint64_t pulls = 0;
    if (p < profile.partitions.size()) {
      const obs::PartitionProfile& pp = profile.partitions[p];
      rec.queries = pp.queries;
      probes = pp.index_probes;
      pulls = pp.cursor_pulls;
    }

    rec.current_cost_ns = ProjectedCost(model.For(rec.current), probes, pulls,
                                        rec.nodes, options.memory_weight);
    rec.best = rec.current;
    rec.best_cost_ns = rec.current_cost_ns;
    StrategyKind candidates[] = {StrategyKind::kHopi, StrategyKind::kApex,
                                 StrategyKind::kPpo};
    for (const StrategyKind candidate : candidates) {
      if (candidate == rec.current) continue;
      // PPO only indexes forests; everything else is graph-shape-agnostic.
      if (candidate == StrategyKind::kPpo && !graph::IsForest(doc.graph)) {
        continue;
      }
      const double cost = ProjectedCost(model.For(candidate), probes, pulls,
                                        rec.nodes, options.memory_weight);
      if (cost < rec.best_cost_ns) {
        rec.best = candidate;
        rec.best_cost_ns = cost;
      }
    }
    rec.rebuild_cost_ns = static_cast<double>(rec.nodes) *
                          model.For(rec.best).build_ns_per_node;

    if (rec.best != rec.current && rec.queries >= options.min_queries) {
      const double win = rec.current_cost_ns - rec.best_cost_ns;
      if (win > options.hysteresis * rec.rebuild_cost_ns) {
        rec.migrate = true;
        recommended.Increment();
      } else if (win > 0) {
        rec.rejected_hysteresis = true;
        rejected.Increment();
      }
    }
    recs.push_back(rec);
  }
  return recs;
}

std::string RecommendationsToText(const std::vector<Recommendation>& recs,
                                  size_t top_n) {
  // Hottest partitions (by projected cost of staying) first.
  std::vector<const Recommendation*> order;
  order.reserve(recs.size());
  for (const Recommendation& rec : recs) order.push_back(&rec);
  std::sort(order.begin(), order.end(),
            [](const Recommendation* a, const Recommendation* b) {
              if (a->current_cost_ns != b->current_cost_ns) {
                return a->current_cost_ns > b->current_cost_ns;
              }
              return a->partition < b->partition;
            });
  const size_t limit =
      top_n == 0 ? order.size() : std::min(top_n, order.size());

  std::ostringstream out;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%9s  %-8s  %-8s  %8s  %8s  %12s  %12s  %12s  %s\n",
                "partition", "current", "best", "nodes", "queries",
                "cost_cur_ns", "cost_best_ns", "rebuild_ns", "action");
  out << buf;
  size_t migrations = 0;
  for (size_t i = 0; i < limit; ++i) {
    const Recommendation& rec = *order[i];
    const char* action = rec.migrate               ? "migrate"
                         : rec.rejected_hysteresis ? "hold (hysteresis)"
                                                   : "keep";
    if (rec.migrate) ++migrations;
    std::snprintf(buf, sizeof buf,
                  "%9u  %-8s  %-8s  %8llu  %8llu  %12.0f  %12.0f  %12.0f  %s\n",
                  rec.partition, index::StrategyName(rec.current).data(),
                  index::StrategyName(rec.best).data(),
                  static_cast<unsigned long long>(rec.nodes),
                  static_cast<unsigned long long>(rec.queries),
                  rec.current_cost_ns, rec.best_cost_ns, rec.rebuild_cost_ns,
                  action);
    out << buf;
  }
  std::snprintf(buf, sizeof buf,
                "total: %zu partitions, %zu migrations recommended\n",
                recs.size(), migrations);
  out << buf;
  return out.str();
}

StrategyMigrator::StrategyMigrator(Flix& flix, CostModel model,
                                   AdaptOptions options,
                                   MigrationOptions migration)
    : flix_(flix),
      model_(model),
      options_(options),
      migration_(std::move(migration)) {}

StrategyMigrator::~StrategyMigrator() { Stop(); }

Status StrategyMigrator::Migrate(const Recommendation& rec) {
  if (!flix_.options().adaptive_iss) {
    return FailedPreconditionError(
        "adaptive ISS is disabled — enable FlixOptions::adaptive_iss or call "
        "Flix::SetAdaptiveIss(true)");
  }
  const MetaDocumentSet& set = flix_.meta_documents();
  if (rec.partition >= set.docs.size()) {
    return InvalidArgumentError("no such partition: " +
                                std::to_string(rec.partition));
  }
  if (!Eligible(rec.best)) {
    return InvalidArgumentError(
        "strategy not eligible for migration: " +
        std::string(index::StrategyName(rec.best)));
  }
  const MetaDocument& doc = set.docs[rec.partition];
  const std::shared_ptr<index::PathIndex> old_index = doc.index.Acquire();
  if (old_index == nullptr) {
    return InternalError("partition " + std::to_string(rec.partition) +
                         " has no index");
  }
  if (old_index->kind() == rec.best) return Status::Ok();

  // 1. Build the replacement off the query path. Queries keep running
  //    against the old index throughout.
  Stopwatch watch;
  std::shared_ptr<index::PathIndex> next;
  switch (rec.best) {
    case StrategyKind::kPpo: {
      StatusOr<std::unique_ptr<index::PpoIndex>> built =
          index::PpoIndex::Build(doc.graph);
      if (!built.ok()) return built.status();
      next = std::move(built).value();
      break;
    }
    case StrategyKind::kHopi:
      next = index::HopiIndex::Build(doc.graph);
      break;
    case StrategyKind::kApex:
      next = index::ApexIndex::Build(doc.graph);
      break;
    default:
      return InvalidArgumentError("strategy not eligible for migration");
  }
  const uint64_t build_ns = watch.ElapsedNanos();
  next->RegisterLinkSources(doc.link_sources);
  next->RegisterEntryNodes(doc.entry_nodes);
  if (migration_.replacement_hook) migration_.replacement_hook(*next);

  // 2. Validate: structural invariants first, then the sampled diff against
  //    the live index. Any failure discards the replacement — the old index
  //    never stopped serving.
  auto& reg = obs::MetricsRegistry::Global();
  if (Status status = next->Validate(doc.graph, migration_.validate);
      !status.ok()) {
    reg.GetCounter(obs::names::kAdaptValidationFailed).Increment();
    return InternalError("migration of partition " +
                         std::to_string(rec.partition) + " to " +
                         std::string(index::StrategyName(rec.best)) +
                         " rejected: " + status.message());
  }
  if (Status status = DifferentialProbe(*old_index, *next, doc, migration_);
      !status.ok()) {
    reg.GetCounter(obs::names::kAdaptValidationFailed).Increment();
    return status;
  }

  // 3. Publish. In-flight queries pinning the old index drain and release
  //    it; new Acquire() calls see the replacement.
  flix_.ReplacePartitionIndex(rec.partition, std::move(next), build_ns);
  reg.GetCounter(obs::names::kAdaptMigrated).Increment();
  return Status::Ok();
}

StatusOr<size_t> StrategyMigrator::RunOnce() {
  if (!flix_.options().adaptive_iss) {
    return FailedPreconditionError(
        "adaptive ISS is disabled — enable FlixOptions::adaptive_iss or call "
        "Flix::SetAdaptiveIss(true)");
  }
  const std::vector<Recommendation> recs =
      RecommendStrategies(flix_, flix_.Profile(), model_, options_);
  size_t migrated = 0;
  for (const Recommendation& rec : recs) {
    if (!rec.migrate) continue;
    if (Migrate(rec).ok()) ++migrated;
    // A validation failure is already counted; keep the loop going — the
    // rejected partition simply stays on its current index.
  }
  return migrated;
}

void StrategyMigrator::Start(std::chrono::milliseconds interval) {
  Stop();
  {
    MutexLock lock(mutex_);
    stop_ = false;
  }
  thread_ = std::thread([this, interval] {
    for (;;) {
      {
        // Sleep until the next tick or a Stop(); spurious wakeups re-check
        // the deadline.
        MutexLock lock(mutex_);
        const auto deadline = std::chrono::steady_clock::now() + interval;
        while (!stop_ && std::chrono::steady_clock::now() < deadline) {
          cv_.WaitUntil(mutex_, deadline);
        }
        if (stop_) return;
      }
      // Outside mutex_: a pass takes partition-handle/cache/metrics locks.
      (void)RunOnce();
    }
  });
}

void StrategyMigrator::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

}  // namespace flix::core
