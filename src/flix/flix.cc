#include "flix/flix.h"

#include "common/binary_io.h"
#include "common/stopwatch.h"
#include "flix/landmarks.h"
#include "flix/mdb.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace flix::core {
namespace {

constexpr uint32_t kFlixMagic = 0x464C4958;  // "FLIX"
// Version 2 added the landmark_count option and the trailing landmark cache
// block; version-1 files still load (empty cache, blind point queries).
constexpr uint32_t kFlixVersion = 2;

void SaveIdListMap(BinaryWriter& writer, const storage::FlatMultiMap& map) {
  // Flatten for a deterministic (ascending-key) byte stream; entry layout
  // matches the original per-pair WriteU32 + WriteVec format.
  std::vector<NodeId> keys;
  std::vector<uint64_t> offsets;
  std::vector<NodeId> flat;
  map.Flatten(keys, offsets, flat);
  writer.WriteU64(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    writer.WriteU32(keys[i]);
    writer.WriteSpan(std::span<const NodeId>(flat.data() + offsets[i],
                                             offsets[i + 1] - offsets[i]));
  }
}

storage::FlatMultiMap LoadIdListMap(BinaryReader& reader) {
  storage::FlatMultiMap map;
  const uint64_t size = reader.ReadU64();
  for (uint64_t i = 0; i < size && reader.ok(); ++i) {
    const NodeId key = reader.ReadU32();
    for (const NodeId value : reader.ReadVec<NodeId>()) map.Add(key, value);
  }
  return map;
}

}  // namespace

StatusOr<std::unique_ptr<Flix>> Flix::Build(const xml::Collection& collection,
                                            const FlixOptions& options) {
  Stopwatch watch;
  auto flix = std::unique_ptr<Flix>(new Flix(collection, options));
  // Root span of the build timeline; the MDB/ISS/IB spans nest under it
  // when a TraceCollector is enabled (`flixctl trace`).
  obs::TraceSpan build_span(nullptr, obs::names::kSpanBuild);
  build_span.AddAttr("config", MdbConfigName(options.config));

  const graph::Digraph graph = collection.BuildGraph();
  const std::vector<uint32_t> doc_of = collection.DocOfNode();
  std::vector<NodeId> doc_roots(collection.NumDocuments());
  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    doc_roots[d] = collection.GlobalId(d, 0);
  }

  MdbInput input;
  input.graph = &graph;
  input.doc_of = &doc_of;
  input.doc_roots = &doc_roots;
  auto& reg = obs::MetricsRegistry::Global();
  {
    obs::TraceSpan mdb_span(&reg.GetHistogram(obs::names::kBuildMdbNs),
                            obs::names::kSpanBuildMdb);
    flix->set_ = BuildMetaDocuments(input, options);
    flix->stats_.mdb_ms = static_cast<double>(mdb_span.ElapsedNanos()) / 1e6;
  }

  StatusOr<std::vector<MetaIndexStats>> stats =
      BuildIndexes(flix->set_, options, &flix->profiler_);
  if (!stats.ok()) return stats.status();
  flix->profiler_.SetEnabled(options.workload_profiling);

  if (options.landmark_count > 0) {
    obs::TraceSpan landmark_span(&reg.GetHistogram(obs::names::kBuildLandmarksNs),
                                 obs::names::kSpanBuildLandmarks);
    flix->set_.landmarks.Replace(std::make_shared<const LandmarkCache>(
        LandmarkCache::Build(graph, flix->set_, options.landmark_count)));
  }

  flix->pee_ =
      std::make_unique<PathExpressionEvaluator>(flix->set_, &flix->profiler_);
  if (options.query_cache_capacity > 0) {
    flix->cache_ = std::make_unique<QueryCache>(options.query_cache_capacity);
    flix->cache_->AttachProfiler(&flix->profiler_);
  }

  FlixStats& out = flix->stats_;
  out.per_meta = std::move(stats).value();
  out.num_meta_documents = flix->set_.docs.size();
  out.num_cross_links = flix->set_.num_cross_links;
  for (const MetaIndexStats& m : out.per_meta) {
    out.total_index_bytes += m.index_bytes;
    out.iss_ms += m.select_ms;
    out.index_build_ms += m.build_ms;
    switch (m.strategy) {
      case index::StrategyKind::kPpo: ++out.num_ppo; break;
      case index::StrategyKind::kHopi: ++out.num_hopi; break;
      case index::StrategyKind::kApex: ++out.num_apex; break;
      case index::StrategyKind::kTransitiveClosure: break;
      case index::StrategyKind::kSummary: break;
    }
  }
  out.build_ms = watch.ElapsedMillis();
  reg.GetHistogram(obs::names::kBuildTotalNs).Record(watch.ElapsedNanos());
  reg.GetCounter(obs::names::kBuildCount).Increment();
  return flix;
}

Status Flix::Save(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.WriteU32(kFlixMagic);
  writer.WriteU32(kFlixVersion);
  writer.WriteU32(static_cast<uint32_t>(options_.config));
  writer.WriteU32(static_cast<uint32_t>(options_.iss_policy));
  writer.WriteU64(options_.partition_bound);
  writer.WriteU64(options_.hopi_max_nodes);
  writer.WriteU64(options_.hybrid_dense_link_threshold);
  writer.WriteBool(options_.element_level_partitions);
  writer.WriteU64(options_.query_cache_capacity);
  writer.WriteU64(options_.landmark_count);
  writer.WriteU64(collection_.NumElements());
  writer.WriteU64(set_.docs.size());
  for (const MetaDocument& meta : set_.docs) {
    writer.WriteU32(meta.id);
    writer.WriteSpan(meta.global_nodes.span());
    meta.graph.Save(writer);
    writer.WriteSpan(meta.link_sources.span());
    SaveIdListMap(writer, meta.link_targets);
    writer.WriteSpan(meta.entry_nodes.span());
    SaveIdListMap(writer, meta.entry_origins);
    // Snapshot so a concurrent migration cannot free the index mid-write.
    const std::shared_ptr<index::PathIndex> index = meta.index.Acquire();
    index::SaveIndex(*index, writer);
  }
  // Snapshot (not Acquire): a cache disabled at run time still persists.
  const std::shared_ptr<const LandmarkCache> landmarks =
      set_.landmarks.Snapshot();
  const bool has_landmarks = landmarks != nullptr && !landmarks->empty();
  writer.WriteBool(has_landmarks);
  if (has_landmarks) landmarks->Save(writer);
  if (!writer.ok()) return InternalError("write failed while saving index");
  return Status::Ok();
}

StatusOr<std::unique_ptr<Flix>> Flix::Load(std::istream& in,
                                           const xml::Collection& collection) {
  Stopwatch watch;
  BinaryReader reader(in);
  if (reader.ReadU32() != kFlixMagic) {
    return InvalidArgumentError("not a FliX index file (bad magic)");
  }
  const uint32_t version = reader.ReadU32();
  if (version < 1 || version > kFlixVersion) {
    return InvalidArgumentError("unsupported FliX index version " +
                                std::to_string(version));
  }

  FlixOptions options;
  options.config = static_cast<MdbConfig>(reader.ReadU32());
  options.iss_policy = static_cast<IssPolicy>(reader.ReadU32());
  options.partition_bound = reader.ReadU64();
  options.hopi_max_nodes = reader.ReadU64();
  options.hybrid_dense_link_threshold = reader.ReadU64();
  options.element_level_partitions = reader.ReadBool();
  options.query_cache_capacity = reader.ReadU64();
  if (version >= 2) options.landmark_count = reader.ReadU64();
  auto flix = std::unique_ptr<Flix>(new Flix(collection, options));

  const uint64_t num_elements = reader.ReadU64();
  if (!reader.ok() || num_elements != collection.NumElements()) {
    return InvalidArgumentError(
        "index was built for a different collection (element count "
        "mismatch)");
  }

  const uint64_t num_metas = reader.ReadU64();
  if (!reader.ok()) return InvalidArgumentError("truncated FliX index file");
  MetaDocumentSet& set = flix->set_;
  // Fill the docs vector in place: indexes loaded below may keep references
  // into their meta document's graph, which must not move afterwards.
  set.docs.resize(num_metas);
  set.meta_of_node.assign(num_elements, 0);
  set.local_of_node.assign(num_elements, kInvalidNode);

  for (uint64_t m = 0; m < num_metas; ++m) {
    MetaDocument& meta = set.docs[m];
    meta.id = reader.ReadU32();
    if (meta.id != m) {
      // The PEE indexes docs[] by meta id; ids are positional by
      // construction, so a mismatch means the file is corrupt.
      return InvalidArgumentError("corrupt meta document ordering");
    }
    meta.global_nodes = reader.ReadVec<NodeId>();
    meta.graph = graph::Digraph::Load(reader);
    meta.link_sources = reader.ReadVec<NodeId>();
    meta.link_targets = LoadIdListMap(reader);
    meta.entry_nodes = reader.ReadVec<NodeId>();
    meta.entry_origins = LoadIdListMap(reader);
    if (!reader.ok() ||
        meta.graph.NumNodes() != meta.global_nodes.size()) {
      return InvalidArgumentError("corrupt meta document " +
                                  std::to_string(m));
    }
    // Link bookkeeping must stay in range: local sources/targets index the
    // meta graph, global targets/origins index meta_of_node at query time.
    const NodeId local_count = static_cast<NodeId>(meta.graph.NumNodes());
    for (const NodeId src : meta.link_sources) {
      if (src >= local_count) {
        return InvalidArgumentError("corrupt link source");
      }
    }
    for (const NodeId entry : meta.entry_nodes) {
      if (entry >= local_count) {
        return InvalidArgumentError("corrupt entry node");
      }
    }
    bool links_ok = true;
    for (const auto* map : {&meta.link_targets, &meta.entry_origins}) {
      map->ForEach([&](NodeId local, std::span<const NodeId> globals) {
        if (local >= local_count) links_ok = false;
        for (const NodeId global : globals) {
          if (global >= num_elements) links_ok = false;
        }
      });
    }
    if (!links_ok) {
      return InvalidArgumentError("corrupt link map entry");
    }
    StatusOr<std::unique_ptr<index::PathIndex>> loaded =
        index::LoadIndex(reader, meta.graph);
    if (!loaded.ok()) return loaded.status();
    meta.index = std::move(loaded).value();
    meta.index->RegisterLinkSources(meta.link_sources);
    meta.index->RegisterEntryNodes(meta.entry_nodes);

    for (NodeId local = 0; local < meta.global_nodes.size(); ++local) {
      const NodeId global = meta.global_nodes[local];
      if (global >= num_elements) {
        return InvalidArgumentError("corrupt global node id");
      }
      set.meta_of_node[global] = meta.id;
      set.local_of_node[global] = local;
    }
    set.num_cross_links += meta.link_targets.TotalValues();
  }

  if (version >= 2 && reader.ReadBool()) {
    StatusOr<LandmarkCache> cache = LandmarkCache::Load(reader, num_elements);
    if (!cache.ok()) return cache.status();
    set.landmarks.Replace(
        std::make_shared<const LandmarkCache>(std::move(cache).value()));
  }

  flix->FinishLoadedInstance(watch.ElapsedNanos());
  return flix;
}

void Flix::FinishLoadedInstance(uint64_t load_ns) {
  // Loaded indexes carry no build timings, but the partition identities
  // (strategy, node counts) still seed the profiler so query attribution
  // starts from a described baseline.
  profiler_.Resize(set_.docs.size());
  for (const MetaDocument& meta : set_.docs) {
    profiler_.SetPartitionInfo(meta.id,
                               index::StrategyName(meta.index->kind()),
                               meta.graph.NumNodes(), /*build_ns=*/0);
  }
  profiler_.SetEnabled(options_.workload_profiling);

  pee_ = std::make_unique<PathExpressionEvaluator>(set_, &profiler_);
  if (options_.query_cache_capacity > 0) {
    cache_ = std::make_unique<QueryCache>(options_.query_cache_capacity);
    cache_->AttachProfiler(&profiler_);
  }

  stats_.num_meta_documents = set_.docs.size();
  stats_.num_cross_links = set_.num_cross_links;
  for (const MetaDocument& meta : set_.docs) {
    MetaIndexStats s;
    s.meta_id = meta.id;
    s.strategy = meta.index->kind();
    s.nodes = meta.graph.NumNodes();
    s.edges = meta.graph.NumEdges();
    s.index_bytes = meta.index->MemoryBytes();
    stats_.per_meta.push_back(s);
    stats_.total_index_bytes += s.index_bytes;
    switch (s.strategy) {
      case index::StrategyKind::kPpo: ++stats_.num_ppo; break;
      case index::StrategyKind::kHopi: ++stats_.num_hopi; break;
      case index::StrategyKind::kApex: ++stats_.num_apex; break;
      case index::StrategyKind::kTransitiveClosure: break;
      case index::StrategyKind::kSummary: break;
    }
  }
  stats_.build_ms = static_cast<double>(load_ns) / 1e6;  // load, not build
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetHistogram(obs::names::kLoadTotalNs).Record(static_cast<int64_t>(load_ns));
  reg.GetCounter(obs::names::kLoadCount).Increment();
}

TagId Flix::LookupTag(std::string_view name) const {
  return collection_.pool().Lookup(name);
}

void Flix::FindDescendantsByName(NodeId start, std::string_view name,
                                 const QueryOptions& options,
                                 const ResultSink& sink) const {
  const TagId tag = LookupTag(name);
  if (tag == kInvalidTag) return;
  QueryStats stats;
  pee_->FindDescendantsByTag(start, tag, options, sink, &stats);
  AccumulateStats(stats);
}

std::vector<Result> Flix::FindDescendantsByName(
    NodeId start, std::string_view name, const QueryOptions& options) const {
  std::vector<Result> results;
  const TagId tag = LookupTag(name);
  if (tag == kInvalidTag) return results;

  // Only unconstrained queries are cacheable: limits change the result list.
  const bool cacheable = cache_ != nullptr && options.max_distance < 0 &&
                         options.max_results < 0 && !options.exact;
  // Cache traffic is attributed to the start element's partition — the meta
  // document whose queries the cache is absorbing.
  const uint32_t partition = start < set_.meta_of_node.size()
                                 ? set_.meta_of_node[start]
                                 : QueryCache::kNoPartition;
  if (cacheable && cache_->Lookup(start, tag, &results, partition)) {
    return results;
  }

  QueryStats stats;
  pee_->FindDescendantsByTag(start, tag, options,
                             [&](const Result& r) {
                               results.push_back(r);
                               return true;
                             },
                             &stats);
  AccumulateStats(stats);
  if (cacheable) cache_->Insert(start, tag, results);
  return results;
}

std::vector<Result> Flix::FindAncestorsByName(
    NodeId start, std::string_view name, const QueryOptions& options) const {
  std::vector<Result> results;
  const TagId tag = LookupTag(name);
  if (tag == kInvalidTag) return results;
  QueryStats stats;
  pee_->FindAncestorsByTag(start, tag, options,
                           [&](const Result& r) {
                             results.push_back(r);
                             return true;
                           },
                           &stats);
  AccumulateStats(stats);
  return results;
}

std::vector<Result> Flix::EvaluateTypeQuery(std::string_view start_name,
                                            std::string_view result_name,
                                            const QueryOptions& options) const {
  std::vector<Result> results;
  const TagId start_tag = LookupTag(start_name);
  const TagId result_tag = LookupTag(result_name);
  if (start_tag == kInvalidTag || result_tag == kInvalidTag) return results;
  QueryStats stats;
  pee_->EvaluateTypeQuery(start_tag, result_tag, options,
                          [&](const Result& r) {
                            results.push_back(r);
                            return true;
                          },
                          &stats);
  AccumulateStats(stats);
  return results;
}

void Flix::AccumulateStats(const QueryStats& stats) const {
  MutexLock lock(stats_mutex_);
  cumulative_stats_.entries_processed += stats.entries_processed;
  cumulative_stats_.entries_dominated += stats.entries_dominated;
  cumulative_stats_.links_followed += stats.links_followed;
  cumulative_stats_.index_probes += stats.index_probes;
  cumulative_stats_.cursors_opened += stats.cursors_opened;
  cumulative_stats_.cursor_pulls += stats.cursor_pulls;
  cumulative_stats_.cursor_saved += stats.cursor_saved;
  ++num_queries_;
}

QueryStats Flix::CumulativeQueryStats() const {
  MutexLock lock(stats_mutex_);
  return cumulative_stats_;
}

obs::MetricsSnapshot Flix::MetricsSnapshot() const {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge(obs::names::kBuildMetaDocuments)
      .Set(static_cast<int64_t>(stats_.num_meta_documents));
  reg.GetGauge(obs::names::kBuildCrossLinks)
      .Set(static_cast<int64_t>(stats_.num_cross_links));
  reg.GetGauge(obs::names::kBuildIndexBytes)
      .Set(static_cast<int64_t>(stats_.total_index_bytes));
  reg.GetGauge(obs::names::kBuildStrategyPpo)
      .Set(static_cast<int64_t>(stats_.num_ppo));
  reg.GetGauge(obs::names::kBuildStrategyHopi)
      .Set(static_cast<int64_t>(stats_.num_hopi));
  reg.GetGauge(obs::names::kBuildStrategyApex)
      .Set(static_cast<int64_t>(stats_.num_apex));
  if (cache_ != nullptr) {
    const QueryCacheStats cache = cache_->Stats();
    reg.GetGauge(obs::names::kCacheSize).Set(static_cast<int64_t>(cache.size));
    reg.GetGauge(obs::names::kCacheCapacity)
        .Set(static_cast<int64_t>(cache.capacity));
    reg.GetGauge(obs::names::kCacheHits).Set(static_cast<int64_t>(cache.hits));
    reg.GetGauge(obs::names::kCacheMisses).Set(static_cast<int64_t>(cache.misses));
    reg.GetGauge(obs::names::kCacheInsertions)
        .Set(static_cast<int64_t>(cache.insertions));
    reg.GetGauge(obs::names::kCacheOverwrites)
        .Set(static_cast<int64_t>(cache.overwrites));
    reg.GetGauge(obs::names::kCacheEvictions)
        .Set(static_cast<int64_t>(cache.evictions));
  }
  {
    MutexLock lock(stats_mutex_);
    reg.GetGauge(obs::names::kQueryFacadeCount)
        .Set(static_cast<int64_t>(num_queries_));
  }
  // Touch the streaming-cursor counters so they appear in the snapshot even
  // before the first query registers them.
  reg.GetCounter(obs::names::kQueryCursorOpened);
  reg.GetCounter(obs::names::kQueryCursorPulled);
  reg.GetCounter(obs::names::kQueryCursorSaved);
  // Likewise the correctness-tooling counters (see src/check/), so
  // `flixctl stats` shows the check totals even when no check ran yet.
  reg.GetCounter(obs::names::kCheckValidations);
  reg.GetCounter(obs::names::kCheckViolations);
  reg.GetCounter(obs::names::kCheckOracleQueries);
  // And the adaptive-ISS counters (see src/flix/adapt.h).
  reg.GetCounter(obs::names::kAdaptRecommended);
  reg.GetCounter(obs::names::kAdaptMigrated);
  reg.GetCounter(obs::names::kAdaptRejectedHysteresis);
  reg.GetCounter(obs::names::kAdaptValidationFailed);
  // Landmark / guided-search series (see src/flix/landmarks.h).
  reg.GetCounter(obs::names::kQueryPointPops);
  reg.GetCounter(obs::names::kGuidedPrunedEntries);
  reg.GetCounter(obs::names::kGuidedHeuristicHits);
  reg.GetCounter(obs::names::kGuidedStaleReads);
  {
    const std::shared_ptr<const LandmarkCache> landmarks =
        set_.landmarks.Snapshot();
    const bool present = landmarks != nullptr && !landmarks->empty();
    reg.GetGauge(obs::names::kLandmarksCount)
        .Set(present ? static_cast<int64_t>(landmarks->num_landmarks()) : 0);
    reg.GetGauge(obs::names::kLandmarksGeneration)
        .Set(present ? static_cast<int64_t>(landmarks->generation()) : 0);
  }
  return reg.Snapshot();
}

Status Flix::Validate(const index::ValidateOptions& options) const {
  const size_t n = collection_.NumElements();
  if (set_.meta_of_node.size() != n || set_.local_of_node.size() != n) {
    return InternalError("node mapping covers " +
                         std::to_string(set_.meta_of_node.size()) +
                         " nodes, the collection has " + std::to_string(n));
  }
  size_t covered = 0;
  for (uint32_t m = 0; m < set_.docs.size(); ++m) {
    const MetaDocument& doc = set_.docs[m];
    for (NodeId local = 0; local < doc.global_nodes.size(); ++local) {
      const NodeId g = doc.global_nodes[local];
      if (g >= n || set_.meta_of_node[g] != m ||
          set_.local_of_node[g] != local) {
        return InternalError("meta document " + std::to_string(m) +
                             " local node " + std::to_string(local) +
                             " claims global node " + std::to_string(g) +
                             ", whose mapping disagrees");
      }
    }
    covered += doc.global_nodes.size();
  }
  if (covered != n) {
    return InternalError("meta documents hold " + std::to_string(covered) +
                         " elements, the collection has " + std::to_string(n));
  }
  for (uint32_t m = 0; m < set_.docs.size(); ++m) {
    const MetaDocument& doc = set_.docs[m];
    const std::shared_ptr<index::PathIndex> index = doc.index.Acquire();
    if (index == nullptr) {
      return InternalError("meta document " + std::to_string(m) +
                           " has no index");
    }
    if (Status status = index->Validate(doc.graph, options); !status.ok()) {
      return InternalError("meta document " + std::to_string(m) + " [" +
                           std::string(index->name()) + "] " +
                           status.message());
    }
  }
  return Status::Ok();
}

size_t Flix::RebuildLandmarks() {
  auto& reg = obs::MetricsRegistry::Global();
  obs::TraceSpan span(&reg.GetHistogram(obs::names::kBuildLandmarksNs),
                      obs::names::kSpanLandmarksRebuild);
  const graph::Digraph graph = collection_.BuildGraph();
  LandmarkCache next = LandmarkCache::Build(graph, set_, options_.landmark_count);
  const std::shared_ptr<const LandmarkCache> old = set_.landmarks.Snapshot();
  next.set_generation((old != nullptr ? old->generation() : 0) + 1);
  const size_t stale = set_.landmarks.Replace(
      std::make_shared<const LandmarkCache>(std::move(next)));
  reg.GetCounter(obs::names::kGuidedStaleReads).Add(stale);
  return stale;
}

void Flix::ReplacePartitionIndex(uint32_t partition,
                                 std::shared_ptr<index::PathIndex> index,
                                 uint64_t build_ns) {
  MetaDocument& meta = set_.docs[partition];
  // Identity first: by the time a query attributes work to the new index,
  // the profiler already names the strategy it ran against.
  profiler_.SetPartitionInfo(partition, index::StrategyName(index->kind()),
                             meta.graph.NumNodes(), build_ns);
  meta.index.Replace(std::move(index));
}

Flix::TuningAdvice Flix::RecommendReconfiguration(
    double max_links_per_query) const {
  MutexLock lock(stats_mutex_);
  TuningAdvice advice;
  if (num_queries_ == 0) return advice;
  advice.links_per_query =
      static_cast<double>(cumulative_stats_.links_followed) /
      static_cast<double>(num_queries_);
  if (advice.links_per_query > max_links_per_query) {
    advice.rebuild_recommended = true;
    advice.reason =
        "queries follow " + std::to_string(advice.links_per_query) +
        " links on average; rebuild with coarser meta documents (larger "
        "partition_bound or a HOPI-leaning configuration)";
  }
  return advice;
}

std::string_view MdbConfigName(MdbConfig config) {
  switch (config) {
    case MdbConfig::kNaive: return "Naive";
    case MdbConfig::kMaximalPpo: return "MaximalPPO";
    case MdbConfig::kUnconnectedHopi: return "UnconnectedHOPI";
    case MdbConfig::kHybrid: return "Hybrid";
  }
  return "UNKNOWN";
}

}  // namespace flix::core
