#include "flix/index_builder.h"

#include "common/stopwatch.h"
#include "flix/iss.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"

namespace flix::core {

StatusOr<std::vector<MetaIndexStats>> BuildIndexes(MetaDocumentSet& set,
                                                   const FlixOptions& options) {
  std::vector<MetaIndexStats> stats;
  stats.reserve(set.docs.size());
  for (MetaDocument& meta : set.docs) {
    MetaIndexStats s;
    s.meta_id = meta.id;
    s.nodes = meta.graph.NumNodes();
    s.edges = meta.graph.NumEdges();

    index::StrategyKind kind = SelectStrategy(meta.graph, options);
    Stopwatch watch;
    switch (kind) {
      case index::StrategyKind::kPpo: {
        auto built = index::PpoIndex::Build(meta.graph);
        if (built.ok()) {
          meta.index = std::move(built).value();
          break;
        }
        // Defensive fallback: index the graph as-is with HOPI.
        kind = index::StrategyKind::kHopi;
        [[fallthrough]];
      }
      case index::StrategyKind::kHopi:
        meta.index = index::HopiIndex::Build(meta.graph);
        break;
      case index::StrategyKind::kApex:
        meta.index = index::ApexIndex::Build(meta.graph);
        break;
      case index::StrategyKind::kTransitiveClosure:
      case index::StrategyKind::kSummary:
        return InvalidArgumentError(
            std::string(index::StrategyName(kind)) +
            " is a baseline/extension, not an ISS choice");
    }
    // Let the strategy precompute filtered structures for the per-entry
    // L(a) probes (Section 4.2's L_i lookup).
    meta.index->RegisterLinkSources(meta.link_sources);
    meta.index->RegisterEntryNodes(meta.entry_nodes);

    s.strategy = kind;
    s.build_ms = watch.ElapsedMillis();
    s.index_bytes = meta.index->MemoryBytes();
    stats.push_back(s);
  }
  return stats;
}

}  // namespace flix::core
