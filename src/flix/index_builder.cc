#include "flix/index_builder.h"

#include "common/stopwatch.h"
#include "flix/iss.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace flix::core {
namespace {

// Per-strategy build-time histogram (one sample per meta document), so a
// snapshot shows where build time concentrates — e.g. HOPI's superlinear
// 2-hop construction dominating a hybrid build.
obs::Histogram& StrategyBuildHistogram(index::StrategyKind kind) {
  auto& reg = obs::MetricsRegistry::Global();
  switch (kind) {
    case index::StrategyKind::kPpo:
      return reg.GetHistogram(obs::names::kBuildIbPpoNs);
    case index::StrategyKind::kHopi:
      return reg.GetHistogram(obs::names::kBuildIbHopiNs);
    case index::StrategyKind::kApex:
      return reg.GetHistogram(obs::names::kBuildIbApexNs);
    default:
      return reg.GetHistogram(obs::names::kBuildIbOtherNs);
  }
}

}  // namespace

StatusOr<std::vector<MetaIndexStats>> BuildIndexes(
    MetaDocumentSet& set, const FlixOptions& options,
    obs::WorkloadProfiler* profiler) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram& iss_hist = reg.GetHistogram(obs::names::kBuildIssNs);
  if (profiler != nullptr) profiler->Resize(set.docs.size());
  std::vector<MetaIndexStats> stats;
  stats.reserve(set.docs.size());
  for (MetaDocument& meta : set.docs) {
    MetaIndexStats s;
    s.meta_id = meta.id;
    s.nodes = meta.graph.NumNodes();
    s.edges = meta.graph.NumEdges();

    Stopwatch select_watch;
    index::StrategyKind kind;
    {
      obs::TraceSpan iss_span(nullptr, obs::names::kSpanIss);
      iss_span.AddAttr("partition", static_cast<int64_t>(meta.id));
      kind = SelectStrategy(meta.graph, options);
      if (iss_span.Collecting()) {
        iss_span.AddAttr("strategy", index::StrategyName(kind));
      }
    }
    const uint64_t select_ns = select_watch.ElapsedNanos();
    iss_hist.Record(select_ns);
    s.select_ms = static_cast<double>(select_ns) / 1e6;
    Stopwatch watch;
    // The histogram is chosen *after* the switch: the PPO branch may fall
    // back to HOPI, and the sample belongs to the strategy actually built.
    obs::TraceSpan ib_span(nullptr, obs::names::kSpanIb);
    ib_span.AddAttr("partition", static_cast<int64_t>(meta.id));
    switch (kind) {
      case index::StrategyKind::kPpo: {
        auto built = index::PpoIndex::Build(meta.graph);
        if (built.ok()) {
          meta.index = std::move(built).value();
          break;
        }
        // Defensive fallback: index the graph as-is with HOPI.
        kind = index::StrategyKind::kHopi;
        [[fallthrough]];
      }
      case index::StrategyKind::kHopi:
        meta.index = index::HopiIndex::Build(meta.graph);
        break;
      case index::StrategyKind::kApex:
        meta.index = index::ApexIndex::Build(meta.graph);
        break;
      case index::StrategyKind::kTransitiveClosure:
      case index::StrategyKind::kSummary:
        return InvalidArgumentError(
            std::string(index::StrategyName(kind)) +
            " is a baseline/extension, not an ISS choice");
    }
    if (ib_span.Collecting()) {
      ib_span.AddAttr("strategy", index::StrategyName(kind));
    }
    ib_span.Finish();
    // Let the strategy precompute filtered structures for the per-entry
    // L(a) probes (Section 4.2's L_i lookup).
    meta.index->RegisterLinkSources(meta.link_sources);
    meta.index->RegisterEntryNodes(meta.entry_nodes);

    s.strategy = kind;
    const uint64_t build_ns = watch.ElapsedNanos();
    StrategyBuildHistogram(kind).Record(build_ns);
    s.build_ms = static_cast<double>(build_ns) / 1e6;
    s.index_bytes = meta.index->MemoryBytes();
    if (profiler != nullptr) {
      profiler->SetPartitionInfo(meta.id, index::StrategyName(kind), s.nodes,
                                 build_ns);
    }
    stats.push_back(s);
  }
  return stats;
}

}  // namespace flix::core
