#include "flix/landmarks.h"

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/traversal.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "xml/collection.h"

namespace flix::core {
namespace {

// Array ids inside the kLandmarks segment.
constexpr uint32_t kArrayLandmarkNodes = 1;  // NodeId per landmark
constexpr uint32_t kArrayToLandmark = 2;     // uint16 [n * k + l]
constexpr uint32_t kArrayFromLandmark = 3;   // uint16 [n * k + l]
constexpr uint32_t kArrayMeta = 4;           // uint64 [nodes, k, generation]

constexpr uint32_t kNoPartition = std::numeric_limits<uint32_t>::max();

// Farthest-point seeding over the partition quotient graph: start from the
// largest partition, then repeatedly take the partition farthest (in
// undirected quotient hops; unreached components count as infinitely far)
// from everything chosen so far. Returns chosen partition ids.
std::vector<uint32_t> SelectLandmarkPartitions(const MetaDocumentSet& set,
                                               size_t count) {
  const size_t num_parts = set.docs.size();
  std::vector<uint32_t> chosen;
  if (num_parts == 0 || count == 0) return chosen;

  // Undirected quotient adjacency over cross links. FlatMultiMap::ForEach
  // iterates in hash order for owned maps, so sort + dedupe for determinism.
  std::vector<std::vector<uint32_t>> adj(num_parts);
  for (uint32_t i = 0; i < num_parts; ++i) {
    set.docs[i].link_targets.ForEach(
        [&](NodeId, std::span<const NodeId> targets) {
          for (const NodeId target : targets) {
            const uint32_t j = set.meta_of_node[target];
            if (j == i) continue;
            adj[i].push_back(j);
            adj[j].push_back(i);
          }
        });
  }
  for (std::vector<uint32_t>& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }

  const auto eligible = [&](uint32_t p) { return set.docs[p].NumNodes() > 0; };

  uint32_t seed = kNoPartition;
  for (uint32_t i = 0; i < num_parts; ++i) {
    if (!eligible(i)) continue;
    if (seed == kNoPartition ||
        set.docs[i].NumNodes() > set.docs[seed].NumNodes()) {
      seed = i;
    }
  }
  if (seed == kNoPartition) return chosen;

  constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> dist(num_parts, kInf);  // hops to nearest chosen
  const auto relax_from = [&](uint32_t source) {
    std::vector<uint32_t> frontier{source};
    dist[source] = 0;
    uint32_t depth = 0;
    while (!frontier.empty()) {
      ++depth;
      std::vector<uint32_t> next;
      for (const uint32_t p : frontier) {
        for (const uint32_t q : adj[p]) {
          if (dist[q] <= depth) continue;
          dist[q] = depth;
          next.push_back(q);
        }
      }
      frontier = std::move(next);
    }
  };

  chosen.push_back(seed);
  relax_from(seed);
  while (chosen.size() < count) {
    uint32_t best = kNoPartition;
    for (uint32_t i = 0; i < num_parts; ++i) {
      if (!eligible(i) || dist[i] == 0) continue;  // dist 0 = already chosen
      if (best == kNoPartition || dist[i] > dist[best]) best = i;
    }
    if (best == kNoPartition) break;  // every eligible partition is chosen
    chosen.push_back(best);
    relax_from(best);
  }
  return chosen;
}

}  // namespace

LandmarkCache LandmarkCache::Build(const graph::Digraph& graph,
                                   const MetaDocumentSet& set,
                                   size_t landmark_count) {
  LandmarkCache cache;
  cache.num_nodes_ = graph.NumNodes();
  if (cache.num_nodes_ == 0) return cache;

  const std::vector<uint32_t> partitions =
      SelectLandmarkPartitions(set, landmark_count);
  if (partitions.empty()) return cache;

  // Representative element: the partition's first member, a stable pick
  // under the MDB's deterministic node ordering.
  std::vector<NodeId> reps;
  reps.reserve(partitions.size());
  for (const uint32_t p : partitions) {
    reps.push_back(set.docs[p].global_nodes[0]);
  }

  const size_t k = reps.size();
  std::vector<uint16_t> to_land(cache.num_nodes_ * k, kFar);
  std::vector<uint16_t> from_land(cache.num_nodes_ * k, kFar);
  for (size_t l = 0; l < k; ++l) {
    // Backward BFS from the landmark = distances TO it; forward = FROM it.
    const std::vector<Distance> to =
        graph::BfsDistances(graph, reps[l], graph::Direction::kBackward);
    const std::vector<Distance> from =
        graph::BfsDistances(graph, reps[l], graph::Direction::kForward);
    for (size_t n = 0; n < cache.num_nodes_; ++n) {
      to_land[n * k + l] = Pack(to[n]);
      from_land[n * k + l] = Pack(from[n]);
    }
  }
  cache.landmarks_ = std::move(reps);
  cache.to_land_ = std::move(to_land);
  cache.from_land_ = std::move(from_land);
  return cache;
}

void LandmarkCache::Save(BinaryWriter& writer) const {
  writer.WriteU64(num_nodes_);
  writer.WriteU64(landmarks_.size());
  writer.WriteU64(generation_);
  writer.WriteSpan(landmarks_.span());
  writer.WriteSpan(to_land_.span());
  writer.WriteSpan(from_land_.span());
}

StatusOr<LandmarkCache> LandmarkCache::Load(BinaryReader& reader,
                                            size_t expected_nodes) {
  LandmarkCache cache;
  cache.num_nodes_ = reader.ReadU64();
  const uint64_t k = reader.ReadU64();
  cache.generation_ = reader.ReadU64();
  cache.landmarks_ = reader.ReadVec<NodeId>();
  cache.to_land_ = reader.ReadVec<uint16_t>();
  cache.from_land_ = reader.ReadVec<uint16_t>();
  if (!reader.ok()) {
    return InvalidArgumentError("landmark cache: truncated stream");
  }
  if (cache.num_nodes_ != expected_nodes || cache.landmarks_.size() != k ||
      cache.to_land_.size() != cache.num_nodes_ * k ||
      cache.from_land_.size() != cache.num_nodes_ * k) {
    return InvalidArgumentError("landmark cache: shape mismatch");
  }
  for (const NodeId landmark : cache.landmarks_) {
    if (static_cast<size_t>(landmark) >= cache.num_nodes_) {
      return InvalidArgumentError("landmark cache: landmark id out of range");
    }
  }
  return cache;
}

void LandmarkCache::AppendArrays(storage::SegmentWriter& writer) const {
  writer.Add(kArrayLandmarkNodes, landmarks_.span());
  writer.Add(kArrayToLandmark, to_land_.span());
  writer.Add(kArrayFromLandmark, from_land_.span());
  const std::vector<uint64_t> meta = {num_nodes_, landmarks_.size(),
                                      generation_};
  writer.Add(kArrayMeta, meta);
}

StatusOr<LandmarkCache> LandmarkCache::FromSegment(
    const storage::SegmentView& view, size_t expected_nodes) {
  StatusOr<std::span<const uint64_t>> meta = view.GetArray<uint64_t>(kArrayMeta);
  if (!meta.ok()) return meta.status();
  if (meta->size() != 3) {
    return InvalidArgumentError("landmark segment: malformed meta array");
  }
  StatusOr<std::span<const NodeId>> nodes =
      view.GetArray<NodeId>(kArrayLandmarkNodes);
  if (!nodes.ok()) return nodes.status();
  StatusOr<std::span<const uint16_t>> to =
      view.GetArray<uint16_t>(kArrayToLandmark);
  if (!to.ok()) return to.status();
  StatusOr<std::span<const uint16_t>> from =
      view.GetArray<uint16_t>(kArrayFromLandmark);
  if (!from.ok()) return from.status();

  const uint64_t num_nodes = (*meta)[0];
  const uint64_t k = (*meta)[1];
  if (num_nodes != expected_nodes || nodes->size() != k ||
      to->size() != num_nodes * k || from->size() != num_nodes * k) {
    return InvalidArgumentError("landmark segment: shape mismatch");
  }
  for (const NodeId landmark : *nodes) {
    if (static_cast<uint64_t>(landmark) >= num_nodes) {
      return InvalidArgumentError("landmark segment: landmark id out of range");
    }
  }
  LandmarkCache cache;
  cache.num_nodes_ = num_nodes;
  cache.generation_ = (*meta)[2];
  cache.landmarks_ = storage::FlatVec<NodeId>::FromView(*nodes);
  cache.to_land_ = storage::FlatVec<uint16_t>::FromView(*to);
  cache.from_land_ = storage::FlatVec<uint16_t>::FromView(*from);
  return cache;
}

Status LandmarkCache::Validate(const graph::Digraph& graph,
                               size_t sample_nodes, uint64_t seed) const {
  if (empty()) return Status::Ok();
  if (num_nodes_ != graph.NumNodes()) {
    return InvalidArgumentError(
        "landmark cache covers " + std::to_string(num_nodes_) +
        " nodes, graph has " + std::to_string(graph.NumNodes()));
  }
  Rng rng(seed);
  std::vector<NodeId> sample;
  if (sample_nodes >= num_nodes_) {
    sample.resize(num_nodes_);
    for (size_t n = 0; n < num_nodes_; ++n) sample[n] = NodeId(n);
  } else {
    sample.reserve(sample_nodes);
    for (size_t i = 0; i < sample_nodes; ++i) {
      sample.push_back(NodeId(rng.Uniform(num_nodes_)));
    }
  }
  const size_t k = landmarks_.size();
  for (size_t l = 0; l < k; ++l) {
    const std::vector<Distance> to =
        graph::BfsDistances(graph, landmarks_[l], graph::Direction::kBackward);
    const std::vector<Distance> from =
        graph::BfsDistances(graph, landmarks_[l], graph::Direction::kForward);
    for (const NodeId n : sample) {
      if (to_land_[size_t{n} * k + l] != Pack(to[n])) {
        return InternalError(
            "landmark " + std::to_string(l) + " (element " +
            std::to_string(landmarks_[l]) + "): stored to-distance for node " +
            std::to_string(n) + " disagrees with BFS");
      }
      if (from_land_[size_t{n} * k + l] != Pack(from[n])) {
        return InternalError(
            "landmark " + std::to_string(l) + " (element " +
            std::to_string(landmarks_[l]) +
            "): stored from-distance for node " + std::to_string(n) +
            " disagrees with BFS");
      }
    }
  }
  return Status::Ok();
}

LandmarkRefresher::LandmarkRefresher(const xml::Collection& collection,
                                     MetaDocumentSet& set)
    : LandmarkRefresher(collection, set, Options()) {}

LandmarkRefresher::LandmarkRefresher(const xml::Collection& collection,
                                     MetaDocumentSet& set, Options options)
    : collection_(collection), set_(set), options_(std::move(options)) {}

LandmarkRefresher::~LandmarkRefresher() { Stop(); }

size_t LandmarkRefresher::RunOnce() {
  const graph::Digraph graph = collection_.BuildGraph();
  LandmarkCache next = LandmarkCache::Build(graph, set_, options_.landmark_count);
  const std::shared_ptr<const LandmarkCache> old = set_.landmarks.Snapshot();
  next.set_generation((old != nullptr ? old->generation() : 0) + 1);
  if (options_.replacement_hook) options_.replacement_hook(next);
  const size_t stale =
      set_.landmarks.Replace(std::make_shared<const LandmarkCache>(std::move(next)));
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter(obs::names::kLandmarksRefreshes).Increment();
  reg.GetCounter(obs::names::kGuidedStaleReads).Add(stale);
  return stale;
}

void LandmarkRefresher::Start(std::chrono::milliseconds interval) {
  Stop();
  {
    MutexLock lock(mutex_);
    stop_ = false;
  }
  thread_ = std::thread([this, interval] {
    for (;;) {
      {
        // Sleep until the next tick or a Stop(); spurious wakeups re-check
        // the deadline.
        MutexLock lock(mutex_);
        const auto deadline = std::chrono::steady_clock::now() + interval;
        while (!stop_ && std::chrono::steady_clock::now() < deadline) {
          cv_.WaitUntil(mutex_, deadline);
        }
        if (stop_) return;
      }
      // Outside mutex_: a rebuild takes the landmark-handle lock to publish.
      (void)RunOnce();
    }
  });
}

void LandmarkRefresher::Stop() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

}  // namespace flix::core
