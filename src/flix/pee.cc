#include "flix/pee.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/dcheck.h"
#include "flix/landmarks.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace flix::core {
namespace {

// Priority-queue entry: accumulated distance, then insertion sequence for
// deterministic FIFO behaviour among ties.
struct QueueItem {
  Distance distance;
  uint64_t seq;
  NodeId node;

  bool operator>(const QueueItem& other) const {
    return std::tie(distance, seq) > std::tie(other.distance, other.seq);
  }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

// Point-query entry: ordered by f = g + h(node, goal), the A* key. With no
// landmark cache f == g and the walk is the classic blind Dijkstra; either
// way ties break by insertion sequence, like QueueItem.
struct PointItem {
  Distance f;    // g plus the admissible lower bound to the goal
  Distance g;    // accumulated distance from the source
  uint64_t seq;
  NodeId node;

  bool operator>(const PointItem& other) const {
    return std::tie(f, seq) > std::tie(other.f, other.seq);
  }
};

// Streaming-mode queue entry. Three kinds share one queue so entry points,
// pending cursor results, and pending frontier hops merge into a single
// globally ascending stream:
//   kEntry    — an entry point to process (node = global element id);
//   kResult   — the head of an active local-result cursor (node = global
//               result id, slot = owning cursor);
//   kFrontier — the head of an active frontier cursor (node = *local* link
//               source / entry node, slot = owning cursor; distance already
//               includes the +1 link hop).
// Popping a kResult/kFrontier item re-arms its cursor: the next element is
// pulled and pushed back. Each cursor thus keeps at most one item queued,
// and elements past the last pop are never pulled at all.
enum class ItemKind : uint8_t { kEntry, kResult, kFrontier };

struct StreamItem {
  Distance distance;
  uint64_t seq;
  NodeId node;
  ItemKind kind;
  uint32_t slot;

  bool operator>(const StreamItem& other) const {
    return std::tie(distance, seq) > std::tie(other.distance, other.seq);
  }
};

using StreamQueue =
    std::priority_queue<StreamItem, std::vector<StreamItem>, std::greater<>>;

// An open cursor merged into the stream queue.
struct ActiveCursor {
  std::unique_ptr<index::NodeDistCursor> cursor;
  // Pins the index snapshot that produced `cursor`: cursors hold raw
  // pointers into index internals, so the slot must keep its index alive
  // even if an online migration (flix/adapt.h) swaps the meta document's
  // handle mid-query. Released with the slot when the query unwinds.
  std::shared_ptr<index::PathIndex> pin;
  Distance base = 0;   // accumulated distance of the owning entry point
  uint32_t meta = 0;   // meta document the cursor probes
  // Cached per-query attribution cell for `meta` (nullptr = profiling off).
  // unordered_map values have stable addresses, so the pointer survives
  // other partitions being inserted into the delta map mid-query.
  obs::PartitionDelta* delta = nullptr;
};

// Min-heap over a borrowed vector. Same ordering as
// std::priority_queue<Item, std::vector<Item>, std::greater<>> (both defer
// to Item::operator> via std::push_heap/pop_heap), but the storage lives in
// the per-thread QueryScratch, so its capacity survives across queries.
template <typename Item>
class BorrowedMinHeap {
 public:
  explicit BorrowedMinHeap(std::vector<Item>& storage) : heap_(storage) {}

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void reserve(size_t capacity) { heap_.reserve(capacity); }
  const Item& top() const { return heap_.front(); }
  void push(const Item& item) {
    heap_.push_back(item);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }
  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.pop_back();
  }

 private:
  std::vector<Item>& heap_;
};

// Per-thread reusable query state: queues, dedup sets and cursor slots are
// cleared between queries instead of reallocated, so a steady query stream
// stops paying hash-table and heap growth after warm-up.
struct QueryScratch {
  std::vector<StreamItem> stream_items;
  std::vector<QueueItem> queue_items;
  std::vector<PointItem> point_items;
  std::unordered_set<NodeId> start_set;
  std::vector<ActiveCursor> slots;
  std::unordered_map<uint32_t, std::vector<NodeId>> entries;
  std::unordered_set<NodeId> emitted;
  std::unordered_set<NodeId> processed;
  std::unordered_map<NodeId, Distance> best;
  bool in_use = false;

  void Clear() {
    stream_items.clear();
    queue_items.clear();
    point_items.clear();
    start_set.clear();
    slots.clear();
    // Keep the per-partition vectors (and their capacity); queries iterate
    // whatever vector entries[m] yields, and an empty one is a no-op.
    for (auto& [partition, nodes] : entries) nodes.clear();
    emitted.clear();
    processed.clear();
    best.clear();
  }
};

// Hands out the thread-local scratch, falling back to a heap-allocated one
// for re-entrant queries (a sink callback may legally issue another query
// on the same PEE — it must not clobber the outer query's state). Clearing
// on release also drops cursor slots promptly, so index snapshot pins never
// outlive the query that took them.
//
// Locking discipline (DESIGN.md section 8): deliberately capability-free.
// The scratch is thread-confined by construction — a lease only ever hands
// out this thread's `tls` instance or a heap instance it exclusively owns —
// so there is no shared state for common/sync.h to guard; the in_use flag
// is a same-thread re-entrancy marker, not a lock.
class ScratchLease {
 public:
  ScratchLease() {
    thread_local QueryScratch tls;
    if (!tls.in_use) {
      tls.in_use = true;
      scratch_ = &tls;
      owns_tls_ = true;
    } else {
      heap_ = std::make_unique<QueryScratch>();
      scratch_ = heap_.get();
    }
    scratch_->Clear();
  }
  ~ScratchLease() {
    if (owns_tls_) {
      scratch_->Clear();
      scratch_->in_use = false;
    }
  }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  QueryScratch* operator->() const { return scratch_; }

 private:
  QueryScratch* scratch_ = nullptr;
  std::unique_ptr<QueryScratch> heap_;
  bool owns_tls_ = false;
};

// Cached references into the global registry so the hot path pays one
// static-init lookup per process, then only relaxed atomic adds. Registry
// metrics never move or die (Reset() zeroes in place), so the references
// stay valid.
struct PeeMetrics {
  obs::Counter& queries;
  obs::Counter& entries_processed;
  obs::Counter& entries_dominated;
  obs::Counter& links_followed;
  obs::Counter& index_probes;
  obs::Counter& results_emitted;
  obs::Counter& results_out_of_order;
  obs::Counter& cursors_opened;
  obs::Counter& cursor_pulled;
  obs::Counter& cursor_saved;
  obs::Counter& point_queries;
  obs::Counter& point_pops;
  obs::Counter& guided_pruned;
  obs::Counter& guided_hits;
  obs::Histogram& latency_ns;
  obs::Histogram& point_latency_ns;
  obs::Histogram& results_per_query;

  static PeeMetrics& Get() {
    static PeeMetrics* metrics = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return new PeeMetrics{
          reg.GetCounter(obs::names::kQueryCount),
          reg.GetCounter(obs::names::kQueryEntriesProcessed),
          reg.GetCounter(obs::names::kQueryEntriesDominated),
          reg.GetCounter(obs::names::kQueryLinksFollowed),
          reg.GetCounter(obs::names::kQueryIndexProbes),
          reg.GetCounter(obs::names::kQueryResultsEmitted),
          reg.GetCounter(obs::names::kQueryResultsOutOfOrder),
          reg.GetCounter(obs::names::kQueryCursorOpened),
          reg.GetCounter(obs::names::kQueryCursorPulled),
          reg.GetCounter(obs::names::kQueryCursorSaved),
          reg.GetCounter(obs::names::kQueryPointCount),
          reg.GetCounter(obs::names::kQueryPointPops),
          reg.GetCounter(obs::names::kGuidedPrunedEntries),
          reg.GetCounter(obs::names::kGuidedHeuristicHits),
          reg.GetHistogram(obs::names::kQueryLatencyNs),
          reg.GetHistogram(obs::names::kQueryPointLatencyNs),
          reg.GetHistogram(obs::names::kQueryResults),
      };
    }();
    return *metrics;
  }
};

// Flushes one query's accumulated counters on every exit path of Run: the
// global registry counters, the per-partition profiler deltas, and (when
// configured) the slow-query ring.
struct QueryMetricsFlush {
  PeeMetrics& metrics;
  const QueryStats& stats;
  const size_t& emitted;
  const size_t& out_of_order;
  obs::WorkloadProfiler* profiler;
  const obs::PartitionDeltaMap& deltas;
  const obs::TraceSpan& span;
  size_t num_starts;

  ~QueryMetricsFlush() {
    metrics.queries.Increment();
    metrics.entries_processed.Add(stats.entries_processed);
    metrics.entries_dominated.Add(stats.entries_dominated);
    metrics.links_followed.Add(stats.links_followed);
    metrics.index_probes.Add(stats.index_probes);
    metrics.results_emitted.Add(emitted);
    metrics.results_out_of_order.Add(out_of_order);
    metrics.cursors_opened.Add(stats.cursors_opened);
    metrics.cursor_pulled.Add(stats.cursor_pulls);
    metrics.cursor_saved.Add(stats.cursor_saved);
    metrics.results_per_query.Record(emitted);
    const uint64_t latency_ns = span.ElapsedNanos();
    if (profiler != nullptr) profiler->RecordQuery(deltas, latency_ns);
    obs::SlowQueryLog& slow = obs::SlowQueryLog::Global();
    if (slow.ThresholdNanos() != 0 && latency_ns >= slow.ThresholdNanos()) {
      char buf[112];
      std::snprintf(buf, sizeof buf,
                    "pee.query starts=%zu entries=%zu pulls=%zu emitted=%zu",
                    num_starts, stats.entries_processed, stats.cursor_pulls,
                    emitted);
      slow.Record(buf, latency_ns);
    }
  }
};

// Credits work an early stop skipped: sums the remaining-element hints of
// every cursor still alive when the query unwinds. Declared after the slot
// vector so it runs before the cursors are destroyed, and before
// QueryMetricsFlush (declared earlier) reads the stat.
struct CursorSavingsFlush {
  const std::vector<ActiveCursor>& slots;
  QueryStats& stats;

  ~CursorSavingsFlush() {
    for (const ActiveCursor& ac : slots) {
      if (ac.cursor) stats.cursor_saved += ac.cursor->RemainingHint();
    }
  }
};

}  // namespace

void PathExpressionEvaluator::Run(const std::vector<NodeId>& starts, TagId tag,
                                  bool wildcard, Axis axis,
                                  const QueryOptions& options,
                                  const ResultSink& sink,
                                  QueryStats* stats) const {
  if (options.exact || options.materialize) {
    RunMaterialized(starts, tag, wildcard, axis, options, sink, stats);
  } else {
    RunStreaming(starts, tag, wildcard, axis, options, sink, stats);
  }
}

void PathExpressionEvaluator::RunStreaming(const std::vector<NodeId>& starts,
                                           TagId tag, bool wildcard, Axis axis,
                                           const QueryOptions& options,
                                           const ResultSink& sink,
                                           QueryStats* stats) const {
  const bool forward = axis == Axis::kDescendants;
  QueryStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  PeeMetrics& metrics = PeeMetrics::Get();
  obs::TraceSpan span(&metrics.latency_ns, "pee.query");
  const bool collecting = span.Collecting();
  // Profiler deltas accumulate in this per-query map (plain non-atomic
  // adds) and flush to the shared profiler once, in ~QueryMetricsFlush.
  obs::WorkloadProfiler* profiler =
      profiler_ != nullptr && profiler_->Enabled() ? profiler_ : nullptr;
  obs::PartitionDeltaMap deltas;
  size_t emitted_count = 0;
  size_t out_of_order = 0;
  Distance last_emitted_distance = 0;
  QueryMetricsFlush flush{metrics,  *stats, emitted_count, out_of_order,
                          profiler, deltas, span,          starts.size()};

  // Reused per-thread state (destroyed after `savings` below, which reads
  // the slots, and before `flush` above, which reads only locals).
  ScratchLease scratch;
  BorrowedMinHeap<StreamItem> queue(scratch->stream_items);
  uint64_t seq = 0;
  queue.reserve(starts.size() + 16);
  for (const NodeId s : starts) {
    queue.push({0, seq++, s, ItemKind::kEntry, 0});
  }
  std::unordered_set<NodeId>& start_set = scratch->start_set;
  start_set.insert(starts.begin(), starts.end());

  std::vector<ActiveCursor>& slots = scratch->slots;
  CursorSavingsFlush savings{slots, *stats};

  // Entry points per visited meta document (Section 5.1 duplicate
  // elimination) and result-level dedup, as in the materializing path.
  std::unordered_map<uint32_t, std::vector<NodeId>>& entries =
      scratch->entries;
  std::unordered_set<NodeId>& emitted = scratch->emitted;
  int64_t num_results = 0;

  const auto emit = [&](NodeId node, Distance distance) -> bool {
    if (!emitted.insert(node).second) return true;
    if (emitted_count > 0 && distance < last_emitted_distance) ++out_of_order;
    last_emitted_distance = distance;
    ++emitted_count;
    // Results are attributed to the partition that holds the element.
    if (profiler != nullptr) {
      ++deltas[set_.meta_of_node[node]].results_emitted;
    }
    if (!sink({node, distance})) return false;
    if (options.max_results >= 0 && ++num_results >= options.max_results) {
      return false;
    }
    return true;
  };

  // Pulls the next element off a local-result cursor and queues it. Start
  // nodes are filtered here (they are never results); an exhausted cursor
  // is released so its slot stops contributing to the savings sum.
  const auto arm_result = [&](uint32_t slot) {
    ActiveCursor& ac = slots[slot];
    const MetaDocument& meta = set_.docs[ac.meta];
    while (true) {
      ++stats->cursor_pulls;
      if (ac.delta != nullptr) ++ac.delta->cursor_pulls;
      const std::optional<index::NodeDist> r = ac.cursor->Next();
      if (!r.has_value()) {
        ac.cursor.reset();
        return;
      }
      const NodeId global = meta.global_nodes[r->node];
      if (start_set.contains(global)) continue;
      queue.push({ac.base + r->distance, seq++, global, ItemKind::kResult,
                  slot});
      return;
    }
  };

  // Same for a frontier cursor; the queued distance includes the link hop.
  const auto arm_frontier = [&](uint32_t slot) {
    ActiveCursor& ac = slots[slot];
    ++stats->cursor_pulls;
    if (ac.delta != nullptr) ++ac.delta->cursor_pulls;
    const std::optional<index::NodeDist> f = ac.cursor->Next();
    if (!f.has_value()) {
      ac.cursor.reset();
      return;
    }
    queue.push({ac.base + f->distance + 1, seq++, f->node,
                ItemKind::kFrontier, slot});
  };

  while (!queue.empty()) {
    const StreamItem item = queue.top();
    queue.pop();
    // The queue is ascending, so the first item past the bound ends the
    // query — everything still queued (or unpulled) is at least as far.
    if (options.max_distance >= 0 && item.distance > options.max_distance) {
      break;
    }

    if (item.kind == ItemKind::kResult) {
      if (!emit(item.node, item.distance)) return;
      arm_result(item.slot);
      continue;
    }

    if (item.kind == ItemKind::kFrontier) {
      ActiveCursor& ac = slots[item.slot];
      const MetaDocument& meta = set_.docs[ac.meta];
      const std::span<const NodeId> hops =
          forward ? meta.link_targets.At(item.node)
                  : meta.entry_origins.At(item.node);
      queue.reserve(queue.size() + hops.size());
      for (const NodeId target : hops) {
        queue.push({item.distance, seq++, target, ItemKind::kEntry, 0});
        ++stats->links_followed;
        // Cross-link fan-out is charged to the partition being *left* —
        // the one whose meta-document choice forced the hop.
        if (ac.delta != nullptr) ++ac.delta->entry_fanout;
      }
      arm_frontier(item.slot);
      continue;
    }

    // kEntry: duplicate elimination, then open this entry point's cursors.
    const NodeId e = item.node;
    const uint32_t m = set_.meta_of_node[e];
    const NodeId le = set_.local_of_node[e];
    const MetaDocument& meta = set_.docs[m];
    // One snapshot per entry point: every probe and cursor opened below
    // works against this index even if a migration swaps the handle. An
    // entry processed later may see the replacement — both are exact over
    // the same local graph, so mixing them mid-query stays correct.
    const std::shared_ptr<index::PathIndex> index = meta.index.Acquire();
    obs::PartitionDelta* pdelta = profiler != nullptr ? &deltas[m] : nullptr;
    obs::TraceSpan entry_span(nullptr, collecting ? "pee.entry" : nullptr);
    if (entry_span.Collecting()) {
      entry_span.AddAttr("partition", static_cast<int64_t>(m));
      entry_span.AddAttr("strategy", index->name());
    }

    std::vector<NodeId>& meta_entries = entries[m];
    bool dominated = false;
    for (const NodeId p : meta_entries) {
      const bool covers = forward ? index->IsReachable(p, le)
                                  : index->IsReachable(le, p);
      if (covers) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      ++stats->entries_dominated;
      if (pdelta != nullptr) ++pdelta->entries_dominated;
      continue;
    }
    meta_entries.push_back(le);
    ++stats->entries_processed;
    if (pdelta != nullptr) ++pdelta->entries_processed;

    // The entry element itself is a proper result when it was reached via a
    // link (not an original start) and matches the condition.
    const TagId e_tag = meta.graph.Tag(le);
    if (!start_set.contains(e) && (wildcard || e_tag == tag)) {
      if (!emit(e, item.distance)) return;
    }

    // Local probe: a lazy cursor over matches within the meta document.
    {
      obs::TraceSpan cursor_span(nullptr,
                                 collecting ? "pee.cursor.local" : nullptr);
      ++stats->index_probes;
      ++stats->cursors_opened;
      if (pdelta != nullptr) {
        ++pdelta->index_probes;
        ++pdelta->cursors_opened;
      }
      slots.push_back(
          {forward ? (wildcard ? index->DescendantsCursor(le)
                               : index->DescendantsByTagCursor(le, tag))
                   : index->AncestorsByTagCursor(le, tag),
           index, item.distance, m, pdelta});
      const uint32_t slot = static_cast<uint32_t>(slots.size() - 1);
      if (slots[slot].cursor != nullptr) {
        // The cursor keeps only one item queued at a time, but each result
        // it yields transits the queue; a hint-capped reserve absorbs that
        // churn without regrowing the heap mid-merge.
        queue.reserve(queue.size() +
                      std::min<size_t>(slots[slot].cursor->RemainingHint(),
                                       64));
      }
      arm_result(slot);
    }

    // Frontier probe: a lazy cursor over the reachable link sources (or
    // entry nodes, for the ancestors axis).
    {
      obs::TraceSpan cursor_span(nullptr,
                                 collecting ? "pee.cursor.frontier" : nullptr);
      ++stats->index_probes;
      ++stats->cursors_opened;
      if (pdelta != nullptr) {
        ++pdelta->index_probes;
        ++pdelta->cursors_opened;
      }
      slots.push_back(
          {forward ? index->ReachableAmongCursor(le, meta.link_sources)
                   : index->AncestorsAmongCursor(le, meta.entry_nodes),
           index, item.distance, m, pdelta});
      arm_frontier(static_cast<uint32_t>(slots.size() - 1));
    }
  }
}

void PathExpressionEvaluator::RunMaterialized(
    const std::vector<NodeId>& starts, TagId tag, bool wildcard, Axis axis,
    const QueryOptions& options, const ResultSink& sink,
    QueryStats* stats) const {
  const bool forward = axis == Axis::kDescendants;
  QueryStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Per-query observability: latency span plus counter flush on every exit
  // path (the sampled out-of-order rate feeds the Section 7 tuning loop).
  PeeMetrics& metrics = PeeMetrics::Get();
  obs::TraceSpan span(&metrics.latency_ns, "pee.query");
  obs::WorkloadProfiler* profiler =
      profiler_ != nullptr && profiler_->Enabled() ? profiler_ : nullptr;
  obs::PartitionDeltaMap deltas;
  size_t emitted_count = 0;
  size_t out_of_order = 0;
  Distance last_emitted_distance = 0;
  QueryMetricsFlush flush{metrics,  *stats, emitted_count, out_of_order,
                          profiler, deltas, span,          starts.size()};

  // Reused per-thread state; see RunStreaming.
  ScratchLease scratch;
  BorrowedMinHeap<QueueItem> queue(scratch->queue_items);
  uint64_t seq = 0;
  queue.reserve(starts.size() + 16);
  for (const NodeId s : starts) queue.push({0, seq++, s});
  std::unordered_set<NodeId>& start_set = scratch->start_set;
  start_set.insert(starts.begin(), starts.end());

  // Entry points per visited meta document (paper Section 5.1). In exact
  // mode the domination rule is off; instead each concrete entry node is
  // processed once (Dijkstra semantics — the first pop carries its minimal
  // distance), and result distances are relaxed across entries.
  std::unordered_map<uint32_t, std::vector<NodeId>>& entries =
      scratch->entries;
  std::unordered_set<NodeId>& processed = scratch->processed;
  // Approximate mode: exact result-level duplicate elimination.
  std::unordered_set<NodeId>& emitted = scratch->emitted;
  // Exact mode: minimal distance per result node, emitted sorted at the end.
  std::unordered_map<NodeId, Distance>& best = scratch->best;
  int64_t num_results = 0;

  const auto emit_approx = [&](NodeId node, Distance distance) -> bool {
    if (!emitted.insert(node).second) return true;
    if (emitted_count > 0 && distance < last_emitted_distance) ++out_of_order;
    last_emitted_distance = distance;
    ++emitted_count;
    if (profiler != nullptr) {
      ++deltas[set_.meta_of_node[node]].results_emitted;
    }
    if (!sink({node, distance})) return false;
    if (options.max_results >= 0 && ++num_results >= options.max_results) {
      return false;
    }
    return true;
  };
  const auto relax_exact = [&](NodeId node, Distance distance) {
    const auto [it, inserted] = best.emplace(node, distance);
    if (!inserted && distance < it->second) it->second = distance;
  };

  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    if (options.max_distance >= 0 && item.distance > options.max_distance) {
      break;
    }
    const NodeId e = item.node;
    const uint32_t m = set_.meta_of_node[e];
    const NodeId le = set_.local_of_node[e];
    const MetaDocument& meta = set_.docs[m];
    // Snapshot per entry point (see RunStreaming): all probes for this
    // entry hit one index even across an online migration.
    const std::shared_ptr<index::PathIndex> index = meta.index.Acquire();
    obs::PartitionDelta* pdelta = profiler != nullptr ? &deltas[m] : nullptr;

    if (options.exact) {
      if (!processed.insert(e).second) {
        ++stats->entries_dominated;
        if (pdelta != nullptr) ++pdelta->entries_dominated;
        continue;
      }
    } else {
      // Duplicate elimination: if an earlier entry point dominates e (for
      // descendants: is an ancestor-or-self of e), everything reachable
      // from e has already been handled through it.
      std::vector<NodeId>& meta_entries = entries[m];
      bool dominated = false;
      for (const NodeId p : meta_entries) {
        const bool covers = forward ? index->IsReachable(p, le)
                                    : index->IsReachable(le, p);
        if (covers) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        ++stats->entries_dominated;
        if (pdelta != nullptr) ++pdelta->entries_dominated;
        continue;
      }
      meta_entries.push_back(le);
    }
    ++stats->entries_processed;
    if (pdelta != nullptr) ++pdelta->entries_processed;

    // The entry element itself is a proper result when it was reached via a
    // link (not an original start) and matches the condition.
    const TagId e_tag = meta.graph.Tag(le);
    if (!start_set.contains(e) && (wildcard || e_tag == tag)) {
      if (options.exact) {
        relax_exact(e, item.distance);
      } else if (!emit_approx(e, item.distance)) {
        return;
      }
    }

    // Local index probe: all matches within the meta document, ascending.
    ++stats->index_probes;
    if (pdelta != nullptr) ++pdelta->index_probes;
    const std::vector<index::NodeDist> local_results =
        forward ? (wildcard ? index->Descendants(le)
                            : index->DescendantsByTag(le, tag))
                : index->AncestorsByTag(le, tag);
    for (const index::NodeDist& r : local_results) {
      const NodeId global = meta.global_nodes[r.node];
      if (start_set.contains(global)) continue;
      const Distance total = item.distance + r.distance;
      if (options.max_distance >= 0 && total > options.max_distance) continue;
      if (options.exact) {
        relax_exact(global, total);
      } else if (!emit_approx(global, total)) {
        return;
      }
    }

    // Frontier expansion: elements of L_i (or the entry nodes, for the
    // ancestors axis) reachable from e, then one hop across each link.
    ++stats->index_probes;
    if (pdelta != nullptr) ++pdelta->index_probes;
    const std::vector<index::NodeDist> frontier =
        forward ? index->ReachableAmong(le, meta.link_sources)
                : index->AncestorsAmong(le, meta.entry_nodes);
    for (const index::NodeDist& f : frontier) {
      const std::span<const NodeId> hops =
          forward ? meta.link_targets.At(f.node)
                  : meta.entry_origins.At(f.node);
      const Distance hop_distance = item.distance + f.distance + 1;
      if (options.max_distance >= 0 && hop_distance > options.max_distance) {
        continue;
      }
      queue.reserve(queue.size() + hops.size());
      for (const NodeId target : hops) {
        queue.push({hop_distance, seq++, target});
        ++stats->links_followed;
        if (pdelta != nullptr) ++pdelta->entry_fanout;
      }
    }
  }

  if (options.exact) {
    std::vector<index::NodeDist> sorted;
    sorted.reserve(best.size());
    for (const auto& [node, distance] : best) sorted.push_back({node, distance});
    index::SortByDistance(sorted);
    Distance last = 0;
    for (const index::NodeDist& nd : sorted) {
      // Exact mode promises globally ascending emission order.
      FLIX_DCHECK(nd.distance >= last,
                  "exact-mode results emitted out of ascending order");
      last = nd.distance;
      ++emitted_count;
      if (profiler != nullptr) {
        ++deltas[set_.meta_of_node[nd.node]].results_emitted;
      }
      if (!sink({nd.node, nd.distance})) return;
      if (options.max_results >= 0 && ++num_results >= options.max_results) {
        return;
      }
    }
  }
}

void PathExpressionEvaluator::FindDescendantsByTag(NodeId start, TagId tag,
                                                   const QueryOptions& options,
                                                   const ResultSink& sink,
                                                   QueryStats* stats) const {
  Run({start}, tag, /*wildcard=*/false, Axis::kDescendants, options, sink,
      stats);
}

void PathExpressionEvaluator::FindDescendants(NodeId start,
                                              const QueryOptions& options,
                                              const ResultSink& sink,
                                              QueryStats* stats) const {
  Run({start}, kInvalidTag, /*wildcard=*/true, Axis::kDescendants, options,
      sink, stats);
}

void PathExpressionEvaluator::FindAncestorsByTag(NodeId start, TagId tag,
                                                 const QueryOptions& options,
                                                 const ResultSink& sink,
                                                 QueryStats* stats) const {
  Run({start}, tag, /*wildcard=*/false, Axis::kAncestors, options, sink,
      stats);
}

void PathExpressionEvaluator::EvaluateTypeQuery(TagId start_tag,
                                                TagId result_tag,
                                                const QueryOptions& options,
                                                const ResultSink& sink,
                                                QueryStats* stats) const {
  std::vector<NodeId> starts;
  for (const MetaDocument& meta : set_.docs) {
    for (const NodeId local : meta.graph.NodesWithTag(start_tag)) {
      starts.push_back(meta.global_nodes[local]);
    }
  }
  std::sort(starts.begin(), starts.end());
  Run(starts, result_tag, /*wildcard=*/false, Axis::kDescendants, options,
      sink, stats);
}

Distance PathExpressionEvaluator::PointQuery(NodeId a, NodeId b,
                                             Distance max_distance) const {
  PeeMetrics& metrics = PeeMetrics::Get();
  metrics.point_queries.Increment();
  obs::TraceSpan span(&metrics.point_latency_ns, "pee.point_query");
  if (a == b) return 0;
  const uint32_t target_meta = set_.meta_of_node[b];
  const NodeId target_local = set_.local_of_node[b];

  // ALT guidance: snapshot the landmark cache once per query (null when
  // disabled or never built). A concurrent refresh may leave this snapshot
  // a generation behind — still admissible, because the element graph the
  // distances were measured on does not change; the refresher just picks
  // better landmarks for the current partitioning.
  const std::shared_ptr<const LandmarkCache> landmarks =
      set_.landmarks.Acquire();
  const bool guided = landmarks != nullptr && !landmarks->empty() &&
                      landmarks->Covers(a) && landmarks->Covers(b);
  LandmarkCache::GoalView goal;
  size_t pruned = 0;
  size_t hits = 0;
  const auto lower_bound = [&](NodeId n) -> Distance {
    const Distance h = landmarks->LowerBound(n, goal);
    if (h > 0) ++hits;
    return h;
  };
  Distance h_start = 0;
  if (guided) {
    goal = landmarks->Goal(b);
    if (landmarks->ProvablyUnreachable(a, goal)) {
      metrics.guided_pruned.Add(++pruned);
      return kUnreachable;
    }
    h_start = lower_bound(a);
    if (max_distance >= 0 && h_start > max_distance) {
      metrics.guided_pruned.Add(++pruned);
      metrics.guided_hits.Add(hits);
      return kUnreachable;
    }
  }

  ScratchLease scratch;
  BorrowedMinHeap<PointItem> queue(scratch->point_items);
  uint64_t seq = 0;
  queue.push({h_start, 0, seq++, a});
  std::unordered_set<NodeId>& processed = scratch->processed;
  Distance best = kUnreachable;
  size_t pops = 0;

  while (!queue.empty()) {
    const PointItem item = queue.top();
    queue.pop();
    ++pops;
    // f = g + h lower-bounds every answer reachable through this entry, and
    // the queue ascends in f: the first item past the distance budget or
    // the best answer so far proves nothing better remains queued. With no
    // landmarks f == g and this is the classic Dijkstra stop.
    if (max_distance >= 0 && item.f > max_distance) break;
    if (best != kUnreachable && item.f >= best) break;
    const NodeId e = item.node;
    const uint32_t m = set_.meta_of_node[e];
    const NodeId le = set_.local_of_node[e];
    const MetaDocument& meta = set_.docs[m];
    // Migration-safe snapshot for every probe of this entry point.
    const std::shared_ptr<index::PathIndex> index = meta.index.Acquire();

    // Dijkstra/A* semantics: the heuristic is consistent (each landmark
    // bound obeys the triangle inequality over super-edges), so the first
    // pop of a node carries its minimal g; later pops are duplicates. Both
    // modes share this rule, which is what makes their answers identical.
    if (!processed.insert(e).second) continue;

    if (m == target_meta) {
      const Distance d = index->DistanceBetween(le, target_local);
      if (d != kUnreachable) {
        const Distance total = item.g + d;
        if (best == kUnreachable || total < best) best = total;
      }
    }

    const std::vector<index::NodeDist> frontier =
        index->ReachableAmong(le, meta.link_sources);
    for (const index::NodeDist& f : frontier) {
      const Distance hop_distance = item.g + f.distance + 1;
      if (max_distance >= 0 && hop_distance > max_distance) continue;
      if (best != kUnreachable && hop_distance >= best) continue;
      const std::span<const NodeId> hops = meta.link_targets.At(f.node);
      queue.reserve(queue.size() + hops.size());
      for (const NodeId target : hops) {
        Distance h = 0;
        if (guided) {
          if (landmarks->ProvablyUnreachable(target, goal)) {
            ++pruned;
            continue;
          }
          h = lower_bound(target);
          const Distance bound = hop_distance + h;
          // The A* win over blind search: entries whose admissible lower
          // bound already exceeds the budget or the best answer never
          // enter the queue, so the frontier stays aimed at the goal.
          if ((max_distance >= 0 && bound > max_distance) ||
              (best != kUnreachable && bound >= best)) {
            ++pruned;
            continue;
          }
        }
        queue.push({hop_distance + h, hop_distance, seq++, target});
      }
    }
  }
  metrics.point_pops.Add(pops);
  if (guided) {
    metrics.guided_pruned.Add(pruned);
    metrics.guided_hits.Add(hits);
  }
  if (best != kUnreachable && max_distance >= 0 && best > max_distance) {
    return kUnreachable;
  }
  return best;
}

bool PathExpressionEvaluator::IsConnected(NodeId a, NodeId b,
                                          Distance max_distance) const {
  return PointQuery(a, b, max_distance) != kUnreachable;
}

Distance PathExpressionEvaluator::FindDistance(NodeId a, NodeId b,
                                               Distance max_distance) const {
  return PointQuery(a, b, max_distance);
}

bool PathExpressionEvaluator::IsConnectedBidirectional(
    NodeId a, NodeId b, Distance max_distance) const {
  if (a == b) return true;
  // Landmark precheck: an exact unreachability certificate (see
  // LandmarkCache::ProvablyUnreachable) settles the question before either
  // frontier expands. No heuristic steering beyond this — the bidirectional
  // walk has no single goal to aim at.
  if (const std::shared_ptr<const LandmarkCache> landmarks =
          set_.landmarks.Acquire();
      landmarks != nullptr && !landmarks->empty() && landmarks->Covers(a) &&
      landmarks->Covers(b) &&
      landmarks->ProvablyUnreachable(a, landmarks->Goal(b))) {
    PeeMetrics::Get().guided_pruned.Increment();
    return false;
  }
  // Forward frontier from a over meta-document entry points, backward
  // frontier from b; meet detection tests, per meta document seen by both
  // sides, whether some forward entry reaches some backward entry.
  struct Side {
    MinQueue queue;
    std::unordered_map<uint32_t, std::vector<NodeId>> entries;
    uint64_t seq = 0;
  };
  Side fwd;
  Side bwd;
  fwd.queue.push({0, fwd.seq++, a});
  bwd.queue.push({0, bwd.seq++, b});

  const auto expand = [&](Side& side, bool forward) -> bool {
    const QueueItem item = side.queue.top();
    side.queue.pop();
    if (max_distance >= 0 && item.distance > max_distance) return false;
    const NodeId e = item.node;
    const uint32_t m = set_.meta_of_node[e];
    const NodeId le = set_.local_of_node[e];
    const MetaDocument& meta = set_.docs[m];
    // Migration-safe snapshot for every probe of this entry point.
    const std::shared_ptr<index::PathIndex> index = meta.index.Acquire();

    std::vector<NodeId>& meta_entries = side.entries[m];
    for (const NodeId p : meta_entries) {
      const bool covers = forward ? index->IsReachable(p, le)
                                  : index->IsReachable(le, p);
      if (covers) return false;
    }
    meta_entries.push_back(le);

    // Meet check against the opposite side's entries in this meta document.
    Side& other = forward ? bwd : fwd;
    const auto it = other.entries.find(m);
    if (it != other.entries.end()) {
      for (const NodeId q : it->second) {
        const bool connected = forward ? index->IsReachable(le, q)
                                       : index->IsReachable(q, le);
        if (connected) return true;
      }
    }

    const std::vector<index::NodeDist> frontier =
        forward ? index->ReachableAmong(le, meta.link_sources)
                : index->AncestorsAmong(le, meta.entry_nodes);
    for (const index::NodeDist& f : frontier) {
      const Distance hop_distance = item.distance + f.distance + 1;
      if (max_distance >= 0 && hop_distance > max_distance) continue;
      const std::span<const NodeId> hops =
          forward ? meta.link_targets.At(f.node)
                  : meta.entry_origins.At(f.node);
      for (const NodeId target : hops) {
        side.queue.push({hop_distance, side.seq++, target});
      }
    }
    return false;
  };

  while (!fwd.queue.empty() || !bwd.queue.empty()) {
    // Expand the side with the smaller frontier ("depending on the
    // structure of documents, either of them may be the best", Section
    // 5.2): on citation-shaped data the ancestors side explodes, so
    // balancing by queue size keeps the search on the cheap side.
    const bool pick_forward =
        bwd.queue.empty() ||
        (!fwd.queue.empty() && fwd.queue.size() <= bwd.queue.size());
    if (pick_forward) {
      if (expand(fwd, /*forward=*/true)) return true;
    } else {
      if (expand(bwd, /*forward=*/false)) return true;
    }
  }
  return false;
}

std::vector<Result> PathExpressionEvaluator::Children(NodeId node) const {
  const uint32_t m = set_.meta_of_node[node];
  const NodeId local = set_.local_of_node[node];
  const MetaDocument& meta = set_.docs[m];
  std::vector<Result> children;
  for (const graph::Digraph::Arc& arc : meta.graph.OutArcs(local)) {
    children.push_back({meta.global_nodes[arc.target], 1});
  }
  for (const NodeId target : meta.link_targets.At(local)) {
    children.push_back({target, 1});
  }
  return children;
}

std::vector<Result> PathExpressionEvaluator::Parents(NodeId node) const {
  const uint32_t m = set_.meta_of_node[node];
  const NodeId local = set_.local_of_node[node];
  const MetaDocument& meta = set_.docs[m];
  std::vector<Result> parents;
  for (const graph::Digraph::Arc& arc : meta.graph.InArcs(local)) {
    parents.push_back({meta.global_nodes[arc.target], 1});
  }
  for (const NodeId origin : meta.entry_origins.At(local)) {
    parents.push_back({origin, 1});
  }
  return parents;
}

std::vector<Result> PathExpressionEvaluator::ChildrenByTag(NodeId node,
                                                           TagId tag) const {
  std::vector<Result> filtered;
  for (const Result& child : Children(node)) {
    const uint32_t m = set_.meta_of_node[child.node];
    const NodeId local = set_.local_of_node[child.node];
    if (set_.docs[m].graph.Tag(local) == tag) filtered.push_back(child);
  }
  return filtered;
}

std::vector<Result> PathExpressionEvaluator::Siblings(NodeId node) const {
  std::vector<Result> siblings;
  std::unordered_set<NodeId> seen = {node};
  for (const Result& parent : Parents(node)) {
    for (const Result& child : Children(parent.node)) {
      if (seen.insert(child.node).second) {
        siblings.push_back({child.node, 2});
      }
    }
  }
  return siblings;
}

AsyncQuery::~AsyncQuery() {
  // Moved-from handles hold neither list nor thread.
  if (list_ != nullptr) list_->Cancel();
  if (worker_.joinable()) worker_.join();
}

AsyncQuery PathExpressionEvaluator::FindDescendantsByTagAsync(
    NodeId start, TagId tag, QueryOptions options, size_t capacity) const {
  AsyncQuery query(capacity);
  StreamedList* list = query.list_.get();  // stable across the handle's move
  query.worker_ = std::thread([this, start, tag, options, list] {
    FindDescendantsByTag(start, tag, options, [&](const Result& r) {
      return list->Push(r);
    });
    list->Close();
  });
  return query;
}

}  // namespace flix::core
