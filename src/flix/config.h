// FliX framework configurations (paper Section 4.3) and tuning knobs.
#ifndef FLIX_FLIX_CONFIG_H_
#define FLIX_FLIX_CONFIG_H_

#include <cstddef>
#include <string_view>

namespace flix::core {

// How the Meta Document Builder partitions the collection.
enum class MdbConfig {
  // One meta document per XML document (paper: "Naive"). Good when
  // documents are large, inter-document links are few, and queries rarely
  // cross document boundaries (e.g., INEX).
  kNaive,
  // Grow maximal groups of documents whose combined element graph stays a
  // forest, index each with PPO; every other edge is followed at run time
  // (paper: "Maximal PPO", Figure 3). Good for mostly-isolated collections
  // like DBLP.
  kMaximalPpo,
  // Size-bounded partitions of the element graph, each indexed with HOPI —
  // the first two steps of HOPI's divide-and-conquer build without the
  // final merge (paper: "Unconnected HOPI"). Good when most documents link.
  kUnconnectedHopi,
  // Maximal PPO tree groups first, remaining documents into size-bounded
  // HOPI partitions (paper: "Hybrid Partitions"). Best for mixed
  // collections like Figure 1.
  kHybrid,
};

std::string_view MdbConfigName(MdbConfig config);

// How the Indexing Strategy Selector picks a strategy per meta document.
enum class IssPolicy {
  // Structure-driven choice: PPO for forests; otherwise APEX for summary-
  // friendly graphs, HOPI for the rest (Section 2.2's rule of thumb).
  kAuto,
  // Always HOPI (used by the Unconnected HOPI configuration so that the
  // HOPI-5000 / HOPI-20000 variants of the paper are reproduced exactly).
  kForceHopi,
  // Always APEX (used by the APEX baseline in the experiments).
  kForceApex,
};

struct FlixOptions {
  MdbConfig config = MdbConfig::kHybrid;
  IssPolicy iss_policy = IssPolicy::kAuto;

  // Partition size bound for kUnconnectedHopi / kHybrid (elements per meta
  // document). The paper evaluates 5,000 and 20,000.
  size_t partition_bound = 5000;

  // kAuto heuristics: a non-forest meta document larger than this many
  // nodes is indexed with APEX instead of HOPI (2-hop label construction
  // cost grows superlinearly, Section 2.2).
  size_t hopi_max_nodes = 200000;

  // kHybrid only: a document that stays a *singleton* tree group but has at
  // least this many inter-document links is treated as part of the densely
  // linked region and sent to the Unconnected HOPI partitions instead of
  // getting its own PPO meta document (cf. the closely interlinked
  // documents 5-10 of Figure 1).
  size_t hybrid_dense_link_threshold = 3;

  // kUnconnectedHopi / kHybrid: partition at element granularity instead of
  // keeping documents whole — the paper's Section 7 idea of "building meta
  // documents on the element level, ignoring the artificial boundary of
  // documents". Lets the partitioner put tightly connected elements of
  // different documents into one meta document (and split huge documents).
  bool element_level_partitions = false;

  // Capacity (in queries) of the result cache consulted by the
  // name-based descendant queries of the facade; 0 disables caching
  // (Section 7: "caching results of frequent (sub-)queries").
  size_t query_cache_capacity = 0;

  // Number of ALT landmarks precomputed for goal-directed point queries
  // (IsConnected / FindDistance): per-landmark BFS distances give the PEE
  // an admissible lower bound that turns its blind Dijkstra into A* (see
  // src/flix/landmarks.h). 0 disables the cache entirely. Persisted with
  // the index; the cache round-trips through both on-disk formats.
  size_t landmark_count = 16;

  // Attribute query work (probes, cursor pulls, link fan-out, latency) to
  // individual meta documents via the instance's obs::WorkloadProfiler —
  // the telemetry the Section 7 self-tuning loop consumes. Runtime-only
  // (not persisted with the index); costs a few relaxed atomic adds per
  // query. Disable for overhead-critical benchmarking.
  bool workload_profiling = true;

  // Allow the workload-adaptive ISS (src/flix/adapt.h) to re-select
  // strategies online and swap indexes under live queries. Runtime-only
  // like workload_profiling — the persisted index format is unchanged;
  // flip after Load with Flix::SetAdaptiveIss. Off by default: migrations
  // only happen when an operator (flixctl adapt --apply / --watch) or an
  // embedding application opts in.
  bool adaptive_iss = false;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_CONFIG_H_
