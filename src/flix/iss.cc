#include "flix/iss.h"

#include "graph/tree_utils.h"

namespace flix::core {

index::StrategyKind SelectStrategy(const graph::Digraph& meta_graph,
                                   const FlixOptions& options) {
  switch (options.iss_policy) {
    case IssPolicy::kForceHopi:
      return index::StrategyKind::kHopi;
    case IssPolicy::kForceApex:
      return index::StrategyKind::kApex;
    case IssPolicy::kAuto:
      break;
  }
  // The Unconnected HOPI configuration is defined by its per-partition HOPI
  // indexes; honor that even under the auto policy.
  if (options.config == MdbConfig::kUnconnectedHopi) {
    return index::StrategyKind::kHopi;
  }
  if (graph::IsForest(meta_graph)) return index::StrategyKind::kPpo;
  if (meta_graph.NumNodes() > options.hopi_max_nodes) {
    // 2-hop label construction grows superlinearly (Section 2.2); fall back
    // to the summary-based APEX for oversized linked meta documents.
    return index::StrategyKind::kApex;
  }
  return index::StrategyKind::kHopi;
}

}  // namespace flix::core
