// Streamed result list: the decoupling between the PEE and the client the
// paper describes ("a multithreaded architecture where the client thread
// reads from a list in which FliX inserts the results", Section 3.1).
//
// A bounded, thread-safe producer/consumer queue with close and cancel
// semantics: the PEE pushes results as it finds them; the client consumes
// them concurrently and may cancel the query once satisfied (e.g., after
// the top-k results).
#ifndef FLIX_FLIX_STREAMED_LIST_H_
#define FLIX_FLIX_STREAMED_LIST_H_

#include <deque>
#include <optional>
#include <vector>

#include "common/dcheck.h"
#include "common/sync.h"
#include "common/types.h"

namespace flix::core {

// One streamed query result: a global element id and its (approximate
// rank-order) distance from the query start.
struct Result {
  NodeId node = kInvalidNode;
  Distance distance = kUnreachable;

  friend bool operator==(const Result&, const Result&) = default;
};

class StreamedList {
 public:
  explicit StreamedList(size_t capacity = 1024) : capacity_(capacity) {}

  StreamedList(const StreamedList&) = delete;
  StreamedList& operator=(const StreamedList&) = delete;

  // Producer side. Push blocks while the queue is full; returns false once
  // the consumer cancelled or the stream was already closed (producer
  // should stop the query).
  bool Push(Result result) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!cancelled_ && !closed_ && queue_.size() >= capacity_) {
      not_full_.Wait(mutex_);
    }
    if (cancelled_) return false;
    // Pushing after Close is a producer-side protocol bug (a consumer
    // cancel, by contrast, can race with pushes and is expected).
    FLIX_DCHECK(!closed_, "StreamedList::Push after Close");
    if (closed_) return false;
    FLIX_DCHECK(queue_.size() < capacity_,
                "StreamedList queue exceeded its capacity bound");
    queue_.push_back(result);
    ++produced_;
    not_empty_.NotifyOne();
    return true;
  }

  // Producer signals the end of the stream.
  void Close() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
  }

  // Consumer side. Blocks until a result arrives or the stream ends;
  // nullopt = stream closed and drained (or cancelled).
  std::optional<Result> Next() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!cancelled_ && !closed_ && queue_.empty()) {
      not_empty_.Wait(mutex_);
    }
    if (queue_.empty()) return std::nullopt;
    const Result r = queue_.front();
    queue_.pop_front();
    not_full_.NotifyOne();
    return r;
  }

  // Non-blocking variant: a queued result if one is ready, nullopt when the
  // queue is momentarily empty OR the stream has ended — poll cancelled()
  // and the producer's completion separately when the distinction matters.
  std::optional<Result> TryNext() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    const Result r = queue_.front();
    queue_.pop_front();
    not_full_.NotifyOne();
    return r;
  }

  // Consumer aborts the query (e.g., top-k reached); wakes the producer.
  void Cancel() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      cancelled_ = true;
      queue_.clear();
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool cancelled() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return cancelled_;
  }

  // Total results pushed so far (monotone; for progress reporting).
  size_t produced() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return produced_;
  }

  // Convenience for non-interactive callers: consume the entire stream.
  std::vector<Result> DrainAll() {
    std::vector<Result> all;
    all.reserve(produced());  // at least what is already queued
    while (std::optional<Result> r = Next()) all.push_back(*r);
    return all;
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_ ACQUIRED_AFTER(lockorder::kCache)
      ACQUIRED_BEFORE(lockorder::kMetrics);
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<Result> queue_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  bool cancelled_ GUARDED_BY(mutex_) = false;
  size_t produced_ GUARDED_BY(mutex_) = 0;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_STREAMED_LIST_H_
