#include "flix/meta_document.h"

#include <algorithm>

#include "common/bytes.h"

namespace flix::core {

void MetaDocument::AddCrossLink(NodeId local_source, NodeId global_target) {
  link_sources.push_back(local_source);
  link_targets[local_source].push_back(global_target);
}

void MetaDocument::AddEntry(NodeId local_target, NodeId global_origin) {
  entry_nodes.push_back(local_target);
  entry_origins[local_target].push_back(global_origin);
}

void MetaDocument::FinalizeLinks() {
  std::sort(link_sources.begin(), link_sources.end());
  link_sources.erase(std::unique(link_sources.begin(), link_sources.end()),
                     link_sources.end());
  std::sort(entry_nodes.begin(), entry_nodes.end());
  entry_nodes.erase(std::unique(entry_nodes.begin(), entry_nodes.end()),
                    entry_nodes.end());
}

size_t MetaDocument::MemoryBytes() const {
  size_t bytes = VectorBytes(global_nodes) + graph.MemoryBytes() +
                 VectorBytes(link_sources) + VectorBytes(entry_nodes);
  if (index != nullptr) bytes += index->MemoryBytes();
  for (const auto& [src, targets] : link_targets) {
    (void)src;
    bytes += targets.capacity() * sizeof(NodeId) + 32;
  }
  for (const auto& [tgt, origins] : entry_origins) {
    (void)tgt;
    bytes += origins.capacity() * sizeof(NodeId) + 32;
  }
  return bytes;
}

}  // namespace flix::core
