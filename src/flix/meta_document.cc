#include "flix/meta_document.h"

#include <algorithm>

namespace flix::core {

void MetaDocument::AddCrossLink(NodeId local_source, NodeId global_target) {
  link_sources.push_back(local_source);
  link_targets.Add(local_source, global_target);
}

void MetaDocument::AddEntry(NodeId local_target, NodeId global_origin) {
  entry_nodes.push_back(local_target);
  entry_origins.Add(local_target, global_origin);
}

void MetaDocument::FinalizeLinks() {
  std::vector<NodeId>& sources = link_sources.MutableOwned();
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  std::vector<NodeId>& entries = entry_nodes.MutableOwned();
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
}

size_t MetaDocument::MemoryBytes() const {
  size_t bytes = global_nodes.MemoryBytes() + graph.MemoryBytes() +
                 link_sources.MemoryBytes() + entry_nodes.MemoryBytes() +
                 link_targets.MemoryBytes() + entry_origins.MemoryBytes();
  if (index != nullptr) bytes += index->MemoryBytes();
  return bytes;
}

}  // namespace flix::core
