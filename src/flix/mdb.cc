#include "flix/mdb.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "graph/partition.h"

namespace flix::core {
namespace {

constexpr uint32_t kUnassigned = UINT32_MAX;

uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

// True per document iff its internal element graph is a tree: the parser
// guarantees the tree edges form one, so any intra-document *link* edge
// breaks it (extra parent or cycle).
std::vector<bool> ComputeTreeDocs(const MdbInput& input) {
  const graph::Digraph& g = *input.graph;
  const std::vector<uint32_t>& doc_of = *input.doc_of;
  std::vector<bool> is_tree(input.doc_roots->size(), true);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
      if (arc.kind == graph::EdgeKind::kLink &&
          doc_of[u] == doc_of[arc.target]) {
        is_tree[doc_of[u]] = false;
      }
    }
  }
  return is_tree;
}

// Assembles meta documents from a node partition and a set of edges to keep
// out of the indexes even when both endpoints share a partition.
MetaDocumentSet Assemble(const graph::Digraph& g,
                         const std::vector<uint32_t>& part_of,
                         uint32_t num_parts,
                         const std::unordered_set<uint64_t>& removed_edges) {
  MetaDocumentSet set;
  set.docs.resize(num_parts);
  set.meta_of_node = part_of;
  set.local_of_node.assign(g.NumNodes(), kInvalidNode);

  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    MetaDocument& meta = set.docs[part_of[v]];
    set.local_of_node[v] = static_cast<NodeId>(meta.global_nodes.size());
    meta.global_nodes.push_back(v);
  }
  for (uint32_t m = 0; m < num_parts; ++m) {
    MetaDocument& meta = set.docs[m];
    meta.id = m;
    meta.graph.Resize(meta.global_nodes.size());
    for (NodeId local = 0; local < meta.global_nodes.size(); ++local) {
      meta.graph.SetTag(local, g.Tag(meta.global_nodes[local]));
    }
  }

  // Parallel edges between the same element pair are collapsed: they carry
  // no extra connection information and a duplicate accepted link would
  // give a root two parents, breaking PPO forests.
  std::unordered_set<uint64_t> seen_edges;
  seen_edges.reserve(g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const uint32_t mu = part_of[u];
    for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
      const NodeId v = arc.target;
      if (!seen_edges.insert(EdgeKey(u, v)).second) continue;
      const uint32_t mv = part_of[v];
      const bool internal =
          mu == mv && !removed_edges.contains(EdgeKey(u, v));
      if (internal) {
        set.docs[mu].graph.AddEdge(set.local_of_node[u], set.local_of_node[v],
                                   arc.kind);
      } else {
        set.docs[mu].AddCrossLink(set.local_of_node[u], v);
        set.docs[mv].AddEntry(set.local_of_node[v], u);
        ++set.num_cross_links;
      }
    }
  }
  for (MetaDocument& meta : set.docs) meta.FinalizeLinks();
  return set;
}

// Compacts a partition vector to dense ids in first-occurrence order.
uint32_t Compact(std::vector<uint32_t>& part_of) {
  uint32_t next = 0;
  std::unordered_map<uint32_t, uint32_t> seen;
  for (uint32_t& p : part_of) {
    const auto [it, inserted] = seen.emplace(p, next);
    if (inserted) ++next;
    p = it->second;
  }
  return next;
}

}  // namespace

std::vector<uint32_t> GrowTreeGroups(
    const MdbInput& input,
    std::vector<std::pair<NodeId, NodeId>>* accepted_edges) {
  const graph::Digraph& g = *input.graph;
  const std::vector<uint32_t>& doc_of = *input.doc_of;
  const std::vector<NodeId>& doc_roots = *input.doc_roots;
  const size_t num_docs = doc_roots.size();
  const std::vector<bool> is_tree = ComputeTreeDocs(input);

  // Greedy document-level spanning forest over root-targeting links: accept
  // a link u -> root(t) iff both documents are trees, t has no accepted
  // parent yet, and no document-level cycle arises. The accepted links make
  // the combined element graph of each component a forest (each claimed
  // root gains exactly one parent), which is what PPO needs.
  std::vector<uint32_t> uf(num_docs);
  for (uint32_t d = 0; d < num_docs; ++d) uf[d] = d;
  const auto find = [&](uint32_t d) {
    while (uf[d] != d) {
      uf[d] = uf[uf[d]];
      d = uf[d];
    }
    return d;
  };

  std::vector<bool> child_claimed(num_docs, false);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
      if (arc.kind != graph::EdgeKind::kLink) continue;
      const uint32_t src_doc = doc_of[u];
      const uint32_t dst_doc = doc_of[arc.target];
      if (src_doc == dst_doc || arc.target != doc_roots[dst_doc]) continue;
      if (!is_tree[src_doc] || !is_tree[dst_doc]) continue;
      if (child_claimed[dst_doc]) continue;
      const uint32_t ru = find(src_doc);
      const uint32_t rv = find(dst_doc);
      if (ru == rv) continue;  // would close a document-level cycle
      uf[ru] = rv;
      child_claimed[dst_doc] = true;
      if (accepted_edges != nullptr) {
        accepted_edges->push_back({u, arc.target});
      }
    }
  }

  // Components of tree documents become groups, numbered densely.
  std::vector<uint32_t> group_of(num_docs, kUnassigned);
  std::unordered_map<uint32_t, uint32_t> group_of_root;
  for (uint32_t d = 0; d < num_docs; ++d) {
    if (!is_tree[d]) continue;
    const uint32_t root = find(d);
    const auto [it, inserted] = group_of_root.emplace(
        root, static_cast<uint32_t>(group_of_root.size()));
    group_of[d] = it->second;
  }
  return group_of;
}

MetaDocumentSet BuildMetaDocuments(const MdbInput& input,
                                   const FlixOptions& options) {
  assert(input.graph != nullptr && input.doc_of != nullptr &&
         input.doc_roots != nullptr);
  const graph::Digraph& g = *input.graph;
  const std::vector<uint32_t>& doc_of = *input.doc_of;
  const size_t num_docs = input.doc_roots->size();

  std::vector<uint32_t> part_of(g.NumNodes(), 0);
  std::unordered_set<uint64_t> removed_edges;

  switch (options.config) {
    case MdbConfig::kNaive: {
      part_of = doc_of;
      break;
    }
    case MdbConfig::kUnconnectedHopi: {
      graph::PartitionOptions popts;
      popts.max_nodes = options.partition_bound;
      const graph::PartitionResult parts = graph::PartitionBySize(
          g, popts, options.element_level_partitions ? nullptr : &doc_of);
      part_of = parts.partition_of;
      break;
    }
    case MdbConfig::kMaximalPpo:
    case MdbConfig::kHybrid: {
      std::vector<std::pair<NodeId, NodeId>> accepted;
      std::vector<uint32_t> group_of_doc = GrowTreeGroups(input, &accepted);

      if (options.config == MdbConfig::kHybrid) {
        // Demote densely linked singleton tree groups to the HOPI region:
        // a document that joined no tree group but has many inter-document
        // links belongs to the interlinked part of the collection.
        std::vector<size_t> group_size(num_docs, 0);
        for (const uint32_t group : group_of_doc) {
          if (group != kUnassigned) ++group_size[group];
        }
        std::vector<size_t> cross_degree(num_docs, 0);
        for (NodeId u = 0; u < g.NumNodes(); ++u) {
          for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
            if (arc.kind != graph::EdgeKind::kLink) continue;
            if (doc_of[u] == doc_of[arc.target]) continue;
            ++cross_degree[doc_of[u]];
            ++cross_degree[doc_of[arc.target]];
          }
        }
        for (uint32_t d = 0; d < num_docs; ++d) {
          if (group_of_doc[d] != kUnassigned &&
              group_size[group_of_doc[d]] == 1 &&
              cross_degree[d] >= options.hybrid_dense_link_threshold) {
            group_of_doc[d] = kUnassigned;
          }
        }
        // Renumber groups densely after the demotion.
        std::unordered_map<uint32_t, uint32_t> remap;
        for (uint32_t& group : group_of_doc) {
          if (group == kUnassigned) continue;
          const auto [it, inserted] =
              remap.emplace(group, static_cast<uint32_t>(remap.size()));
          group = it->second;
        }
      }

      // Tree groups take ids [0, num_groups); leftover (non-tree or dense)
      // documents are appended after them.
      uint32_t num_groups = 0;
      for (const uint32_t group : group_of_doc) {
        if (group != kUnassigned) num_groups = std::max(num_groups, group + 1);
      }

      if (options.config == MdbConfig::kMaximalPpo) {
        // Every non-tree document becomes its own meta document.
        uint32_t next = num_groups;
        for (uint32_t d = 0; d < num_docs; ++d) {
          if (group_of_doc[d] == kUnassigned) group_of_doc[d] = next++;
        }
        for (NodeId v = 0; v < g.NumNodes(); ++v) {
          part_of[v] = group_of_doc[doc_of[v]];
        }
      } else {
        // Hybrid: size-bounded partitions over the non-tree documents.
        std::vector<NodeId> leftover_nodes;
        for (NodeId v = 0; v < g.NumNodes(); ++v) {
          if (group_of_doc[doc_of[v]] == kUnassigned) {
            leftover_nodes.push_back(v);
          }
        }
        std::vector<NodeId> local_of;
        const graph::Digraph sub = g.InducedSubgraph(leftover_nodes, &local_of);
        std::vector<uint32_t> sub_units(leftover_nodes.size());
        for (size_t i = 0; i < leftover_nodes.size(); ++i) {
          sub_units[i] = doc_of[leftover_nodes[i]];
        }
        // Compact unit ids for the partitioner.
        {
          std::unordered_map<uint32_t, uint32_t> remap;
          for (uint32_t& u : sub_units) {
            const auto [it, inserted] =
                remap.emplace(u, static_cast<uint32_t>(remap.size()));
            u = it->second;
          }
        }
        graph::PartitionOptions popts;
        popts.max_nodes = options.partition_bound;
        const graph::PartitionResult parts = graph::PartitionBySize(
            sub, popts,
            options.element_level_partitions ? nullptr : &sub_units);
        for (NodeId v = 0; v < g.NumNodes(); ++v) {
          if (group_of_doc[doc_of[v]] != kUnassigned) {
            part_of[v] = group_of_doc[doc_of[v]];
          } else {
            part_of[v] = num_groups + parts.partition_of[local_of[v]];
          }
        }
      }

      // Inside tree groups, only accepted inter-document links stay in the
      // graph; every other intra-group link edge is removed so the group
      // remains a forest for PPO.
      std::unordered_set<uint64_t> accepted_set;
      for (const auto& [u, v] : accepted) {
        accepted_set.insert(EdgeKey(u, v));
      }
      for (NodeId u = 0; u < g.NumNodes(); ++u) {
        for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
          if (arc.kind != graph::EdgeKind::kLink) continue;
          if (part_of[u] != part_of[arc.target]) continue;
          // Intra-group link in a tree group (groups are exactly the
          // partitions with id < num_groups)?
          if (part_of[u] < num_groups &&
              !accepted_set.contains(EdgeKey(u, arc.target))) {
            removed_edges.insert(EdgeKey(u, arc.target));
          }
        }
      }
      break;
    }
  }

  const uint32_t num_parts = Compact(part_of);
  return Assemble(g, part_of, num_parts, removed_edges);
}

}  // namespace flix::core
