// FliX facade: build the framework over an XML collection, then query it.
//
// Usage:
//   xml::Collection collection;
//   ... AddXml(...) ...
//   collection.ResolveAllLinks();
//   FlixOptions options;
//   options.config = MdbConfig::kHybrid;
//   auto flix = Flix::Build(collection, options);
//   flix->FindDescendantsByName(start, "article", {}, sink);
#ifndef FLIX_FLIX_FLIX_H_
#define FLIX_FLIX_FLIX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "flix/config.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "flix/index_builder.h"
#include "flix/meta_document.h"
#include "flix/pee.h"
#include "flix/query_cache.h"
#include "xml/collection.h"

namespace flix::storage {
class PagedFileReader;
}  // namespace flix::storage

namespace flix::core {

struct FlixStats {
  double build_ms = 0;
  // Phase breakdown of build_ms (Load fills them with load-phase times):
  // meta document partitioning, strategy selection, and index construction.
  double mdb_ms = 0;
  double iss_ms = 0;
  double index_build_ms = 0;
  size_t num_meta_documents = 0;
  size_t num_cross_links = 0;
  size_t total_index_bytes = 0;
  std::vector<MetaIndexStats> per_meta;

  // Count of meta documents per strategy.
  size_t num_ppo = 0;
  size_t num_hopi = 0;
  size_t num_apex = 0;
};

class Flix {
 public:
  // Builds meta documents (MDB), selects strategies (ISS) and builds all
  // indexes (IB) for `collection`, whose links must already be resolved
  // (Collection::ResolveAllLinks). The collection must outlive the Flix
  // instance.
  static StatusOr<std::unique_ptr<Flix>> Build(
      const xml::Collection& collection, const FlixOptions& options = {});

  // Persists the built framework (meta documents + indexes) so a process
  // can skip the build phase. The collection itself is not stored; Load
  // must be given the same collection (validated by element count and
  // document names' element layout).
  Status Save(std::ostream& out) const;
  static StatusOr<std::unique_ptr<Flix>> Load(std::istream& in,
                                              const xml::Collection& collection);

  // On-disk representation for the path-based Save overload.
  enum class IndexFormat {
    // Stream format: compact, but Load copies everything onto the heap.
    kHeap,
    // Paged format (storage/format.h): Load mmaps the file and serves
    // queries zero-copy out of the mapping — cold opens touch only the
    // pages a query needs, so collections larger than RAM stay usable.
    kMapped,
  };

  struct LoadOptions {
    // Verify every segment checksum up front when opening a paged file.
    // Costs one sequential read of the file; turning it off defers
    // corruption detection to `flixctl check` / Validate.
    bool verify_checksums = true;
  };

  // Path-based persistence. Save writes the requested format; Load sniffs
  // the format from the file's magic, so either format loads through the
  // same call. A paged load pins the file mapping for the instance's
  // lifetime; indexes replaced later (adaptive ISS) are ordinary heap
  // indexes layered over the mapped base.
  Status Save(const std::string& path,
              IndexFormat format = IndexFormat::kHeap) const;
  static StatusOr<std::unique_ptr<Flix>> Load(const std::string& path,
                                              const xml::Collection& collection,
                                              const LoadOptions& options);
  static StatusOr<std::unique_ptr<Flix>> Load(
      const std::string& path, const xml::Collection& collection) {
    return Load(path, collection, LoadOptions());
  }

  const FlixStats& stats() const { return stats_; }
  const xml::Collection& collection() const { return collection_; }
  const MetaDocumentSet& meta_documents() const { return set_; }
  const PathExpressionEvaluator& pee() const { return *pee_; }
  const FlixOptions& options() const { return options_; }

  // Tag id for an element name, or kInvalidTag if it never occurs.
  TagId LookupTag(std::string_view name) const;

  // Queries by element name (convenience wrappers over the PEE; see pee.h
  // for semantics). Unknown names yield no results.
  void FindDescendantsByName(NodeId start, std::string_view name,
                             const QueryOptions& options,
                             const ResultSink& sink) const;
  std::vector<Result> FindDescendantsByName(NodeId start,
                                            std::string_view name,
                                            const QueryOptions& options = {}) const;
  std::vector<Result> FindAncestorsByName(NodeId start, std::string_view name,
                                          const QueryOptions& options = {}) const;
  std::vector<Result> EvaluateTypeQuery(std::string_view start_name,
                                        std::string_view result_name,
                                        const QueryOptions& options = {}) const;
  bool IsConnected(NodeId a, NodeId b, Distance max_distance = -1) const {
    return pee_->IsConnected(a, b, max_distance);
  }
  Distance FindDistance(NodeId a, NodeId b, Distance max_distance = -1) const {
    return pee_->FindDistance(a, b, max_distance);
  }

  // Result cache (enabled via FlixOptions::query_cache_capacity); consulted
  // by the vector-returning FindDescendantsByName for unconstrained queries.
  const QueryCache* query_cache() const { return cache_.get(); }

  // Atomically publishes a replacement index for one meta document and
  // updates the profiler's partition identity. Called by the adaptive ISS
  // (flix/adapt.h) after the replacement passed validation; queries holding
  // Acquire() snapshots of the displaced index drain safely and release it.
  // Single writer assumed — run one StrategyMigrator per Flix instance.
  void ReplacePartitionIndex(uint32_t partition,
                             std::shared_ptr<index::PathIndex> index,
                             uint64_t build_ns);

  // Runtime switch for workload-adaptive strategy re-selection. Not
  // persisted (like FlixOptions::workload_profiling); StrategyMigrator
  // refuses to apply migrations while it is off.
  void SetAdaptiveIss(bool enabled) { options_.adaptive_iss = enabled; }

  // Runtime switch for the ALT-guided point-query path (`flixctl
  // --no-landmarks`, differential tests): when off, the PEE ignores the
  // landmark cache and runs the blind Dijkstra. The cache stays resident,
  // so re-enabling is instant.
  void SetLandmarksEnabled(bool enabled) { set_.landmarks.SetEnabled(enabled); }

  // Changes the landmark count used by subsequent RebuildLandmarks / Save.
  void SetLandmarkCount(size_t count) { options_.landmark_count = count; }

  // Rebuilds the landmark cache from the live collection and partitioning
  // and atomically publishes it; returns the number of in-flight queries
  // that still held the displaced cache (metered as
  // flix.pee.guided.stale_reads). Queries racing the swap stay correct —
  // a stale cache is still admissible for the unchanged element graph.
  size_t RebuildLandmarks();

  // Per-meta-document workload attribution (see obs/profile.h). Owned by
  // this instance — partition ids are local to one index, so side-by-side
  // Flix instances in one process never mix their profiles. Recording is
  // gated by FlixOptions::workload_profiling (flip at runtime with
  // profiler().SetEnabled()).
  obs::WorkloadProfiler& profiler() { return profiler_; }
  const obs::WorkloadProfiler& profiler() const { return profiler_; }
  // Convenience snapshot of the profiler (serialize with ProfileToJson).
  obs::WorkloadProfile Profile() const { return profiler_.Snapshot(); }

  // Cumulative traversal counters over all facade queries — the statistics
  // feed for the paper's self-tuning idea (Section 7).
  QueryStats CumulativeQueryStats() const EXCLUDES(stats_mutex_);

  // Verifies the built framework: the global-node mapping and the meta
  // documents' global_nodes lists must be exact inverses (every element in
  // exactly one meta document), and every meta document's index must pass
  // its strategy-specific Validate(). Returns the first violation found.
  // The full collecting walk — cross-link exactness, differential query
  // oracle, metrics — lives in check::ValidateFramework (src/check/).
  Status Validate(const index::ValidateOptions& options = {}) const;

  // Publishes this instance's state (build shape, cache stats, facade query
  // totals) as gauges into the process-wide registry and returns a combined
  // snapshot of everything recorded so far — build phase timings, PEE query
  // latency histograms and traversal counters included. Export with
  // obs::ToJson / obs::ToText.
  obs::MetricsSnapshot MetricsSnapshot() const EXCLUDES(stats_mutex_);

  struct TuningAdvice {
    bool rebuild_recommended = false;
    double links_per_query = 0;
    std::string reason;
  };
  // Flags a suboptimal meta-document choice: when queries follow many links
  // at run time, the build phase should be repeated with coarser meta
  // documents (larger partition bound or a more HOPI-leaning config).
  TuningAdvice RecommendReconfiguration(double max_links_per_query = 16) const
      EXCLUDES(stats_mutex_);

 private:
  Flix(const xml::Collection& collection, FlixOptions options)
      : collection_(collection), options_(options) {}

  void AccumulateStats(const QueryStats& stats) const EXCLUDES(stats_mutex_);

  // Shared tail of both Load paths (stream and paged): profiler seeding,
  // PEE/cache construction, stats and load metrics.
  void FinishLoadedInstance(uint64_t load_ns);

  // Paged-format persistence (flix_paged.cc).
  Status SavePaged(const std::string& path) const;
  static StatusOr<std::unique_ptr<Flix>> LoadPaged(
      const std::string& path, const xml::Collection& collection,
      const LoadOptions& options);

  const xml::Collection& collection_;
  FlixOptions options_;
  // Pins the file mapping a paged Load borrowed set_'s views from; declared
  // before set_ so it is destroyed after everything that aliases it. Null
  // for built or stream-loaded instances.
  std::shared_ptr<storage::PagedFileReader> mapping_;
  MetaDocumentSet set_;
  // Declared before pee_/cache_, which hold pointers to it: destruction
  // runs in reverse order, so the consumers die first.
  obs::WorkloadProfiler profiler_;
  std::unique_ptr<PathExpressionEvaluator> pee_;
  std::unique_ptr<QueryCache> cache_;
  FlixStats stats_;

  // Engine rank: MetricsSnapshot() holds it while reading metrics-rank
  // registry gauges, which the hierarchy permits (engine precedes metrics).
  mutable Mutex stats_mutex_ ACQUIRED_AFTER(lockorder::kEngine)
      ACQUIRED_BEFORE(lockorder::kPartitionHandle);
  mutable QueryStats cumulative_stats_ GUARDED_BY(stats_mutex_);
  mutable size_t num_queries_ GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_FLIX_H_
