// Workload-adaptive Indexing Strategy Selection (paper Section 7 made
// operational): re-select each meta document's strategy from the observed
// workload and migrate to the winner online, without stopping queries.
//
// The observe→decide→act loop:
//   observe — obs::WorkloadProfiler attributes probes, cursor pulls and
//             queries to individual meta documents (PR 4);
//   decide  — RecommendStrategies projects each partition's observed work
//             onto per-strategy calibration constants (CostModel, measured
//             once by bench_strategy_costs) and recommends the cheapest
//             strategy, with a hysteresis bar so a migration only happens
//             when the projected win clearly exceeds the rebuild cost;
//   act     — StrategyMigrator builds the replacement index off the query
//             path, validates it (per-strategy Validate() + a sampled
//             differential probe against the live index), then swaps it
//             atomically through IndexHandle::Replace. Queries holding
//             Acquire() snapshots of the old index drain safely.
//
// Cost model. For strategy s over a partition with n nodes and observed
// counters (probes, pulls):
//
//   cost(s)    = probes * probe_ns(s) + pulls * pull_ns(s)
//                + memory_weight * bytes_per_node(s) * n
//   rebuild(s) = n * build_ns_per_node(s)
//
// and a partition migrates from `current` to the cheapest candidate `best`
// iff it has enough evidence (queries >= min_queries) and
//
//   cost(current) - cost(best) > hysteresis * rebuild(best).
//
// The hysteresis factor is what prevents flapping: after a migration the
// observed counters describe the *new* strategy, so the reverse move has to
// clear the same multiple of the rebuild cost from scratch — an A→B→A
// oscillation would need the workload itself to swing by more than
// 2 * hysteresis rebuilds' worth of probe cost.
//
// Counters: flix.adapt.recommended, flix.adapt.migrated,
// flix.adapt.rejected_hysteresis, flix.adapt.validation_failed.
#ifndef FLIX_FLIX_ADAPT_H_
#define FLIX_FLIX_ADAPT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "flix/flix.h"
#include "index/path_index.h"
#include "obs/profile.h"

namespace flix::core {

// Calibration constants for one strategy. All values are per-operation
// averages measured on a representative machine by bench_strategy_costs;
// recommendations depend only on cost *ratios*, so constants measured on a
// different machine still rank strategies correctly unless the hardware
// inverts a ratio (e.g. an APEX probe becoming cheaper than a HOPI lookup).
struct StrategyCosts {
  double probe_ns = 0;          // one IsReachable/DistanceBetween/list probe
  double pull_ns = 0;           // one cursor Next()
  double bytes_per_node = 0;    // index heap footprint per graph node
  double build_ns_per_node = 0; // construction time per graph node
};

struct CostModel {
  StrategyCosts ppo;
  StrategyCosts hopi;
  StrategyCosts apex;

  const StrategyCosts& For(index::StrategyKind kind) const;

  // Constants measured by `bench_strategy_costs` (see bench/) on the
  // reference container; re-run it and update these when the hardware or a
  // strategy implementation changes materially.
  static CostModel Measured();
};

struct AdaptOptions {
  // A migration must win back this multiple of the replacement's projected
  // build cost before it is applied. 0 migrates on any projected win.
  double hysteresis = 3.0;
  // Partitions with fewer observed queries than this are never touched —
  // too little evidence to project a workload from.
  uint64_t min_queries = 8;
  // Weight (ns per byte) of index memory in the cost; 0 ranks purely by
  // query work, > 0 lets cold partitions drift to memory-lean strategies.
  double memory_weight = 0;
};

// One per-partition verdict of the cost model.
struct Recommendation {
  uint32_t partition = 0;
  index::StrategyKind current = index::StrategyKind::kHopi;
  index::StrategyKind best = index::StrategyKind::kHopi;
  uint64_t nodes = 0;
  uint64_t queries = 0;       // observed queries (evidence)
  double current_cost_ns = 0; // projected cost of staying
  double best_cost_ns = 0;    // projected cost of the cheapest candidate
  double rebuild_cost_ns = 0; // projected build cost of `best`
  // The verdict: migrate now, or a positive win that did not clear the
  // hysteresis bar (mutually exclusive; both false = keep).
  bool migrate = false;
  bool rejected_hysteresis = false;
};

// Projects `profile`'s observed per-partition work onto `model` and emits
// one Recommendation per eligible meta document (current strategy PPO, HOPI
// or APEX; PPO is only a candidate where the local graph is a forest). The
// current strategy is read from the live index handles, never from the
// profile, so recommendations stay correct across earlier migrations.
// Increments flix.adapt.{recommended,rejected_hysteresis}.
std::vector<Recommendation> RecommendStrategies(
    const Flix& flix, const obs::WorkloadProfile& profile,
    const CostModel& model = CostModel::Measured(),
    const AdaptOptions& options = {});

// Renders the `flixctl adapt` recommendation table (all partitions, hottest
// first; `top_n` = 0 prints every partition).
std::string RecommendationsToText(const std::vector<Recommendation>& recs,
                                  size_t top_n = 0);

struct MigrationOptions {
  // Structural validation knobs for the replacement index.
  index::ValidateOptions validate;
  // Sampled differential probe against the live index: (from, to) pairs for
  // IsReachable/DistanceBetween diffs, sources for enumeration diffs.
  size_t sample_pairs = 256;
  size_t sample_sources = 16;
  uint64_t seed = 20260809;
  // Test-only: runs on the replacement after build and link registration
  // but before validation (the mutation tests corrupt it here to prove a
  // broken replacement is rejected and the old index stays live).
  std::function<void(index::PathIndex&)> replacement_hook;
};

// Executes migrations against one Flix instance. Use either synchronously
// (Migrate / RunOnce, e.g. from `flixctl adapt --apply`) or as a background
// loop (Start / Stop). Single-writer: run at most one migrator per Flix
// instance; queries may run concurrently throughout.
class StrategyMigrator {
 public:
  explicit StrategyMigrator(Flix& flix, CostModel model = CostModel::Measured(),
                            AdaptOptions options = {},
                            MigrationOptions migration = {});
  ~StrategyMigrator();  // Stops the background loop if running.

  StrategyMigrator(const StrategyMigrator&) = delete;
  StrategyMigrator& operator=(const StrategyMigrator&) = delete;

  // Builds, validates and swaps in `rec.best` for one partition. A no-op
  // (Ok) if the partition already runs `best`. On validation failure the
  // replacement is discarded, the old index stays live, and
  // flix.adapt.validation_failed is incremented. Requires
  // FlixOptions::adaptive_iss (FailedPreconditionError otherwise).
  Status Migrate(const Recommendation& rec);

  // One full observe→decide→act pass over the live profile; returns the
  // number of partitions migrated. Per-partition validation failures are
  // counted and skipped, not fatal.
  StatusOr<size_t> RunOnce();

  // Background re-selection every `interval` (the `--watch` mode and the
  // embedded deployment). Start replaces a previous loop.
  void Start(std::chrono::milliseconds interval) EXCLUDES(mutex_);
  void Stop() EXCLUDES(mutex_);

 private:
  Flix& flix_;
  const CostModel model_;
  const AdaptOptions options_;
  const MigrationOptions migration_;

  // Engine rank: held only around the stop flag and the wakeup wait —
  // never across RunOnce, which takes handle/cache/metrics locks itself.
  Mutex mutex_ ACQUIRED_AFTER(lockorder::kEngine)
      ACQUIRED_BEFORE(lockorder::kPartitionHandle);
  CondVar cv_;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_ADAPT_H_
