// LRU cache for query results — the "caching results of frequent
// (sub-)queries" improvement of Section 7. Cached result lists never need
// invalidation: an index is only ever replaced by the adaptive ISS with
// another exact index over the same graph, so every strategy swap preserves
// result sets bit-for-bit.
#ifndef FLIX_FLIX_QUERY_CACHE_H_
#define FLIX_FLIX_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/dcheck.h"
#include "common/sync.h"
#include "common/types.h"
#include "flix/streamed_list.h"
#include "obs/profile.h"

namespace flix::core {

// Aggregate view of the cache's activity since construction. All live
// indexes answer exactly, so an overwrite only ever replaces a result list
// with an identical one recomputed by a racing query — the
// insertions/overwrites split makes that (otherwise invisible) wasted work
// observable.
struct QueryCacheStats {
  size_t size = 0;
  size_t capacity = 0;
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;  // fresh keys added
  size_t overwrites = 0;  // existing keys replaced
  size_t evictions = 0;   // entries dropped by the LRU bound

  double HitRate() const {
    const size_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

// Thread-safe LRU cache keyed by (start element, result tag).
class QueryCache {
 public:
  // Sentinel for Lookup's partition parameter: no per-partition attribution.
  static constexpr uint32_t kNoPartition = UINT32_MAX;

  explicit QueryCache(size_t capacity) : capacity_(capacity) {}

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Routes per-partition hit/miss attribution to `profiler` (nullptr
  // detaches). Callers then pass the start element's meta document to
  // Lookup, so the profiler can report hit rates per partition.
  void AttachProfiler(obs::WorkloadProfiler* profiler) {
    profiler_ = profiler;
  }

  // Returns true and fills `results` on a hit (also refreshes recency).
  // `partition`, when not kNoPartition, attributes the hit/miss to that
  // meta document in the attached profiler.
  bool Lookup(NodeId start, TagId tag, std::vector<Result>* results,
              uint32_t partition = kNoPartition) EXCLUDES(mutex_) {
    if (capacity_ == 0) return false;
    bool hit = false;
    {
      MutexLock lock(mutex_);
      const auto it = index_.find(Key(start, tag));
      if (it == index_.end()) {
        ++misses_;
      } else {
        lru_.splice(lru_.begin(), lru_, it->second);
        *results = it->second->results;
        ++hits_;
        hit = true;
      }
    }
    if (profiler_ != nullptr && partition != kNoPartition) {
      if (hit) {
        profiler_->RecordCacheHit(partition);
      } else {
        profiler_->RecordCacheMiss(partition);
      }
    }
    return hit;
  }

  void Insert(NodeId start, TagId tag, std::vector<Result> results)
      EXCLUDES(mutex_) {
    if (capacity_ == 0) return;
    MutexLock lock(mutex_);
    const uint64_t key = Key(start, tag);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->results = std::move(results);
      ++overwrites_;
      return;
    }
    lru_.push_front(Entry{key, std::move(results)});
    index_[key] = lru_.begin();
    ++insertions_;
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
    // The LRU list and the key index must stay in lockstep, and eviction
    // must keep the list within its capacity bound.
    FLIX_DCHECK(index_.size() == lru_.size(),
                "QueryCache index out of sync with LRU list");
    FLIX_DCHECK(lru_.size() <= capacity_,
                "QueryCache exceeded its capacity bound");
  }

  QueryCacheStats Stats() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    QueryCacheStats stats;
    stats.size = lru_.size();
    stats.capacity = capacity_;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.insertions = insertions_;
    stats.overwrites = overwrites_;
    stats.evictions = evictions_;
    return stats;
  }

  size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return lru_.size();
  }
  size_t hits() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return hits_;
  }
  size_t misses() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return misses_;
  }

 private:
  struct Entry {
    uint64_t key;
    std::vector<Result> results;
  };

  static uint64_t Key(NodeId start, TagId tag) {
    return (static_cast<uint64_t>(start) << 32) | tag;
  }

  const size_t capacity_;
  // Called outside mutex_ (the profiler takes its own metrics-rank lock).
  obs::WorkloadProfiler* profiler_ = nullptr;
  mutable Mutex mutex_ ACQUIRED_AFTER(lockorder::kCache)
      ACQUIRED_BEFORE(lockorder::kMetrics);
  std::list<Entry> lru_ GUARDED_BY(mutex_);
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_
      GUARDED_BY(mutex_);
  size_t hits_ GUARDED_BY(mutex_) = 0;
  size_t misses_ GUARDED_BY(mutex_) = 0;
  size_t insertions_ GUARDED_BY(mutex_) = 0;
  size_t overwrites_ GUARDED_BY(mutex_) = 0;
  size_t evictions_ GUARDED_BY(mutex_) = 0;
};

}  // namespace flix::core

#endif  // FLIX_FLIX_QUERY_CACHE_H_
