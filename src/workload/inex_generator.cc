#include "workload/inex_generator.h"

#include <string_view>

namespace flix::workload {
namespace {

constexpr std::string_view kWords[] = {
    "retrieval",  "elements", "structure", "evaluation", "relevance",
    "assessment", "queries",  "documents", "granularity", "overlap",
    "focused",    "passage",  "semantics", "markup",      "corpus",
};

std::string DocName(size_t index) {
  return "an/art" + std::to_string(index);
}

std::string Sentence(Rng& rng, int words) {
  std::string text;
  for (int w = 0; w < words; ++w) {
    if (w > 0) text += ' ';
    text += kWords[rng.Uniform(std::size(kWords))];
  }
  return text;
}

void EmitSection(const InexOptions& options, Rng& rng, int depth,
                 std::string& xml, const std::string& indent) {
  const char* tag = depth == 0 ? "sec" : "ss1";
  xml += indent + "<" + std::string(tag) + ">\n";
  xml += indent + "  <st>" + Sentence(rng, 3) + "</st>\n";
  const int paragraphs = 1 + static_cast<int>(rng.Uniform(
      static_cast<uint64_t>(2 * options.paragraphs_per_section)));
  for (int p = 0; p < paragraphs; ++p) {
    xml += indent + "  <p>" + Sentence(rng, 8 + static_cast<int>(rng.Uniform(10))) +
           "</p>\n";
  }
  if (depth == 0 && rng.Bernoulli(options.subsection_probability)) {
    EmitSection(options, rng, 1, xml, indent + "  ");
  }
  xml += indent + "</" + std::string(tag) + ">\n";
}

}  // namespace

std::string GenerateArticleXml(const InexOptions& options, size_t index,
                               size_t num_articles, Rng& rng) {
  std::string xml = "<article>\n  <fm>\n";
  xml += "    <ti>" + Sentence(rng, 5) + "</ti>\n";
  const int authors = 1 + static_cast<int>(rng.Uniform(4));
  for (int a = 0; a < authors; ++a) {
    xml += "    <au>Author " + std::to_string(rng.Uniform(500)) + "</au>\n";
  }
  xml += "    <abs>" + Sentence(rng, 20) + "</abs>\n";
  xml += "  </fm>\n  <bdy>\n";
  const int sections = 1 + static_cast<int>(rng.Uniform(
      static_cast<uint64_t>(2 * options.sections_per_article)));
  for (int s = 0; s < sections; ++s) {
    EmitSection(options, rng, 0, xml, "    ");
  }
  xml += "  </bdy>\n  <bm>\n";
  // Bibliography with occasional cross-article references.
  const int refs = static_cast<int>(rng.Uniform(
      static_cast<uint64_t>(2 * options.cross_refs_per_article) + 1));
  for (int r = 0; r < refs && num_articles > 1; ++r) {
    size_t target;
    do {
      target = rng.Uniform(num_articles);
    } while (target == index);
    xml += "    <ref href=\"" + DocName(target) + "\"/>\n";
  }
  xml += "    <bib>" + Sentence(rng, 6) + "</bib>\n";
  xml += "  </bm>\n</article>\n";
  return xml;
}

StatusOr<xml::Collection> GenerateInex(const InexOptions& options) {
  Rng rng(options.seed);
  xml::Collection collection;
  for (size_t i = 0; i < options.num_articles; ++i) {
    const std::string text =
        GenerateArticleXml(options, i, options.num_articles, rng);
    StatusOr<DocId> added = collection.AddXml(text, DocName(i));
    if (!added.ok()) return added.status();
  }
  collection.ResolveAllLinks();
  return collection;
}

}  // namespace flix::workload
