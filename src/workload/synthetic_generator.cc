#include "workload/synthetic_generator.h"

#include <string>
#include <vector>

#include "xml/serializer.h"

namespace flix::workload {
namespace {

// One planned outgoing link: owning document gets an <xref href="..."/>.
struct PlannedLink {
  size_t src_doc;
  std::string href;
};

// Builds a random tree-shaped document: element k hangs under a random
// earlier element whose depth allows it; every element gets an anchor id
// "e<k>". `links` lists the hrefs to embed as <xref> elements.
xml::Document BuildRandomDocument(const SyntheticOptions& options,
                                  xml::NamePool& pool, std::string name,
                                  size_t num_elements,
                                  const std::vector<std::string>& links,
                                  Rng& rng) {
  xml::Document doc(std::move(name));
  const TagId root_tag = pool.Intern("doc");
  std::vector<int> depth(num_elements, 0);

  const xml::ElementId root = doc.AddElement(root_tag, xml::kInvalidElement);
  doc.element(root).attributes.push_back({"id", "e0"});
  doc.RegisterAnchor("e0", root);

  for (size_t k = 1; k < num_elements; ++k) {
    // Pick a parent that keeps depth within bounds.
    xml::ElementId parent;
    do {
      parent = static_cast<xml::ElementId>(rng.Uniform(k));
    } while (depth[parent] + 1 > options.max_depth);
    const TagId tag =
        pool.Intern("t" + std::to_string(rng.Uniform(options.num_tags)));
    const xml::ElementId e = doc.AddElement(tag, parent);
    depth[e] = depth[parent] + 1;
    const std::string anchor = "e" + std::to_string(k);
    doc.element(e).attributes.push_back({"id", anchor});
    doc.RegisterAnchor(anchor, e);
  }

  const TagId xref_tag = pool.Intern("xref");
  for (const std::string& href : links) {
    // Attach each link element under a random existing element.
    const xml::ElementId parent =
        static_cast<xml::ElementId>(rng.Uniform(num_elements));
    const xml::ElementId e = doc.AddElement(xref_tag, parent);
    doc.element(e).attributes.push_back({"href", href});
  }
  return doc;
}

}  // namespace

std::string GenerateDocumentXml(const SyntheticOptions& options,
                                std::string_view doc_label,
                                size_t num_elements, Rng& rng) {
  xml::NamePool pool;
  const xml::Document doc = BuildRandomDocument(
      options, pool, std::string(doc_label), num_elements, {}, rng);
  return xml::Serialize(doc, pool);
}

StatusOr<xml::Collection> GenerateSynthetic(const SyntheticOptions& options) {
  Rng rng(options.seed);
  xml::Collection collection;

  struct DocPlan {
    std::string name;
    size_t num_elements;
    std::vector<std::string> links;
  };
  std::vector<DocPlan> plans;
  const auto draw_elements = [&] {
    return options.min_elements +
           rng.Uniform(options.max_elements - options.min_elements + 1);
  };

  const size_t tree_begin = plans.size();
  for (size_t i = 0; i < options.tree_docs; ++i) {
    plans.push_back({"tree" + std::to_string(i), draw_elements(), {}});
  }
  const size_t dense_begin = plans.size();
  for (size_t i = 0; i < options.dense_docs; ++i) {
    plans.push_back({"dense" + std::to_string(i), draw_elements(), {}});
  }
  for (size_t i = 0; i < options.isolated_docs; ++i) {
    plans.push_back({"iso" + std::to_string(i), draw_elements(), {}});
  }

  // Tree region: document i > 0 is linked from a random earlier region
  // member, targeting its root — the shape Maximal PPO thrives on.
  for (size_t i = 1; i < options.tree_docs; ++i) {
    const size_t parent = tree_begin + rng.Uniform(i);
    plans[parent].links.push_back(plans[tree_begin + i].name);
  }

  // Dense region: several links per document to random elements of random
  // other members (cycles expected and desired), plus intra-document links
  // that make each member's own element graph non-tree.
  for (size_t i = 0; i < options.dense_docs; ++i) {
    const int count = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(2 * options.dense_links_per_doc) + 1));
    for (int c = 0; c < count && options.dense_docs > 1; ++c) {
      size_t j;
      do {
        j = rng.Uniform(options.dense_docs);
      } while (j == i);
      const DocPlan& target = plans[dense_begin + j];
      const size_t anchor = rng.Uniform(target.num_elements);
      plans[dense_begin + i].links.push_back(target.name + "#e" +
                                             std::to_string(anchor));
    }
    const int intra = static_cast<int>(rng.Uniform(
        static_cast<uint64_t>(2 * options.dense_intra_links_per_doc) + 1));
    DocPlan& plan = plans[dense_begin + i];
    for (int c = 0; c < intra; ++c) {
      plan.links.push_back("#e" + std::to_string(rng.Uniform(plan.num_elements)));
    }
  }

  for (const DocPlan& plan : plans) {
    xml::Document doc =
        BuildRandomDocument(options, collection.pool(), plan.name,
                            plan.num_elements, plan.links, rng);
    StatusOr<DocId> added = collection.AddDocument(std::move(doc));
    if (!added.ok()) return added.status();
  }
  collection.ResolveAllLinks();
  return collection;
}

}  // namespace flix::workload
