#include "workload/dblp_generator.h"

#include <algorithm>
#include <cmath>
#include <string_view>

namespace flix::workload {
namespace {

struct Venue {
  std::string_view key;       // document-name prefix
  std::string_view name;      // booktitle / journal text
  bool is_journal;
};

constexpr Venue kVenues[] = {
    {"edbt", "EDBT", false},   {"icde", "ICDE", false},
    {"sigmod", "SIGMOD", false}, {"vldb", "VLDB", false},
    {"tods", "TODS", true},    {"vldbj", "VLDB Journal", true},
};

constexpr std::string_view kTitleWords[] = {
    "efficient", "indexing",   "queries",   "XML",        "databases",
    "adaptive",  "structures", "semistructured", "processing", "optimization",
    "evaluation", "distributed", "caching",  "links",      "retrieval",
    "ranking",   "connection", "path",      "graph",      "storage",
};

constexpr std::string_view kKeywords[] = {
    "index", "xml", "xpath", "links", "reachability",
    "labels", "summary", "partitioning", "ranking", "ontology",
};

std::string DocName(size_t index) {
  const Venue& venue = kVenues[index % std::size(kVenues)];
  return std::string(venue.key) + "/pub" + std::to_string(index);
}

std::string MakeTitle(Rng& rng) {
  std::string title;
  const int words = 3 + static_cast<int>(rng.Uniform(5));
  for (int w = 0; w < words; ++w) {
    if (w > 0) title += ' ';
    title += kTitleWords[rng.Uniform(std::size(kTitleWords))];
  }
  return title;
}

}  // namespace

std::string GeneratePublicationXml(const DblpOptions& options, size_t index,
                                   Rng& rng, const ZipfSampler* zipf) {
  const Venue& venue = kVenues[index % std::size(kVenues)];
  const int year = 1975 + static_cast<int>(rng.Uniform(29));
  const std::string_view root_tag =
      venue.is_journal ? "article" : "inproceedings";

  std::string xml = "<?xml version=\"1.0\"?>\n<";
  xml += root_tag;
  xml += " key=\"";
  xml += DocName(index);
  xml += "\">\n";
  xml += "  <title>" + MakeTitle(rng) + "</title>\n";

  // Authors: 1 + Poisson-ish count around the configured mean.
  const int num_authors =
      1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(
              std::max(1.0, 2.0 * (options.authors_per_publication - 1.0)) + 1)));
  std::vector<size_t> authors;
  for (int a = 0; a < num_authors; ++a) {
    authors.push_back(rng.Uniform(options.num_authors));
    xml += "  <author id=\"a" + std::to_string(authors.back()) + "\">Author " +
           std::to_string(authors.back()) + "</author>\n";
  }

  if (venue.is_journal) {
    xml += "  <journal>" + std::string(venue.name) + "</journal>\n";
    xml += "  <volume>" + std::to_string(1 + rng.Uniform(30)) + "</volume>\n";
    xml += "  <number>" + std::to_string(1 + rng.Uniform(4)) + "</number>\n";
  } else {
    xml += "  <booktitle>" + std::string(venue.name) + "</booktitle>\n";
    xml += "  <month>" + std::to_string(1 + rng.Uniform(12)) + "</month>\n";
  }
  const int first_page = 1 + static_cast<int>(rng.Uniform(500));
  xml += "  <year>" + std::to_string(year) + "</year>\n";
  xml += "  <pages>" + std::to_string(first_page) + "-" +
         std::to_string(first_page + 8 + static_cast<int>(rng.Uniform(18))) +
         "</pages>\n";
  xml += "  <ee>db/" + DocName(index) + ".html</ee>\n";
  xml += "  <url>http://example.org/" + DocName(index) + "</url>\n";
  xml += "  <crossref>" + std::string(venue.key) + "/" +
         std::to_string(year) + "</crossref>\n";
  xml += "  <publisher>" + std::string(venue.is_journal ? "ACM" : "Springer") +
         "</publisher>\n";
  xml += "  <cdrom>" + std::string(venue.key) + std::to_string(year) +
         ".pdf</cdrom>\n";
  xml += "  <note>" + MakeTitle(rng) + "</note>\n";
  xml += "  <abstract>" + MakeTitle(rng) + " " + MakeTitle(rng) +
         "</abstract>\n";

  xml += "  <keywords>\n";
  const int num_keywords = 4 + static_cast<int>(rng.Uniform(4));
  for (int k = 0; k < num_keywords; ++k) {
    xml += "    <keyword>";
    xml += kKeywords[rng.Uniform(std::size(kKeywords))];
    xml += "</keyword>\n";
  }
  xml += "  </keywords>\n";

  // Citations: inter-document links to earlier publications (papers cite
  // the past), Zipf-skewed so that a few classics collect many citations.
  if (index > 0) {
    // Expected count scales so that the corpus-wide average matches
    // citations_per_publication even though early papers can cite little.
    const double lambda = options.citations_per_publication;
    const int num_cites = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(2 * lambda + 1)));
    if (num_cites > 0) {
      xml += "  <citations>\n";
      ZipfSampler local_zipf(zipf == nullptr ? index : 0,
                             options.citation_zipf);
      const ZipfSampler& sampler = zipf == nullptr ? local_zipf : *zipf;
      for (int c = 0; c < num_cites; ++c) {
        size_t target;
        if (rng.Bernoulli(options.recent_citation_fraction)) {
          const size_t window = std::min(options.recent_window, index);
          target = index - 1 - rng.Uniform(window);
        } else {
          target = sampler.Sample(rng);
        }
        xml += "    <cite href=\"" + DocName(target) + "\"/>\n";
      }
      xml += "  </citations>\n";
    }
  }

  // Occasional intra-document link: a contact element referring to an
  // author's local id anchor.
  if (!authors.empty() && rng.Bernoulli(options.intra_link_fraction)) {
    xml += "  <contact ref=\"a" + std::to_string(authors.front()) + "\"/>\n";
  }

  xml += "</";
  xml += root_tag;
  xml += ">\n";
  return xml;
}

StatusOr<xml::Collection> GenerateDblp(const DblpOptions& options) {
  Rng rng(options.seed);
  xml::Collection collection;
  // One shared sampler, grown to i entries before generating publication i,
  // keeps citation sampling O(log i) instead of rebuilding the CDF per
  // publication.
  ZipfSampler zipf(1, options.citation_zipf);
  for (size_t i = 0; i < options.num_publications; ++i) {
    zipf.Grow(i);
    const std::string text =
        GeneratePublicationXml(options, i, rng, i > 0 ? &zipf : nullptr);
    StatusOr<DocId> added = collection.AddXml(text, DocName(i));
    if (!added.ok()) return added.status();
  }
  collection.ResolveAllLinks();
  return collection;
}

}  // namespace flix::workload
