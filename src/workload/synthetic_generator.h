// Heterogeneous synthetic collections, modelled after the paper's Figure 1:
// a tree-like region (documents whose links form a tree pointing at roots)
// next to a densely interlinked region, plus isolated documents.
//
// Used by the integration tests, the examples, and the ablation benches to
// exercise the Meta Document Builder's configurations on controllable link
// structure.
#ifndef FLIX_WORKLOAD_SYNTHETIC_GENERATOR_H_
#define FLIX_WORKLOAD_SYNTHETIC_GENERATOR_H_

#include "common/rng.h"
#include "common/status.h"
#include "xml/collection.h"

namespace flix::workload {

struct SyntheticOptions {
  uint64_t seed = 7;

  // Tree-like region: documents connected by root-targeting links that form
  // a document-level tree (Maximal PPO indexes the whole region with PPO).
  size_t tree_docs = 4;
  // Densely linked region: every document links to several random elements
  // of other region members (cycles likely) and carries intra-document
  // idref links, so its element graph is not a tree.
  size_t dense_docs = 6;
  double dense_links_per_doc = 3.0;
  double dense_intra_links_per_doc = 1.5;
  // Documents with no links at all.
  size_t isolated_docs = 2;

  // Elements per generated document (min/max of a uniform draw).
  size_t min_elements = 8;
  size_t max_elements = 40;
  // Maximum tree depth within a document.
  int max_depth = 5;
  // Tag vocabulary size (tags are "t0", "t1", ...; roots are "doc").
  size_t num_tags = 8;
};

// Generates the collection and resolves links.
StatusOr<xml::Collection> GenerateSynthetic(
    const SyntheticOptions& options = {});

// One random document tree as XML text (exposed for tests). Elements get
// ids "e0".."eN" so links can target them.
std::string GenerateDocumentXml(const SyntheticOptions& options,
                                std::string_view doc_label,
                                size_t num_elements, flix::Rng& rng);

}  // namespace flix::workload

#endif  // FLIX_WORKLOAD_SYNTHETIC_GENERATOR_H_
