// Query workload sampling and result-quality measurement.
//
// The paper evaluates a//b descendant queries from specific start elements
// and reports, besides timings, the "error rate": the fraction of results a
// configuration returned out of ascending-distance order. This module
// samples reproducible query sets and computes that metric plus exact-set
// comparisons against the BFS oracle.
#ifndef FLIX_WORKLOAD_QUERY_WORKLOAD_H_
#define FLIX_WORKLOAD_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "flix/streamed_list.h"
#include "graph/digraph.h"
#include "graph/traversal.h"
#include "xml/collection.h"

namespace flix::workload {

struct DescendantQuery {
  NodeId start = kInvalidNode;
  TagId tag = kInvalidTag;
  std::string tag_name;
};

struct QuerySamplerOptions {
  uint64_t seed = 123;
  size_t count = 20;
  // Only sample starts with at least this many matching descendants, so the
  // timing queries do non-trivial work (0 = any start).
  size_t min_results = 1;
  // Tag name required for results; empty = sample a tag per query from the
  // tags that actually occur below the start.
  std::string result_tag;
};

// Samples descendant queries over the element graph. Starts are drawn
// uniformly from document root elements (like the paper's "Mohan's VLDB 99
// paper" start); the oracle filters out starts with too few results.
std::vector<DescendantQuery> SampleDescendantQueries(
    const xml::Collection& collection, const graph::Digraph& graph,
    const QuerySamplerOptions& options);

// Fraction of results whose distance is smaller than that of the result
// emitted immediately before them (adjacent inversions) — results "returned
// in wrong order" (Section 6). With FliX's block-wise emission this counts
// roughly one error per out-of-order block boundary, matching the magnitude
// the paper reports (8-13%).
double OrderErrorRate(const std::vector<core::Result>& results);

// True iff `results` contains exactly the oracle's node set (order and
// distance values ignored).
bool SameResultSet(const std::vector<core::Result>& results,
                   const std::vector<graph::NodeDist>& oracle);

// Pairs of (distinct) elements for connection tests, biased so that about
// half are connected according to the oracle.
std::vector<std::pair<NodeId, NodeId>> SampleConnectionPairs(
    const graph::Digraph& graph, size_t count, uint64_t seed);

}  // namespace flix::workload

#endif  // FLIX_WORKLOAD_QUERY_WORKLOAD_H_
