// Synthetic DBLP-style collection generator.
//
// The paper's experiments use an extract of DBLP: one XML document per
// 2nd-level element (article, inproceedings, ...) for publications in EDBT,
// ICDE, SIGMOD, VLDB, TODS and VLDB-J — 6,210 documents, 168,991 elements,
// 25,368 inter-document links, 27 MB. We have no network access to DBLP, so
// this generator synthesizes a collection with the same shape:
//   * each publication is its own document (root tag article/inproceedings)
//     with title/author/pages/year/... children and a short abstract;
//   * citation links (`cite` elements with an href="<doc>#<key>" attribute)
//     point at other publications' roots, drawn with Zipf-skewed popularity
//     and a bias towards earlier publications (papers cite the past);
//   * a small fraction of publications carry intra-document idref links
//     (e.g., an author element referring to a co-author entry) so the
//     collection is not purely tree-shaped.
//
// With default options the scale matches the paper's corpus: ~6.2k docs,
// ~169k elements, ~25.4k inter-document links.
#ifndef FLIX_WORKLOAD_DBLP_GENERATOR_H_
#define FLIX_WORKLOAD_DBLP_GENERATOR_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "xml/collection.h"

namespace flix::workload {

struct DblpOptions {
  uint64_t seed = 42;
  size_t num_publications = 6210;
  // Average citations per publication (inter-document links). The paper's
  // corpus has 25,368 links over 6,210 documents (~4.08 per document).
  double citations_per_publication = 4.08;
  // Zipf exponent for citation target popularity.
  double citation_zipf = 0.9;
  // Fraction of citations drawn from the recent window instead of the
  // global Zipf popularity — real bibliographies mix classics with recent
  // work, which is also what gives late publications deep citation chains.
  double recent_citation_fraction = 0.5;
  size_t recent_window = 150;
  // Fraction of publications that carry an intra-document idref link.
  double intra_link_fraction = 0.02;
  // Average number of authors per publication.
  double authors_per_publication = 2.6;
  // Size of the author name universe.
  size_t num_authors = 4000;
};

// Generates the collection by emitting XML text per publication and parsing
// it through the regular pipeline, then resolves all links.
StatusOr<xml::Collection> GenerateDblp(const DblpOptions& options = {});

// The XML text of one synthetic publication (exposed for tests). If `zipf`
// is non-null it must cover exactly the publications 0..index-1 and is used
// for citation sampling; otherwise a local sampler is built.
std::string GeneratePublicationXml(const DblpOptions& options, size_t index,
                                   flix::Rng& rng,
                                   const flix::ZipfSampler* zipf = nullptr);

}  // namespace flix::workload

#endif  // FLIX_WORKLOAD_DBLP_GENERATOR_H_
