// INEX-style corpus generator: the paper (Section 4.3) calls the INEX
// benchmark collection "a good candidate" for the Naive configuration —
// relatively large documents, few inter-document links, queries that rarely
// cross document boundaries. This generator synthesizes that shape:
// full-text scientific articles with front matter, nested sections and
// paragraphs (hundreds of elements per document) and only occasional
// cross-article <ref> links.
#ifndef FLIX_WORKLOAD_INEX_GENERATOR_H_
#define FLIX_WORKLOAD_INEX_GENERATOR_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "xml/collection.h"

namespace flix::workload {

struct InexOptions {
  uint64_t seed = 77;
  size_t num_articles = 120;
  // Top-level sections per article (uniform 1..2x mean).
  double sections_per_article = 6;
  // Paragraphs per (sub)section.
  double paragraphs_per_section = 5;
  // Probability that a section has a nested subsection level.
  double subsection_probability = 0.4;
  // Average cross-article references per article (inter-document links).
  double cross_refs_per_article = 0.5;
};

// Generates the collection (XML text -> parser pipeline) and resolves links.
StatusOr<xml::Collection> GenerateInex(const InexOptions& options = {});

// XML text of one article (exposed for tests).
std::string GenerateArticleXml(const InexOptions& options, size_t index,
                               size_t num_articles, flix::Rng& rng);

}  // namespace flix::workload

#endif  // FLIX_WORKLOAD_INEX_GENERATOR_H_
