#include "workload/query_workload.h"

#include <algorithm>
#include <unordered_set>

namespace flix::workload {

std::vector<DescendantQuery> SampleDescendantQueries(
    const xml::Collection& collection, const graph::Digraph& graph,
    const QuerySamplerOptions& options) {
  Rng rng(options.seed);
  std::vector<DescendantQuery> queries;
  const size_t num_docs = collection.NumDocuments();
  if (num_docs == 0) return queries;

  const size_t max_attempts = options.count * 50 + 100;
  for (size_t attempt = 0;
       attempt < max_attempts && queries.size() < options.count; ++attempt) {
    const DocId doc = static_cast<DocId>(rng.Uniform(num_docs));
    const NodeId start = collection.GlobalId(doc, 0);

    // Find candidate result tags below the start.
    const std::vector<Distance> dist = graph::BfsDistances(graph, start);
    std::vector<TagId> seen_tags;
    size_t reachable = 0;
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      if (v == start || dist[v] == kUnreachable) continue;
      ++reachable;
      seen_tags.push_back(graph.Tag(v));
    }
    if (reachable == 0) continue;
    std::sort(seen_tags.begin(), seen_tags.end());
    seen_tags.erase(std::unique(seen_tags.begin(), seen_tags.end()),
                    seen_tags.end());

    TagId tag;
    if (!options.result_tag.empty()) {
      tag = collection.pool().Lookup(options.result_tag);
      if (tag == kInvalidTag ||
          !std::binary_search(seen_tags.begin(), seen_tags.end(), tag)) {
        continue;
      }
    } else {
      tag = seen_tags[rng.Uniform(seen_tags.size())];
    }

    size_t matches = 0;
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      if (v != start && dist[v] != kUnreachable && graph.Tag(v) == tag) {
        ++matches;
      }
    }
    if (matches < options.min_results) continue;
    queries.push_back({start, tag, collection.pool().Name(tag)});
  }
  return queries;
}

double OrderErrorRate(const std::vector<core::Result>& results) {
  if (results.empty()) return 0.0;
  size_t out_of_order = 0;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].distance < results[i - 1].distance) ++out_of_order;
  }
  return static_cast<double>(out_of_order) /
         static_cast<double>(results.size());
}

bool SameResultSet(const std::vector<core::Result>& results,
                   const std::vector<graph::NodeDist>& oracle) {
  if (results.size() != oracle.size()) return false;
  std::unordered_set<NodeId> got;
  for (const core::Result& r : results) got.insert(r.node);
  if (got.size() != results.size()) return false;  // duplicates
  for (const graph::NodeDist& nd : oracle) {
    if (!got.contains(nd.node)) return false;
  }
  return true;
}

std::vector<std::pair<NodeId, NodeId>> SampleConnectionPairs(
    const graph::Digraph& graph, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  const size_t n = graph.NumNodes();
  if (n < 2) return pairs;

  size_t connected_quota = count / 2;
  const size_t max_attempts = count * 100 + 100;
  for (size_t attempt = 0;
       attempt < max_attempts && pairs.size() < count; ++attempt) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(n));
    if (connected_quota > 0) {
      // Walk to a reachable target for a positive pair.
      const std::vector<Distance> dist = graph::BfsDistances(graph, a);
      std::vector<NodeId> reachable;
      for (NodeId v = 0; v < n; ++v) {
        if (v != a && dist[v] != kUnreachable) reachable.push_back(v);
      }
      if (reachable.empty()) continue;
      pairs.push_back({a, reachable[rng.Uniform(reachable.size())]});
      --connected_quota;
    } else {
      NodeId b;
      do {
        b = static_cast<NodeId>(rng.Uniform(n));
      } while (b == a);
      pairs.push_back({a, b});
    }
  }
  return pairs;
}

}  // namespace flix::workload
