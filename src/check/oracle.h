// Differential query oracle: replays a sampled query workload through the
// full FliX stack — streaming cursor evaluation, the legacy materialized
// path, and exact mode — and diffs every answer against naive BFS over the
// global element graph.
//
// What each mode must guarantee (and what is diffed):
//   * streaming / materialized: the result *set* is exact (every reachable
//     matching element exactly once); distances and order may be the
//     documented approximation, so only the node sets are compared;
//   * exact mode: set, per-node distance, and ascending emission order must
//     all match the BFS ground truth;
//   * connection tests: IsConnected agrees with BFS reachability and
//     FindDistance returns the true shortest distance.
//
// Complements check::ValidateFramework: the validator proves the stored
// structures intact, the oracle proves the query pipeline on top of them
// (PEE merging, cross-link traversal, duplicate elimination) end to end.
#ifndef FLIX_CHECK_ORACLE_H_
#define FLIX_CHECK_ORACLE_H_

#include <string>
#include <vector>

#include "flix/flix.h"

namespace flix::check {

struct OracleOptions {
  uint64_t seed = 20260806;
  // Descendant queries replayed per run (deep mode doubles this and adds
  // the wildcard variant per query).
  size_t num_queries = 12;
  // (a, b) pairs for connection / distance diffs.
  size_t num_connection_pairs = 48;
  bool deep = false;
};

struct OracleReport {
  // Query evaluations diffed against the BFS ground truth.
  size_t queries_diffed = 0;
  std::vector<std::string> diffs;

  bool ok() const { return diffs.empty(); }
};

// Replays the workload against `flix`. Deterministic for a fixed seed.
OracleReport RunDifferentialOracle(const core::Flix& flix,
                                   const OracleOptions& options = {});

}  // namespace flix::check

#endif  // FLIX_CHECK_ORACLE_H_
