// Controlled corruption seeding for the mutation tests of the correctness
// tooling (tests/check_mutation_test.cc): each static mutator breaks exactly
// one structural invariant of one strategy, and the test suite proves that
// the matching Validate() detects it with a pinpointing message.
//
// CorruptionHook is befriended by every index class (see path_index.h); it
// must never be used outside tests. MDB-level corruptions (stale L_i
// entries, orphaned partition nodes) need no hook — MetaDocumentSet's
// fields are public.
#ifndef FLIX_CHECK_CORRUPTION_H_
#define FLIX_CHECK_CORRUPTION_H_

#include <algorithm>
#include <utility>

#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "index/transitive_closure.h"

namespace flix::index {

struct CorruptionHook {
  // PPO: swaps the preorder numbers of `a` and `b` while keeping order_
  // consistent, so the permutation invariant still holds but the interval
  // nesting of some edge breaks (pick a and b as ancestor/descendant).
  static void SwapPpoIntervals(PpoIndex& index, NodeId a, NodeId b) {
    std::swap(index.pre_[a], index.pre_[b]);
    index.order_[index.pre_[a]] = a;
    index.order_[index.pre_[b]] = b;
  }

  // HOPI: drops the last entry of the first non-empty per-hub inverted
  // list, desynchronizing it from the label tables (a 2-hop enumeration
  // would silently lose that node).
  static bool DropHopiHubEntry(HopiIndex& index) {
    for (auto& list : index.inverted_in_.OwnedRows()) {
      if (!list.empty()) {
        list.pop_back();
        return true;
      }
    }
    return false;
  }

  // HOPI: skews the distance of the last out-label of `v` by +1; both the
  // label-soundness BFS probe and the inverted-list diff can catch it.
  static bool SkewHopiLabelDistance(HopiIndex& index, NodeId v) {
    if (index.out_labels_[v].empty()) return false;
    index.out_labels_.Row(v).back().distance += 1;
    return true;
  }

  // TC: truncates the closure row of `v` by one entry, leaving the reverse
  // rows untouched.
  static bool TruncateTcRow(TransitiveClosureIndex& index, NodeId v) {
    if (index.closure_[v].empty()) return false;
    index.closure_.Row(v).pop_back();
    return true;
  }

  // APEX: files `v` under a foreign extent without updating block_of_[v] —
  // the extent partition stops being exact. Returns false when the index
  // has a single block (no foreign extent to misfile into).
  static bool MisfileApexExtent(ApexIndex& index, NodeId v) {
    if (index.extents_.size() < 2) return false;
    const uint32_t home_block = index.block_of_[v];
    const uint32_t to_block =
        (home_block + 1) % static_cast<uint32_t>(index.extents_.size());
    auto& home = index.extents_.Row(home_block);
    home.erase(std::find(home.begin(), home.end(), v));
    index.extents_.Row(to_block).push_back(v);
    return true;
  }

  // Summary: clears the lowest set bit of the first non-zero forward
  // pruning word — the pruned traversals would silently drop every result
  // carrying that tag.
  static bool ClearSummaryPruningBit(SummaryIndex& index) {
    for (auto& row : index.forward_tags_.OwnedRows()) {
      for (uint64_t& word : row) {
        if (word != 0) {
          word &= word - 1;
          return true;
        }
      }
    }
    return false;
  }
};

}  // namespace flix::index

#endif  // FLIX_CHECK_CORRUPTION_H_
