#include "check/oracle.h"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flix/pee.h"
#include "graph/traversal.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "workload/query_workload.h"

namespace flix::check {
namespace {

// Set diff between an evaluated result list and the oracle's answer.
// Returns the first divergence (missing node, extra node, or a duplicate),
// or nullopt when the sets agree.
std::optional<std::string> DiffResultSet(
    const std::string& what, const std::vector<core::Result>& results,
    const std::vector<graph::NodeDist>& truth) {
  std::vector<NodeId> got;
  got.reserve(results.size());
  for (const core::Result& r : results) got.push_back(r.node);
  std::sort(got.begin(), got.end());
  if (const auto dup = std::adjacent_find(got.begin(), got.end());
      dup != got.end()) {
    return what + ": node " + std::to_string(*dup) + " emitted twice";
  }
  std::vector<NodeId> want;
  want.reserve(truth.size());
  for (const graph::NodeDist& nd : truth) want.push_back(nd.node);
  std::sort(want.begin(), want.end());
  std::vector<NodeId> missing;
  std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                      std::back_inserter(missing));
  if (!missing.empty()) {
    return what + ": node " + std::to_string(missing.front()) +
           " is missing (" + std::to_string(missing.size()) + " of " +
           std::to_string(want.size()) + " dropped)";
  }
  std::vector<NodeId> extra;
  std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                      std::back_inserter(extra));
  if (!extra.empty()) {
    return what + ": node " + std::to_string(extra.front()) +
           " is not a BFS result (" + std::to_string(extra.size()) +
           " spurious)";
  }
  return std::nullopt;
}

// Exact-mode diff: sets, per-node distances, and ascending emission order.
std::optional<std::string> DiffExact(
    const std::string& what, const std::vector<core::Result>& results,
    const std::vector<graph::NodeDist>& truth) {
  if (auto diff = DiffResultSet(what, results, truth)) return diff;
  std::unordered_map<NodeId, Distance> want;
  for (const graph::NodeDist& nd : truth) want.emplace(nd.node, nd.distance);
  Distance prev = 0;
  for (const core::Result& r : results) {
    if (r.distance < prev) {
      return what + ": node " + std::to_string(r.node) +
             " emitted at distance " + std::to_string(r.distance) +
             " after distance " + std::to_string(prev) +
             " — exact mode must be ascending";
    }
    prev = r.distance;
    const Distance truth_dist = want.at(r.node);
    if (r.distance != truth_dist) {
      return what + ": node " + std::to_string(r.node) +
             " reported at distance " + std::to_string(r.distance) +
             ", BFS says " + std::to_string(truth_dist);
    }
  }
  return std::nullopt;
}

std::vector<core::Result> Drain(const core::PathExpressionEvaluator& pee,
                                NodeId start, TagId tag, bool wildcard,
                                bool ancestors,
                                const core::QueryOptions& options) {
  std::vector<core::Result> results;
  const core::ResultSink sink = [&results](const core::Result& r) {
    results.push_back(r);
    return true;
  };
  if (ancestors) {
    pee.FindAncestorsByTag(start, tag, options, sink);
  } else if (wildcard) {
    pee.FindDescendants(start, options, sink);
  } else {
    pee.FindDescendantsByTag(start, tag, options, sink);
  }
  return results;
}

}  // namespace

OracleReport RunDifferentialOracle(const core::Flix& flix,
                                   const OracleOptions& options) {
  OracleReport report;
  const graph::Digraph global = flix.collection().BuildGraph();
  const graph::ReachabilityOracle oracle(global);
  const core::PathExpressionEvaluator& pee = flix.pee();

  workload::QuerySamplerOptions sampler;
  sampler.seed = options.seed;
  sampler.count = options.deep ? options.num_queries * 2 : options.num_queries;
  sampler.min_results = 1;
  const std::vector<workload::DescendantQuery> queries =
      workload::SampleDescendantQueries(flix.collection(), global, sampler);

  struct Mode {
    const char* name;
    core::QueryOptions query;
    bool exact;
  };
  const std::vector<Mode> modes = {
      {"streaming", {}, false},
      {"materialized", {.materialize = true}, false},
      {"exact", {.exact = true}, true},
  };

  for (const workload::DescendantQuery& q : queries) {
    const std::vector<graph::NodeDist> truth =
        oracle.DescendantsByTag(q.start, q.tag);
    for (const Mode& mode : modes) {
      ++report.queries_diffed;
      const std::string what = std::string(mode.name) + " " +
                               std::to_string(q.start) + "//" + q.tag_name;
      const std::vector<core::Result> results = Drain(
          pee, q.start, q.tag, /*wildcard=*/false, /*ancestors=*/false,
          mode.query);
      const auto diff = mode.exact ? DiffExact(what, results, truth)
                                   : DiffResultSet(what, results, truth);
      if (diff) report.diffs.push_back(*diff);
    }
    if (options.deep) {
      // Wildcard sweep plus the reverse axis from the nearest true result.
      ++report.queries_diffed;
      if (auto diff = DiffResultSet(
              "streaming " + std::to_string(q.start) + "//*",
              Drain(pee, q.start, kInvalidTag, /*wildcard=*/true,
                    /*ancestors=*/false, {}),
              oracle.Descendants(q.start))) {
        report.diffs.push_back(*diff);
      }
      if (!truth.empty()) {
        ++report.queries_diffed;
        const NodeId back = truth.front().node;
        const TagId start_tag = global.Tag(q.start);
        if (auto diff = DiffResultSet(
                "streaming ancestors of " + std::to_string(back),
                Drain(pee, back, start_tag, /*wildcard=*/false,
                      /*ancestors=*/true, {}),
                oracle.AncestorsByTag(back, start_tag))) {
          report.diffs.push_back(*diff);
        }
      }
    }
  }

  // Connection tests: reachability must match BFS exactly, and exact-mode
  // point distances must be the true shortest distances.
  const std::vector<std::pair<NodeId, NodeId>> pairs =
      workload::SampleConnectionPairs(global, options.num_connection_pairs,
                                      options.seed + 1);
  for (const auto& [a, b] : pairs) {
    ++report.queries_diffed;
    const Distance truth_dist = graph::BfsDistance(global, a, b);
    if (flix.IsConnected(a, b) != (truth_dist != kUnreachable)) {
      report.diffs.push_back("connection " + std::to_string(a) + " -> " +
                             std::to_string(b) + ": IsConnected says " +
                             (truth_dist == kUnreachable ? "yes" : "no") +
                             ", BFS disagrees");
      continue;
    }
    const Distance found_dist = flix.FindDistance(a, b);
    if (found_dist != truth_dist) {
      report.diffs.push_back("connection " + std::to_string(a) + " -> " +
                             std::to_string(b) + ": FindDistance says " +
                             std::to_string(found_dist) + ", BFS says " +
                             std::to_string(truth_dist));
    }
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(obs::names::kCheckOracleQueries).Add(report.queries_diffed);
  registry.GetCounter(obs::names::kCheckViolations).Add(report.diffs.size());
  return report;
}

}  // namespace flix::check
