#include "check/validator.h"

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "flix/landmarks.h"
#include "graph/digraph.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace flix::check {
namespace {

uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

std::string MetaPrefix(uint32_t m) {
  return "meta document " + std::to_string(m) + ": ";
}

// L_i / entry-node exactness within one meta document: the sorted list must
// be precisely the key set of the per-node target map, with no empty rows.
void CheckLinkList(uint32_t m, const std::string& what,
                   const storage::FlatVec<NodeId>& list,
                   const storage::FlatMultiMap& map,
                   std::vector<std::string>& violations) {
  if (!std::is_sorted(list.begin(), list.end()) ||
      std::adjacent_find(list.begin(), list.end()) != list.end()) {
    violations.push_back(MetaPrefix(m) + what +
                         " is not sorted and deduplicated");
    return;
  }
  if (list.size() != map.NumKeys()) {
    violations.push_back(MetaPrefix(m) + what + " lists " +
                         std::to_string(list.size()) +
                         " nodes but the target map has " +
                         std::to_string(map.NumKeys()) + " rows");
    return;
  }
  for (const NodeId v : list) {
    // At() returns empty both for a missing row and for an empty one;
    // either way the list entry has no targets behind it.
    if (map.At(v).empty()) {
      violations.push_back(MetaPrefix(m) + what + " lists local node " +
                           std::to_string(v) +
                           " with no (or an empty) target-map row");
      return;
    }
  }
}

}  // namespace

CheckReport ValidateFramework(const core::Flix& flix,
                              const CheckOptions& options) {
  CheckReport report;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  const core::MetaDocumentSet& set = flix.meta_documents();
  const graph::Digraph global = flix.collection().BuildGraph();
  const size_t n = global.NumNodes();

  // --- Mapping cover: meta documents partition the element set exactly. ---
  ++report.checks_run;
  if (set.meta_of_node.size() != n || set.local_of_node.size() != n) {
    report.violations.push_back(
        "node mapping covers " + std::to_string(set.meta_of_node.size()) +
        " nodes, the collection has " + std::to_string(n));
  } else {
    size_t covered = 0;
    for (uint32_t m = 0; m < set.docs.size(); ++m) {
      const core::MetaDocument& doc = set.docs[m];
      if (doc.graph.NumNodes() != doc.global_nodes.size()) {
        report.violations.push_back(
            MetaPrefix(m) + "local graph has " +
            std::to_string(doc.graph.NumNodes()) + " nodes, global_nodes " +
            std::to_string(doc.global_nodes.size()));
        continue;
      }
      for (NodeId local = 0; local < doc.global_nodes.size(); ++local) {
        const NodeId g = doc.global_nodes[local];
        if (g >= n || set.meta_of_node[g] != m ||
            set.local_of_node[g] != local) {
          report.violations.push_back(
              MetaPrefix(m) + "local node " + std::to_string(local) +
              " claims global node " + std::to_string(g) +
              ", whose mapping points to meta document " +
              std::to_string(g < n ? set.meta_of_node[g] : kInvalidNode) +
              " local " +
              std::to_string(g < n ? set.local_of_node[g] : kInvalidNode));
          break;
        }
        if (doc.graph.Tag(local) != global.Tag(g)) {
          report.violations.push_back(
              MetaPrefix(m) + "local node " + std::to_string(local) +
              " has tag " + std::to_string(doc.graph.Tag(local)) +
              ", global node " + std::to_string(g) + " has tag " +
              std::to_string(global.Tag(g)));
          break;
        }
      }
      covered += doc.global_nodes.size();
    }
    // With both directions of the mapping verified, a count match makes the
    // partition exact: no element unassigned, none in two meta documents.
    if (covered != n) {
      report.violations.push_back(
          "meta documents hold " + std::to_string(covered) +
          " elements, the collection has " + std::to_string(n) +
          " — some element is orphaned or duplicated");
    }
    for (NodeId v = 0; v < n; ++v) {
      const uint32_t m = set.meta_of_node[v];
      if (m >= set.docs.size() ||
          set.local_of_node[v] >= set.docs[m].global_nodes.size() ||
          set.docs[m].global_nodes[set.local_of_node[v]] != v) {
        report.violations.push_back(
            "global node " + std::to_string(v) +
            " maps to meta document " + std::to_string(m) + " local " +
            std::to_string(set.local_of_node[v]) +
            ", which does not map back — orphaned partition node");
        break;
      }
    }
  }

  // --- L_i exactness and edge cover. ---
  ++report.checks_run;
  std::unordered_set<uint64_t> global_edges;
  for (NodeId u = 0; u < n; ++u) {
    for (const graph::Digraph::Arc& arc : global.OutArcs(u)) {
      global_edges.insert(EdgeKey(u, arc.target));
    }
  }
  size_t recorded_cross_links = 0;
  const bool mapping_ok = report.violations.empty();
  for (uint32_t m = 0; m < set.docs.size(); ++m) {
    const core::MetaDocument& doc = set.docs[m];
    CheckLinkList(m, "link_sources", doc.link_sources, doc.link_targets,
                  report.violations);
    CheckLinkList(m, "entry_nodes", doc.entry_nodes, doc.entry_origins,
                  report.violations);
    if (!mapping_ok) continue;  // global ids below rely on the mapping
    // Every local edge and every cross link must be witnessed by an element
    // edge (the converse — every element edge covered — is checked in the
    // global sweep below).
    for (NodeId local = 0; local < doc.graph.NumNodes(); ++local) {
      const NodeId gu = doc.global_nodes[local];
      for (const graph::Digraph::Arc& arc : doc.graph.OutArcs(local)) {
        if (!global_edges.contains(
                EdgeKey(gu, doc.global_nodes[arc.target]))) {
          report.violations.push_back(
              MetaPrefix(m) + "local edge " + std::to_string(local) + " -> " +
              std::to_string(arc.target) +
              " has no witnessing element edge " + std::to_string(gu) +
              " -> " + std::to_string(doc.global_nodes[arc.target]));
        }
      }
    }
    doc.link_targets.ForEach([&](NodeId local,
                                 std::span<const NodeId> targets) {
      recorded_cross_links += targets.size();
      const NodeId gu =
          local < doc.global_nodes.size() ? doc.global_nodes[local] : n;
      for (const NodeId gv : targets) {
        if (gu >= n || gv >= n || !global_edges.contains(EdgeKey(gu, gv))) {
          report.violations.push_back(
              MetaPrefix(m) + "stale L_i entry: recorded cross link " +
              std::to_string(gu) + " -> " + std::to_string(gv) +
              " (local source " + std::to_string(local) +
              ") has no witnessing element edge");
        }
      }
    });
    doc.entry_origins.ForEach([&](NodeId local,
                                  std::span<const NodeId> origins) {
      const NodeId gv =
          local < doc.global_nodes.size() ? doc.global_nodes[local] : n;
      for (const NodeId gu : origins) {
        if (gu >= n || gv >= n || !global_edges.contains(EdgeKey(gu, gv))) {
          report.violations.push_back(
              MetaPrefix(m) + "stale entry point: recorded origin " +
              std::to_string(gu) + " for entry node " + std::to_string(gv) +
              " has no witnessing element edge");
        }
      }
    });
  }
  if (mapping_ok) {
    // Global sweep: every element edge is reflected exactly once — inside
    // one local graph, or as an L_i cross link with a matching entry point.
    std::unordered_set<uint64_t> seen;
    for (NodeId u = 0; u < n && report.violations.size() < 64; ++u) {
      const uint32_t mu = set.meta_of_node[u];
      const NodeId lu = set.local_of_node[u];
      const core::MetaDocument& src = set.docs[mu];
      for (const graph::Digraph::Arc& arc : global.OutArcs(u)) {
        const NodeId v = arc.target;
        if (!seen.insert(EdgeKey(u, v)).second) continue;  // parallel edge
        const uint32_t mv = set.meta_of_node[v];
        const NodeId lv = set.local_of_node[v];
        bool internal = false;
        if (mu == mv) {
          for (const graph::Digraph::Arc& local_arc : src.graph.OutArcs(lu)) {
            if (local_arc.target == lv) {
              internal = true;
              break;
            }
          }
        }
        const std::span<const NodeId> targets = src.link_targets.At(lu);
        const bool crossed =
            std::find(targets.begin(), targets.end(), v) != targets.end();
        if (internal == crossed) {
          report.violations.push_back(
              "element edge " + std::to_string(u) + " -> " +
              std::to_string(v) +
              (internal
                   ? " is reflected in meta document " + std::to_string(mu) +
                         " AND recorded as a cross link"
                   : " is neither reflected in a local graph nor recorded "
                     "in L_" +
                         std::to_string(mu)));
          continue;
        }
        if (crossed) {
          const core::MetaDocument& dst = set.docs[mv];
          const std::span<const NodeId> origins = dst.entry_origins.At(lv);
          if (std::find(origins.begin(), origins.end(), u) ==
              origins.end()) {
            report.violations.push_back(
                "cross link " + std::to_string(u) + " -> " +
                std::to_string(v) + " has no entry point in meta document " +
                std::to_string(mv));
          }
        }
      }
    }
    if (report.violations.empty() &&
        recorded_cross_links != set.num_cross_links) {
      report.violations.push_back(
          "meta documents record " + std::to_string(recorded_cross_links) +
          " cross links, the set header claims " +
          std::to_string(set.num_cross_links));
    }
  }

  // --- Landmark cache: deep mode re-derives sampled distance rows by BFS
  // over the partition quotient graph and compares them with the tables the
  // PEE's A* consults (flix/landmarks.h). Cheap modes skip it — the cache is
  // advisory and a damaged one is already dropped at load time.
  if (options.index.deep) {
    const std::shared_ptr<const core::LandmarkCache> landmarks =
        set.landmarks.Snapshot();
    if (landmarks != nullptr && !landmarks->empty()) {
      ++report.checks_run;
      if (landmarks->num_nodes() != n) {
        report.violations.push_back(
            "landmark cache: covers " +
            std::to_string(landmarks->num_nodes()) +
            " elements, the collection has " + std::to_string(n));
      } else if (const Status status =
                     landmarks->Validate(global, /*sample_nodes=*/64,
                                         options.index.seed);
                 !status.ok()) {
        report.violations.push_back("landmark cache: " +
                                    std::string(status.message()));
      }
    }
  }

  // --- Per-strategy structural invariants + differential probes. ---
  if (options.validate_indexes) {
    for (uint32_t m = 0; m < set.docs.size(); ++m) {
      const core::MetaDocument& doc = set.docs[m];
      ++report.checks_run;
      // Snapshot: a migration may swap the handle while the walk runs.
      const std::shared_ptr<index::PathIndex> index = doc.index.Acquire();
      if (index == nullptr) {
        report.violations.push_back(MetaPrefix(m) + "has no index");
        continue;
      }
      const Status status = index->Validate(doc.graph, options.index);
      if (!status.ok()) {
        report.violations.push_back(MetaPrefix(m) + "[" +
                                    std::string(index->name()) + "] " +
                                    status.message());
      }
    }
  }

  registry.GetCounter(obs::names::kCheckValidations).Add(report.checks_run);
  registry.GetCounter(obs::names::kCheckViolations).Add(report.violations.size());
  return report;
}

}  // namespace flix::check
