// Framework-level index validator (the `flixctl check` backend).
//
// Verifies the whole built FliX instance bottom-up:
//   * mapping cover — the global-node -> (meta document, local node) mapping
//     and the per-meta global_nodes lists are exact inverses, so every
//     element of the collection lives in exactly one meta document;
//   * edge cover — every element-graph edge is either reflected inside one
//     meta document's local graph or recorded as a cross link (L_i entry on
//     the source side, entry point on the target side), and no local edge or
//     cross link exists without a witnessing element edge;
//   * L_i exactness — link_sources / entry_nodes are exactly the key sets of
//     link_targets / entry_origins, sorted and deduplicated;
//   * per-strategy structural invariants — each meta document's PathIndex is
//     run through its Validate() override (PPO interval nesting, HOPI label
//     consistency, APEX/summary extent partitioning, TC row = BFS closure)
//     plus the sampled differential probes of the base class.
//
// Unlike PathIndex::Validate (first violation only), the framework walk
// collects every violation it finds, so one `flixctl check` run reports all
// broken meta documents at once. Results are counted into the
// flix.check.validations / flix.check.violations metrics.
#ifndef FLIX_CHECK_VALIDATOR_H_
#define FLIX_CHECK_VALIDATOR_H_

#include <string>
#include <vector>

#include "flix/flix.h"
#include "index/path_index.h"

namespace flix::check {

struct CheckOptions {
  // Forwarded to every PathIndex::Validate call; set `index.deep` for the
  // exhaustive variants of the sampled checks.
  index::ValidateOptions index;
  // Skip the per-meta-document index validation (framework checks only).
  bool validate_indexes = true;
};

struct CheckReport {
  // Individual validations executed (framework checks + one per index).
  size_t checks_run = 0;
  // Human-readable violation descriptions, each pinpointing the structure
  // (meta document, node, edge) that broke. Empty = everything holds.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Validates `flix` against the collection it was built from. Deterministic
// for a fixed options.index.seed.
CheckReport ValidateFramework(const core::Flix& flix,
                              const CheckOptions& options = {});

}  // namespace flix::check

#endif  // FLIX_CHECK_VALIDATOR_H_
