#include "graph/traversal.h"

#include <algorithm>
#include <deque>
#include <span>
#include <tuple>

namespace flix::graph {
namespace {

std::span<const Digraph::Arc> Arcs(const Digraph& g, NodeId n,
                                   Direction dir) {
  return dir == Direction::kForward ? g.OutArcs(n) : g.InArcs(n);
}

}  // namespace

std::vector<Distance> BfsDistances(const Digraph& g, NodeId source,
                                   Direction dir, Distance max_depth) {
  std::vector<Distance> dist(g.NumNodes(), kUnreachable);
  dist[source] = 0;
  std::deque<NodeId> queue = {source};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[u] >= max_depth) continue;
    for (const Digraph::Arc& arc : Arcs(g, u, dir)) {
      if (dist[arc.target] == kUnreachable) {
        dist[arc.target] = dist[u] + 1;
        queue.push_back(arc.target);
      }
    }
  }
  return dist;
}

Distance BfsDistance(const Digraph& g, NodeId source, NodeId target,
                     Direction dir, Distance max_depth) {
  if (source == target) return 0;
  std::vector<Distance> dist(g.NumNodes(), kUnreachable);
  dist[source] = 0;
  std::deque<NodeId> queue = {source};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[u] >= max_depth) continue;
    for (const Digraph::Arc& arc : Arcs(g, u, dir)) {
      if (dist[arc.target] == kUnreachable) {
        dist[arc.target] = dist[u] + 1;
        if (arc.target == target) return dist[arc.target];
        queue.push_back(arc.target);
      }
    }
  }
  return kUnreachable;
}

BfsFrontier::BfsFrontier(const Digraph& g, NodeId source, Direction dir,
                         ExpandFilter filter)
    : g_(g), dir_(dir), filter_(std::move(filter)) {
  visited_.assign(g.NumNodes(), 0);
  visited_[source] = 1;
  next_.push_back(source);
}

const std::vector<NodeId>& BfsFrontier::NextLevel() {
  current_ = std::move(next_);
  next_.clear();
  if (current_.empty()) {
    done_ = true;
    return current_;
  }
  ++depth_;
  for (const NodeId u : current_) {
    for (const Digraph::Arc& arc : Arcs(g_, u, dir_)) {
      const NodeId w = arc.target;
      if (visited_[w]) continue;
      visited_[w] = 1;
      if (filter_ && !filter_(w)) continue;  // pruned: not reported/expanded
      next_.push_back(w);
    }
  }
  // Levels come out sorted so cursor consumers get the canonical
  // (distance, node) order without re-sorting.
  std::sort(next_.begin(), next_.end());
  if (next_.empty()) done_ = true;
  return current_;
}

std::vector<NodeDist> ReachabilityOracle::Collect(NodeId from, TagId tag,
                                                  Direction dir,
                                                  bool wildcard) const {
  const std::vector<flix::Distance> dist = BfsDistances(g_, from, dir);
  std::vector<NodeDist> result;
  for (NodeId n = 0; n < g_.NumNodes(); ++n) {
    if (n == from || dist[n] == kUnreachable) continue;
    if (wildcard || g_.Tag(n) == tag) result.push_back({n, dist[n]});
  }
  std::sort(result.begin(), result.end(),
            [](const NodeDist& a, const NodeDist& b) {
              return std::tie(a.distance, a.node) < std::tie(b.distance, b.node);
            });
  return result;
}

std::vector<NodeDist> ReachabilityOracle::DescendantsByTag(NodeId from,
                                                           TagId tag) const {
  return Collect(from, tag, Direction::kForward, /*wildcard=*/false);
}

std::vector<NodeDist> ReachabilityOracle::Descendants(NodeId from) const {
  return Collect(from, kInvalidTag, Direction::kForward, /*wildcard=*/true);
}

std::vector<NodeDist> ReachabilityOracle::AncestorsByTag(NodeId from,
                                                         TagId tag) const {
  return Collect(from, tag, Direction::kBackward, /*wildcard=*/false);
}

}  // namespace flix::graph
