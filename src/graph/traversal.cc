#include "graph/traversal.h"

#include <algorithm>
#include <deque>
#include <tuple>

namespace flix::graph {
namespace {

const std::vector<Digraph::Arc>& Arcs(const Digraph& g, NodeId n,
                                      Direction dir) {
  return dir == Direction::kForward ? g.OutArcs(n) : g.InArcs(n);
}

}  // namespace

std::vector<Distance> BfsDistances(const Digraph& g, NodeId source,
                                   Direction dir, Distance max_depth) {
  std::vector<Distance> dist(g.NumNodes(), kUnreachable);
  dist[source] = 0;
  std::deque<NodeId> queue = {source};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[u] >= max_depth) continue;
    for (const Digraph::Arc& arc : Arcs(g, u, dir)) {
      if (dist[arc.target] == kUnreachable) {
        dist[arc.target] = dist[u] + 1;
        queue.push_back(arc.target);
      }
    }
  }
  return dist;
}

Distance BfsDistance(const Digraph& g, NodeId source, NodeId target,
                     Direction dir, Distance max_depth) {
  if (source == target) return 0;
  std::vector<Distance> dist(g.NumNodes(), kUnreachable);
  dist[source] = 0;
  std::deque<NodeId> queue = {source};
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[u] >= max_depth) continue;
    for (const Digraph::Arc& arc : Arcs(g, u, dir)) {
      if (dist[arc.target] == kUnreachable) {
        dist[arc.target] = dist[u] + 1;
        if (arc.target == target) return dist[arc.target];
        queue.push_back(arc.target);
      }
    }
  }
  return kUnreachable;
}

std::vector<NodeDist> ReachabilityOracle::Collect(NodeId from, TagId tag,
                                                  Direction dir,
                                                  bool wildcard) const {
  const std::vector<flix::Distance> dist = BfsDistances(g_, from, dir);
  std::vector<NodeDist> result;
  for (NodeId n = 0; n < g_.NumNodes(); ++n) {
    if (n == from || dist[n] == kUnreachable) continue;
    if (wildcard || g_.Tag(n) == tag) result.push_back({n, dist[n]});
  }
  std::sort(result.begin(), result.end(),
            [](const NodeDist& a, const NodeDist& b) {
              return std::tie(a.distance, a.node) < std::tie(b.distance, b.node);
            });
  return result;
}

std::vector<NodeDist> ReachabilityOracle::DescendantsByTag(NodeId from,
                                                           TagId tag) const {
  return Collect(from, tag, Direction::kForward, /*wildcard=*/false);
}

std::vector<NodeDist> ReachabilityOracle::Descendants(NodeId from) const {
  return Collect(from, kInvalidTag, Direction::kForward, /*wildcard=*/true);
}

std::vector<NodeDist> ReachabilityOracle::AncestorsByTag(NodeId from,
                                                         TagId tag) const {
  return Collect(from, tag, Direction::kBackward, /*wildcard=*/false);
}

}  // namespace flix::graph
