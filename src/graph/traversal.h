// Breadth-first traversal primitives and the exact reachability/distance
// oracle used as ground truth in tests and for error-rate measurement
// (the paper reports the fraction of results returned out of order).
#ifndef FLIX_GRAPH_TRAVERSAL_H_
#define FLIX_GRAPH_TRAVERSAL_H_

#include <functional>
#include <vector>

#include "common/types.h"
#include "graph/digraph.h"

namespace flix::graph {

// Direction of traversal: kForward follows out-edges (descendants),
// kBackward follows in-edges (ancestors).
enum class Direction {
  kForward,
  kBackward,
};

// Single-source BFS distances over unit-weight edges. Returns a vector of
// size g.NumNodes() with kUnreachable for nodes not reached. `max_depth < 0`
// means unbounded.
std::vector<Distance> BfsDistances(const Digraph& g, NodeId source,
                                   Direction dir = Direction::kForward,
                                   Distance max_depth = -1);

// Distance from `source` to `target` (kUnreachable if none). Early-exits as
// soon as the target is dequeued.
Distance BfsDistance(const Digraph& g, NodeId source, NodeId target,
                     Direction dir = Direction::kForward,
                     Distance max_depth = -1);

// Resumable breadth-first frontier generator: yields the node set of one
// depth level per NextLevel() call, so a caller interested only in the
// nearest matches never pays for traversing the rest of the graph. Backs the
// lazy descendant/ancestor cursors of the traversal-based path indexes
// (APEX, structure summaries).
//
// An optional expand filter implements summary pruning: a node for which the
// filter returns false is neither reported nor expanded (the source is
// exempt). Keeps a reference to `g`; the graph must outlive the generator.
class BfsFrontier {
 public:
  using ExpandFilter = std::function<bool(NodeId)>;

  BfsFrontier(const Digraph& g, NodeId source,
              Direction dir = Direction::kForward, ExpandFilter filter = {});

  // Advances to the next depth level and returns its nodes in ascending id
  // order; empty once the traversal is exhausted. The first call returns
  // {source} at depth 0. The reference is valid until the next call.
  const std::vector<NodeId>& NextLevel();

  // Depth of the level most recently returned (-1 before the first call).
  Distance depth() const { return depth_; }

  // True once NextLevel() can only return empty levels.
  bool Done() const { return done_; }

  // Nodes queued for the next level — a lower bound on the remaining
  // traversal size, used by cursors to estimate saved work.
  size_t PendingSize() const { return next_.size(); }

 private:
  const Digraph& g_;
  Direction dir_;
  ExpandFilter filter_;
  std::vector<NodeId> current_;
  std::vector<NodeId> next_;
  std::vector<uint8_t> visited_;
  Distance depth_ = -1;
  bool done_ = false;
};

// A result element paired with its distance from the query start node.
struct NodeDist {
  NodeId node = kInvalidNode;
  Distance distance = kUnreachable;

  friend bool operator==(const NodeDist&, const NodeDist&) = default;
};

// Exact ground-truth oracle: answers reachability / distance / tag-filtered
// descendant queries by plain BFS over the element graph. Deliberately
// index-free; tests compare every index structure against it.
class ReachabilityOracle {
 public:
  explicit ReachabilityOracle(const Digraph& g) : g_(g) {}

  bool IsReachable(NodeId from, NodeId to) const {
    return Distance(from, to) != kUnreachable;
  }

  flix::Distance Distance(NodeId from, NodeId to) const {
    return BfsDistance(g_, from, to);
  }

  // All proper descendants of `from` with tag `tag`, sorted by ascending
  // distance (ties by node id). `from` itself is excluded even if it has the
  // tag, matching the descendants-or-self axis applied to a *different*
  // result element; the paper's a//b queries look for other elements.
  std::vector<NodeDist> DescendantsByTag(NodeId from, TagId tag) const;

  // All proper descendants (wildcard a//*), sorted ascending by distance.
  std::vector<NodeDist> Descendants(NodeId from) const;

  // All proper ancestors with tag `tag`, ascending by distance.
  std::vector<NodeDist> AncestorsByTag(NodeId from, TagId tag) const;

 private:
  std::vector<NodeDist> Collect(NodeId from, TagId tag, Direction dir,
                                bool wildcard) const;

  const Digraph& g_;
};

}  // namespace flix::graph

#endif  // FLIX_GRAPH_TRAVERSAL_H_
