// Breadth-first traversal primitives and the exact reachability/distance
// oracle used as ground truth in tests and for error-rate measurement
// (the paper reports the fraction of results returned out of order).
#ifndef FLIX_GRAPH_TRAVERSAL_H_
#define FLIX_GRAPH_TRAVERSAL_H_

#include <vector>

#include "common/types.h"
#include "graph/digraph.h"

namespace flix::graph {

// Direction of traversal: kForward follows out-edges (descendants),
// kBackward follows in-edges (ancestors).
enum class Direction {
  kForward,
  kBackward,
};

// Single-source BFS distances over unit-weight edges. Returns a vector of
// size g.NumNodes() with kUnreachable for nodes not reached. `max_depth < 0`
// means unbounded.
std::vector<Distance> BfsDistances(const Digraph& g, NodeId source,
                                   Direction dir = Direction::kForward,
                                   Distance max_depth = -1);

// Distance from `source` to `target` (kUnreachable if none). Early-exits as
// soon as the target is dequeued.
Distance BfsDistance(const Digraph& g, NodeId source, NodeId target,
                     Direction dir = Direction::kForward,
                     Distance max_depth = -1);

// A result element paired with its distance from the query start node.
struct NodeDist {
  NodeId node = kInvalidNode;
  Distance distance = kUnreachable;

  friend bool operator==(const NodeDist&, const NodeDist&) = default;
};

// Exact ground-truth oracle: answers reachability / distance / tag-filtered
// descendant queries by plain BFS over the element graph. Deliberately
// index-free; tests compare every index structure against it.
class ReachabilityOracle {
 public:
  explicit ReachabilityOracle(const Digraph& g) : g_(g) {}

  bool IsReachable(NodeId from, NodeId to) const {
    return Distance(from, to) != kUnreachable;
  }

  flix::Distance Distance(NodeId from, NodeId to) const {
    return BfsDistance(g_, from, to);
  }

  // All proper descendants of `from` with tag `tag`, sorted by ascending
  // distance (ties by node id). `from` itself is excluded even if it has the
  // tag, matching the descendants-or-self axis applied to a *different*
  // result element; the paper's a//b queries look for other elements.
  std::vector<NodeDist> DescendantsByTag(NodeId from, TagId tag) const;

  // All proper descendants (wildcard a//*), sorted ascending by distance.
  std::vector<NodeDist> Descendants(NodeId from) const;

  // All proper ancestors with tag `tag`, ascending by distance.
  std::vector<NodeDist> AncestorsByTag(NodeId from, TagId tag) const;

 private:
  std::vector<NodeDist> Collect(NodeId from, TagId tag, Direction dir,
                                bool wildcard) const;

  const Digraph& g_;
};

}  // namespace flix::graph

#endif  // FLIX_GRAPH_TRAVERSAL_H_
