#include "graph/partition.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>

namespace flix::graph {
namespace {

// Undirected multigraph over units: unit weights (= node counts) and
// adjacency with edge multiplicities.
struct UnitGraph {
  size_t num_units = 0;
  std::vector<size_t> weight;
  // adjacency[u] = (neighbor unit, multiplicity)
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adjacency;
};

UnitGraph BuildUnitGraph(const Digraph& g, const std::vector<uint32_t>& unit_of,
                         size_t num_units) {
  UnitGraph ug;
  ug.num_units = num_units;
  ug.weight.assign(num_units, 0);
  ug.adjacency.assign(num_units, {});
  for (NodeId n = 0; n < g.NumNodes(); ++n) ++ug.weight[unit_of[n]];

  // Accumulate multiplicities per (unit, unit) pair.
  std::vector<std::unordered_map<uint32_t, uint32_t>> acc(num_units);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Digraph::Arc& arc : g.OutArcs(u)) {
      const uint32_t a = unit_of[u];
      const uint32_t b = unit_of[arc.target];
      if (a == b) continue;
      ++acc[a][b];
      ++acc[b][a];
    }
  }
  for (uint32_t u = 0; u < num_units; ++u) {
    ug.adjacency[u].assign(acc[u].begin(), acc[u].end());
    std::sort(ug.adjacency[u].begin(), ug.adjacency[u].end());
  }
  return ug;
}

// One greedy refinement sweep: move a unit to the adjacent partition it has
// the most connections to, if that strictly reduces the cut and the target
// partition stays within bounds.
bool RefineOnce(const UnitGraph& ug, size_t max_nodes,
                std::vector<uint32_t>& part_of_unit,
                std::vector<size_t>& part_weight) {
  bool changed = false;
  std::unordered_map<uint32_t, uint32_t> links_to_part;
  for (uint32_t u = 0; u < ug.num_units; ++u) {
    if (ug.adjacency[u].empty()) continue;
    links_to_part.clear();
    for (const auto& [v, mult] : ug.adjacency[u]) {
      links_to_part[part_of_unit[v]] += mult;
    }
    const uint32_t home = part_of_unit[u];
    const uint32_t internal = links_to_part.count(home) ? links_to_part[home] : 0;
    uint32_t best_part = home;
    uint32_t best_links = internal;
    for (const auto& [p, links] : links_to_part) {
      if (p == home) continue;
      if (links > best_links &&
          part_weight[p] + ug.weight[u] <= max_nodes) {
        best_links = links;
        best_part = p;
      }
    }
    if (best_part != home) {
      part_weight[home] -= ug.weight[u];
      part_weight[best_part] += ug.weight[u];
      part_of_unit[u] = best_part;
      changed = true;
    }
  }
  return changed;
}

// Folds underfull partitions into neighbors (by shared edge count) or, for
// fragments with no mergeable neighbor, packs them together first-fit.
// Mutates part_of_unit/part_weight in place.
void PackFragments(const UnitGraph& ug, size_t max_nodes,
                   std::vector<uint32_t>& part_of_unit,
                   std::vector<size_t>& part_weight) {
  const size_t num_parts = part_weight.size();
  // Union-find over partitions: merging = unioning.
  std::vector<uint32_t> parent(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) parent[p] = p;
  const auto find = [&](uint32_t p) {
    while (parent[p] != p) {
      parent[p] = parent[parent[p]];
      p = parent[p];
    }
    return p;
  };

  // Process partitions from smallest to largest weight.
  std::vector<uint32_t> order;
  for (uint32_t p = 0; p < num_parts; ++p) {
    if (part_weight[p] > 0) order.push_back(p);
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return part_weight[a] != part_weight[b] ? part_weight[a] < part_weight[b]
                                            : a < b;
  });

  // Edge multiplicities between a partition and its neighbors are
  // recomputed lazily per candidate (partitions are few).
  std::unordered_map<uint32_t, uint32_t> links;
  for (const uint32_t p : order) {
    const uint32_t root = find(p);
    if (root != p) continue;  // already merged away
    if (part_weight[root] * 2 > max_nodes) continue;  // not underfull
    links.clear();
    for (uint32_t u = 0; u < ug.num_units; ++u) {
      if (find(part_of_unit[u]) != root) continue;
      for (const auto& [v, mult] : ug.adjacency[u]) {
        const uint32_t other = find(part_of_unit[v]);
        if (other != root) links[other] += mult;
      }
    }
    uint32_t best = UINT32_MAX;
    uint32_t best_links = 0;
    for (const auto& [other, mult] : links) {
      if (part_weight[other] + part_weight[root] > max_nodes) continue;
      if (mult > best_links || (mult == best_links && other < best)) {
        best = other;
        best_links = mult;
      }
    }
    if (best == UINT32_MAX) {
      // No connected candidate fits: pack with another small fragment.
      for (const uint32_t q : order) {
        const uint32_t other = find(q);
        if (other == root) continue;
        if (part_weight[other] + part_weight[root] <= max_nodes) {
          best = other;
          break;
        }
      }
    }
    if (best == UINT32_MAX) continue;
    parent[root] = best;
    part_weight[best] += part_weight[root];
    part_weight[root] = 0;
  }
  for (uint32_t u = 0; u < ug.num_units; ++u) {
    part_of_unit[u] = find(part_of_unit[u]);
  }
}

}  // namespace

PartitionResult PartitionBySize(const Digraph& g, const PartitionOptions& opts,
                                const std::vector<uint32_t>* unit_of) {
  assert(opts.max_nodes > 0);
  const size_t n = g.NumNodes();

  // Default units: every node is its own unit.
  std::vector<uint32_t> units;
  size_t num_units;
  if (unit_of != nullptr) {
    assert(unit_of->size() == n);
    units = *unit_of;
    num_units = units.empty()
                    ? 0
                    : *std::max_element(units.begin(), units.end()) + 1;
  } else {
    units.resize(n);
    for (NodeId i = 0; i < n; ++i) units[i] = i;
    num_units = n;
  }

  PartitionResult result;
  result.partition_of.assign(n, 0);
  if (n == 0) return result;

  const UnitGraph ug = BuildUnitGraph(g, units, num_units);

  constexpr uint32_t kUnassigned = UINT32_MAX;
  std::vector<uint32_t> part_of_unit(num_units, kUnassigned);
  std::vector<size_t> part_weight;

  // BFS growth over the unit graph.
  for (uint32_t seed = 0; seed < num_units; ++seed) {
    if (part_of_unit[seed] != kUnassigned) continue;
    const uint32_t part = static_cast<uint32_t>(part_weight.size());
    part_weight.push_back(0);
    std::deque<uint32_t> frontier = {seed};
    part_of_unit[seed] = part;
    part_weight[part] += ug.weight[seed];
    while (!frontier.empty() && part_weight[part] < opts.max_nodes) {
      const uint32_t u = frontier.front();
      frontier.pop_front();
      for (const auto& [v, mult] : ug.adjacency[u]) {
        (void)mult;
        if (part_of_unit[v] != kUnassigned) continue;
        if (part_weight[part] + ug.weight[v] > opts.max_nodes) continue;
        part_of_unit[v] = part;
        part_weight[part] += ug.weight[v];
        frontier.push_back(v);
      }
    }
  }

  for (int pass = 0; pass < opts.refinement_passes; ++pass) {
    if (!RefineOnce(ug, opts.max_nodes, part_of_unit, part_weight)) break;
  }

  if (opts.pack_fragments) {
    PackFragments(ug, opts.max_nodes, part_of_unit, part_weight);
    // Packing changes the boundary; one more refinement sweep cleans up.
    for (int pass = 0; pass < opts.refinement_passes; ++pass) {
      if (!RefineOnce(ug, opts.max_nodes, part_of_unit, part_weight)) break;
    }
  }

  // Compact away partitions emptied by refinement.
  std::vector<uint32_t> remap(part_weight.size(), kUnassigned);
  uint32_t next = 0;
  for (uint32_t u = 0; u < num_units; ++u) {
    uint32_t& r = remap[part_of_unit[u]];
    if (r == kUnassigned) r = next++;
  }
  for (NodeId i = 0; i < n; ++i) {
    result.partition_of[i] = remap[part_of_unit[units[i]]];
  }
  result.num_partitions = next;
  result.cut_edges = CountCutEdges(g, result.partition_of);
  return result;
}

size_t CountCutEdges(const Digraph& g,
                     const std::vector<uint32_t>& partition_of) {
  size_t cut = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Digraph::Arc& arc : g.OutArcs(u)) {
      if (partition_of[u] != partition_of[arc.target]) ++cut;
    }
  }
  return cut;
}

}  // namespace flix::graph
