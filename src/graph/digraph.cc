#include "graph/digraph.h"

#include "common/bytes.h"
#include "common/dcheck.h"

namespace flix::graph {

NodeId Digraph::AddNode(TagId tag) {
  const NodeId id = static_cast<NodeId>(tags_.size());
  tags_.push_back(tag);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

void Digraph::Resize(size_t num_nodes) {
  FLIX_DCHECK(num_nodes >= tags_.size(), "Digraph::Resize cannot shrink");
  tags_.resize(num_nodes, kInvalidTag);
  out_.resize(num_nodes);
  in_.resize(num_nodes);
}

void Digraph::AddEdge(NodeId from, NodeId to, EdgeKind kind) {
  FLIX_DCHECK(from < NumNodes() && to < NumNodes(),
              "Digraph::AddEdge endpoint out of range");
  out_[from].push_back({to, kind});
  in_[to].push_back({from, kind});
  ++num_edges_;
  if (kind == EdgeKind::kLink) ++num_link_edges_;
}

std::vector<Edge> Digraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId n = 0; n < NumNodes(); ++n) {
    for (const Arc& arc : out_[n]) {
      edges.push_back({n, arc.target, arc.kind});
    }
  }
  return edges;
}

std::vector<NodeId> Digraph::NodesWithTag(TagId tag) const {
  std::vector<NodeId> result;
  for (NodeId n = 0; n < NumNodes(); ++n) {
    if (tags_[n] == tag) result.push_back(n);
  }
  return result;
}

Digraph Digraph::InducedSubgraph(const std::vector<NodeId>& nodes,
                                 std::vector<NodeId>* local_of) const {
  std::vector<NodeId> local(NumNodes(), kInvalidNode);
  Digraph sub(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    local[nodes[i]] = static_cast<NodeId>(i);
    sub.SetTag(static_cast<NodeId>(i), tags_[nodes[i]]);
  }
  for (const NodeId global : nodes) {
    for (const Arc& arc : out_[global]) {
      if (local[arc.target] != kInvalidNode) {
        sub.AddEdge(local[global], local[arc.target], arc.kind);
      }
    }
  }
  if (local_of != nullptr) *local_of = std::move(local);
  return sub;
}

void Digraph::Save(BinaryWriter& writer) const {
  writer.WriteVec(tags_);
  std::vector<Edge> edges = Edges();
  writer.WriteU64(edges.size());
  for (const Edge& e : edges) {
    writer.WriteU32(e.from);
    writer.WriteU32(e.to);
    writer.WritePod(static_cast<uint8_t>(e.kind));
  }
}

Digraph Digraph::Load(BinaryReader& reader) {
  Digraph g;
  g.tags_ = reader.ReadVec<TagId>();
  g.out_.resize(g.tags_.size());
  g.in_.resize(g.tags_.size());
  const uint64_t num_edges = reader.ReadU64();
  for (uint64_t i = 0; i < num_edges && reader.ok(); ++i) {
    const NodeId from = reader.ReadU32();
    const NodeId to = reader.ReadU32();
    const auto kind = static_cast<EdgeKind>(reader.ReadPod<uint8_t>());
    if (from >= g.NumNodes() || to >= g.NumNodes()) {
      reader.MarkFailed();  // corrupt edge list
      break;
    }
    g.AddEdge(from, to, kind);
  }
  return g;
}

size_t Digraph::MemoryBytes() const {
  size_t bytes = VectorBytes(tags_);
  for (const auto& arcs : out_) bytes += VectorBytes(arcs);
  for (const auto& arcs : in_) bytes += VectorBytes(arcs);
  bytes += VectorBytes(out_) + VectorBytes(in_);
  return bytes;
}

}  // namespace flix::graph
