#include "graph/digraph.h"

#include "common/bytes.h"
#include "common/dcheck.h"
#include "storage/format.h"

namespace flix::graph {
namespace {

// Array ids relative to the caller-chosen base.
constexpr uint32_t kTagsArray = 0;
constexpr uint32_t kOutOffsets = 1;
constexpr uint32_t kOutArcs = 2;
constexpr uint32_t kInOffsets = 3;
constexpr uint32_t kInArcs = 4;
constexpr uint32_t kParams = 5;  // [num_edges, num_link_edges]

}  // namespace

NodeId Digraph::AddNode(TagId tag) {
  const NodeId id = static_cast<NodeId>(tags_.size());
  tags_.push_back(tag);
  out_.OwnedRows().emplace_back();
  in_.OwnedRows().emplace_back();
  return id;
}

void Digraph::Resize(size_t num_nodes) {
  FLIX_DCHECK(num_nodes >= tags_.size(), "Digraph::Resize cannot shrink");
  tags_.MutableOwned().resize(num_nodes, kInvalidTag);
  out_.OwnedRows().resize(num_nodes);
  in_.OwnedRows().resize(num_nodes);
}

void Digraph::AddEdge(NodeId from, NodeId to, EdgeKind kind) {
  FLIX_DCHECK(from < NumNodes() && to < NumNodes(),
              "Digraph::AddEdge endpoint out of range");
  out_.Row(from).push_back({to, kind});
  in_.Row(to).push_back({from, kind});
  ++num_edges_;
  if (kind == EdgeKind::kLink) ++num_link_edges_;
}

std::vector<Edge> Digraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId n = 0; n < NumNodes(); ++n) {
    for (const Arc& arc : OutArcs(n)) {
      edges.push_back({n, arc.target, arc.kind});
    }
  }
  return edges;
}

std::vector<NodeId> Digraph::NodesWithTag(TagId tag) const {
  std::vector<NodeId> result;
  for (NodeId n = 0; n < NumNodes(); ++n) {
    if (tags_[n] == tag) result.push_back(n);
  }
  return result;
}

Digraph Digraph::InducedSubgraph(const std::vector<NodeId>& nodes,
                                 std::vector<NodeId>* local_of) const {
  std::vector<NodeId> local(NumNodes(), kInvalidNode);
  Digraph sub(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    local[nodes[i]] = static_cast<NodeId>(i);
    sub.SetTag(static_cast<NodeId>(i), tags_[nodes[i]]);
  }
  for (const NodeId global : nodes) {
    for (const Arc& arc : OutArcs(global)) {
      if (local[arc.target] != kInvalidNode) {
        sub.AddEdge(local[global], local[arc.target], arc.kind);
      }
    }
  }
  if (local_of != nullptr) *local_of = std::move(local);
  return sub;
}

void Digraph::Save(BinaryWriter& writer) const {
  writer.WriteSpan(tags_.span());
  std::vector<Edge> edges = Edges();
  writer.WriteU64(edges.size());
  for (const Edge& e : edges) {
    writer.WriteU32(e.from);
    writer.WriteU32(e.to);
    writer.WritePod(static_cast<uint8_t>(e.kind));
  }
}

Digraph Digraph::Load(BinaryReader& reader) {
  Digraph g;
  g.tags_ = reader.ReadVec<TagId>();
  g.out_.Assign(g.tags_.size());
  g.in_.Assign(g.tags_.size());
  const uint64_t num_edges = reader.ReadU64();
  for (uint64_t i = 0; i < num_edges && reader.ok(); ++i) {
    const NodeId from = reader.ReadU32();
    const NodeId to = reader.ReadU32();
    const auto kind = static_cast<EdgeKind>(reader.ReadPod<uint8_t>());
    if (from >= g.NumNodes() || to >= g.NumNodes()) {
      reader.MarkFailed();  // corrupt edge list
      break;
    }
    g.AddEdge(from, to, kind);
  }
  return g;
}

void Digraph::AppendArrays(storage::SegmentWriter& seg,
                           uint32_t base_id) const {
  seg.Add(base_id + kTagsArray, tags_.span());
  std::vector<uint64_t> offsets;
  std::vector<Arc> flat;
  out_.Flatten(offsets, flat);
  seg.Add(base_id + kOutOffsets, offsets);
  seg.Add(base_id + kOutArcs, flat);
  in_.Flatten(offsets, flat);
  seg.Add(base_id + kInOffsets, offsets);
  seg.Add(base_id + kInArcs, flat);
  const std::vector<uint64_t> params = {num_edges_, num_link_edges_};
  seg.Add(base_id + kParams, params);
}

StatusOr<Digraph> Digraph::FromSegment(const storage::SegmentView& view,
                                       uint32_t base_id) {
  auto tags = view.GetArray<TagId>(base_id + kTagsArray);
  if (!tags.ok()) return tags.status();
  auto out_off = view.GetArray<uint64_t>(base_id + kOutOffsets);
  if (!out_off.ok()) return out_off.status();
  auto out_arcs = view.GetArray<Arc>(base_id + kOutArcs);
  if (!out_arcs.ok()) return out_arcs.status();
  auto in_off = view.GetArray<uint64_t>(base_id + kInOffsets);
  if (!in_off.ok()) return in_off.status();
  auto in_arcs = view.GetArray<Arc>(base_id + kInArcs);
  if (!in_arcs.ok()) return in_arcs.status();
  auto params = view.GetArray<uint64_t>(base_id + kParams);
  if (!params.ok()) return params.status();
  if (params.value().size() != 2) {
    return InvalidArgumentError("digraph segment: bad parameter array");
  }

  const size_t n = tags.value().size();
  if (out_off.value().size() != n + 1 || in_off.value().size() != n + 1) {
    return InvalidArgumentError("digraph segment: offset count mismatch");
  }
  auto out = storage::FlatRows<Arc>::FromView(out_off.value(),
                                              out_arcs.value());
  if (!out.ok()) return out.status();
  auto in = storage::FlatRows<Arc>::FromView(in_off.value(), in_arcs.value());
  if (!in.ok()) return in.status();

  Digraph g;
  g.tags_ = storage::FlatVec<TagId>::FromView(tags.value());
  g.out_ = std::move(out).value();
  g.in_ = std::move(in).value();
  g.num_edges_ = params.value()[0];
  g.num_link_edges_ = params.value()[1];
  return g;
}

size_t Digraph::MemoryBytes() const {
  return tags_.MemoryBytes() + out_.MemoryBytes() + in_.MemoryBytes();
}

}  // namespace flix::graph
