#include "graph/scc.h"

#include <algorithm>

namespace flix::graph {

SccResult StronglyConnectedComponents(const Digraph& g) {
  const size_t n = g.NumNodes();
  SccResult result;
  result.component_of.assign(n, 0);

  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  uint32_t next_index = 0;

  // Explicit DFS frame: node and position within its out-arc list.
  struct Frame {
    NodeId node;
    size_t arc_pos;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const NodeId u = frame.node;
      if (frame.arc_pos < g.OutArcs(u).size()) {
        const NodeId v = g.OutArcs(u)[frame.arc_pos++].target;
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          // u is the root of a component; pop it off the Tarjan stack.
          std::vector<NodeId> component;
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component_of[w] = result.num_components;
            component.push_back(w);
            if (w == u) break;
          }
          result.members.push_back(std::move(component));
          ++result.num_components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const NodeId parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
      }
    }
  }
  return result;
}

Digraph Condense(const Digraph& g, const SccResult& scc) {
  Digraph dag(scc.num_components);
  // Deduplicate edges with a "last seen source" stamp per target component.
  std::vector<uint32_t> last_seen(scc.num_components, UINT32_MAX);
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    for (const NodeId u : scc.members[c]) {
      for (const Digraph::Arc& arc : g.OutArcs(u)) {
        const uint32_t target = scc.component_of[arc.target];
        if (target == c || last_seen[target] == c) continue;
        last_seen[target] = c;
        dag.AddEdge(c, target, arc.kind);
      }
    }
  }
  return dag;
}

bool IsAcyclic(const Digraph& g) {
  const SccResult scc = StronglyConnectedComponents(g);
  if (scc.num_components != g.NumNodes()) return false;
  // Singleton components may still carry self-loops.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const Digraph::Arc& arc : g.OutArcs(u)) {
      if (arc.target == u) return false;
    }
  }
  return true;
}

}  // namespace flix::graph
