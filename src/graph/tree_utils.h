// Forest/tree predicates and spanning-forest extraction.
//
// PPO (pre/postorder) indexing requires the meta document's element graph to
// be a forest: every element has at most one parent and there are no cycles.
// The Maximal PPO configuration needs to test this cheaply and to know which
// link edges break it.
#ifndef FLIX_GRAPH_TREE_UTILS_H_
#define FLIX_GRAPH_TREE_UTILS_H_

#include <vector>

#include "common/types.h"
#include "graph/digraph.h"

namespace flix::graph {

// True iff every node has in-degree <= 1 and the graph is acyclic, i.e., the
// graph is a forest of rooted trees under the edge direction parent->child.
bool IsForest(const Digraph& g);

// Roots of a forest: nodes with in-degree 0. Must only be called on forests
// (asserted in debug builds); isolated nodes count as single-node trees.
std::vector<NodeId> ForestRoots(const Digraph& g);

// Greedy spanning forest: keeps every edge whose target still has no parent
// and whose addition creates no cycle; all other edges are reported as
// `removed`. Tree edges are preferred over link edges so that document
// structure survives (the paper's Maximal PPO removes *links* to restore
// tree shape, cf. Figure 3).
struct SpanningForest {
  Digraph forest;            // same node set/tags as input, subset of edges
  std::vector<Edge> removed; // edges not in the forest
};
SpanningForest ExtractSpanningForest(const Digraph& g);

}  // namespace flix::graph

#endif  // FLIX_GRAPH_TREE_UTILS_H_
