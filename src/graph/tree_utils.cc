#include "graph/tree_utils.h"

#include <cassert>

#include "graph/scc.h"

namespace flix::graph {

bool IsForest(const Digraph& g) {
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.InDegree(n) > 1) return false;
  }
  // With in-degree <= 1 everywhere, any cycle would be a simple directed
  // cycle; detect via SCC.
  return IsAcyclic(g);
}

std::vector<NodeId> ForestRoots(const Digraph& g) {
  assert(IsForest(g));
  std::vector<NodeId> roots;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.InDegree(n) == 0) roots.push_back(n);
  }
  return roots;
}

namespace {

// Union-find over the undirected shadow of the forest-so-far; adding edge
// u->v creates a cycle iff u and v are already connected.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
  }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Returns false if x and y were already in the same set.
  bool Union(NodeId x, NodeId y) {
    const NodeId rx = Find(x);
    const NodeId ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

SpanningForest ExtractSpanningForest(const Digraph& g) {
  SpanningForest result;
  result.forest.Resize(g.NumNodes());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    result.forest.SetTag(n, g.Tag(n));
  }

  UnionFind uf(g.NumNodes());
  std::vector<bool> has_parent(g.NumNodes(), false);

  // Two passes: tree edges first so that links are what gets removed.
  for (const EdgeKind pass : {EdgeKind::kTree, EdgeKind::kLink}) {
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (const Digraph::Arc& arc : g.OutArcs(u)) {
        if (arc.kind != pass) continue;
        if (!has_parent[arc.target] && arc.target != u &&
            uf.Union(u, arc.target)) {
          has_parent[arc.target] = true;
          result.forest.AddEdge(u, arc.target, arc.kind);
        } else {
          result.removed.push_back({u, arc.target, arc.kind});
        }
      }
    }
  }
  return result;
}

}  // namespace flix::graph
