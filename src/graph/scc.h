// Strongly connected components (iterative Tarjan) and graph condensation.
// HOPI's construction and the Meta Document Builder both need to reason
// about cycles introduced by links.
#ifndef FLIX_GRAPH_SCC_H_
#define FLIX_GRAPH_SCC_H_

#include <vector>

#include "common/types.h"
#include "graph/digraph.h"

namespace flix::graph {

struct SccResult {
  // Component id per node; components are numbered in reverse topological
  // order (Tarjan emits sinks first).
  std::vector<uint32_t> component_of;
  uint32_t num_components = 0;

  // Members of each component.
  std::vector<std::vector<NodeId>> members;
};

// Computes strongly connected components without recursion (safe for deep
// graphs such as long citation chains).
SccResult StronglyConnectedComponents(const Digraph& g);

// Condensation DAG: one node per SCC, deduplicated edges between distinct
// components. Tags of condensation nodes are kInvalidTag (a component mixes
// tags in general).
Digraph Condense(const Digraph& g, const SccResult& scc);

// True iff the graph has no directed cycle (every SCC is a singleton without
// a self-loop).
bool IsAcyclic(const Digraph& g);

}  // namespace flix::graph

#endif  // FLIX_GRAPH_SCC_H_
