// Size-bounded graph partitioning with small edge cut.
//
// This is the first step of HOPI's divide-and-conquer build and the whole of
// the "Unconnected HOPI" FliX configuration (paper Section 4.3): split the
// XML graph into partitions of at most `max_nodes` elements such that few
// edges cross partitions.
#ifndef FLIX_GRAPH_PARTITION_H_
#define FLIX_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/digraph.h"

namespace flix::graph {

struct PartitionOptions {
  // Maximum number of graph nodes per partition.
  size_t max_nodes = 5000;
  // Number of greedy boundary-refinement sweeps after the initial BFS
  // growth. 0 disables refinement.
  int refinement_passes = 2;
  // Merge underfull partitions after growth: each small partition is folded
  // into the partition it shares the most edges with (or packed with other
  // fragments) as long as the bound holds. Without this, hub-and-spoke
  // graphs (citation networks) fragment badly: once the hubs fill the first
  // partition, the periphery decomposes into many tiny pieces.
  bool pack_fragments = true;
};

struct PartitionResult {
  // Partition id per node, in [0, num_partitions).
  std::vector<uint32_t> partition_of;
  uint32_t num_partitions = 0;
  // Number of edges whose endpoints lie in different partitions.
  size_t cut_edges = 0;
};

// Partitions `g` into size-bounded pieces, greedily growing partitions by
// BFS over the undirected shadow of the graph and then locally refining the
// boundary. If `unit_of` is non-null it maps each node to an atomic unit
// (e.g., its document id); nodes of a unit are never split across partitions.
// A single unit larger than max_nodes becomes its own (oversized) partition.
PartitionResult PartitionBySize(const Digraph& g, const PartitionOptions& opts,
                                const std::vector<uint32_t>* unit_of = nullptr);

// Counts edges of `g` crossing partitions under the given assignment.
size_t CountCutEdges(const Digraph& g, const std::vector<uint32_t>& partition_of);

}  // namespace flix::graph

#endif  // FLIX_GRAPH_PARTITION_H_
