// Directed graph with tagged nodes — the "XML data graph" G_X of the paper
// (Section 2.1): nodes are XML elements, edges are parent-child relations and
// link traversals.
#ifndef FLIX_GRAPH_DIGRAPH_H_
#define FLIX_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/flat.h"
#include "storage/segment.h"

namespace flix::graph {

// Whether an edge comes from the document tree or from a link (idref/XLink).
// The PEE and the Meta Document Builder treat both as distance-1 edges, but
// configurations like Maximal PPO need to know which edges are removable
// links.
enum class EdgeKind : uint8_t {
  kTree = 0,
  kLink = 1,
};

struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  EdgeKind kind = EdgeKind::kTree;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// Adjacency-list digraph with two storage modes: heap-owned (mutable — the
// build path) or a zero-copy view into a mapped paged-index segment (see
// storage/). Nodes carry a TagId label; edges carry an EdgeKind. Both out-
// and in-adjacency are maintained so that ancestor queries and backward BFS
// are as cheap as forward ones.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(size_t num_nodes) { Resize(num_nodes); }

  // Appends a node with the given tag; returns its id.
  NodeId AddNode(TagId tag);

  // Grows the graph to `num_nodes` nodes (new nodes get kInvalidTag).
  void Resize(size_t num_nodes);

  // Adds a directed edge. Both endpoints must exist. Parallel edges are
  // allowed at this layer; deduplication, where needed, is up to callers.
  void AddEdge(NodeId from, NodeId to, EdgeKind kind = EdgeKind::kTree);

  size_t NumNodes() const { return tags_.size(); }
  size_t NumEdges() const { return num_edges_; }
  size_t NumLinkEdges() const { return num_link_edges_; }

  TagId Tag(NodeId n) const { return tags_[n]; }
  void SetTag(NodeId n, TagId tag) { tags_[n] = tag; }

  // One adjacency entry. The explicit (always-zero) padding makes the
  // in-memory bytes deterministic, so mapped segments checksum reproducibly.
  struct Arc {
    NodeId target;
    EdgeKind kind;
    uint8_t pad_[3] = {0, 0, 0};

    friend bool operator==(const Arc& a, const Arc& b) {
      return a.target == b.target && a.kind == b.kind;
    }
  };
  static_assert(sizeof(Arc) == 8);

  std::span<const Arc> OutArcs(NodeId n) const { return out_[n]; }
  std::span<const Arc> InArcs(NodeId n) const { return in_[n]; }

  size_t OutDegree(NodeId n) const { return out_[n].size(); }
  size_t InDegree(NodeId n) const { return in_[n].size(); }

  // All edges, in insertion order.
  std::vector<Edge> Edges() const;

  // Nodes with the given tag.
  std::vector<NodeId> NodesWithTag(TagId tag) const;

  // Extracts the node-induced subgraph over `nodes`. `nodes[i]` becomes local
  // node i. If `local_of` is non-null it receives a map global -> local id
  // (kInvalidNode for nodes outside the subgraph); it must already have
  // NumNodes() entries.
  Digraph InducedSubgraph(const std::vector<NodeId>& nodes,
                          std::vector<NodeId>* local_of = nullptr) const;

  // True when the adjacency borrows a mapped segment (zero-copy load)
  // instead of owning heap storage.
  bool is_view() const { return tags_.is_view(); }

  // Approximate heap footprint, for index size accounting.
  size_t MemoryBytes() const;

  // Binary persistence (nodes, tags and edges, insertion order preserved).
  // Works in both modes; always produces the stream format.
  void Save(BinaryWriter& writer) const;
  static Digraph Load(BinaryReader& reader);

  // Paged persistence: appends this graph's arrays to a segment under ids
  // base_id+0 .. base_id+5, and reconstructs a zero-copy view from them.
  void AppendArrays(storage::SegmentWriter& seg, uint32_t base_id) const;
  static StatusOr<Digraph> FromSegment(const storage::SegmentView& view,
                                       uint32_t base_id);

 private:
  storage::FlatVec<TagId> tags_;
  storage::FlatRows<Arc> out_;
  storage::FlatRows<Arc> in_;
  size_t num_edges_ = 0;
  size_t num_link_edges_ = 0;
};

}  // namespace flix::graph

#endif  // FLIX_GRAPH_DIGRAPH_H_
