// Inverted text index over element content — the content half of the
// paper's XXL-style vagueness (Section 1: the ~ operator applies to content
// conditions like title ~ "Matrix: Revolutions" as well as to tag names).
//
// Indexes the direct text of every element in a collection: an inverted
// file (term -> postings with TF-IDF weights) for ranked lookup, plus a
// forward index (element -> term vector) for scoring a specific element
// against a query string. Both are what a search engine built on FliX
// (the paper's XXL) needs to combine content scores with the structural
// scores of the Path Expression Evaluator.
#ifndef FLIX_TEXT_TEXT_INDEX_H_
#define FLIX_TEXT_TEXT_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "xml/collection.h"

namespace flix::text {

// Lowercased alphanumeric tokens of `s`, in order, duplicates kept.
std::vector<std::string> Tokenize(std::string_view s);

struct ScoredElement {
  NodeId element = kInvalidNode;
  double score = 0.0;

  friend bool operator==(const ScoredElement&, const ScoredElement&) = default;
};

class TextIndex {
 public:
  // Indexes the direct text of every element of `collection`.
  static TextIndex Build(const xml::Collection& collection);

  struct Posting {
    NodeId element;
    float weight;  // normalized TF-IDF
  };

  // Postings for an exact token (case-folded), or nullptr if unseen.
  const std::vector<Posting>* Postings(std::string_view term) const;

  // Ranked retrieval: elements by descending cosine similarity between
  // their text vector and `query`; at most `k` results, score > 0.
  std::vector<ScoredElement> Search(std::string_view query, size_t k) const;

  // Cosine similarity between one element's text and `query` in [0, 1]
  // (0 for untexted elements or queries with no indexed terms).
  double Score(NodeId element, std::string_view query) const;

  size_t NumTerms() const { return term_ids_.size(); }
  size_t NumIndexedElements() const { return num_indexed_; }
  size_t MemoryBytes() const;

 private:
  TextIndex() = default;

  // Term id for a token, or UINT32_MAX.
  uint32_t TermId(std::string_view token) const;

  // Query vector: (term id, normalized weight), using query-side TF and
  // collection-side IDF.
  std::vector<std::pair<uint32_t, double>> QueryVector(
      std::string_view query) const;

  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<double> idf_;
  std::vector<std::vector<Posting>> postings_;
  // Forward index: per element, sorted (term id, weight) pairs. Empty for
  // elements without text.
  std::vector<std::vector<std::pair<uint32_t, float>>> forward_;
  size_t num_indexed_ = 0;
};

}  // namespace flix::text

#endif  // FLIX_TEXT_TEXT_INDEX_H_
