#include "text/text_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/bytes.h"

namespace flix::text {

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

TextIndex TextIndex::Build(const xml::Collection& collection) {
  TextIndex index;
  const size_t num_elements = collection.NumElements();
  index.forward_.assign(num_elements, {});

  // Pass 1: term frequencies per element, document frequencies per term.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> tf(num_elements);
  std::vector<uint32_t> df;
  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    const xml::Document& doc = collection.document(d);
    for (xml::ElementId e = 0; e < doc.NumElements(); ++e) {
      const std::string& content = doc.element(e).text;
      if (content.empty()) continue;
      const NodeId node = collection.GlobalId(d, e);
      std::unordered_map<uint32_t, uint32_t> counts;
      for (const std::string& token : Tokenize(content)) {
        const auto [it, inserted] = index.term_ids_.emplace(
            token, static_cast<uint32_t>(index.term_ids_.size()));
        if (inserted) df.push_back(0);
        ++counts[it->second];
      }
      if (counts.empty()) continue;
      ++index.num_indexed_;
      tf[node].assign(counts.begin(), counts.end());
      std::sort(tf[node].begin(), tf[node].end());
      for (const auto& [term, count] : tf[node]) {
        (void)count;
        ++df[term];
      }
    }
  }

  // IDF with the usual smoothing; N = number of indexed elements.
  const double n = std::max<size_t>(index.num_indexed_, 1);
  index.idf_.resize(df.size());
  for (size_t t = 0; t < df.size(); ++t) {
    index.idf_[t] = std::log(1.0 + n / df[t]);
  }

  // Pass 2: L2-normalized TF-IDF vectors, forward and inverted.
  index.postings_.assign(df.size(), {});
  for (NodeId node = 0; node < num_elements; ++node) {
    if (tf[node].empty()) continue;
    double norm = 0;
    std::vector<std::pair<uint32_t, float>>& vec = index.forward_[node];
    vec.reserve(tf[node].size());
    for (const auto& [term, count] : tf[node]) {
      const double w = (1.0 + std::log(count)) * index.idf_[term];
      vec.push_back({term, static_cast<float>(w)});
      norm += w * w;
    }
    norm = std::sqrt(norm);
    for (auto& [term, weight] : vec) {
      weight = static_cast<float>(weight / norm);
      index.postings_[term].push_back({node, weight});
    }
  }
  return index;
}

uint32_t TextIndex::TermId(std::string_view token) const {
  const auto it = term_ids_.find(std::string(token));
  return it == term_ids_.end() ? UINT32_MAX : it->second;
}

const std::vector<TextIndex::Posting>* TextIndex::Postings(
    std::string_view term) const {
  std::string folded;
  for (const char c : term) {
    folded.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  const uint32_t id = TermId(folded);
  return id == UINT32_MAX ? nullptr : &postings_[id];
}

std::vector<std::pair<uint32_t, double>> TextIndex::QueryVector(
    std::string_view query) const {
  std::unordered_map<uint32_t, uint32_t> counts;
  for (const std::string& token : Tokenize(query)) {
    const uint32_t id = TermId(token);
    if (id != UINT32_MAX) ++counts[id];
  }
  std::vector<std::pair<uint32_t, double>> vec(counts.begin(), counts.end());
  double norm = 0;
  for (auto& [term, weight] : vec) {
    weight = (1.0 + std::log(weight)) * idf_[term];
    norm += weight * weight;
  }
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (auto& [term, weight] : vec) weight /= norm;
  }
  std::sort(vec.begin(), vec.end());
  return vec;
}

std::vector<ScoredElement> TextIndex::Search(std::string_view query,
                                             size_t k) const {
  const auto qvec = QueryVector(query);
  std::unordered_map<NodeId, double> scores;
  for (const auto& [term, qweight] : qvec) {
    for (const Posting& p : postings_[term]) {
      scores[p.element] += qweight * p.weight;
    }
  }
  std::vector<ScoredElement> ranked;
  ranked.reserve(scores.size());
  for (const auto& [element, score] : scores) {
    ranked.push_back({element, score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredElement& a, const ScoredElement& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.element < b.element;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

double TextIndex::Score(NodeId element, std::string_view query) const {
  if (element >= forward_.size() || forward_[element].empty()) return 0.0;
  const auto qvec = QueryVector(query);
  const auto& evec = forward_[element];
  double score = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < qvec.size() && j < evec.size()) {
    if (qvec[i].first < evec[j].first) {
      ++i;
    } else if (qvec[i].first > evec[j].first) {
      ++j;
    } else {
      score += qvec[i].second * evec[j].second;
      ++i;
      ++j;
    }
  }
  return score;
}

size_t TextIndex::MemoryBytes() const {
  size_t bytes = VectorBytes(idf_);
  for (const auto& [term, id] : term_ids_) {
    (void)id;
    bytes += term.capacity() + sizeof(uint32_t) + 16;
  }
  for (const auto& list : postings_) bytes += VectorBytes(list);
  bytes += VectorBytes(postings_);
  for (const auto& vec : forward_) bytes += VectorBytes(vec);
  bytes += VectorBytes(forward_);
  return bytes;
}

}  // namespace flix::text
