// On-disk layout of the paged (mmap-able) index format.
//
// A paged index file is laid out as
//
//   [superblock (page 0)] [segment]* [segment table]
//
// where every segment starts on a page boundary and holds one logical unit:
// the framework-global tables, one meta document's tables, or one meta
// document's strategy payload. A segment is self-describing — a small
// header, a directory of typed flat arrays, then the 64-byte-aligned array
// payloads — so readers bounds-check every access against the directory
// instead of trusting offsets blindly.
//
// Everything is little-endian, explicitly sized and explicitly aligned; the
// superblock carries an endianness marker so a big-endian reader fails fast
// instead of misinterpreting the data. Structures here are frozen by
// kPagedVersion: layout changes bump the version, and readers reject
// versions they do not understand (forward compat), while old files keep
// loading under new code until the version is retired (backward compat —
// see DESIGN.md "Paged storage format").
#ifndef FLIX_STORAGE_FORMAT_H_
#define FLIX_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace flix::storage {

// "FLIXPG01" in file byte order.
inline constexpr uint64_t kPagedMagic = 0x3130475058494C46ull;
inline constexpr uint32_t kPagedVersion = 1;
// Written as 0x01020304; a byte-swapped reader sees 0x04030201.
inline constexpr uint32_t kEndianMarker = 0x01020304;
inline constexpr uint32_t kPageBytes = 4096;
// Array payloads are aligned to cache-line granularity within a segment;
// segments themselves start page-aligned, so mapped arrays are 64-byte
// aligned in memory too.
inline constexpr uint32_t kArrayAlign = 64;

// FNV-1a 64-bit. Chosen over CRC for simplicity: corruption detection, not
// adversarial integrity (the mutation tests flip bytes, not forge hashes).
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// What one segment stores.
enum class SegmentKind : uint32_t {
  // Framework-global tables (node -> meta document mapping).
  kFramework = 1,
  // One meta document's tables: local graph, global-node list, cross links.
  kPartition = 2,
  // One meta document's strategy payload; SegmentEntry::strategy names the
  // StrategyKind.
  kIndex = 3,
  // The ALT landmark distance cache (src/flix/landmarks.h). Optional and
  // advisory: a reader that finds it damaged (or absent) runs point queries
  // blind instead of failing the load, so this segment is exempt from the
  // up-front checksum sweep and self-verified by the loader.
  kLandmarks = 4,
};

// One row of the segment table.
struct SegmentEntry {
  uint32_t kind = 0;       // SegmentKind
  uint32_t partition = 0;  // meta document id; 0 for kFramework
  uint32_t strategy = 0;   // StrategyKind for kIndex segments, else 0
  uint32_t reserved = 0;
  uint64_t offset = 0;  // absolute file offset, page-aligned
  uint64_t length = 0;  // payload bytes (before page padding)
  uint64_t checksum = 0;  // Fnv1a64 over the payload bytes
};
static_assert(sizeof(SegmentEntry) == 40);
static_assert(std::is_trivially_copyable_v<SegmentEntry>);

// Page 0. The trailing checksum covers every preceding superblock byte;
// the segment table has its own checksum so a truncated file is detected
// before any segment is touched.
struct Superblock {
  uint64_t magic = kPagedMagic;
  uint32_t version = kPagedVersion;
  uint32_t endianness = kEndianMarker;
  uint32_t page_bytes = kPageBytes;
  uint32_t superblock_bytes = 0;  // sizeof(Superblock), rejects layout drift
  uint64_t file_bytes = 0;
  uint64_t segment_table_offset = 0;
  uint64_t segment_count = 0;
  uint64_t segment_table_checksum = 0;

  // Framework identity: enough to reconstruct FlixOptions and to verify the
  // file matches the collection it is opened against.
  uint64_t num_elements = 0;
  uint32_t num_partitions = 0;
  uint32_t config = 0;
  uint32_t iss_policy = 0;
  uint32_t element_level_partitions = 0;
  uint64_t partition_bound = 0;
  uint64_t hopi_max_nodes = 0;
  uint64_t hybrid_dense_link_threshold = 0;
  uint64_t query_cache_capacity = 0;
  uint64_t num_cross_links = 0;

  // ALT landmark cache identity, carved out of the former reserved[4]
  // (zeros in pre-landmark files, so kPagedVersion is unchanged):
  // landmark_count + 1 as configured (0 = written before landmarks existed;
  // loaders then keep the FlixOptions default), and the generation of the
  // persisted cache (0 = no kLandmarks segment was written).
  uint64_t landmark_count_plus_one = 0;
  uint64_t landmark_generation = 0;
  uint64_t reserved[2] = {0, 0};
  uint64_t checksum = 0;
};
static_assert(sizeof(Superblock) == 160);
static_assert(sizeof(Superblock) <= kPageBytes);
static_assert(std::is_trivially_copyable_v<Superblock>);

// Segment payload prefix.
struct SegmentHeader {
  uint32_t magic = kSegmentMagic;
  uint32_t array_count = 0;

  static constexpr uint32_t kSegmentMagic = 0x31474553;  // "SEG1"
};

// One directory row inside a segment: a typed flat array. `offset` is
// relative to the segment start and kArrayAlign-aligned.
struct ArrayEntry {
  uint32_t id = 0;
  uint32_t elem_bytes = 0;
  uint64_t count = 0;
  uint64_t offset = 0;
};
static_assert(sizeof(ArrayEntry) == 24);
static_assert(std::is_trivially_copyable_v<ArrayEntry>);

inline constexpr uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

}  // namespace flix::storage

#endif  // FLIX_STORAGE_FORMAT_H_
