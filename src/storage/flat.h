// Dual-mode flat containers: the building blocks of the paged index format.
//
// Every persistent structure in FliX (strategy payloads, meta-document
// tables, graphs) is expressed over three container shapes:
//
//   * FlatVec<T>      — a flat array of trivially copyable elements,
//   * FlatRows<T>     — a list of variable-length rows (CSR: offsets + flat),
//   * FlatMultiMap    — a sparse id -> id-list map (sorted keys + CSR).
//
// Each container either *owns* heap storage (the build/mutation mode — the
// classic vectors the in-memory code always used) or *views* immutable
// storage inside a memory-mapped index file (zero-copy read mode). All read
// accessors work identically in both modes, so one query implementation
// serves heap-built and mmap-loaded indexes alike; mutating accessors are
// owned-mode only and FLIX_DCHECK otherwise.
//
// Views never copy and never allocate; they borrow the mapping, which must
// outlive the container (Flix pins the mapped file for the instance's
// lifetime).
#ifndef FLIX_STORAGE_FLAT_H_
#define FLIX_STORAGE_FLAT_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/dcheck.h"
#include "common/status.h"
#include "common/types.h"

namespace flix::storage {

// A flat array: owned std::vector<T> or a borrowed span into a mapping.
template <typename T>
class FlatVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  FlatVec() = default;
  FlatVec(std::vector<T> v) : owned_(std::move(v)) {}  // NOLINT(runtime/explicit)
  FlatVec& operator=(std::vector<T> v) {
    owned_ = std::move(v);
    view_ = {};
    is_view_ = false;
    return *this;
  }

  static FlatVec FromView(std::span<const T> view) {
    FlatVec v;
    v.view_ = view;
    v.is_view_ = true;
    return v;
  }

  bool is_view() const { return is_view_; }
  size_t size() const { return is_view_ ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T* data() const { return is_view_ ? view_.data() : owned_.data(); }
  const T& operator[](size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<const T> span() const { return {data(), size()}; }

  // Owned-mode mutation (build paths and the corruption test hooks).
  T& operator[](size_t i) {
    FLIX_DCHECK(!is_view_, "FlatVec: mutation of a mapped view");
    return owned_[i];
  }
  void assign(size_t n, const T& value) {
    FLIX_DCHECK(!is_view_, "FlatVec: mutation of a mapped view");
    owned_.assign(n, value);
  }
  void resize(size_t n) {
    FLIX_DCHECK(!is_view_, "FlatVec: mutation of a mapped view");
    owned_.resize(n);
  }
  void reserve(size_t n) {
    FLIX_DCHECK(!is_view_, "FlatVec: mutation of a mapped view");
    owned_.reserve(n);
  }
  void push_back(const T& value) {
    FLIX_DCHECK(!is_view_, "FlatVec: mutation of a mapped view");
    owned_.push_back(value);
  }
  std::vector<T>& MutableOwned() {
    FLIX_DCHECK(!is_view_, "FlatVec: mutation of a mapped view");
    return owned_;
  }

  // Payload footprint. A view's bytes live in the mapping, but they are
  // still this structure's data — report them so index size accounting
  // (paper Table 1) stays meaningful across formats.
  size_t MemoryBytes() const {
    return is_view_ ? view_.size_bytes() : owned_.capacity() * sizeof(T);
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
  bool is_view_ = false;
};

// Variable-length rows: owned nested vectors or a borrowed CSR view
// (offsets[i] .. offsets[i+1] delimit row i inside the flat array).
template <typename T>
class FlatRows {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  FlatRows() = default;
  FlatRows(std::vector<std::vector<T>> rows)  // NOLINT(runtime/explicit)
      : owned_(std::move(rows)) {}
  FlatRows& operator=(std::vector<std::vector<T>> rows) {
    owned_ = std::move(rows);
    offsets_ = {};
    flat_ = {};
    is_view_ = false;
    return *this;
  }

  // Borrow a CSR pair. Rejects malformed shapes (non-monotonic offsets or
  // offsets pointing past the flat array) so a corrupt mapping can never
  // produce out-of-bounds row spans.
  static StatusOr<FlatRows> FromView(std::span<const uint64_t> offsets,
                                     std::span<const T> flat) {
    if (offsets.empty()) {
      return InvalidArgumentError("flat rows: empty offset array");
    }
    if (offsets.front() != 0 || offsets.back() != flat.size()) {
      return InvalidArgumentError("flat rows: offsets do not cover the flat "
                                  "array");
    }
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) {
        return InvalidArgumentError("flat rows: offsets not monotonic");
      }
    }
    FlatRows rows;
    rows.offsets_ = offsets;
    rows.flat_ = flat;
    rows.is_view_ = true;
    return rows;
  }

  bool is_view() const { return is_view_; }
  size_t size() const {
    return is_view_ ? offsets_.size() - 1 : owned_.size();
  }
  bool empty() const { return size() == 0; }

  std::span<const T> operator[](size_t i) const {
    if (is_view_) {
      return flat_.subspan(offsets_[i], offsets_[i + 1] - offsets_[i]);
    }
    return {owned_[i].data(), owned_[i].size()};
  }

  size_t TotalEntries() const {
    if (is_view_) return flat_.size();
    size_t total = 0;
    for (const auto& row : owned_) total += row.size();
    return total;
  }

  // Owned-mode mutation.
  void Assign(size_t n) {
    FLIX_DCHECK(!is_view_, "FlatRows: mutation of a mapped view");
    owned_.assign(n, {});
  }
  std::vector<T>& Row(size_t i) {
    FLIX_DCHECK(!is_view_, "FlatRows: mutation of a mapped view");
    return owned_[i];
  }
  std::vector<std::vector<T>>& OwnedRows() {
    FLIX_DCHECK(!is_view_, "FlatRows: mutation of a mapped view");
    return owned_;
  }

  // Serializes to a CSR pair; works in both modes (paged saves of a live
  // mmap-loaded instance re-flatten the borrowed view).
  void Flatten(std::vector<uint64_t>& offsets, std::vector<T>& flat) const {
    const size_t n = size();
    offsets.clear();
    offsets.reserve(n + 1);
    flat.clear();
    flat.reserve(TotalEntries());
    offsets.push_back(0);
    for (size_t i = 0; i < n; ++i) {
      const std::span<const T> row = (*this)[i];
      flat.insert(flat.end(), row.begin(), row.end());
      offsets.push_back(flat.size());
    }
  }

  size_t MemoryBytes() const {
    if (is_view_) return offsets_.size_bytes() + flat_.size_bytes();
    size_t bytes = owned_.capacity() * sizeof(std::vector<T>);
    for (const auto& row : owned_) bytes += row.capacity() * sizeof(T);
    return bytes;
  }

 private:
  std::vector<std::vector<T>> owned_;
  std::span<const uint64_t> offsets_;
  std::span<const T> flat_;
  bool is_view_ = false;
};

// Sparse NodeId -> NodeId-list map (the cross-link tables L_i / entry
// origins): owned hash map or a borrowed (sorted keys, CSR values) view
// answered by binary search. Key sets are small (link sources per meta
// document), so the log-k probe is noise next to the index work around it.
class FlatMultiMap {
 public:
  FlatMultiMap() = default;

  static StatusOr<FlatMultiMap> FromView(std::span<const NodeId> keys,
                                         std::span<const uint64_t> offsets,
                                         std::span<const NodeId> flat) {
    if (offsets.size() != keys.size() + 1) {
      return InvalidArgumentError("flat map: offset/key count mismatch");
    }
    for (size_t i = 1; i < keys.size(); ++i) {
      if (keys[i] <= keys[i - 1]) {
        return InvalidArgumentError("flat map: keys not strictly ascending");
      }
    }
    StatusOr<FlatRows<NodeId>> rows = FlatRows<NodeId>::FromView(offsets, flat);
    if (!rows.ok()) return rows.status();
    FlatMultiMap map;
    map.keys_ = keys;
    map.rows_ = std::move(rows).value();
    map.is_view_ = true;
    return map;
  }

  bool is_view() const { return is_view_; }
  size_t NumKeys() const { return is_view_ ? keys_.size() : map_.size(); }
  bool empty() const { return NumKeys() == 0; }

  // Values for `key`; empty span when absent.
  std::span<const NodeId> At(NodeId key) const {
    if (is_view_) {
      size_t lo = 0;
      size_t hi = keys_.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (keys_[mid] < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == keys_.size() || keys_[lo] != key) return {};
      return rows_[lo];
    }
    const auto it = map_.find(key);
    if (it == map_.end()) return {};
    return {it->second.data(), it->second.size()};
  }

  bool Contains(NodeId key) const {
    return !At(key).empty() || (!is_view_ && map_.contains(key));
  }

  size_t TotalValues() const {
    if (is_view_) return rows_.TotalEntries();
    size_t total = 0;
    for (const auto& [key, values] : map_) {
      (void)key;
      total += values.size();
    }
    return total;
  }

  // Visits every (key, values) pair. View mode iterates in ascending key
  // order; owned mode in hash order — callers that need determinism (the
  // paged writer) go through Flatten instead.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (is_view_) {
      for (size_t i = 0; i < keys_.size(); ++i) fn(keys_[i], rows_[i]);
      return;
    }
    for (const auto& [key, values] : map_) {
      fn(key, std::span<const NodeId>(values.data(), values.size()));
    }
  }

  // Owned-mode mutation.
  void Add(NodeId key, NodeId value) {
    FLIX_DCHECK(!is_view_, "FlatMultiMap: mutation of a mapped view");
    map_[key].push_back(value);
  }

  // Deterministic (ascending-key) flattening; works in both modes.
  void Flatten(std::vector<NodeId>& keys, std::vector<uint64_t>& offsets,
               std::vector<NodeId>& flat) const {
    keys.clear();
    offsets.clear();
    flat.clear();
    if (is_view_) {
      keys.assign(keys_.begin(), keys_.end());
      rows_.Flatten(offsets, flat);
      return;
    }
    keys.reserve(map_.size());
    for (const auto& [key, values] : map_) {
      (void)values;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    offsets.reserve(keys.size() + 1);
    offsets.push_back(0);
    for (const NodeId key : keys) {
      const auto& values = map_.at(key);
      flat.insert(flat.end(), values.begin(), values.end());
      offsets.push_back(flat.size());
    }
  }

  size_t MemoryBytes() const {
    if (is_view_) return keys_.size_bytes() + rows_.MemoryBytes();
    size_t bytes = 0;
    for (const auto& [key, values] : map_) {
      (void)key;
      // Rough per-bucket overhead matching the old accounting.
      bytes += values.capacity() * sizeof(NodeId) + 32;
    }
    return bytes;
  }

 private:
  std::unordered_map<NodeId, std::vector<NodeId>> map_;
  std::span<const NodeId> keys_;
  FlatRows<NodeId> rows_;
  bool is_view_ = false;
};

}  // namespace flix::storage

#endif  // FLIX_STORAGE_FLAT_H_
