// Segment writer/reader for the paged index format.
//
// A segment is a self-describing blob: SegmentHeader, then a directory of
// ArrayEntry rows, then the kArrayAlign-aligned typed array payloads. The
// writer collects arrays and emits the blob; the view parses a mapped blob,
// bounds-checks the directory, and hands out typed spans that alias the
// mapping directly (zero-copy).
#ifndef FLIX_STORAGE_SEGMENT_H_
#define FLIX_STORAGE_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "storage/format.h"

namespace flix::storage {

// Accumulates typed arrays and serializes them as one segment payload.
// Array ids must be unique within a segment; the reader looks arrays up by
// id, so writers may append in any order and later add arrays without
// breaking old readers (unknown ids are simply not requested).
class SegmentWriter {
 public:
  template <typename T>
  void Add(uint32_t id, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    Array array;
    array.id = id;
    array.elem_bytes = sizeof(T);
    array.count = data.size();
    array.bytes.resize(data.size_bytes());
    if (!data.empty()) {
      std::memcpy(array.bytes.data(), data.data(), data.size_bytes());
    }
    arrays_.push_back(std::move(array));
  }

  template <typename T>
  void Add(uint32_t id, const std::vector<T>& data) {
    Add(id, std::span<const T>(data.data(), data.size()));
  }

  // Serializes header + directory + aligned payloads.
  std::vector<std::byte> Finish() const;

 private:
  struct Array {
    uint32_t id = 0;
    uint32_t elem_bytes = 0;
    uint64_t count = 0;
    std::vector<std::byte> bytes;
  };
  std::vector<Array> arrays_;
};

// A parsed, validated segment inside a mapping. GetArray<T> returns spans
// that alias the mapping; the mapping must outlive every span.
class SegmentView {
 public:
  static StatusOr<SegmentView> Parse(std::span<const std::byte> payload);

  // The typed array with this id. Errors if absent, if the element size
  // recorded on disk does not match sizeof(T), or (impossible after Parse,
  // but re-checked) if it escapes the payload.
  template <typename T>
  StatusOr<std::span<const T>> GetArray(uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    for (const ArrayEntry& entry : entries_) {
      if (entry.id != id) continue;
      if (entry.elem_bytes != sizeof(T)) {
        return InvalidArgumentError("segment array " + std::to_string(id) +
                             ": element size mismatch");
      }
      return std::span<const T>(
          reinterpret_cast<const T*>(payload_.data() + entry.offset),
          entry.count);
    }
    return InvalidArgumentError("segment array " + std::to_string(id) + ": missing");
  }

  bool HasArray(uint32_t id) const {
    for (const ArrayEntry& entry : entries_) {
      if (entry.id == id) return true;
    }
    return false;
  }

  size_t array_count() const { return entries_.size(); }

 private:
  std::span<const std::byte> payload_;
  std::span<const ArrayEntry> entries_;
};

}  // namespace flix::storage

#endif  // FLIX_STORAGE_SEGMENT_H_
