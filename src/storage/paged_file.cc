#include "storage/paged_file.h"

#include <cstring>
#include <utility>

namespace flix::storage {
namespace {

Status WritePadding(std::ofstream& out, uint64_t bytes) {
  static constexpr char kZeros[kPageBytes] = {};
  while (bytes > 0) {
    const uint64_t chunk = bytes < sizeof(kZeros) ? bytes : sizeof(kZeros);
    out.write(kZeros, static_cast<std::streamsize>(chunk));
    bytes -= chunk;
  }
  if (!out.good()) return InternalError("paged writer: write failed");
  return Status::Ok();
}

}  // namespace

StatusOr<PagedFileWriter> PagedFileWriter::Create(
    const std::string& path, const Superblock& superblock) {
  PagedFileWriter writer;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_.is_open()) {
    return InternalError("paged writer: cannot open " + path);
  }
  writer.superblock_ = superblock;
  writer.superblock_.magic = kPagedMagic;
  writer.superblock_.version = kPagedVersion;
  writer.superblock_.endianness = kEndianMarker;
  writer.superblock_.page_bytes = kPageBytes;
  writer.superblock_.superblock_bytes = sizeof(Superblock);
  // Page 0 is reserved; the real superblock is patched in by Finish.
  Status padded = WritePadding(writer.out_, kPageBytes);
  if (!padded.ok()) return padded;
  writer.cursor_ = kPageBytes;
  return writer;
}

Status PagedFileWriter::AddSegment(SegmentKind kind, uint32_t partition,
                                   uint32_t strategy,
                                   std::span<const std::byte> payload) {
  if (finished_) {
    return FailedPreconditionError("paged writer: AddSegment after Finish");
  }
  SegmentEntry entry;
  entry.kind = static_cast<uint32_t>(kind);
  entry.partition = partition;
  entry.strategy = strategy;
  entry.offset = cursor_;
  entry.length = payload.size();
  entry.checksum = Fnv1a64(payload.data(), payload.size());
  entries_.push_back(entry);

  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  if (!out_.good()) return InternalError("paged writer: write failed");
  const uint64_t padded = AlignUp(cursor_ + payload.size(), kPageBytes);
  Status status = WritePadding(out_, padded - (cursor_ + payload.size()));
  if (!status.ok()) return status;
  cursor_ = padded;
  return Status::Ok();
}

Status PagedFileWriter::Finish() {
  if (finished_) {
    return FailedPreconditionError("paged writer: double Finish");
  }
  finished_ = true;

  superblock_.segment_table_offset = cursor_;
  superblock_.segment_count = entries_.size();
  superblock_.segment_table_checksum =
      Fnv1a64(entries_.data(), entries_.size() * sizeof(SegmentEntry));
  superblock_.file_bytes =
      cursor_ + entries_.size() * sizeof(SegmentEntry);

  out_.write(reinterpret_cast<const char*>(entries_.data()),
             static_cast<std::streamsize>(entries_.size() *
                                          sizeof(SegmentEntry)));
  if (!out_.good()) return InternalError("paged writer: table write failed");

  superblock_.checksum =
      Fnv1a64(&superblock_, offsetof(Superblock, checksum));
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&superblock_), sizeof(superblock_));
  out_.flush();
  if (!out_.good()) return InternalError("paged writer: superblock write failed");
  out_.close();
  return Status::Ok();
}

StatusOr<PagedFileReader> PagedFileReader::Open(const std::string& path,
                                                bool verify_checksums) {
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();

  PagedFileReader reader;
  reader.file_ = std::move(mapped).value();
  const std::span<const std::byte> bytes = reader.file_.bytes();
  if (bytes.size() < sizeof(Superblock)) {
    return InvalidArgumentError("paged index: file shorter than superblock");
  }
  std::memcpy(&reader.superblock_, bytes.data(), sizeof(Superblock));
  const Superblock& sb = reader.superblock_;
  if (sb.magic != kPagedMagic) {
    return InvalidArgumentError("paged index: bad magic");
  }
  if (sb.endianness != kEndianMarker) {
    return InvalidArgumentError("paged index: endianness mismatch");
  }
  if (sb.version != kPagedVersion) {
    return InvalidArgumentError("paged index: unsupported version " +
                                std::to_string(sb.version));
  }
  if (sb.page_bytes != kPageBytes ||
      sb.superblock_bytes != sizeof(Superblock)) {
    return InvalidArgumentError("paged index: layout mismatch");
  }
  const uint64_t expect =
      Fnv1a64(&reader.superblock_, offsetof(Superblock, checksum));
  if (sb.checksum != expect) {
    return InvalidArgumentError("paged index: superblock checksum mismatch");
  }
  if (sb.file_bytes != bytes.size()) {
    return InvalidArgumentError("paged index: truncated file (expected " +
                                std::to_string(sb.file_bytes) + " bytes, got " +
                                std::to_string(bytes.size()) + ")");
  }

  const uint64_t table_bytes = sb.segment_count * sizeof(SegmentEntry);
  if (sb.segment_table_offset > bytes.size() ||
      table_bytes > bytes.size() - sb.segment_table_offset) {
    return InvalidArgumentError("paged index: segment table out of bounds");
  }
  reader.entries_.resize(sb.segment_count);
  if (table_bytes > 0) {
    std::memcpy(reader.entries_.data(),
                bytes.data() + sb.segment_table_offset, table_bytes);
  }
  if (Fnv1a64(reader.entries_.data(), table_bytes) !=
      sb.segment_table_checksum) {
    return InvalidArgumentError("paged index: segment table checksum mismatch");
  }
  for (const SegmentEntry& entry : reader.entries_) {
    if (entry.offset % kPageBytes != 0) {
      return InvalidArgumentError("paged index: segment not page-aligned");
    }
    if (entry.offset > bytes.size() ||
        entry.length > bytes.size() - entry.offset) {
      return InvalidArgumentError("paged index: segment out of bounds");
    }
    // Landmark segments are advisory: the loader verifies them itself and
    // falls back to blind search on damage, so corruption there must not
    // fail the whole open (see SegmentKind::kLandmarks).
    if (verify_checksums &&
        entry.kind != static_cast<uint32_t>(SegmentKind::kLandmarks)) {
      Status verified = reader.VerifySegment(entry);
      if (!verified.ok()) return verified;
    }
  }
  return reader;
}

const SegmentEntry* PagedFileReader::Find(SegmentKind kind,
                                          uint32_t partition) const {
  for (const SegmentEntry& entry : entries_) {
    if (entry.kind == static_cast<uint32_t>(kind) &&
        entry.partition == partition) {
      return &entry;
    }
  }
  return nullptr;
}

std::span<const std::byte> PagedFileReader::Payload(
    const SegmentEntry& entry) const {
  return file_.bytes().subspan(entry.offset, entry.length);
}

Status PagedFileReader::VerifySegment(const SegmentEntry& entry) const {
  const std::span<const std::byte> payload = Payload(entry);
  if (Fnv1a64(payload.data(), payload.size()) != entry.checksum) {
    return InvalidArgumentError(
        "paged index: segment checksum mismatch (kind=" +
        std::to_string(entry.kind) + " partition=" +
        std::to_string(entry.partition) + ")");
  }
  return Status::Ok();
}

StatusOr<SegmentView> PagedFileReader::View(const SegmentEntry& entry) const {
  return SegmentView::Parse(Payload(entry));
}

bool PagedFileReader::SniffPagedFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) && magic == kPagedMagic;
}

}  // namespace flix::storage
