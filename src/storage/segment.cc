#include "storage/segment.h"

namespace flix::storage {

std::vector<std::byte> SegmentWriter::Finish() const {
  // Layout: header, directory, then payloads, each kArrayAlign-aligned.
  uint64_t cursor =
      sizeof(SegmentHeader) + arrays_.size() * sizeof(ArrayEntry);
  std::vector<ArrayEntry> entries;
  entries.reserve(arrays_.size());
  for (const Array& array : arrays_) {
    cursor = AlignUp(cursor, kArrayAlign);
    ArrayEntry entry;
    entry.id = array.id;
    entry.elem_bytes = array.elem_bytes;
    entry.count = array.count;
    entry.offset = cursor;
    entries.push_back(entry);
    cursor += array.bytes.size();
  }

  std::vector<std::byte> out(cursor, std::byte{0});
  SegmentHeader header;
  header.array_count = static_cast<uint32_t>(arrays_.size());
  std::memcpy(out.data(), &header, sizeof(header));
  if (!entries.empty()) {
    std::memcpy(out.data() + sizeof(header), entries.data(),
                entries.size() * sizeof(ArrayEntry));
  }
  for (size_t i = 0; i < arrays_.size(); ++i) {
    if (!arrays_[i].bytes.empty()) {
      std::memcpy(out.data() + entries[i].offset, arrays_[i].bytes.data(),
                  arrays_[i].bytes.size());
    }
  }
  return out;
}

StatusOr<SegmentView> SegmentView::Parse(std::span<const std::byte> payload) {
  if (payload.size() < sizeof(SegmentHeader)) {
    return InvalidArgumentError("segment: payload shorter than header");
  }
  SegmentHeader header;
  std::memcpy(&header, payload.data(), sizeof(header));
  if (header.magic != SegmentHeader::kSegmentMagic) {
    return InvalidArgumentError("segment: bad magic");
  }
  const uint64_t dir_end = sizeof(SegmentHeader) +
                           uint64_t{header.array_count} * sizeof(ArrayEntry);
  if (dir_end > payload.size()) {
    return InvalidArgumentError("segment: directory exceeds payload");
  }

  SegmentView view;
  view.payload_ = payload;
  view.entries_ = std::span<const ArrayEntry>(
      reinterpret_cast<const ArrayEntry*>(payload.data() +
                                          sizeof(SegmentHeader)),
      header.array_count);
  for (const ArrayEntry& entry : view.entries_) {
    if (entry.elem_bytes == 0) {
      return InvalidArgumentError("segment: zero-sized array element");
    }
    if (entry.offset % kArrayAlign != 0) {
      return InvalidArgumentError("segment: misaligned array payload");
    }
    const uint64_t bytes = entry.count * uint64_t{entry.elem_bytes};
    if (entry.count != 0 && bytes / entry.count != entry.elem_bytes) {
      return InvalidArgumentError("segment: array size overflow");
    }
    if (entry.offset > payload.size() || bytes > payload.size() - entry.offset) {
      return InvalidArgumentError("segment: array exceeds payload");
    }
  }
  return view;
}

}  // namespace flix::storage
