#include "storage/mapped_file.h"

#include <utility>

#if defined(_WIN32)
#include <cstdio>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace flix::storage {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedFile::Reset() {
#if !defined(_WIN32)
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  MappedFile file;
  file.path_ = path;
#if defined(_WIN32)
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return InternalError("cannot stat " + path);
  }
  file.fallback_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(file.fallback_.data(), 1, file.fallback_.size(), f) !=
          file.fallback_.size()) {
    std::fclose(f);
    return InternalError("short read of " + path);
  }
  std::fclose(f);
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return NotFoundError("cannot open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return InternalError("cannot stat " + path);
  }
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      file.size_ = 0;
      return InternalError("mmap failed for " + path);
    }
    file.data_ = addr;
    file.mapped_ = true;
  }
  // The mapping survives the descriptor.
  ::close(fd);
#endif
  return file;
}

}  // namespace flix::storage
