// Read-only memory-mapped file (RAII). On POSIX this is mmap(PROT_READ);
// on platforms without mmap the file is read into a heap buffer instead —
// same interface, no zero-copy, so the paged format stays loadable
// everywhere.
#ifndef FLIX_STORAGE_MAPPED_FILE_H_
#define FLIX_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace flix::storage {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { Reset(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;

  // Maps `path` read-only. Empty files map successfully to an empty span.
  static StatusOr<MappedFile> Open(const std::string& path);

  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void Reset();

  std::string path_;
  void* data_ = nullptr;
  size_t size_ = 0;
  // True when data_ came from mmap (and must be munmap'ed); false for the
  // heap-buffer fallback.
  bool mapped_ = false;
  std::vector<std::byte> fallback_;
};

}  // namespace flix::storage

#endif  // FLIX_STORAGE_MAPPED_FILE_H_
