// Whole-file layer of the paged index format: superblock + page-aligned
// segments + trailing segment table.
//
// PagedFileWriter streams segments to disk (payloads are checksummed and
// page-padded as they are written) and patches the superblock on Finish.
// PagedFileReader mmaps a file, validates the superblock and segment table
// up front, and hands out SegmentViews; per-segment payload checksums are
// verified lazily via VerifySegment so a beyond-RAM open does not have to
// touch every page.
#ifndef FLIX_STORAGE_PAGED_FILE_H_
#define FLIX_STORAGE_PAGED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/format.h"
#include "storage/mapped_file.h"
#include "storage/segment.h"

namespace flix::storage {

class PagedFileWriter {
 public:
  // Opens `path` for writing and reserves page 0 for the superblock. The
  // caller fills identity fields of `superblock` (config, partition counts,
  // ...); layout fields (offsets, checksums) are computed here.
  static StatusOr<PagedFileWriter> Create(const std::string& path,
                                          const Superblock& superblock);

  PagedFileWriter(PagedFileWriter&&) = default;
  PagedFileWriter& operator=(PagedFileWriter&&) = default;

  // Appends one segment (page-aligned, payload checksummed).
  Status AddSegment(SegmentKind kind, uint32_t partition, uint32_t strategy,
                    std::span<const std::byte> payload);

  // Writes the segment table, patches the superblock, flushes. The file is
  // not valid until Finish succeeds.
  Status Finish();

 private:
  PagedFileWriter() = default;

  std::ofstream out_;
  Superblock superblock_;
  std::vector<SegmentEntry> entries_;
  uint64_t cursor_ = 0;  // next write offset; always page-aligned
  bool finished_ = false;
};

// Read side. Owns the mapping; Flix pins a shared_ptr to keep views alive.
class PagedFileReader {
 public:
  // Maps the file and validates superblock + segment table. When
  // `verify_checksums` is set, every segment payload checksum is verified
  // up front (the default safe mode); otherwise only the superblock and
  // table are checked and corruption surfaces via VerifySegment / parse
  // errors.
  static StatusOr<PagedFileReader> Open(const std::string& path,
                                        bool verify_checksums = true);

  PagedFileReader(PagedFileReader&&) = default;
  PagedFileReader& operator=(PagedFileReader&&) = default;

  const Superblock& superblock() const { return superblock_; }
  std::span<const SegmentEntry> segments() const { return entries_; }

  // First segment matching (kind, partition), or nullptr.
  const SegmentEntry* Find(SegmentKind kind, uint32_t partition) const;

  // Raw payload bytes of a segment (no checksum work).
  std::span<const std::byte> Payload(const SegmentEntry& entry) const;

  // Recomputes and compares the payload checksum.
  Status VerifySegment(const SegmentEntry& entry) const;

  // Parses the segment directory (after bounds/checksum policy applied at
  // Open).
  StatusOr<SegmentView> View(const SegmentEntry& entry) const;

  // True if the first bytes of `path` carry the paged magic — the format
  // sniff used by Flix::Load to pick stream vs paged.
  static bool SniffPagedFile(const std::string& path);

 private:
  PagedFileReader() = default;

  MappedFile file_;
  Superblock superblock_;
  std::vector<SegmentEntry> entries_;
};

}  // namespace flix::storage

#endif  // FLIX_STORAGE_PAGED_FILE_H_
