// RAII scoped timer that records its lifetime into a latency histogram and,
// when a trace log is attached, emits one line per span — the lightweight
// per-query tracing the self-tuning loop (paper Section 7) observes.
//
// Beyond the always-on histogram/log path, spans can be *collected*: when
// the process-wide TraceCollector is enabled (`flixctl trace`), every named
// span is assigned an ID, parented to the innermost open span on the same
// thread, annotated with key/value attributes, and appended to a bounded
// ring buffer. The collected events export as Chrome trace-event JSON
// (chrome://tracing, Perfetto), giving one inspectable timeline per query:
// MDB -> ISS -> strategy -> cursor phases nest as spans.
#ifndef FLIX_OBS_TRACE_H_
#define FLIX_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace flix::obs {

// Attaches (or detaches, with nullptr) the process-wide trace log. Spans
// then append lines of the form
//   [trace] <name> dur_ns=<nanos>
// on destruction. The stream must outlive all spans; writes are serialized
// by an internal mutex. Returns the previous sink.
std::ostream* SetTraceLog(std::ostream* out);

// True iff a trace log is attached (cheap relaxed load; lets hot paths skip
// building annotations nobody would see).
bool TraceLogEnabled();

// One finished span, as stored by the TraceCollector.
struct TraceEvent {
  uint64_t id = 0;         // unique per process run, assigned at span open
  uint64_t parent_id = 0;  // 0 = root (no enclosing span on this thread)
  uint64_t start_ns = 0;   // relative to TraceCollector::Enable()
  uint64_t dur_ns = 0;
  uint32_t thread = 0;  // small per-thread ordinal, stable within the run
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Bounded ring buffer of finished spans. Disabled by default — recording
// costs one relaxed load per span when off. Enabled only by tooling
// (`flixctl trace`) and tests; when the ring is full the oldest events are
// dropped (and counted), keeping memory bounded under long workloads.
class TraceCollector {
 public:
  static TraceCollector& Global();

  // Starts collecting, resets the epoch NowNanos() is measured from, and
  // clears previously collected events. `capacity` bounds the ring.
  void Enable(size_t capacity = 4096) EXCLUDES(mutex_);
  void Disable();
  bool Enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Nanoseconds since Enable(); 0 when disabled.
  uint64_t NowNanos() const EXCLUDES(mutex_);

  void Record(TraceEvent event) EXCLUDES(mutex_);

  // Collected events, oldest first. Snapshot copy; safe while recording.
  std::vector<TraceEvent> Events() const EXCLUDES(mutex_);
  // Events evicted because the ring was full.
  uint64_t Dropped() const EXCLUDES(mutex_);
  void Clear() EXCLUDES(mutex_);

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_ ACQUIRED_AFTER(lockorder::kMetrics);
  std::vector<TraceEvent> ring_ GUARDED_BY(mutex_);
  size_t capacity_ GUARDED_BY(mutex_) = 0;
  size_t next_ GUARDED_BY(mutex_) = 0;  // ring write position
  uint64_t dropped_ GUARDED_BY(mutex_) = 0;
  Stopwatch epoch_ GUARDED_BY(mutex_);
};

// Renders events as a Chrome trace-event JSON document
// ({"traceEvents":[...]}, "ph":"X" complete events, microsecond
// timestamps). Loadable in chrome://tracing and Perfetto; span nesting is
// carried by ts/dur containment per thread, and parent/span IDs are
// attached under "args" for programmatic consumers.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

// One retained slow query.
struct SlowQueryRecord {
  std::string description;
  uint64_t dur_ns = 0;
  uint64_t seq = 0;  // arrival order across the whole run
};

// Bounded in-memory ring of the most recent queries slower than a
// threshold. Disabled (threshold 0) by default; `flixctl trace` and tests
// configure it. Cheap when disabled: one relaxed load per query.
class SlowQueryLog {
 public:
  static SlowQueryLog& Global();

  // threshold_ns == 0 disables recording. Clears retained entries.
  void Configure(uint64_t threshold_ns, size_t capacity = 64)
      EXCLUDES(mutex_);
  uint64_t ThresholdNanos() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

  // Retains the query iff recording is enabled and dur_ns >= threshold.
  void Record(std::string description, uint64_t dur_ns) EXCLUDES(mutex_);

  // Retained records, oldest first.
  std::vector<SlowQueryRecord> Entries() const EXCLUDES(mutex_);
  void Clear() EXCLUDES(mutex_);

 private:
  std::atomic<uint64_t> threshold_ns_{0};
  mutable Mutex mutex_ ACQUIRED_AFTER(lockorder::kMetrics);
  std::vector<SlowQueryRecord> ring_ GUARDED_BY(mutex_);
  size_t capacity_ GUARDED_BY(mutex_) = 64;
  size_t next_ GUARDED_BY(mutex_) = 0;
  uint64_t seq_ GUARDED_BY(mutex_) = 0;
};

// Scoped timer. On destruction records elapsed nanoseconds into the given
// histogram (if any), appends a trace line (if a log is attached), and —
// when the TraceCollector is enabled and the span is named — emits a
// TraceEvent parented to the innermost open span on this thread.
class TraceSpan {
 public:
  // `name` must outlive the span (string literals in practice).
  explicit TraceSpan(Histogram* histogram, const char* name = nullptr);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Finish(); }

  uint64_t ElapsedNanos() const { return watch_.ElapsedNanos(); }

  // Attaches a key/value attribute to the collected event. No-ops (beyond
  // a branch) unless the collector was enabled when the span opened.
  void AddAttr(const char* key, std::string_view value);
  void AddAttr(const char* key, int64_t value);

  // True iff this span is feeding the TraceCollector — lets callers skip
  // building attribute values nobody would see.
  bool Collecting() const { return collecting_; }

  // Records and logs now instead of at scope exit; subsequent Finish calls
  // (including the destructor's) are no-ops.
  void Finish();

  // Drops the span: nothing is recorded or logged at destruction.
  void Cancel();

 private:
  Histogram* histogram_;
  const char* name_;
  Stopwatch watch_;
  bool finished_ = false;
  bool collecting_ = false;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace flix::obs

#endif  // FLIX_OBS_TRACE_H_
