// RAII scoped timer that records its lifetime into a latency histogram and,
// when a trace log is attached, emits one line per span — the lightweight
// per-query tracing the self-tuning loop (paper Section 7) observes.
#ifndef FLIX_OBS_TRACE_H_
#define FLIX_OBS_TRACE_H_

#include <cstdint>
#include <ostream>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace flix::obs {

// Attaches (or detaches, with nullptr) the process-wide trace log. Spans
// then append lines of the form
//   [trace] <name> dur_ns=<nanos>
// on destruction. The stream must outlive all spans; writes are serialized
// by an internal mutex. Returns the previous sink.
std::ostream* SetTraceLog(std::ostream* out);

// True iff a trace log is attached (cheap relaxed load; lets hot paths skip
// building annotations nobody would see).
bool TraceLogEnabled();

// Scoped timer. On destruction records elapsed nanoseconds into the given
// histogram (if any) and appends a trace line (if a log is attached).
class TraceSpan {
 public:
  // `name` must outlive the span (string literals in practice).
  explicit TraceSpan(Histogram* histogram, const char* name = nullptr)
      : histogram_(histogram), name_(name) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Finish(); }

  uint64_t ElapsedNanos() const { return watch_.ElapsedNanos(); }

  // Records and logs now instead of at scope exit; subsequent Finish calls
  // (including the destructor's) are no-ops.
  void Finish();

  // Drops the span: nothing is recorded or logged at destruction.
  void Cancel() { finished_ = true; }

 private:
  Histogram* histogram_;
  const char* name_;
  Stopwatch watch_;
  bool finished_ = false;
};

}  // namespace flix::obs

#endif  // FLIX_OBS_TRACE_H_
