#include "obs/trace.h"

#include <atomic>
#include <mutex>

namespace flix::obs {
namespace {

std::atomic<std::ostream*> g_trace_log{nullptr};
std::mutex g_trace_mutex;

}  // namespace

std::ostream* SetTraceLog(std::ostream* out) {
  return g_trace_log.exchange(out, std::memory_order_release);
}

bool TraceLogEnabled() {
  return g_trace_log.load(std::memory_order_relaxed) != nullptr;
}

void TraceSpan::Finish() {
  if (finished_) return;
  finished_ = true;
  const uint64_t nanos = watch_.ElapsedNanos();
  if (histogram_ != nullptr) histogram_->Record(nanos);
  if (std::ostream* log = g_trace_log.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(g_trace_mutex);
    *log << "[trace] " << (name_ != nullptr ? name_ : "span")
         << " dur_ns=" << nanos << "\n";
  }
}

}  // namespace flix::obs
