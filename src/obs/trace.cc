#include "obs/trace.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "common/sync.h"

namespace flix::obs {
namespace {

std::atomic<std::ostream*> g_trace_log{nullptr};
// Serializes trace-line writes to the attached stream; metrics rank
// (innermost), like every obs-layer lock.
Mutex g_trace_mutex ACQUIRED_AFTER(lockorder::kMetrics);

std::atomic<uint64_t> g_next_span_id{1};

// Small dense per-thread ordinal; Chrome's viewer groups rows by tid, and
// raw std::thread::id values are neither small nor stable to render.
uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// Innermost open collected span on this thread; parents are resolved here,
// so spans must finish on the thread that opened them (all call sites are
// scoped locals, which guarantees that).
thread_local std::vector<uint64_t> t_span_stack;

void AppendJsonEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::ostream* SetTraceLog(std::ostream* out) {
  return g_trace_log.exchange(out, std::memory_order_release);
}

bool TraceLogEnabled() {
  return g_trace_log.load(std::memory_order_relaxed) != nullptr;
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();  // never dies
  return *collector;
}

void TraceCollector::Enable(size_t capacity) {
  MutexLock lock(mutex_);
  ring_.clear();
  ring_.reserve(capacity);
  capacity_ = capacity == 0 ? 1 : capacity;
  next_ = 0;
  dropped_ = 0;
  epoch_.Restart();
  enabled_.store(true, std::memory_order_release);
}

void TraceCollector::Disable() {
  enabled_.store(false, std::memory_order_release);
}

uint64_t TraceCollector::NowNanos() const {
  if (!Enabled()) return 0;
  MutexLock lock(mutex_);
  return epoch_.ElapsedNanos();
}

void TraceCollector::Record(TraceEvent event) {
  MutexLock lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceCollector::Events() const {
  MutexLock lock(mutex_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  // `next_` is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

uint64_t TraceCollector::Dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

void TraceCollector::Clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonEscaped(out, e.name);
    // Complete ("X") events; timestamps are microseconds in this format.
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof buf, "%" PRIu32, e.thread);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                  static_cast<double>(e.start_ns) / 1e3);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                  static_cast<double>(e.dur_ns) / 1e3);
    out += buf;
    out += ",\"args\":{\"span_id\":";
    std::snprintf(buf, sizeof buf, "%" PRIu64, e.id);
    out += buf;
    out += ",\"parent_id\":";
    std::snprintf(buf, sizeof buf, "%" PRIu64, e.parent_id);
    out += buf;
    for (const auto& [key, value] : e.attrs) {
      out += ',';
      AppendJsonEscaped(out, key);
      out += ':';
      AppendJsonEscaped(out, value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();  // never dies
  return *log;
}

void SlowQueryLog::Configure(uint64_t threshold_ns, size_t capacity) {
  MutexLock lock(mutex_);
  ring_.clear();
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.reserve(capacity_);
  next_ = 0;
  threshold_ns_.store(threshold_ns, std::memory_order_release);
}

void SlowQueryLog::Record(std::string description, uint64_t dur_ns) {
  const uint64_t threshold = ThresholdNanos();
  if (threshold == 0 || dur_ns < threshold) return;
  MutexLock lock(mutex_);
  SlowQueryRecord record{std::move(description), dur_ns, seq_++};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<SlowQueryRecord> SlowQueryLog::Entries() const {
  MutexLock lock(mutex_);
  std::vector<SlowQueryRecord> entries;
  entries.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    entries.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return entries;
}

void SlowQueryLog::Clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
}

TraceSpan::TraceSpan(Histogram* histogram, const char* name)
    : histogram_(histogram), name_(name) {
  TraceCollector& collector = TraceCollector::Global();
  if (name_ != nullptr && collector.Enabled()) {
    collecting_ = true;
    id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_id_ = t_span_stack.empty() ? 0 : t_span_stack.back();
    t_span_stack.push_back(id_);
    start_ns_ = collector.NowNanos();
  }
}

void TraceSpan::AddAttr(const char* key, std::string_view value) {
  if (!collecting_) return;
  attrs_.emplace_back(key, std::string(value));
}

void TraceSpan::AddAttr(const char* key, int64_t value) {
  if (!collecting_) return;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  attrs_.emplace_back(key, buf);
}

void TraceSpan::Finish() {
  if (finished_) return;
  finished_ = true;
  const uint64_t nanos = watch_.ElapsedNanos();
  if (histogram_ != nullptr) histogram_->Record(nanos);
  if (collecting_) {
    // Balanced with the constructor's push; spans are scoped locals, so
    // the top of the stack is this span.
    if (!t_span_stack.empty() && t_span_stack.back() == id_) {
      t_span_stack.pop_back();
    }
    TraceEvent event;
    event.id = id_;
    event.parent_id = parent_id_;
    event.start_ns = start_ns_;
    event.dur_ns = nanos;
    event.thread = ThreadOrdinal();
    event.name = name_;
    event.attrs = std::move(attrs_);
    TraceCollector::Global().Record(std::move(event));
  }
  if (std::ostream* log = g_trace_log.load(std::memory_order_acquire)) {
    MutexLock lock(g_trace_mutex);
    *log << "[trace] " << (name_ != nullptr ? name_ : "span")
         << " dur_ns=" << nanos << "\n";
  }
}

void TraceSpan::Cancel() {
  if (finished_) return;
  finished_ = true;
  if (collecting_ && !t_span_stack.empty() && t_span_stack.back() == id_) {
    t_span_stack.pop_back();
  }
}

}  // namespace flix::obs
