#include "obs/json_util.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace flix::obs::jsonutil {

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void AppendU64(std::string& out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

void AppendI64(std::string& out, int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  out += buf;
}

bool JsonCursor::Consume(char expected) {
  SkipSpace();
  if (pos_ >= text_.size() || text_[pos_] != expected) return false;
  ++pos_;
  return true;
}

bool JsonCursor::Peek(char expected) {
  SkipSpace();
  return pos_ < text_.size() && text_[pos_] == expected;
}

bool JsonCursor::ReadString(std::string* out) {
  SkipSpace();
  if (!Consume('"')) return false;
  out->clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') return true;
    if (c == '\\') {
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          *out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default: return false;
      }
    } else {
      *out += c;
    }
  }
  return false;
}

bool JsonCursor::ReadDouble(double* out) {
  SkipSpace();
  const size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  if (pos_ == start) return false;
  const std::string token(text_.substr(start, pos_ - start));
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool JsonCursor::ReadU64(uint64_t* out) {
  double value = 0;
  if (!ReadDouble(&value) || value < 0) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

bool JsonCursor::ReadI64(int64_t* out) {
  double value = 0;
  if (!ReadDouble(&value)) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool JsonCursor::ReadBool(bool* out) {
  SkipSpace();
  if (text_.substr(pos_, 4) == "true") {
    pos_ += 4;
    *out = true;
    return true;
  }
  if (text_.substr(pos_, 5) == "false") {
    pos_ += 5;
    *out = false;
    return true;
  }
  return false;
}

void JsonCursor::SkipSpace() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool JsonCursor::AtEnd() {
  SkipSpace();
  return pos_ == text_.size();
}

void AppendHistogramObject(std::string& out, const HistogramStats& h) {
  out += "{\"count\":";
  AppendU64(out, h.count);
  out += ",\"sum\":";
  AppendU64(out, h.sum);
  out += ",\"min\":";
  AppendU64(out, h.min);
  out += ",\"max\":";
  AppendU64(out, h.max);
  out += ",\"mean\":";
  AppendDouble(out, h.mean);
  out += ",\"p50\":";
  AppendDouble(out, h.p50);
  out += ",\"p95\":";
  AppendDouble(out, h.p95);
  out += ",\"p99\":";
  AppendDouble(out, h.p99);
  out += ",\"p999\":";
  AppendDouble(out, h.p999);
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [index, n] : h.buckets) {
    if (!first) out += ',';
    first = false;
    out += '[';
    AppendU64(out, index);
    out += ',';
    AppendU64(out, n);
    out += ']';
  }
  out += "]}";
}

bool ParseHistogramObject(JsonCursor& cursor, HistogramStats* stats) {
  if (!cursor.Consume('{')) return false;
  bool first = true;
  while (!cursor.Peek('}')) {
    if (!first && !cursor.Consume(',')) return false;
    first = false;
    std::string field;
    if (!cursor.ReadString(&field) || !cursor.Consume(':')) return false;
    if (field == "count") {
      if (!cursor.ReadU64(&stats->count)) return false;
    } else if (field == "sum") {
      if (!cursor.ReadU64(&stats->sum)) return false;
    } else if (field == "min") {
      if (!cursor.ReadU64(&stats->min)) return false;
    } else if (field == "max") {
      if (!cursor.ReadU64(&stats->max)) return false;
    } else if (field == "mean") {
      if (!cursor.ReadDouble(&stats->mean)) return false;
    } else if (field == "p50") {
      if (!cursor.ReadDouble(&stats->p50)) return false;
    } else if (field == "p95") {
      if (!cursor.ReadDouble(&stats->p95)) return false;
    } else if (field == "p99") {
      if (!cursor.ReadDouble(&stats->p99)) return false;
    } else if (field == "p999") {
      // Absent from the pre-bucket schema; tolerated on read.
      if (!cursor.ReadDouble(&stats->p999)) return false;
    } else if (field == "buckets") {
      if (!cursor.Consume('[')) return false;
      bool first_bucket = true;
      while (!cursor.Peek(']')) {
        if (!first_bucket && !cursor.Consume(',')) return false;
        first_bucket = false;
        uint64_t index = 0;
        uint64_t n = 0;
        if (!cursor.Consume('[') || !cursor.ReadU64(&index) ||
            !cursor.Consume(',') || !cursor.ReadU64(&n) ||
            !cursor.Consume(']')) {
          return false;
        }
        if (index >= Histogram::kNumBuckets) return false;
        if (!stats->buckets.empty() &&
            stats->buckets.back().first >= index) {
          return false;  // must be ascending, no duplicates
        }
        stats->buckets.emplace_back(static_cast<uint32_t>(index), n);
      }
      if (!cursor.Consume(']')) return false;
    } else {
      return false;  // unknown field: not our schema
    }
  }
  return cursor.Consume('}');
}

}  // namespace flix::obs::jsonutil
