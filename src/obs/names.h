// Central registry of every `flix.*` metric and trace-span name.
//
// The observability layer interns metrics by name (obs/metrics.h), so a
// typo'd string silently creates a parallel metric that no exporter, bench
// gate or adaptivity loop ever reads. This header is the single source of
// truth: production code refers to metrics through these constants, and
// tools/lint_flix.py (run in CI next to check_markdown_links.py) rejects any
// `"flix.*"` string literal in src/ or tools/ that is not declared here —
// including new literals added in future PRs.
//
// Conventions:
//   * Counters/gauges/histograms are grouped by subsystem prefix
//     (flix.build, flix.query, flix.cache, ...); histogram names end in the
//     unit (`_ns` for nanoseconds).
//   * Span names (obs::TraceSpan) share the namespace: a phase that has both
//     a latency histogram and a span uses `x.phase_ns` / `x.phase`.
//   * Adding a metric = add the constant here, then use it; the linter keeps
//     the two in sync in both directions (unused constants are fine,
//     undeclared literals are not).
#ifndef FLIX_OBS_NAMES_H_
#define FLIX_OBS_NAMES_H_

namespace flix::obs::names {

// Common prefix of every FliX metric (exporter filters, `flixctl stats`).
inline constexpr char kMetricPrefix[] = "flix.";

// --- Build / load phases (flix/flix.cc, flix/index_builder.cc) ------------
inline constexpr char kBuildCount[] = "flix.build.count";
inline constexpr char kBuildTotalNs[] = "flix.build.total_ns";
inline constexpr char kBuildMdbNs[] = "flix.build.mdb_ns";
inline constexpr char kBuildIssNs[] = "flix.build.iss_ns";
inline constexpr char kBuildLandmarksNs[] = "flix.build.landmarks_ns";
inline constexpr char kBuildIbPpoNs[] = "flix.build.ib_ppo_ns";
inline constexpr char kBuildIbHopiNs[] = "flix.build.ib_hopi_ns";
inline constexpr char kBuildIbApexNs[] = "flix.build.ib_apex_ns";
inline constexpr char kBuildIbOtherNs[] = "flix.build.ib_other_ns";
inline constexpr char kBuildMetaDocuments[] = "flix.build.meta_documents";
inline constexpr char kBuildCrossLinks[] = "flix.build.cross_links";
inline constexpr char kBuildIndexBytes[] = "flix.build.index_bytes";
inline constexpr char kBuildStrategyPpo[] = "flix.build.strategy_ppo";
inline constexpr char kBuildStrategyHopi[] = "flix.build.strategy_hopi";
inline constexpr char kBuildStrategyApex[] = "flix.build.strategy_apex";
inline constexpr char kLoadCount[] = "flix.load.count";
inline constexpr char kLoadTotalNs[] = "flix.load.total_ns";

// --- PEE queries (flix/pee.cc) --------------------------------------------
inline constexpr char kQueryCount[] = "flix.query.count";
inline constexpr char kQueryFacadeCount[] = "flix.query.facade_count";
inline constexpr char kQueryLatencyNs[] = "flix.query.latency_ns";
inline constexpr char kQueryResults[] = "flix.query.results";
inline constexpr char kQueryEntriesProcessed[] = "flix.query.entries_processed";
inline constexpr char kQueryEntriesDominated[] = "flix.query.entries_dominated";
inline constexpr char kQueryLinksFollowed[] = "flix.query.links_followed";
inline constexpr char kQueryIndexProbes[] = "flix.query.index_probes";
inline constexpr char kQueryResultsEmitted[] = "flix.query.results_emitted";
inline constexpr char kQueryResultsOutOfOrder[] =
    "flix.query.results_out_of_order";
inline constexpr char kQueryCursorOpened[] = "flix.query.cursor.opened";
inline constexpr char kQueryCursorPulled[] = "flix.query.cursor.pulled";
inline constexpr char kQueryCursorSaved[] = "flix.query.cursor.saved";
inline constexpr char kQueryPointCount[] = "flix.query.point_count";
inline constexpr char kQueryPointPops[] = "flix.query.point_pops";
inline constexpr char kQueryPointLatencyNs[] = "flix.query.point_latency_ns";

// --- Landmark-guided point queries (flix/pee.cc, flix/landmarks.cc) -------
inline constexpr char kGuidedPrunedEntries[] = "flix.pee.guided.pruned_entries";
inline constexpr char kGuidedHeuristicHits[] = "flix.pee.guided.heuristic_hits";
inline constexpr char kGuidedStaleReads[] = "flix.pee.guided.stale_reads";
inline constexpr char kLandmarksRefreshes[] = "flix.landmarks.refreshes";
inline constexpr char kLandmarksCount[] = "flix.landmarks.count";
inline constexpr char kLandmarksGeneration[] = "flix.landmarks.generation";

// --- Per-strategy cursor pulls (src/index/*.cc) ---------------------------
inline constexpr char kCursorPulledPpo[] = "flix.cursor.pulled.ppo";
inline constexpr char kCursorPulledHopi[] = "flix.cursor.pulled.hopi";
inline constexpr char kCursorPulledApex[] = "flix.cursor.pulled.apex";
inline constexpr char kCursorPulledSummary[] = "flix.cursor.pulled.summary";
inline constexpr char kCursorPulledTc[] = "flix.cursor.pulled.tc";

// --- Query cache (flix/flix.cc gauges over QueryCache::Stats) -------------
inline constexpr char kCacheSize[] = "flix.cache.size";
inline constexpr char kCacheCapacity[] = "flix.cache.capacity";
inline constexpr char kCacheHits[] = "flix.cache.hits";
inline constexpr char kCacheMisses[] = "flix.cache.misses";
inline constexpr char kCacheInsertions[] = "flix.cache.insertions";
inline constexpr char kCacheOverwrites[] = "flix.cache.overwrites";
inline constexpr char kCacheEvictions[] = "flix.cache.evictions";

// --- Adaptive ISS (flix/adapt.cc) -----------------------------------------
inline constexpr char kAdaptRecommended[] = "flix.adapt.recommended";
inline constexpr char kAdaptMigrated[] = "flix.adapt.migrated";
inline constexpr char kAdaptRejectedHysteresis[] =
    "flix.adapt.rejected_hysteresis";
inline constexpr char kAdaptValidationFailed[] = "flix.adapt.validation_failed";

// --- Correctness tooling (src/check/) -------------------------------------
inline constexpr char kCheckValidations[] = "flix.check.validations";
inline constexpr char kCheckViolations[] = "flix.check.violations";
inline constexpr char kCheckOracleQueries[] = "flix.check.oracle_queries";

// --- Trace span names (obs::TraceSpan; Chrome-trace timeline rows) --------
inline constexpr char kSpanBuild[] = "flix.build";
inline constexpr char kSpanBuildMdb[] = "flix.build.mdb";
inline constexpr char kSpanBuildLandmarks[] = "flix.build.landmarks";
inline constexpr char kSpanIss[] = "flix.iss";
inline constexpr char kSpanIb[] = "flix.ib";
inline constexpr char kSpanLandmarksRebuild[] = "flix.landmarks.rebuild";

}  // namespace flix::obs::names

#endif  // FLIX_OBS_NAMES_H_
