#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string>

#include "obs/json_util.h"

namespace flix::obs {
namespace {

using jsonutil::JsonCursor;

// Adaptive rendering of a nanosecond quantity for the text exporter.
std::string FormatNanos(double nanos) {
  char buf[32];
  if (nanos >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fs", nanos / 1e9);
  } else if (nanos >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fms", nanos / 1e6);
  } else if (nanos >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fus", nanos / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", nanos);
  }
  return buf;
}

bool EndsWithNs(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_ns";
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    jsonutil::AppendEscaped(out, name);
    out += ':';
    jsonutil::AppendU64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    jsonutil::AppendEscaped(out, name);
    out += ':';
    jsonutil::AppendI64(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    jsonutil::AppendEscaped(out, name);
    out += ':';
    jsonutil::AppendHistogramObject(out, h);
  }
  out += "}}";
  return out;
}

std::string ToText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.histograms) {
    width = std::max(width, name.size());
  }

  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << name << std::string(width - name.size(), ' ') << "  "
          << value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << name << std::string(width - name.size(), ' ') << "  "
          << value << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms:\n";
    for (const auto& [name, h] : snapshot.histograms) {
      out << "  " << name << std::string(width - name.size(), ' ')
          << "  count " << h.count;
      if (h.count > 0) {
        if (EndsWithNs(name)) {
          out << "  mean " << FormatNanos(h.mean) << "  p50 "
              << FormatNanos(h.p50) << "  p95 " << FormatNanos(h.p95)
              << "  p99 " << FormatNanos(h.p99) << "  p999 "
              << FormatNanos(h.p999) << "  max "
              << FormatNanos(static_cast<double>(h.max));
        } else {
          char buf[192];
          std::snprintf(buf, sizeof buf,
                        "  mean %.1f  p50 %.0f  p95 %.0f  p99 %.0f  p999 %.0f"
                        "  max %" PRIu64,
                        h.mean, h.p50, h.p95, h.p99, h.p999, h.max);
          out << buf;
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

bool FromJson(std::string_view json, MetricsSnapshot* snapshot) {
  *snapshot = MetricsSnapshot{};
  JsonCursor cursor(json);
  if (!cursor.Consume('{')) return false;

  for (const int section : {0, 1, 2}) {
    if (section > 0 && !cursor.Consume(',')) return false;
    std::string key;
    if (!cursor.ReadString(&key) || !cursor.Consume(':') ||
        !cursor.Consume('{')) {
      return false;
    }
    const std::string expected =
        section == 0 ? "counters" : section == 1 ? "gauges" : "histograms";
    if (key != expected) return false;
    bool first = true;
    while (!cursor.Peek('}')) {
      if (!first && !cursor.Consume(',')) return false;
      first = false;
      std::string name;
      if (!cursor.ReadString(&name) || !cursor.Consume(':')) return false;
      if (section == 0) {
        uint64_t value = 0;
        if (!cursor.ReadU64(&value)) return false;
        snapshot->counters.emplace_back(std::move(name), value);
      } else if (section == 1) {
        int64_t value = 0;
        if (!cursor.ReadI64(&value)) return false;
        snapshot->gauges.emplace_back(std::move(name), value);
      } else {
        HistogramStats stats;
        if (!jsonutil::ParseHistogramObject(cursor, &stats)) return false;
        snapshot->histograms.emplace_back(std::move(name), stats);
      }
    }
    if (!cursor.Consume('}')) return false;
  }
  return cursor.Consume('}') && cursor.AtEnd();
}

}  // namespace flix::obs
