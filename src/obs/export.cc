#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace flix::obs {
namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void AppendU64(std::string& out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

// Adaptive rendering of a nanosecond quantity for the text exporter.
std::string FormatNanos(double nanos) {
  char buf[32];
  if (nanos >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fs", nanos / 1e9);
  } else if (nanos >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fms", nanos / 1e6);
  } else if (nanos >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fus", nanos / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", nanos);
  }
  return buf;
}

bool EndsWithNs(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_ns";
}

// Minimal recursive-descent reader for the exact schema ToJson emits.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  bool Consume(char expected) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != expected) return false;
    ++pos_;
    return true;
  }

  bool Peek(char expected) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == expected;
  }

  bool ReadString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            *out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
            break;
          }
          default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool ReadDouble(double* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  bool ReadU64(uint64_t* out) {
    double value = 0;
    if (!ReadDouble(&value) || value < 0) return false;
    *out = static_cast<uint64_t>(value);
    return true;
  }

  bool ReadI64(int64_t* out) {
    double value = 0;
    if (!ReadDouble(&value)) return false;
    *out = static_cast<int64_t>(value);
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool ParseHistogramObject(JsonCursor& cursor, HistogramStats* stats) {
  if (!cursor.Consume('{')) return false;
  bool first = true;
  while (!cursor.Peek('}')) {
    if (!first && !cursor.Consume(',')) return false;
    first = false;
    std::string field;
    if (!cursor.ReadString(&field) || !cursor.Consume(':')) return false;
    if (field == "count") {
      if (!cursor.ReadU64(&stats->count)) return false;
    } else if (field == "sum") {
      if (!cursor.ReadU64(&stats->sum)) return false;
    } else if (field == "min") {
      if (!cursor.ReadU64(&stats->min)) return false;
    } else if (field == "max") {
      if (!cursor.ReadU64(&stats->max)) return false;
    } else if (field == "mean") {
      if (!cursor.ReadDouble(&stats->mean)) return false;
    } else if (field == "p50") {
      if (!cursor.ReadDouble(&stats->p50)) return false;
    } else if (field == "p95") {
      if (!cursor.ReadDouble(&stats->p95)) return false;
    } else if (field == "p99") {
      if (!cursor.ReadDouble(&stats->p99)) return false;
    } else {
      return false;  // unknown field: not our schema
    }
  }
  return cursor.Consume('}');
}

}  // namespace

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, name);
    out += ':';
    AppendU64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, name);
    out += ':';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, value);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, name);
    out += ":{\"count\":";
    AppendU64(out, h.count);
    out += ",\"sum\":";
    AppendU64(out, h.sum);
    out += ",\"min\":";
    AppendU64(out, h.min);
    out += ",\"max\":";
    AppendU64(out, h.max);
    out += ",\"mean\":";
    AppendDouble(out, h.mean);
    out += ",\"p50\":";
    AppendDouble(out, h.p50);
    out += ",\"p95\":";
    AppendDouble(out, h.p95);
    out += ",\"p99\":";
    AppendDouble(out, h.p99);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string ToText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  size_t width = 0;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.histograms) {
    width = std::max(width, name.size());
  }

  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << name << std::string(width - name.size(), ' ') << "  "
          << value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << name << std::string(width - name.size(), ' ') << "  "
          << value << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms:\n";
    for (const auto& [name, h] : snapshot.histograms) {
      out << "  " << name << std::string(width - name.size(), ' ')
          << "  count " << h.count;
      if (h.count > 0) {
        if (EndsWithNs(name)) {
          out << "  mean " << FormatNanos(h.mean) << "  p50 "
              << FormatNanos(h.p50) << "  p95 " << FormatNanos(h.p95)
              << "  p99 " << FormatNanos(h.p99) << "  max "
              << FormatNanos(static_cast<double>(h.max));
        } else {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "  mean %.1f  p50 %.0f  p95 %.0f  p99 %.0f  max %" PRIu64,
                        h.mean, h.p50, h.p95, h.p99, h.max);
          out << buf;
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

bool FromJson(std::string_view json, MetricsSnapshot* snapshot) {
  *snapshot = MetricsSnapshot{};
  JsonCursor cursor(json);
  if (!cursor.Consume('{')) return false;

  for (const int section : {0, 1, 2}) {
    if (section > 0 && !cursor.Consume(',')) return false;
    std::string key;
    if (!cursor.ReadString(&key) || !cursor.Consume(':') ||
        !cursor.Consume('{')) {
      return false;
    }
    const std::string expected =
        section == 0 ? "counters" : section == 1 ? "gauges" : "histograms";
    if (key != expected) return false;
    bool first = true;
    while (!cursor.Peek('}')) {
      if (!first && !cursor.Consume(',')) return false;
      first = false;
      std::string name;
      if (!cursor.ReadString(&name) || !cursor.Consume(':')) return false;
      if (section == 0) {
        uint64_t value = 0;
        if (!cursor.ReadU64(&value)) return false;
        snapshot->counters.emplace_back(std::move(name), value);
      } else if (section == 1) {
        int64_t value = 0;
        if (!cursor.ReadI64(&value)) return false;
        snapshot->gauges.emplace_back(std::move(name), value);
      } else {
        HistogramStats stats;
        if (!ParseHistogramObject(cursor, &stats)) return false;
        snapshot->histograms.emplace_back(std::move(name), stats);
      }
    }
    if (!cursor.Consume('}')) return false;
  }
  return cursor.Consume('}') && cursor.AtEnd();
}

}  // namespace flix::obs
