// Minimal JSON writing/reading helpers shared by the obs exporters
// (obs/export.cc for metrics snapshots, obs/profile.cc for workload
// profiles). Writing is append-to-string; reading is a strict
// recursive-descent cursor over exactly the schemas our writers emit —
// not a general JSON parser.
#ifndef FLIX_OBS_JSON_UTIL_H_
#define FLIX_OBS_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace flix::obs::jsonutil {

// Appends `s` as a double-quoted JSON string with escapes.
void AppendEscaped(std::string& out, std::string_view s);

// Appends a double via printf("%.17g") — enough digits that strtod reads
// the same value back, making numeric round-trips exact.
void AppendDouble(std::string& out, double value);

void AppendU64(std::string& out, uint64_t value);
void AppendI64(std::string& out, int64_t value);

// Strict reader over a JSON text. All methods skip leading whitespace and
// return false on any deviation instead of throwing.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  // Consumes `expected` if it is the next non-space character.
  bool Consume(char expected);
  // True iff `expected` is the next non-space character (not consumed).
  bool Peek(char expected);

  bool ReadString(std::string* out);
  bool ReadDouble(double* out);
  bool ReadU64(uint64_t* out);
  bool ReadI64(int64_t* out);
  bool ReadBool(bool* out);

  bool AtEnd();

 private:
  void SkipSpace();

  std::string_view text_;
  size_t pos_ = 0;
};

// Appends one histogram-stats object:
//   {"count":u,"sum":u,"min":u,"max":u,"mean":d,"p50":d,"p95":d,"p99":d,
//    "p999":d,"buckets":[[idx,count],...]}
void AppendHistogramObject(std::string& out, const HistogramStats& h);

// Parses one histogram-stats object. Tolerates documents from the
// pre-p999/pre-buckets schema (fields simply absent); rejects unknown
// fields, out-of-range bucket indices and non-ascending bucket lists.
bool ParseHistogramObject(JsonCursor& cursor, HistogramStats* stats);

}  // namespace flix::obs::jsonutil

#endif  // FLIX_OBS_JSON_UTIL_H_
