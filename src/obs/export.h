// Snapshot exporters: a stable JSON schema for machines and an aligned text
// rendering for humans (`flixctl stats`, bench summaries).
//
// JSON schema (all three sections always present):
//   {
//     "counters":   {"<name>": <uint>, ...},
//     "gauges":     {"<name>": <int>, ...},
//     "histograms": {"<name>": {"count": <uint>, "sum": <uint>,
//                               "min": <uint>, "max": <uint>,
//                               "mean": <num>, "p50": <num>,
//                               "p95": <num>, "p99": <num>,
//                               "p999": <num>,
//                               "buckets": [[<idx>, <uint>], ...]}, ...}
//   }
//
// "p999" and "buckets" (sparse raw bucket counts, ascending by index — see
// Histogram::BucketFor) were added later; FromJson tolerates documents
// without them so snapshots written by older builds still load.
#ifndef FLIX_OBS_EXPORT_H_
#define FLIX_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace flix::obs {

// Single-line JSON document in the schema above (names sorted, since the
// registry snapshot is sorted).
std::string ToJson(const MetricsSnapshot& snapshot);

// Multi-line human-readable rendering. Histogram names ending in "_ns" are
// additionally shown in adaptive time units.
std::string ToText(const MetricsSnapshot& snapshot);

// Parses a document produced by ToJson back into a snapshot (the round-trip
// used by tooling that consumes `flixctl stats --json` / BENCH_*.json
// blocks). Returns false on any deviation from the schema. Quantile fields
// survive the round trip up to printf("%.17g") precision, i.e. exactly.
bool FromJson(std::string_view json, MetricsSnapshot* snapshot);

}  // namespace flix::obs

#endif  // FLIX_OBS_EXPORT_H_
