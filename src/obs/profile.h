// Per-partition workload attribution: which meta documents do the queries
// actually hit, and how hard?
//
// The paper's self-tuning proposal (Section 7) triggers reorganization when
// "most queries have to follow many links" — but the global counters in
// obs/metrics.h can't say *which* meta documents are hot, over-fragmented,
// or carrying a mismatched strategy. The WorkloadProfiler closes that gap:
// the PEE, the query cache and the index builder attribute every unit of
// work (index probes, cursor pulls, cross-link traversals taken, entry
// fan-out, cache hits/misses, whole-query latency) to the meta document it
// happened in. The resulting WorkloadProfile is the input the
// workload-adaptive ISS consumes, is inspectable via `flixctl profile`, and
// persists next to the index so it survives restarts.
//
// Concurrency: recording is lock-light. Queries accumulate deltas in plain
// per-query locals (see PartitionDelta) and flush once per touched
// partition at query end — a handful of relaxed atomic adds per query, no
// locks on the hot path. Partition latency histograms are allocated lazily
// with a CAS so untouched partitions cost 8 bytes. Resize happens at
// build/load time, before queries run; SetPartitionInfo is mutex-guarded so
// the adaptive ISS may also call it when a migration changes a partition's
// strategy while queries are in flight.
#ifndef FLIX_OBS_PROFILE_H_
#define FLIX_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace flix::obs {

// Work a single query performed inside one partition, accumulated in
// non-atomic locals while the query runs and flushed to the profiler once
// at query end (WorkloadProfiler::RecordQuery).
struct PartitionDelta {
  uint64_t entries_processed = 0;  // queue pops that did work here
  uint64_t entries_dominated = 0;  // pops skipped by duplicate elimination
  uint64_t index_probes = 0;       // local index queries issued
  uint64_t cursors_opened = 0;     // probe cursors created
  uint64_t cursor_pulls = 0;       // Next() calls on this partition's cursors
  uint64_t entry_fanout = 0;       // cross-link hops enqueued out of here
  uint64_t results_emitted = 0;    // results whose element lives here
};

// partition id -> delta for one query. unordered_map value addresses are
// stable under insertion, so callers may cache `&map[p]` across the query.
using PartitionDeltaMap = std::unordered_map<uint32_t, PartitionDelta>;

// Point-in-time totals for one partition (see WorkloadProfiler::Snapshot).
struct PartitionProfile {
  uint32_t partition = 0;
  std::string strategy;  // StrategyName of the index built here ("" = unset)
  uint64_t nodes = 0;    // element count of the meta document
  uint64_t build_ns = 0; // time spent building this partition's index
  uint64_t queries = 0;  // queries that touched this partition
  uint64_t entries_processed = 0;
  uint64_t entries_dominated = 0;
  uint64_t index_probes = 0;
  uint64_t cursors_opened = 0;
  uint64_t cursor_pulls = 0;
  uint64_t entry_fanout = 0;
  uint64_t results_emitted = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Whole-query latency, recorded once per touched partition: "how much
  // query time involves this meta document", not "time spent inside it".
  HistogramStats latency;

  // Scalar ranking key for `flixctl profile`: total units of query work
  // attributed here. Deliberately excludes latency (wall time mixes in the
  // other partitions of the same query) and cache hits (hits are work
  // *avoided*).
  uint64_t WorkScore() const {
    return entries_processed + index_probes + cursor_pulls + entry_fanout;
  }

  // Adds `other`'s observations into this profile (histograms merge via
  // MergeHistogramStats). Identity fields (strategy/nodes/build_ns) are
  // taken from whichever side has them set.
  void Accumulate(const PartitionProfile& other);
};

// A full snapshot: one PartitionProfile per meta document, indexed by
// partition id. This is the unit that serializes, merges and persists.
struct WorkloadProfile {
  static constexpr uint32_t kSchemaVersion = 1;

  std::vector<PartitionProfile> partitions;

  // Element-wise Accumulate; grows to cover the larger partition count.
  void Merge(const WorkloadProfile& other);

  // Sum over all partitions (partition/strategy fields left empty).
  PartitionProfile Totals() const;

  // Partition ids sorted by descending WorkScore (ties: ascending id).
  std::vector<uint32_t> RankByWork() const;
};

// The live accumulator, owned by a Flix instance (one per index, so
// side-by-side indexes in one process don't mix partition ids).
class WorkloadProfiler {
 public:
  WorkloadProfiler() = default;
  WorkloadProfiler(const WorkloadProfiler&) = delete;
  WorkloadProfiler& operator=(const WorkloadProfiler&) = delete;

  // Build/load-time setup; must not race with recording.
  void Resize(size_t num_partitions) EXCLUDES(info_mutex_);
  void SetPartitionInfo(uint32_t partition, std::string_view strategy,
                        uint64_t nodes, uint64_t build_ns)
      EXCLUDES(info_mutex_);

  // Master switch, checked by every attribution point. Disabled profilers
  // cost one relaxed load per query (and per cache op).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool Enabled() const { return enabled_.load(std::memory_order_relaxed); }

  size_t NumPartitions() const { return partitions_.size(); }

  // Flushes one finished query: adds each delta to its partition's totals
  // and records `latency_ns` (the whole query's latency) into each touched
  // partition's histogram. Out-of-range partition ids are dropped.
  void RecordQuery(const PartitionDeltaMap& deltas, uint64_t latency_ns);

  void RecordCacheHit(uint32_t partition);
  void RecordCacheMiss(uint32_t partition);

  WorkloadProfile Snapshot() const EXCLUDES(info_mutex_);

  // Zeroes all observations in place; partition info and capacity survive.
  void Reset();

 private:
  // Cache-line-sized so two partitions' counters never false-share.
  struct alignas(64) Slot {
    ~Slot() { delete latency.load(std::memory_order_relaxed); }

    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> entries_processed{0};
    std::atomic<uint64_t> entries_dominated{0};
    std::atomic<uint64_t> index_probes{0};
    std::atomic<uint64_t> cursors_opened{0};
    std::atomic<uint64_t> cursor_pulls{0};
    std::atomic<uint64_t> entry_fanout{0};
    std::atomic<uint64_t> results_emitted{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    // Lazily allocated on first touch (CAS), freed with the slot.
    std::atomic<Histogram*> latency{nullptr};
  };

  struct Info {
    std::string strategy;
    uint64_t nodes = 0;
    uint64_t build_ns = 0;
  };

  Histogram& LatencyHistogram(Slot& slot);

  std::atomic<bool> enabled_{true};
  // unique_ptr: Slot is neither movable nor copyable (atomics), and stable
  // addresses let concurrent recorders ignore vector reallocation (Resize
  // is excluded from racing with recording by contract anyway). The slots
  // themselves are lock-free atomics, so the vector is unguarded.
  std::vector<std::unique_ptr<Slot>> partitions_;
  mutable Mutex info_mutex_ ACQUIRED_AFTER(lockorder::kMetrics);
  std::vector<Info> info_ GUARDED_BY(info_mutex_);
};

// JSON (de)serialization. Schema (stable; version-checked on read):
//   {"schema_version":1,
//    "partitions":[
//      {"partition":u,"strategy":s,"nodes":u,"build_ns":u,"queries":u,
//       "entries_processed":u,"entries_dominated":u,"index_probes":u,
//       "cursors_opened":u,"cursor_pulls":u,"entry_fanout":u,
//       "results_emitted":u,"cache_hits":u,"cache_misses":u,
//       "latency":{<histogram object, see obs/export.h>}}, ...]}
std::string ProfileToJson(const WorkloadProfile& profile);
bool ProfileFromJson(std::string_view json, WorkloadProfile* profile);

// Human-readable ranking of the hottest `top_n` partitions by WorkScore
// (0 = all), plus a totals line — the `flixctl profile` rendering.
std::string ProfileToText(const WorkloadProfile& profile, size_t top_n = 0);

// Persistence next to the index: <index_path>.profile.json.
std::string ProfileFilePath(std::string_view index_path);
bool SaveProfileFile(const std::string& path, const WorkloadProfile& profile);
// False if the file is missing, unreadable or not a valid profile document.
bool LoadProfileFile(const std::string& path, WorkloadProfile* profile);

}  // namespace flix::obs

#endif  // FLIX_OBS_PROFILE_H_
