#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace flix::obs {

double Histogram::Quantile(double q) const {
  const uint64_t count = Count();
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // Upper bound of bucket b, clamped to the exact observed max so a
      // single-sample histogram reports the sample itself.
      const uint64_t upper =
          b + 1 < kNumBuckets ? BucketLowerBound(b + 1) - 1 : UINT64_MAX;
      return static_cast<double>(
          std::min(upper, max_.load(std::memory_order_relaxed)));
    }
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

HistogramStats Histogram::Snapshot() const {
  HistogramStats stats;
  stats.count = Count();
  stats.sum = Sum();
  if (stats.count == 0) return stats;
  stats.min = min_.load(std::memory_order_relaxed);
  stats.max = max_.load(std::memory_order_relaxed);
  stats.mean =
      static_cast<double>(stats.sum) / static_cast<double>(stats.count);
  stats.p50 = Quantile(0.50);
  stats.p95 = Quantile(0.95);
  stats.p99 = Quantile(0.99);
  stats.p999 = Quantile(0.999);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) stats.buckets.emplace_back(static_cast<uint32_t>(b), n);
  }
  return stats;
}

namespace {

// Quantile over a sparse ascending bucket list, mirroring
// Histogram::Quantile: upper bound of the bucket holding the q-sample,
// clamped to the observed max.
double SparseQuantile(const std::vector<std::pair<uint32_t, uint64_t>>& buckets,
                      uint64_t count, uint64_t max, double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (const auto& [bucket, n] : buckets) {
    cumulative += n;
    if (cumulative >= target) {
      const uint64_t upper = bucket + 1 < Histogram::kNumBuckets
                                 ? Histogram::BucketLowerBound(bucket + 1) - 1
                                 : UINT64_MAX;
      return static_cast<double>(std::min(upper, max));
    }
  }
  return static_cast<double>(max);
}

}  // namespace

void RecomputeQuantilesFromBuckets(HistogramStats& stats) {
  stats.mean = stats.count == 0 ? 0
                                : static_cast<double>(stats.sum) /
                                      static_cast<double>(stats.count);
  stats.p50 = SparseQuantile(stats.buckets, stats.count, stats.max, 0.50);
  stats.p95 = SparseQuantile(stats.buckets, stats.count, stats.max, 0.95);
  stats.p99 = SparseQuantile(stats.buckets, stats.count, stats.max, 0.99);
  stats.p999 = SparseQuantile(stats.buckets, stats.count, stats.max, 0.999);
}

void MergeHistogramStats(HistogramStats& into, const HistogramStats& from) {
  if (from.count == 0) return;
  const bool have_buckets =
      (into.count == 0 || !into.buckets.empty()) && !from.buckets.empty();
  if (into.count == 0) {
    into = from;
    return;
  }
  into.min = std::min(into.min, from.min);
  into.max = std::max(into.max, from.max);
  into.count += from.count;
  into.sum += from.sum;
  if (have_buckets) {
    // Merge the two ascending sparse lists.
    std::vector<std::pair<uint32_t, uint64_t>> merged;
    merged.reserve(into.buckets.size() + from.buckets.size());
    size_t a = 0;
    size_t b = 0;
    while (a < into.buckets.size() || b < from.buckets.size()) {
      if (b >= from.buckets.size() ||
          (a < into.buckets.size() &&
           into.buckets[a].first < from.buckets[b].first)) {
        merged.push_back(into.buckets[a++]);
      } else if (a >= into.buckets.size() ||
                 from.buckets[b].first < into.buckets[a].first) {
        merged.push_back(from.buckets[b++]);
      } else {
        merged.emplace_back(into.buckets[a].first,
                            into.buckets[a].second + from.buckets[b].second);
        ++a;
        ++b;
      }
    }
    into.buckets = std::move(merged);
    RecomputeQuantilesFromBuckets(into);
  } else {
    into.buckets.clear();
    into.mean =
        static_cast<double>(into.sum) / static_cast<double>(into.count);
    into.p50 = std::max(into.p50, from.p50);
    into.p95 = std::max(into.p95, from.p95);
    into.p99 = std::max(into.p99, from.p99);
    into.p999 = std::max(into.p999, from.p999);
  }
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

const uint64_t* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const int64_t* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramStats* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace flix::obs
