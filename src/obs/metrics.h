// Observability primitives: thread-safe counters, gauges and log-bucketed
// latency histograms, plus a process-wide registry that snapshots them.
//
// The paper's self-tuning proposal (Section 7) requires watching the running
// system — "if most queries have to follow many links, the choice of meta
// documents is no longer optimal". This module is the measurement substrate:
// the build pipeline and the PEE hot path record into the global registry,
// and Flix::MetricsSnapshot() / `flixctl stats` / the bench harnesses read
// a consistent snapshot back out (exporters live in obs/export.h).
//
// Design constraints:
//   * Recording must be cheap enough for the PEE hot path: counters and
//     histogram records are single relaxed atomic RMWs, no locks.
//   * Metric objects are owned by the registry and never move or die, so
//     callers may cache references (function-local statics) across queries.
//   * Reset() zeroes values in place — cached references stay valid.
#ifndef FLIX_OBS_METRICS_H_
#define FLIX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace flix::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (cache size, bytes in use, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time view of one histogram (see Histogram::Snapshot).
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p999 = 0;
  // Sparse raw bucket counts, ascending by bucket index (the mapping is
  // Histogram::BucketFor / BucketLowerBound). Carrying the raw buckets makes
  // snapshots mergeable: quantiles of a merged histogram are recomputed from
  // the summed buckets instead of being guessed from two quantile sets.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;
};

// Recomputes mean and the quantile fields of `stats` from its sparse raw
// buckets; count/sum/min/max must already be set. Uses the same
// upper-bound-clamped-to-max rule as Histogram::Quantile, so a snapshot
// passed through (buckets -> recompute) is a fixed point.
void RecomputeQuantilesFromBuckets(HistogramStats& stats);

// Accumulates `from` into `into`: counts, sums and raw buckets add, min/max
// widen, and the quantiles are recomputed from the merged buckets. When
// either side carries no raw buckets (a snapshot read from the pre-bucket
// JSON schema), the quantile fields fall back to the pairwise maximum — a
// conservative upper bound.
void MergeHistogramStats(HistogramStats& into, const HistogramStats& from);

// Log-bucketed histogram of non-negative integer samples (latencies in
// nanoseconds, result counts, ...). Values below 16 get exact buckets; above
// that, 8 geometric sub-buckets per power of two bound the relative
// quantile error by 12.5%. Recording is lock-free; quantiles are computed
// on demand from a relaxed read of the buckets.
class Histogram {
 public:
  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    UpdateExtreme(min_, value, /*want_smaller=*/true);
    UpdateExtreme(max_, value, /*want_smaller=*/false);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  // Upper bound of the bucket holding the q-quantile sample (0 < q <= 1),
  // clamped to the exact observed max. Returns 0 on an empty histogram.
  double Quantile(double q) const;

  HistogramStats Snapshot() const;

  void Reset();

  // Bucket mapping, exposed for tests.
  static constexpr size_t kPreciseLimit = 16;  // values < 16: exact buckets
  static constexpr int kSubBits = 3;           // 8 sub-buckets per octave
  static constexpr size_t kNumBuckets =
      kPreciseLimit + (64 - 4) * (size_t{1} << kSubBits);
  static size_t BucketFor(uint64_t value) {
    if (value < kPreciseLimit) return static_cast<size_t>(value);
    const int exponent = 63 - std::countl_zero(value);  // >= 4
    const uint64_t sub =
        (value >> (exponent - kSubBits)) & ((uint64_t{1} << kSubBits) - 1);
    return kPreciseLimit +
           static_cast<size_t>(exponent - 4) * (size_t{1} << kSubBits) +
           static_cast<size_t>(sub);
  }
  // Smallest value mapping to `bucket` (inverse of BucketFor).
  static uint64_t BucketLowerBound(size_t bucket) {
    if (bucket < kPreciseLimit) return bucket;
    const size_t rel = bucket - kPreciseLimit;
    const int exponent = 4 + static_cast<int>(rel >> kSubBits);
    const uint64_t sub = rel & ((uint64_t{1} << kSubBits) - 1);
    return ((uint64_t{1} << kSubBits) + sub) << (exponent - kSubBits);
  }

 private:
  static void UpdateExtreme(std::atomic<uint64_t>& slot, uint64_t value,
                            bool want_smaller) {
    uint64_t current = slot.load(std::memory_order_relaxed);
    while (want_smaller ? value < current : value > current) {
      if (slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// One flattened, point-in-time view of every registered metric — the unit
// the exporters (obs/export.h) serialize.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  const uint64_t* FindCounter(std::string_view name) const;
  const int64_t* FindGauge(std::string_view name) const;
  const HistogramStats* FindHistogram(std::string_view name) const;
};

// Name → metric map. GetX interns on first use and returns a reference that
// stays valid (and keeps recording into the same storage) for the process
// lifetime, including across Reset().
class MetricsRegistry {
 public:
  // The process-wide registry that the FliX build pipeline, the PEE and the
  // query cache report into.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name) EXCLUDES(mutex_);
  Gauge& GetGauge(std::string_view name) EXCLUDES(mutex_);
  Histogram& GetHistogram(std::string_view name) EXCLUDES(mutex_);

  // Sorted-by-name snapshot of all registered metrics.
  MetricsSnapshot Snapshot() const EXCLUDES(mutex_);

  // Zeroes every metric in place; registrations (and outstanding
  // references) survive. Used by tests and `flixctl stats --workload` to
  // isolate a measurement window.
  void Reset() EXCLUDES(mutex_);

 private:
  // Metrics rank: the innermost lock in the hierarchy — callers may hold any
  // engine/handle/cache lock while interning or snapshotting.
  mutable Mutex mutex_ ACQUIRED_AFTER(lockorder::kMetrics);
  // std::map: stable iteration order gives deterministic exports, and node
  // stability plus unique_ptr keeps metric addresses fixed.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace flix::obs

#endif  // FLIX_OBS_METRICS_H_
