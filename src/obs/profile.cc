#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "obs/json_util.h"

namespace flix::obs {
namespace {

using jsonutil::JsonCursor;

void RecordStatsInto(HistogramStats& stats, const Histogram* histogram) {
  if (histogram != nullptr) stats = histogram->Snapshot();
}

}  // namespace

void PartitionProfile::Accumulate(const PartitionProfile& other) {
  if (strategy.empty()) strategy = other.strategy;
  if (nodes == 0) nodes = other.nodes;
  if (build_ns == 0) build_ns = other.build_ns;
  queries += other.queries;
  entries_processed += other.entries_processed;
  entries_dominated += other.entries_dominated;
  index_probes += other.index_probes;
  cursors_opened += other.cursors_opened;
  cursor_pulls += other.cursor_pulls;
  entry_fanout += other.entry_fanout;
  results_emitted += other.results_emitted;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  MergeHistogramStats(latency, other.latency);
}

void WorkloadProfile::Merge(const WorkloadProfile& other) {
  if (other.partitions.size() > partitions.size()) {
    const size_t old_size = partitions.size();
    partitions.resize(other.partitions.size());
    for (size_t p = old_size; p < partitions.size(); ++p) {
      partitions[p].partition = static_cast<uint32_t>(p);
    }
  }
  for (size_t p = 0; p < other.partitions.size(); ++p) {
    partitions[p].Accumulate(other.partitions[p]);
  }
}

PartitionProfile WorkloadProfile::Totals() const {
  PartitionProfile totals;
  for (const PartitionProfile& partition : partitions) {
    totals.Accumulate(partition);
  }
  totals.strategy.clear();
  totals.nodes = 0;
  totals.build_ns = 0;
  for (const PartitionProfile& partition : partitions) {
    totals.nodes += partition.nodes;
    totals.build_ns += partition.build_ns;
  }
  return totals;
}

std::vector<uint32_t> WorkloadProfile::RankByWork() const {
  std::vector<uint32_t> order(partitions.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return partitions[a].WorkScore() > partitions[b].WorkScore();
  });
  return order;
}

void WorkloadProfiler::Resize(size_t num_partitions) {
  partitions_.clear();
  partitions_.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    partitions_.push_back(std::make_unique<Slot>());
  }
  MutexLock lock(info_mutex_);
  info_.assign(num_partitions, Info{});
}

void WorkloadProfiler::SetPartitionInfo(uint32_t partition,
                                        std::string_view strategy,
                                        uint64_t nodes, uint64_t build_ns) {
  MutexLock lock(info_mutex_);
  if (partition >= info_.size()) return;
  info_[partition].strategy = std::string(strategy);
  info_[partition].nodes = nodes;
  info_[partition].build_ns = build_ns;
}

Histogram& WorkloadProfiler::LatencyHistogram(Slot& slot) {
  Histogram* histogram = slot.latency.load(std::memory_order_acquire);
  if (histogram == nullptr) {
    auto fresh = std::make_unique<Histogram>();
    if (slot.latency.compare_exchange_strong(histogram, fresh.get(),
                                             std::memory_order_acq_rel)) {
      return *fresh.release();
    }
    // Lost the race; `histogram` now holds the winner.
  }
  return *histogram;
}

void WorkloadProfiler::RecordQuery(const PartitionDeltaMap& deltas,
                                   uint64_t latency_ns) {
  if (!Enabled()) return;
  for (const auto& [partition, delta] : deltas) {
    if (partition >= partitions_.size()) continue;
    Slot& slot = *partitions_[partition];
    slot.queries.fetch_add(1, std::memory_order_relaxed);
    slot.entries_processed.fetch_add(delta.entries_processed,
                                     std::memory_order_relaxed);
    slot.entries_dominated.fetch_add(delta.entries_dominated,
                                     std::memory_order_relaxed);
    slot.index_probes.fetch_add(delta.index_probes, std::memory_order_relaxed);
    slot.cursors_opened.fetch_add(delta.cursors_opened,
                                  std::memory_order_relaxed);
    slot.cursor_pulls.fetch_add(delta.cursor_pulls, std::memory_order_relaxed);
    slot.entry_fanout.fetch_add(delta.entry_fanout, std::memory_order_relaxed);
    slot.results_emitted.fetch_add(delta.results_emitted,
                                   std::memory_order_relaxed);
    LatencyHistogram(slot).Record(latency_ns);
  }
}

void WorkloadProfiler::RecordCacheHit(uint32_t partition) {
  if (!Enabled() || partition >= partitions_.size()) return;
  partitions_[partition]->cache_hits.fetch_add(1, std::memory_order_relaxed);
}

void WorkloadProfiler::RecordCacheMiss(uint32_t partition) {
  if (!Enabled() || partition >= partitions_.size()) return;
  partitions_[partition]->cache_misses.fetch_add(1, std::memory_order_relaxed);
}

WorkloadProfile WorkloadProfiler::Snapshot() const {
  WorkloadProfile profile;
  profile.partitions.resize(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Slot& slot = *partitions_[p];
    PartitionProfile& out = profile.partitions[p];
    out.partition = static_cast<uint32_t>(p);
    out.queries = slot.queries.load(std::memory_order_relaxed);
    out.entries_processed =
        slot.entries_processed.load(std::memory_order_relaxed);
    out.entries_dominated =
        slot.entries_dominated.load(std::memory_order_relaxed);
    out.index_probes = slot.index_probes.load(std::memory_order_relaxed);
    out.cursors_opened = slot.cursors_opened.load(std::memory_order_relaxed);
    out.cursor_pulls = slot.cursor_pulls.load(std::memory_order_relaxed);
    out.entry_fanout = slot.entry_fanout.load(std::memory_order_relaxed);
    out.results_emitted = slot.results_emitted.load(std::memory_order_relaxed);
    out.cache_hits = slot.cache_hits.load(std::memory_order_relaxed);
    out.cache_misses = slot.cache_misses.load(std::memory_order_relaxed);
    RecordStatsInto(out.latency, slot.latency.load(std::memory_order_acquire));
  }
  MutexLock lock(info_mutex_);
  for (size_t p = 0; p < partitions_.size() && p < info_.size(); ++p) {
    profile.partitions[p].strategy = info_[p].strategy;
    profile.partitions[p].nodes = info_[p].nodes;
    profile.partitions[p].build_ns = info_[p].build_ns;
  }
  return profile;
}

void WorkloadProfiler::Reset() {
  for (const auto& slot : partitions_) {
    slot->queries.store(0, std::memory_order_relaxed);
    slot->entries_processed.store(0, std::memory_order_relaxed);
    slot->entries_dominated.store(0, std::memory_order_relaxed);
    slot->index_probes.store(0, std::memory_order_relaxed);
    slot->cursors_opened.store(0, std::memory_order_relaxed);
    slot->cursor_pulls.store(0, std::memory_order_relaxed);
    slot->entry_fanout.store(0, std::memory_order_relaxed);
    slot->results_emitted.store(0, std::memory_order_relaxed);
    slot->cache_hits.store(0, std::memory_order_relaxed);
    slot->cache_misses.store(0, std::memory_order_relaxed);
    if (Histogram* histogram = slot->latency.load(std::memory_order_acquire)) {
      histogram->Reset();
    }
  }
}

std::string ProfileToJson(const WorkloadProfile& profile) {
  std::string out = "{\"schema_version\":";
  jsonutil::AppendU64(out, WorkloadProfile::kSchemaVersion);
  out += ",\"partitions\":[";
  bool first = true;
  for (const PartitionProfile& p : profile.partitions) {
    if (!first) out += ',';
    first = false;
    out += "{\"partition\":";
    jsonutil::AppendU64(out, p.partition);
    out += ",\"strategy\":";
    jsonutil::AppendEscaped(out, p.strategy);
    out += ",\"nodes\":";
    jsonutil::AppendU64(out, p.nodes);
    out += ",\"build_ns\":";
    jsonutil::AppendU64(out, p.build_ns);
    out += ",\"queries\":";
    jsonutil::AppendU64(out, p.queries);
    out += ",\"entries_processed\":";
    jsonutil::AppendU64(out, p.entries_processed);
    out += ",\"entries_dominated\":";
    jsonutil::AppendU64(out, p.entries_dominated);
    out += ",\"index_probes\":";
    jsonutil::AppendU64(out, p.index_probes);
    out += ",\"cursors_opened\":";
    jsonutil::AppendU64(out, p.cursors_opened);
    out += ",\"cursor_pulls\":";
    jsonutil::AppendU64(out, p.cursor_pulls);
    out += ",\"entry_fanout\":";
    jsonutil::AppendU64(out, p.entry_fanout);
    out += ",\"results_emitted\":";
    jsonutil::AppendU64(out, p.results_emitted);
    out += ",\"cache_hits\":";
    jsonutil::AppendU64(out, p.cache_hits);
    out += ",\"cache_misses\":";
    jsonutil::AppendU64(out, p.cache_misses);
    out += ",\"latency\":";
    jsonutil::AppendHistogramObject(out, p.latency);
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

bool ParsePartitionObject(JsonCursor& cursor, PartitionProfile* p) {
  if (!cursor.Consume('{')) return false;
  bool first = true;
  while (!cursor.Peek('}')) {
    if (!first && !cursor.Consume(',')) return false;
    first = false;
    std::string field;
    if (!cursor.ReadString(&field) || !cursor.Consume(':')) return false;
    uint64_t u = 0;
    if (field == "partition") {
      if (!cursor.ReadU64(&u)) return false;
      p->partition = static_cast<uint32_t>(u);
    } else if (field == "strategy") {
      if (!cursor.ReadString(&p->strategy)) return false;
    } else if (field == "nodes") {
      if (!cursor.ReadU64(&p->nodes)) return false;
    } else if (field == "build_ns") {
      if (!cursor.ReadU64(&p->build_ns)) return false;
    } else if (field == "queries") {
      if (!cursor.ReadU64(&p->queries)) return false;
    } else if (field == "entries_processed") {
      if (!cursor.ReadU64(&p->entries_processed)) return false;
    } else if (field == "entries_dominated") {
      if (!cursor.ReadU64(&p->entries_dominated)) return false;
    } else if (field == "index_probes") {
      if (!cursor.ReadU64(&p->index_probes)) return false;
    } else if (field == "cursors_opened") {
      if (!cursor.ReadU64(&p->cursors_opened)) return false;
    } else if (field == "cursor_pulls") {
      if (!cursor.ReadU64(&p->cursor_pulls)) return false;
    } else if (field == "entry_fanout") {
      if (!cursor.ReadU64(&p->entry_fanout)) return false;
    } else if (field == "results_emitted") {
      if (!cursor.ReadU64(&p->results_emitted)) return false;
    } else if (field == "cache_hits") {
      if (!cursor.ReadU64(&p->cache_hits)) return false;
    } else if (field == "cache_misses") {
      if (!cursor.ReadU64(&p->cache_misses)) return false;
    } else if (field == "latency") {
      if (!jsonutil::ParseHistogramObject(cursor, &p->latency)) return false;
    } else {
      return false;  // unknown field: not our schema
    }
  }
  return cursor.Consume('}');
}

}  // namespace

bool ProfileFromJson(std::string_view json, WorkloadProfile* profile) {
  *profile = WorkloadProfile{};
  JsonCursor cursor(json);
  std::string key;
  uint64_t version = 0;
  if (!cursor.Consume('{') || !cursor.ReadString(&key) ||
      key != "schema_version" || !cursor.Consume(':') ||
      !cursor.ReadU64(&version) ||
      version != WorkloadProfile::kSchemaVersion) {
    return false;
  }
  if (!cursor.Consume(',') || !cursor.ReadString(&key) ||
      key != "partitions" || !cursor.Consume(':') || !cursor.Consume('[')) {
    return false;
  }
  bool first = true;
  while (!cursor.Peek(']')) {
    if (!first && !cursor.Consume(',')) return false;
    first = false;
    PartitionProfile p;
    if (!ParsePartitionObject(cursor, &p)) return false;
    // Partition ids must be dense and in order — that is how ToJson emits
    // them, and Merge relies on index == id.
    if (p.partition != profile->partitions.size()) return false;
    profile->partitions.push_back(std::move(p));
  }
  return cursor.Consume(']') && cursor.Consume('}') && cursor.AtEnd();
}

std::string ProfileToText(const WorkloadProfile& profile, size_t top_n) {
  std::ostringstream out;
  const std::vector<uint32_t> order = profile.RankByWork();
  const size_t limit =
      top_n == 0 ? order.size() : std::min(top_n, order.size());
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%9s  %-8s  %8s  %8s  %10s  %10s  %10s  %8s  %8s  %10s\n",
                "partition", "strategy", "nodes", "queries", "probes", "pulls",
                "entries", "fanout", "hit%", "p95_ns");
  out << buf;
  for (size_t i = 0; i < limit; ++i) {
    const PartitionProfile& p = profile.partitions[order[i]];
    const uint64_t lookups = p.cache_hits + p.cache_misses;
    const double hit_rate =
        lookups == 0 ? 0.0
                     : 100.0 * static_cast<double>(p.cache_hits) /
                           static_cast<double>(lookups);
    std::snprintf(buf, sizeof buf,
                  "%9u  %-8s  %8llu  %8llu  %10llu  %10llu  %10llu  %8llu"
                  "  %7.1f%%  %10.0f\n",
                  p.partition,
                  p.strategy.empty() ? "?" : p.strategy.c_str(),
                  static_cast<unsigned long long>(p.nodes),
                  static_cast<unsigned long long>(p.queries),
                  static_cast<unsigned long long>(p.index_probes),
                  static_cast<unsigned long long>(p.cursor_pulls),
                  static_cast<unsigned long long>(p.entries_processed),
                  static_cast<unsigned long long>(p.entry_fanout), hit_rate,
                  p.latency.p95);
    out << buf;
  }
  const PartitionProfile totals = profile.Totals();
  std::snprintf(
      buf, sizeof buf,
      "total: %zu partitions  probes %llu  pulls %llu  entries %llu"
      "  fanout %llu  cache %llu/%llu\n",
      profile.partitions.size(),
      static_cast<unsigned long long>(totals.index_probes),
      static_cast<unsigned long long>(totals.cursor_pulls),
      static_cast<unsigned long long>(totals.entries_processed),
      static_cast<unsigned long long>(totals.entry_fanout),
      static_cast<unsigned long long>(totals.cache_hits),
      static_cast<unsigned long long>(totals.cache_hits +
                                      totals.cache_misses));
  out << buf;
  return out.str();
}

std::string ProfileFilePath(std::string_view index_path) {
  return std::string(index_path) + ".profile.json";
}

bool SaveProfileFile(const std::string& path, const WorkloadProfile& profile) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ProfileToJson(profile) << "\n";
  return static_cast<bool>(out);
}

bool LoadProfileFile(const std::string& path, WorkloadProfile* profile) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ProfileFromJson(buffer.str(), profile);
}

}  // namespace flix::obs
