// Pre-/postorder index (PPO) after Grust [10, 11].
//
// Builds (pre, post, depth, parent) numbers by a depth-first traversal of a
// forest. Reachability is the classic window test
//   pre(x) < pre(y) && post(x) > post(y),
// the distance of an ancestor-descendant pair is the depth difference, and
// descendant enumeration is a contiguous scan of the preorder sequence
// (each subtree is the preorder interval (pre(x), pre(x) + size(x)]).
//
// PPO requires the graph to be a forest; Build fails otherwise. The Maximal
// PPO configuration of FliX (Section 4.3) arranges meta documents so this
// holds, keeping removed link edges outside the index.
#ifndef FLIX_INDEX_PPO_H_
#define FLIX_INDEX_PPO_H_

#include <memory>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "index/path_index.h"
#include "storage/flat.h"

namespace flix::index {

class PpoIndex : public PathIndex {
 public:
  // Fails with kFailedPrecondition if `g` is not a forest.
  static StatusOr<std::unique_ptr<PpoIndex>> Build(const graph::Digraph& g);

  StrategyKind kind() const override { return StrategyKind::kPpo; }

  bool IsReachable(NodeId from, NodeId to) const override;
  Distance DistanceBetween(NodeId from, NodeId to) const override;
  // Interval-scan cursor: buckets the subtree's preorder interval by depth
  // on the first pull, then emits depth level by depth level, sorting each
  // level only when it is reached — top-k pulls skip both the global sort
  // and the deeper levels' sorts.
  std::unique_ptr<NodeDistCursor> DescendantsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> DescendantsCursor(NodeId from) const override;
  // Parent-chain walk — naturally lazy and already ascending by distance.
  std::unique_ptr<NodeDistCursor> AncestorsByTagCursor(
      NodeId from, TagId tag) const override;
  // Interval containment test per target (materialized; target lists are
  // small link-source sets).
  std::unique_ptr<NodeDistCursor> ReachableAmongCursor(
      NodeId from, std::span<const NodeId> targets) const override;
  // Bulk overrides: one interval scan + one sort beats draining the
  // depth-bucketed cursor when the whole subtree is wanted anyway.
  std::vector<NodeDist> DescendantsByTag(NodeId from, TagId tag) const override;
  std::vector<NodeDist> Descendants(NodeId from) const override;
  std::vector<NodeDist> AncestorsByTag(NodeId from, TagId tag) const override;
  std::vector<NodeDist> ReachableAmong(
      NodeId from, std::span<const NodeId> targets) const override;
  size_t MemoryBytes() const override;

  // Structural invariants: pre is a permutation with order_ as its inverse,
  // every graph edge satisfies the interval window (child subtree nested in
  // the parent's, depth +1, post descending), parents match the graph, and
  // subtree sizes telescope. Then the base differential check.
  Status Validate(const graph::Digraph& g,
                  const ValidateOptions& options = {}) const override;

  // Binary persistence (stream format; works in both storage modes).
  void Save(BinaryWriter& writer) const;
  static StatusOr<std::unique_ptr<PpoIndex>> Load(BinaryReader& reader);

  // Paged persistence: flat arrays in a segment, loaded as a zero-copy view.
  void SaveSegment(storage::SegmentWriter& seg) const;
  static StatusOr<std::unique_ptr<PpoIndex>> LoadSegment(
      const storage::SegmentView& view);

  // Accessors used by tests.
  uint32_t pre(NodeId n) const { return pre_[n]; }
  uint32_t post(NodeId n) const { return post_[n]; }
  uint32_t depth(NodeId n) const { return depth_[n]; }
  uint32_t subtree_size(NodeId n) const { return subtree_size_[n]; }

 private:
  friend struct CorruptionHook;

  PpoIndex() = default;

  storage::FlatVec<uint32_t> pre_;
  storage::FlatVec<uint32_t> post_;
  storage::FlatVec<uint32_t> depth_;
  storage::FlatVec<NodeId> parent_;
  storage::FlatVec<uint32_t> subtree_size_;
  // order_[pre(n)] == n: nodes in preorder, for subtree interval scans.
  storage::FlatVec<NodeId> order_;
  storage::FlatVec<TagId> tag_;
};

}  // namespace flix::index

#endif  // FLIX_INDEX_PPO_H_
