#include "index/hopi.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "common/rng.h"
#include "graph/partition.h"
#include "graph/traversal.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace flix::index {
namespace {

constexpr Distance kInfinity = std::numeric_limits<Distance>::max();

bool SameIds(std::span<const NodeId> a, const std::vector<NodeId>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

// Degree-product hub priority: nodes on many paths first.
uint64_t DegreePriority(const graph::Digraph& g, NodeId v) {
  return static_cast<uint64_t>(g.InDegree(v) + 1) *
         static_cast<uint64_t>(g.OutDegree(v) + 1);
}

// Paged-segment array ids.
constexpr uint32_t kOutOffsets = 1;
constexpr uint32_t kOutFlat = 2;
constexpr uint32_t kInOffsets = 3;
constexpr uint32_t kInFlat = 4;
constexpr uint32_t kTagArray = 5;
constexpr uint32_t kRankOfNode = 6;
constexpr uint32_t kNodeOfRank = 7;
constexpr uint32_t kInvInOffsets = 8;
constexpr uint32_t kInvInFlat = 9;
constexpr uint32_t kInvOutOffsets = 10;
constexpr uint32_t kInvOutFlat = 11;
// Registered probe sets and their pre-filtered inverted lists (see
// RegisterLinkSources). Persisted so a paged load binds them as views
// instead of re-deriving them from the full label volume; absent from
// files saved before registration (the loader then leaves them empty).
constexpr uint32_t kRegSourcesArray = 12;
constexpr uint32_t kInvInSrcOffsets = 13;
constexpr uint32_t kInvInSrcFlat = 14;
constexpr uint32_t kRegEntriesArray = 15;
constexpr uint32_t kInvOutEntOffsets = 16;
constexpr uint32_t kInvOutEntFlat = 17;

// Bit-reversal of a node id. Used as the tie-break among equal-degree
// nodes: on chain-shaped regions (where every degree product ties and node
// ids follow document order) this yields a middle-first recursive
// subdivision, keeping the cover near-linear instead of quadratic —
// mirroring the "central" center selection of Cohen et al.
uint32_t BitReverse(uint32_t x) {
  x = ((x & 0x55555555u) << 1) | ((x >> 1) & 0x55555555u);
  x = ((x & 0x33333333u) << 2) | ((x >> 2) & 0x33333333u);
  x = ((x & 0x0F0F0F0Fu) << 4) | ((x >> 4) & 0x0F0F0F0Fu);
  x = ((x & 0x00FF00FFu) << 8) | ((x >> 8) & 0x00FF00FFu);
  return (x << 16) | (x >> 16);
}

}  // namespace

std::unique_ptr<HopiIndex> HopiIndex::Build(const graph::Digraph& g,
                                            const HopiOptions& options) {
  auto index = std::unique_ptr<HopiIndex>(new HopiIndex());

  std::vector<uint32_t>* priority_ptr = nullptr;
  std::vector<uint32_t> priority;
  if (options.partition_bound > 0 && g.NumNodes() > 0) {
    // Divide-and-conquer: nodes incident to partition-crossing edges become
    // global hubs first; they then cover all cross-partition paths, so the
    // per-partition covers stay local — the unified pruned build realizes
    // the "cover partitions, then repair across the cut" plan in one pass.
    graph::PartitionOptions popts;
    popts.max_nodes = options.partition_bound;
    const graph::PartitionResult parts = graph::PartitionBySize(g, popts);
    priority.assign(g.NumNodes(), 0);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
        if (parts.partition_of[u] != parts.partition_of[arc.target]) {
          priority[u] = 1;
          priority[arc.target] = 1;
        }
      }
    }
    priority_ptr = &priority;
  }

  index->BuildGlobal(g, priority_ptr);
  index->BuildInverted();
  return index;
}

void HopiIndex::BuildGlobal(const graph::Digraph& g,
                            const std::vector<uint32_t>* hub_priority) {
  const size_t n = g.NumNodes();
  out_labels_.Assign(n);
  in_labels_.Assign(n);
  tag_.resize(n);
  for (NodeId v = 0; v < n; ++v) tag_[v] = g.Tag(v);

  // Hub order: (optional border flag, degree product) descending; the label
  // entries store the processing *rank* of a hub so per-node label vectors
  // stay sorted by construction.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint64_t> weight(n);
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t border =
        hub_priority != nullptr && (*hub_priority)[v] > 0 ? 1 : 0;
    weight[v] = (border << 62) | DegreePriority(g, v);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    const uint32_t ra = BitReverse(a);
    const uint32_t rb = BitReverse(b);
    return ra != rb ? ra < rb : a < b;
  });

  rank_of_node_.assign(n, kInvalidNode);
  node_of_rank_.assign(n, kInvalidNode);
  for (NodeId r = 0; r < n; ++r) {
    rank_of_node_[order[r]] = r;
    node_of_rank_[r] = order[r];
  }

  // Epoch-stamped BFS scratch (cleared in O(1) between hubs).
  std::vector<Distance> dist(n, 0);
  std::vector<uint32_t> stamp(n, 0);
  uint32_t epoch = 0;
  std::deque<NodeId> queue;

  for (NodeId rank = 0; rank < n; ++rank) {
    const NodeId hub = order[rank];
    // Pass 1: forward pruned BFS, assigning (hub, d) to L_in of reached
    // nodes. Pass 2: backward, assigning to L_out.
    for (const bool forward : {true, false}) {
      ++epoch;
      queue.clear();
      queue.push_back(hub);
      dist[hub] = 0;
      stamp[hub] = epoch;
      while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop_front();
        const Distance d = dist[v];
        // Prune if the labels built so far already certify a distance <= d
        // between hub and v (in the pass direction).
        const Distance certified =
            forward ? QueryLabels(out_labels_[hub], in_labels_[v])
                    : QueryLabels(out_labels_[v], in_labels_[hub]);
        if (certified <= d) continue;
        if (forward) {
          in_labels_.Row(v).push_back({rank, d});
        } else {
          out_labels_.Row(v).push_back({rank, d});
        }
        const auto& arcs = forward ? g.OutArcs(v) : g.InArcs(v);
        for (const graph::Digraph::Arc& arc : arcs) {
          if (stamp[arc.target] != epoch) {
            stamp[arc.target] = epoch;
            dist[arc.target] = d + 1;
            queue.push_back(arc.target);
          }
        }
      }
    }
  }

  for (auto& labels : out_labels_.OwnedRows()) labels.shrink_to_fit();
  for (auto& labels : in_labels_.OwnedRows()) labels.shrink_to_fit();
}

void HopiIndex::BuildInverted() {
  const size_t n = in_labels_.size();
  inverted_in_.Assign(n);
  inverted_out_.Assign(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const LabelEntry& e : in_labels_[v]) {
      inverted_in_.Row(e.hub).push_back({v, e.distance});
    }
    for (const LabelEntry& e : out_labels_[v]) {
      inverted_out_.Row(e.hub).push_back({v, e.distance});
    }
  }
  // Sort each hub's list by (distance, node): the enumeration cursors merge
  // the lists of a node's hubs and rely on each being ascending.
  const auto by_distance = [](const LabelEntry& a, const LabelEntry& b) {
    return std::tie(a.distance, a.hub) < std::tie(b.distance, b.hub);
  };
  for (auto& list : inverted_in_.OwnedRows()) {
    std::sort(list.begin(), list.end(), by_distance);
  }
  for (auto& list : inverted_out_.OwnedRows()) {
    std::sort(list.begin(), list.end(), by_distance);
  }
}

Distance HopiIndex::QueryLabels(std::span<const LabelEntry> out,
                                std::span<const LabelEntry> in) {
  Distance best = kInfinity;
  size_t i = 0;
  size_t j = 0;
  while (i < out.size() && j < in.size()) {
    if (out[i].hub < in[j].hub) {
      ++i;
    } else if (out[i].hub > in[j].hub) {
      ++j;
    } else {
      best = std::min(best, out[i].distance + in[j].distance);
      ++i;
      ++j;
    }
  }
  return best;
}

Distance HopiIndex::DistanceBetween(NodeId from, NodeId to) const {
  if (from == to) return 0;
  const Distance d = QueryLabels(out_labels_[from], in_labels_[to]);
  return d == kInfinity ? kUnreachable : d;
}

namespace {

// Process-wide count of results yielded by HOPI merge cursors (resolved
// once; Counter addresses survive MetricsRegistry::Reset()).
obs::Counter& HopiPullCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter(obs::names::kCursorPulledHopi);
  return counter;
}

// K-way merge over the inverted lists of `from`'s hubs, keyed by
// label-distance + entry-distance. Each list is ascending by (distance,
// node), so the heap pops globally ascending (distance, node) pairs and the
// *first* pop of a node carries its 2-hop distance (min over common hubs) —
// later pops of the same node are dropped via the seen set. Tag filtering
// happens on pop; unmatched nodes still cost a heap round but no
// materialization ever happens.
class HopiMergeCursor : public index::NodeDistCursor {
 public:
  HopiMergeCursor(std::span<const HopiIndex::LabelEntry> from_labels,
                  const storage::FlatRows<HopiIndex::LabelEntry>& inverted,
                  std::span<const TagId> tag_of, TagId tag, bool wildcard,
                  NodeId exclude)
      : inverted_(inverted),
        tag_of_(tag_of),
        tag_(tag),
        wildcard_(wildcard),
        exclude_(exclude),
        seen_(tag_of.size(), 0) {
    heads_.reserve(from_labels.size());
    for (const HopiIndex::LabelEntry& hub_entry : from_labels) {
      const std::span<const HopiIndex::LabelEntry> list =
          inverted_[hub_entry.hub];
      if (list.empty()) continue;
      const uint32_t list_idx = static_cast<uint32_t>(heads_.size());
      heads_.push_back({hub_entry.distance, hub_entry.hub, 0});
      remaining_ += list.size();
      heap_.push({hub_entry.distance + list.front().distance,
                  list.front().hub, list_idx});
    }
  }

  std::optional<NodeDist> Next() override {
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      heap_.pop();
      --remaining_;
      Head& head = heads_[top.list];
      const std::span<const HopiIndex::LabelEntry> list = inverted_[head.hub];
      if (++head.pos < list.size()) {
        heap_.push({head.base + list[head.pos].distance, list[head.pos].hub,
                    top.list});
      }
      if (top.node == exclude_ || seen_[top.node]) continue;
      seen_[top.node] = 1;
      if (!wildcard_ && tag_of_[top.node] != tag_) continue;
      HopiPullCounter().Increment();
      return NodeDist{top.node, top.distance};
    }
    return std::nullopt;
  }

  Distance BoundHint() const override {
    return heap_.empty() ? kUnreachable : heap_.top().distance;
  }

  // Counts un-pulled list entries; an overestimate when a node occurs under
  // several hubs (best-effort, observability only).
  size_t RemainingHint() const override { return remaining_; }

 private:
  struct HeapEntry {
    Distance distance;
    NodeId node;
    uint32_t list;

    bool operator>(const HeapEntry& other) const {
      return std::tie(distance, node) > std::tie(other.distance, other.node);
    }
  };
  struct Head {
    Distance base;  // distance from the query node to this list's hub
    NodeId hub;
    size_t pos;
  };

  const storage::FlatRows<HopiIndex::LabelEntry>& inverted_;
  const std::span<const TagId> tag_of_;
  const TagId tag_;
  const bool wildcard_;
  const NodeId exclude_;
  std::vector<uint8_t> seen_;
  std::vector<Head> heads_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  size_t remaining_ = 0;
};

}  // namespace

std::unique_ptr<NodeDistCursor> HopiIndex::MergeCursor(
    NodeId from, TagId tag, bool wildcard, NodeId exclude,
    const storage::FlatRows<LabelEntry>& labels,
    const storage::FlatRows<LabelEntry>& inverted) const {
  return std::make_unique<HopiMergeCursor>(labels[from], inverted, tag_.span(),
                                           tag, wildcard, exclude);
}

std::unique_ptr<NodeDistCursor> HopiIndex::DescendantsByTagCursor(
    NodeId from, TagId tag) const {
  return MergeCursor(from, tag, /*wildcard=*/false, from, out_labels_,
                     inverted_in_);
}

std::unique_ptr<NodeDistCursor> HopiIndex::DescendantsCursor(
    NodeId from) const {
  return MergeCursor(from, kInvalidTag, /*wildcard=*/true, from, out_labels_,
                     inverted_in_);
}

std::unique_ptr<NodeDistCursor> HopiIndex::AncestorsByTagCursor(
    NodeId from, TagId tag) const {
  return MergeCursor(from, tag, /*wildcard=*/false, from, in_labels_,
                     inverted_out_);
}

std::vector<NodeDist> HopiIndex::Collect(
    NodeId from, TagId tag, bool wildcard,
    const storage::FlatRows<LabelEntry>& labels,
    const storage::FlatRows<LabelEntry>& inverted) const {
  // Relax dist(from, v) over all of from's hubs; per-call scratch keeps the
  // index safely shareable across query threads.
  std::vector<Distance> best(tag_.size(), kInfinity);
  for (const LabelEntry& hub_entry : labels[from]) {
    // In the inverted lists, `hub` holds the labeled *node* id.
    for (const LabelEntry& e : inverted[hub_entry.hub]) {
      const Distance d = hub_entry.distance + e.distance;
      if (d < best[e.hub]) best[e.hub] = d;
    }
  }
  std::vector<NodeDist> result;
  for (NodeId v = 0; v < tag_.size(); ++v) {
    if (v == from || best[v] == kInfinity) continue;
    if (wildcard || tag_[v] == tag) result.push_back({v, best[v]});
  }
  SortByDistance(result);
  return result;
}

std::vector<NodeDist> HopiIndex::DescendantsByTag(NodeId from,
                                                  TagId tag) const {
  return Collect(from, tag, /*wildcard=*/false, out_labels_, inverted_in_);
}

std::vector<NodeDist> HopiIndex::Descendants(NodeId from) const {
  return Collect(from, kInvalidTag, /*wildcard=*/true, out_labels_,
                 inverted_in_);
}

std::vector<NodeDist> HopiIndex::AncestorsByTag(NodeId from, TagId tag) const {
  return Collect(from, tag, /*wildcard=*/false, in_labels_, inverted_out_);
}

std::vector<NodeDist> HopiIndex::CollectAmong(
    NodeId from, const storage::FlatRows<LabelEntry>& labels,
    const storage::FlatRows<LabelEntry>& filtered_inverted) const {
  std::unordered_map<NodeId, Distance> best;
  for (const LabelEntry& hub_entry : labels[from]) {
    for (const LabelEntry& e : filtered_inverted[hub_entry.hub]) {
      const Distance d = hub_entry.distance + e.distance;
      const auto [it, inserted] = best.emplace(e.hub, d);
      if (!inserted && d < it->second) it->second = d;
    }
  }
  std::vector<NodeDist> result;
  result.reserve(best.size());
  for (const auto& [node, d] : best) {
    // `from` itself shows up at distance 0 when it is in the probe set
    // (its own (self, 0) hub label joins the filtered list).
    result.push_back({node, d});
  }
  SortByDistance(result);
  return result;
}

std::vector<NodeDist> HopiIndex::ReachableAmong(
    NodeId from, std::span<const NodeId> targets) const {
  if (!registered_sources_.empty() && SameIds(targets, registered_sources_)) {
    return CollectAmong(from, out_labels_, inverted_in_sources_);
  }
  // Few targets: a label merge-join per target is cheaper than touching the
  // inverted lists of every hub of `from`.
  constexpr size_t kPerTargetThreshold = 32;
  if (targets.size() <= kPerTargetThreshold) {
    return PathIndex::ReachableAmong(from, targets);
  }
  const std::unordered_set<NodeId> wanted(targets.begin(), targets.end());
  std::vector<NodeDist> result;
  if (wanted.contains(from)) result.push_back({from, 0});
  for (const NodeDist& nd : Descendants(from)) {
    if (wanted.contains(nd.node)) result.push_back(nd);
  }
  SortByDistance(result);
  return result;
}

std::vector<NodeDist> HopiIndex::AncestorsAmong(
    NodeId from, std::span<const NodeId> sources) const {
  if (!registered_entries_.empty() && SameIds(sources, registered_entries_)) {
    return CollectAmong(from, in_labels_, inverted_out_entries_);
  }
  return PathIndex::AncestorsAmong(from, sources);
}

void HopiIndex::RegisterLinkSources(std::span<const NodeId> sources) {
  // Already derived for this exact probe set (typically bound as a view by
  // a paged load): the O(labels) filtering pass below would only recompute
  // what the mapping already holds.
  if (SameIds(sources, registered_sources_) &&
      (sources.empty() ||
       inverted_in_sources_.size() == inverted_in_.size())) {
    return;
  }
  registered_sources_.assign(sources.begin(), sources.end());
  if (sources.empty()) {
    // An empty probe set is never consulted (the Among fast paths require a
    // non-empty registration), so don't touch the label volume.
    inverted_in_sources_ = storage::FlatRows<LabelEntry>();
    return;
  }
  inverted_in_sources_.Assign(inverted_in_.size());
  const std::unordered_set<NodeId> wanted(sources.begin(), sources.end());
  for (NodeId hub = 0; hub < inverted_in_.size(); ++hub) {
    for (const LabelEntry& e : inverted_in_[hub]) {
      if (wanted.contains(e.hub)) inverted_in_sources_.Row(hub).push_back(e);
    }
  }
}

void HopiIndex::RegisterEntryNodes(std::span<const NodeId> targets) {
  if (SameIds(targets, registered_entries_) &&
      (targets.empty() ||
       inverted_out_entries_.size() == inverted_out_.size())) {
    return;
  }
  registered_entries_.assign(targets.begin(), targets.end());
  if (targets.empty()) {
    inverted_out_entries_ = storage::FlatRows<LabelEntry>();
    return;
  }
  inverted_out_entries_.Assign(inverted_out_.size());
  const std::unordered_set<NodeId> wanted(targets.begin(), targets.end());
  for (NodeId hub = 0; hub < inverted_out_.size(); ++hub) {
    for (const LabelEntry& e : inverted_out_[hub]) {
      if (wanted.contains(e.hub)) inverted_out_entries_.Row(hub).push_back(e);
    }
  }
}

std::unique_ptr<NodeDistCursor> HopiIndex::ReachableAmongCursor(
    NodeId from, std::span<const NodeId> targets) const {
  if (!registered_sources_.empty() && SameIds(targets, registered_sources_)) {
    // Merge over the pre-filtered inverted lists; `from` itself streams out
    // at distance 0 when it is in the probe set (its (self, 0) hub label
    // joins the filtered lists), so nothing is excluded.
    return MergeCursor(from, kInvalidTag, /*wildcard=*/true, kInvalidNode,
                       out_labels_, inverted_in_sources_);
  }
  // Few targets: a label merge-join per target is cheaper than touching the
  // inverted lists of every hub of `from`.
  constexpr size_t kPerTargetThreshold = 32;
  if (targets.size() <= kPerTargetThreshold) {
    return PathIndex::ReachableAmongCursor(from, targets);
  }
  const std::unordered_set<NodeId> wanted(targets.begin(), targets.end());
  std::vector<NodeDist> result;
  if (wanted.contains(from)) result.push_back({from, 0});
  for (const NodeDist& nd : Descendants(from)) {
    if (wanted.contains(nd.node)) result.push_back(nd);
  }
  SortByDistance(result);
  return std::make_unique<MaterializedCursor>(std::move(result));
}

std::unique_ptr<NodeDistCursor> HopiIndex::AncestorsAmongCursor(
    NodeId from, std::span<const NodeId> sources) const {
  if (!registered_entries_.empty() && SameIds(sources, registered_entries_)) {
    return MergeCursor(from, kInvalidTag, /*wildcard=*/true, kInvalidNode,
                       in_labels_, inverted_out_entries_);
  }
  return PathIndex::AncestorsAmongCursor(from, sources);
}

void HopiIndex::Save(BinaryWriter& writer) const {
  // Row-wise writes produce the exact WriteNestedVec byte layout, so stream
  // files stay compatible regardless of the storage mode Save runs in.
  writer.WriteU64(out_labels_.size());
  for (size_t v = 0; v < out_labels_.size(); ++v) {
    writer.WriteSpan(out_labels_[v]);
  }
  writer.WriteU64(in_labels_.size());
  for (size_t v = 0; v < in_labels_.size(); ++v) {
    writer.WriteSpan(in_labels_[v]);
  }
  writer.WriteSpan(tag_.span());
  writer.WriteSpan(rank_of_node_.span());
  writer.WriteSpan(node_of_rank_.span());
}

StatusOr<std::unique_ptr<HopiIndex>> HopiIndex::Load(BinaryReader& reader) {
  auto index = std::unique_ptr<HopiIndex>(new HopiIndex());
  index->out_labels_ = reader.ReadNestedVec<LabelEntry>();
  index->in_labels_ = reader.ReadNestedVec<LabelEntry>();
  index->tag_ = reader.ReadVec<TagId>();
  index->rank_of_node_ = reader.ReadVec<NodeId>();
  index->node_of_rank_ = reader.ReadVec<NodeId>();
  const size_t n = index->tag_.size();
  if (!reader.ok() || index->out_labels_.size() != n ||
      index->in_labels_.size() != n || index->rank_of_node_.size() != n ||
      index->node_of_rank_.size() != n) {
    return InvalidArgumentError("corrupt HOPI index payload");
  }
  // Semantic validation: label hubs are ranks in [0, n) (BuildInverted
  // indexes by them) and distances are non-negative.
  for (const auto* labels : {&index->out_labels_, &index->in_labels_}) {
    for (size_t v = 0; v < labels->size(); ++v) {
      for (const LabelEntry& e : (*labels)[v]) {
        if (e.hub >= n || e.distance < 0) {
          return InvalidArgumentError("corrupt HOPI label entry");
        }
      }
    }
  }
  for (const NodeId r : index->rank_of_node_) {
    if (r >= n) return InvalidArgumentError("corrupt HOPI rank table");
  }
  for (const NodeId v : index->node_of_rank_) {
    if (v >= n) return InvalidArgumentError("corrupt HOPI rank table");
  }
  index->BuildInverted();
  return index;
}

void HopiIndex::SaveSegment(storage::SegmentWriter& seg) const {
  std::vector<uint64_t> offsets;
  std::vector<LabelEntry> flat;
  out_labels_.Flatten(offsets, flat);
  seg.Add(kOutOffsets, offsets);
  seg.Add(kOutFlat, flat);
  in_labels_.Flatten(offsets, flat);
  seg.Add(kInOffsets, offsets);
  seg.Add(kInFlat, flat);
  seg.Add(kTagArray, tag_.span());
  seg.Add(kRankOfNode, rank_of_node_.span());
  seg.Add(kNodeOfRank, node_of_rank_.span());
  // Persist the inverted lists too: rebuilding them on load would copy the
  // whole label volume back onto the heap.
  inverted_in_.Flatten(offsets, flat);
  seg.Add(kInvInOffsets, offsets);
  seg.Add(kInvInFlat, flat);
  inverted_out_.Flatten(offsets, flat);
  seg.Add(kInvOutOffsets, offsets);
  seg.Add(kInvOutFlat, flat);
  // The registered probe sets and their filtered inverted lists: deriving
  // them at load time scans the entire label volume, which would turn the
  // zero-copy cold open back into an O(index) pass.
  if (!registered_sources_.empty()) {
    seg.Add(kRegSourcesArray, registered_sources_);
    inverted_in_sources_.Flatten(offsets, flat);
    seg.Add(kInvInSrcOffsets, offsets);
    seg.Add(kInvInSrcFlat, flat);
  }
  if (!registered_entries_.empty()) {
    seg.Add(kRegEntriesArray, registered_entries_);
    inverted_out_entries_.Flatten(offsets, flat);
    seg.Add(kInvOutEntOffsets, offsets);
    seg.Add(kInvOutEntFlat, flat);
  }
}

namespace {

StatusOr<storage::FlatRows<HopiIndex::LabelEntry>> LabelRowsFromSegment(
    const storage::SegmentView& view, uint32_t offsets_id, uint32_t flat_id) {
  auto offsets = view.GetArray<uint64_t>(offsets_id);
  if (!offsets.ok()) return offsets.status();
  auto flat = view.GetArray<HopiIndex::LabelEntry>(flat_id);
  if (!flat.ok()) return flat.status();
  return storage::FlatRows<HopiIndex::LabelEntry>::FromView(offsets.value(),
                                                            flat.value());
}

}  // namespace

StatusOr<std::unique_ptr<HopiIndex>> HopiIndex::LoadSegment(
    const storage::SegmentView& view) {
  auto out_labels = LabelRowsFromSegment(view, kOutOffsets, kOutFlat);
  if (!out_labels.ok()) return out_labels.status();
  auto in_labels = LabelRowsFromSegment(view, kInOffsets, kInFlat);
  if (!in_labels.ok()) return in_labels.status();
  auto inv_in = LabelRowsFromSegment(view, kInvInOffsets, kInvInFlat);
  if (!inv_in.ok()) return inv_in.status();
  auto inv_out = LabelRowsFromSegment(view, kInvOutOffsets, kInvOutFlat);
  if (!inv_out.ok()) return inv_out.status();
  auto tag = view.GetArray<TagId>(kTagArray);
  if (!tag.ok()) return tag.status();
  auto rank_of_node = view.GetArray<NodeId>(kRankOfNode);
  if (!rank_of_node.ok()) return rank_of_node.status();
  auto node_of_rank = view.GetArray<NodeId>(kNodeOfRank);
  if (!node_of_rank.ok()) return node_of_rank.status();
  const size_t n = tag.value().size();
  if (out_labels.value().size() != n || in_labels.value().size() != n ||
      inv_in.value().size() != n || inv_out.value().size() != n ||
      rank_of_node.value().size() != n || node_of_rank.value().size() != n) {
    return InvalidArgumentError("hopi segment: array size mismatch");
  }
  auto index = std::unique_ptr<HopiIndex>(new HopiIndex());
  index->out_labels_ = std::move(out_labels).value();
  index->in_labels_ = std::move(in_labels).value();
  index->inverted_in_ = std::move(inv_in).value();
  index->inverted_out_ = std::move(inv_out).value();
  index->tag_ = storage::FlatVec<TagId>::FromView(tag.value());
  index->rank_of_node_ = storage::FlatVec<NodeId>::FromView(rank_of_node.value());
  index->node_of_rank_ = storage::FlatVec<NodeId>::FromView(node_of_rank.value());
  // Pre-filtered probe-set lists, when the writer had them registered; the
  // later RegisterLinkSources/RegisterEntryNodes call with the same ids then
  // short-circuits instead of re-scanning the labels.
  if (view.HasArray(kRegSourcesArray)) {
    auto reg = view.GetArray<NodeId>(kRegSourcesArray);
    if (!reg.ok()) return reg.status();
    auto rows = LabelRowsFromSegment(view, kInvInSrcOffsets, kInvInSrcFlat);
    if (!rows.ok()) return rows.status();
    if (rows.value().size() != n) {
      return InvalidArgumentError("hopi segment: filtered source rows "
                                  "mismatch");
    }
    index->registered_sources_.assign(reg.value().begin(), reg.value().end());
    index->inverted_in_sources_ = std::move(rows).value();
  }
  if (view.HasArray(kRegEntriesArray)) {
    auto reg = view.GetArray<NodeId>(kRegEntriesArray);
    if (!reg.ok()) return reg.status();
    auto rows = LabelRowsFromSegment(view, kInvOutEntOffsets, kInvOutEntFlat);
    if (!rows.ok()) return rows.status();
    if (rows.value().size() != n) {
      return InvalidArgumentError("hopi segment: filtered entry rows "
                                  "mismatch");
    }
    index->registered_entries_.assign(reg.value().begin(), reg.value().end());
    index->inverted_out_entries_ = std::move(rows).value();
  }
  return index;
}

size_t HopiIndex::NumLabelEntries() const {
  return out_labels_.TotalEntries() + in_labels_.TotalEntries();
}

size_t HopiIndex::LabelBytes() const {
  return out_labels_.MemoryBytes() + in_labels_.MemoryBytes();
}

size_t HopiIndex::MemoryBytes() const {
  return LabelBytes() + inverted_in_.MemoryBytes() +
         inverted_out_.MemoryBytes() + inverted_in_sources_.MemoryBytes() +
         inverted_out_entries_.MemoryBytes() +
         VectorBytes(registered_sources_) + VectorBytes(registered_entries_) +
         tag_.MemoryBytes() + rank_of_node_.MemoryBytes() +
         node_of_rank_.MemoryBytes();
}

namespace {

// Rebuilds the inverted lists a label table implies and diffs them against
// the stored ones; `what` names the side ("in"/"out") for the report.
Status DiffInverted(const storage::FlatRows<HopiIndex::LabelEntry>& labels,
                    const storage::FlatRows<HopiIndex::LabelEntry>& inverted,
                    const std::string& what) {
  const size_t n = labels.size();
  if (inverted.size() != n) {
    return InternalError("hopi: inverted_" + what + " has " +
                         std::to_string(inverted.size()) +
                         " hub lists, expected " + std::to_string(n));
  }
  std::vector<std::vector<HopiIndex::LabelEntry>> expected(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const HopiIndex::LabelEntry& e : labels[v]) {
      expected[e.hub].push_back({v, e.distance});
    }
  }
  for (size_t r = 0; r < n; ++r) {
    std::sort(expected[r].begin(), expected[r].end(),
              [](const HopiIndex::LabelEntry& a, const HopiIndex::LabelEntry& b) {
                return std::tie(a.distance, a.hub) < std::tie(b.distance, b.hub);
              });
    if (expected[r].size() != inverted[r].size()) {
      return InternalError("hopi: inverted_" + what + " list of hub rank " +
                           std::to_string(r) + " has " +
                           std::to_string(inverted[r].size()) +
                           " entries, labels imply " +
                           std::to_string(expected[r].size()));
    }
    for (size_t i = 0; i < expected[r].size(); ++i) {
      if (expected[r][i].hub != inverted[r][i].hub ||
          expected[r][i].distance != inverted[r][i].distance) {
        return InternalError(
            "hopi: inverted_" + what + " list of hub rank " +
            std::to_string(r) + " diverges from labels at position " +
            std::to_string(i) + " (stored node " +
            std::to_string(inverted[r][i].hub) + " dist " +
            std::to_string(inverted[r][i].distance) + ", labels imply node " +
            std::to_string(expected[r][i].hub) + " dist " +
            std::to_string(expected[r][i].distance) + ")");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status HopiIndex::Validate(const graph::Digraph& g,
                           const ValidateOptions& options) const {
  const size_t n = g.NumNodes();
  if (out_labels_.size() != n || in_labels_.size() != n ||
      tag_.size() != n || rank_of_node_.size() != n ||
      node_of_rank_.size() != n) {
    return InternalError("hopi: label tables cover " +
                         std::to_string(out_labels_.size()) +
                         " nodes, graph has " + std::to_string(n));
  }
  for (NodeId r = 0; r < n; ++r) {
    if (node_of_rank_[r] >= n || rank_of_node_[node_of_rank_[r]] != r) {
      return InternalError("hopi: rank maps are not inverse at rank " +
                           std::to_string(r) + " (node_of_rank=" +
                           std::to_string(node_of_rank_[r]) + ")");
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (tag_[v] != g.Tag(v)) {
      return InternalError("hopi: stored tag " + std::to_string(tag_[v]) +
                           " at node " + std::to_string(v) +
                           " differs from graph tag " +
                           std::to_string(g.Tag(v)));
    }
    for (const std::span<const LabelEntry> labels :
         {out_labels_[v], in_labels_[v]}) {
      NodeId prev_hub = kInvalidNode;
      for (const LabelEntry& e : labels) {
        if (e.hub >= n || e.distance < 0) {
          return InternalError("hopi: label of node " + std::to_string(v) +
                               " has invalid entry (hub rank " +
                               std::to_string(e.hub) + ", dist " +
                               std::to_string(e.distance) + ")");
        }
        if (prev_hub != kInvalidNode && e.hub <= prev_hub) {
          return InternalError("hopi: label of node " + std::to_string(v) +
                               " is not strictly ascending by hub rank (" +
                               std::to_string(prev_hub) + " then " +
                               std::to_string(e.hub) + ")");
        }
        prev_hub = e.hub;
      }
    }
  }

  // Inverted lists must be exactly the labels regrouped by hub, sorted by
  // (distance, node) — the enumeration cursors merge them assuming this.
  if (Status s = DiffInverted(in_labels_, inverted_in_, "in"); !s.ok()) {
    return s;
  }
  if (Status s = DiffInverted(out_labels_, inverted_out_, "out"); !s.ok()) {
    return s;
  }

  // Label soundness: every stored (hub, dist) must be the exact BFS distance
  // between the node and the hub. Sampled (or all nodes in deep mode); cover
  // *completeness* is checked by the base differential probes, which compare
  // QueryLabels answers against the BFS oracle.
  Rng rng(options.seed ^ 0x484f5049u);  // "HOPI"
  std::vector<NodeId> sample;
  if ((options.deep && n <= options.exhaustive_limit) ||
      n <= options.sample_sources) {
    sample.resize(n);
    for (NodeId v = 0; v < n; ++v) sample[v] = v;
  } else {
    std::unordered_set<NodeId> seen;
    while (sample.size() < options.sample_sources) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (seen.insert(v).second) sample.push_back(v);
    }
  }
  for (const NodeId v : sample) {
    const std::vector<Distance> fwd =
        graph::BfsDistances(g, v, graph::Direction::kForward);
    for (const LabelEntry& e : out_labels_[v]) {
      const NodeId hub = node_of_rank_[e.hub];
      if (fwd[hub] != e.distance) {
        return InternalError("hopi: out-label of node " + std::to_string(v) +
                             " claims distance " + std::to_string(e.distance) +
                             " to hub node " + std::to_string(hub) +
                             ", BFS says " + std::to_string(fwd[hub]));
      }
    }
    const std::vector<Distance> bwd =
        graph::BfsDistances(g, v, graph::Direction::kBackward);
    for (const LabelEntry& e : in_labels_[v]) {
      const NodeId hub = node_of_rank_[e.hub];
      if (bwd[hub] != e.distance) {
        return InternalError("hopi: in-label of node " + std::to_string(v) +
                             " claims distance " + std::to_string(e.distance) +
                             " from hub node " + std::to_string(hub) +
                             ", BFS says " + std::to_string(bwd[hub]));
      }
    }
  }
  return PathIndex::Validate(g, options);
}

}  // namespace flix::index
