// Strong DataGuide [Goldman & Widom, VLDB'97]: a concise summary of all
// label paths from the roots, with target sets (extents) per path class.
//
// Listed by the paper among the "other" indexing strategies: great for
// label-path lookup (`/movie/actor`), but with no support for distances or
// arbitrary-length `//` steps, which is why FliX does not select it for
// connection queries. Included as a baseline and for the examples.
//
// Built by subset construction over the data graph (linear on trees, may be
// exponential on adversarial DAGs — a node-count cap guards the build).
#ifndef FLIX_INDEX_DATAGUIDE_H_
#define FLIX_INDEX_DATAGUIDE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/digraph.h"

namespace flix::index {

struct DataGuideOptions {
  // Build fails if the guide grows beyond this many states.
  size_t max_states = 1'000'000;
};

class DataGuide {
 public:
  static StatusOr<std::unique_ptr<DataGuide>> Build(
      const graph::Digraph& g, const DataGuideOptions& options = {});

  // Elements reached by the exact label path `path` from any root
  // (path[0] must match root tags). Empty if the path does not occur.
  std::vector<NodeId> Lookup(const std::vector<TagId>& path) const;

  size_t NumStates() const { return states_.size(); }
  size_t MemoryBytes() const;

 private:
  struct State {
    std::vector<NodeId> extent;                    // target set
    std::unordered_map<TagId, uint32_t> children;  // tag -> state
  };

  DataGuide() = default;

  std::vector<State> states_;
  std::unordered_map<TagId, uint32_t> roots_;  // root tag -> state
};

}  // namespace flix::index

#endif  // FLIX_INDEX_DATAGUIDE_H_
