// HOPI: a connection index based on 2-hop labels [Schenkel et al., EDBT'04;
// Cohen et al., SODA'02], augmented with distance information.
//
// Every node v carries two label sets
//   L_out(v) = {(h, dist(v, h))},   L_in(v) = {(h, dist(h, v))},
// such that for every reachable pair (u, w) some hub h lies on a shortest
// path:  dist(u, w) = min over common hubs of  dist(u, h) + dist(h, w).
//
// Construction uses pruned landmark labeling (the hub-by-hub pruned-BFS
// formulation of the 2-hop cover construction): hubs are processed in
// descending (in+1)*(out+1) degree order — a cheap approximation of the
// densest-subgraph center selection of Cohen et al. — and each hub's
// forward/backward BFS is pruned wherever already-assigned labels certify
// the tentative distance. The result is a minimal-in-practice distance-aware
// 2-hop cover that is exact on arbitrary digraphs, cycles included.
//
// For descendant *enumeration* (a//b), the per-hub inverted lists (exactly
// the label entries grouped by hub instead of by node) are kept as well;
// the reachable set of `a` is the union of the inverted lists of a's out-
// hubs, mirroring how the original HOPI evaluates such queries with a
// self-join on the label tables.
//
// BuildPartitioned() is the divide-and-conquer build of the HOPI paper:
// partition the graph, cover each partition independently, then repair the
// cover for partition-crossing paths by making every node with a crossing
// edge a global hub. The FliX "Unconnected HOPI" configuration stops after
// the per-partition step (paper Section 4.3); that variant lives in the
// flix layer, which simply builds one HopiIndex per meta document.
#ifndef FLIX_INDEX_HOPI_H_
#define FLIX_INDEX_HOPI_H_

#include <memory>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "index/path_index.h"
#include "storage/flat.h"

namespace flix::index {

struct HopiOptions {
  // 0 = plain global build. >0 = divide-and-conquer with this partition
  // size bound.
  size_t partition_bound = 0;
};

class HopiIndex : public PathIndex {
 public:
  static std::unique_ptr<HopiIndex> Build(const graph::Digraph& g,
                                          const HopiOptions& options = {});

  StrategyKind kind() const override { return StrategyKind::kHopi; }

  // A (hub, distance) label entry; in the inverted lists the `hub` field
  // holds the labeled *node* id instead.
  struct LabelEntry {
    NodeId hub;
    Distance distance;
  };
  static_assert(sizeof(LabelEntry) == 8);

  Distance DistanceBetween(NodeId from, NodeId to) const override;
  // Enumeration cursors run a k-way merge over the per-hub inverted lists
  // of `from`'s labels (each pre-sorted by distance), keyed by
  // label-distance + list-entry-distance — the first pop of a node is its
  // 2-hop distance, so results stream in exact (distance, node) order
  // without materializing the reachable set.
  std::unique_ptr<NodeDistCursor> DescendantsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> DescendantsCursor(NodeId from) const override;
  std::unique_ptr<NodeDistCursor> AncestorsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> ReachableAmongCursor(
      NodeId from, std::span<const NodeId> targets) const override;
  std::unique_ptr<NodeDistCursor> AncestorsAmongCursor(
      NodeId from, std::span<const NodeId> sources) const override;
  // Bulk overrides: a full drain is cheaper as one dense relax over the
  // inverted lists of `from`'s hubs (then a single sort) than as a k-way
  // merge pulled to exhaustion — the cursors win only when the consumer
  // stops early.
  std::vector<NodeDist> DescendantsByTag(NodeId from, TagId tag) const override;
  std::vector<NodeDist> Descendants(NodeId from) const override;
  std::vector<NodeDist> AncestorsByTag(NodeId from, TagId tag) const override;
  std::vector<NodeDist> ReachableAmong(
      NodeId from, std::span<const NodeId> targets) const override;
  std::vector<NodeDist> AncestorsAmong(
      NodeId from, std::span<const NodeId> sources) const override;
  // Precompute inverted lists filtered to the registered sets, making the
  // per-entry L(a) probes of the PEE proportional to the filtered label
  // volume instead of the whole partition. Works in both storage modes (the
  // filtered lists are heap-derived caches, even over a mapped base).
  void RegisterLinkSources(std::span<const NodeId> sources) override;
  void RegisterEntryNodes(std::span<const NodeId> targets) override;
  size_t MemoryBytes() const override;

  // Structural invariants: rank maps are a bijection, labels are sorted by
  // hub rank with a self-entry at distance 0, every label entry appears in
  // the matching inverted list (and vice versa), inverted lists are sorted
  // by (distance, node), and sampled label distances equal BFS distances to
  // the hub node — i.e. the 2-hop cover is sound and (sampled) complete.
  // Then the base differential check.
  Status Validate(const graph::Digraph& g,
                  const ValidateOptions& options = {}) const override;

  // Binary persistence: labels and tags are stored; inverted lists are
  // rebuilt on load (call Register* afterwards for the filtered lists).
  void Save(BinaryWriter& writer) const;
  static StatusOr<std::unique_ptr<HopiIndex>> Load(BinaryReader& reader);

  // Paged persistence. Unlike the stream format, the inverted lists are
  // persisted too — rebuilding them on load would re-copy the whole label
  // volume onto the heap and defeat the zero-copy open.
  void SaveSegment(storage::SegmentWriter& seg) const;
  static StatusOr<std::unique_ptr<HopiIndex>> LoadSegment(
      const storage::SegmentView& view);

  // Total number of (hub, distance) label entries — the classic 2-hop cover
  // size measure; |TC| / labels is the compression the paper reports.
  size_t NumLabelEntries() const;

  // Bytes of the per-node label tables alone (excluding the inverted lists
  // used for enumeration); matches what the paper stores in its database.
  size_t LabelBytes() const;

 private:
  friend struct CorruptionHook;

  HopiIndex() = default;

  void BuildGlobal(const graph::Digraph& g,
                   const std::vector<uint32_t>* hub_priority);
  void BuildInverted();

  static Distance QueryLabels(std::span<const LabelEntry> out,
                              std::span<const LabelEntry> in);

  // Opens a merge cursor over `labels[from]` against the matching inverted
  // lists; `exclude` drops one node (the query origin) from the stream.
  std::unique_ptr<NodeDistCursor> MergeCursor(
      NodeId from, TagId tag, bool wildcard, NodeId exclude,
      const storage::FlatRows<LabelEntry>& labels,
      const storage::FlatRows<LabelEntry>& inverted) const;

  // Bulk enumeration: relax dist(from, v) over all of from's hubs into a
  // dense scratch array, then sort once.
  std::vector<NodeDist> Collect(
      NodeId from, TagId tag, bool wildcard,
      const storage::FlatRows<LabelEntry>& labels,
      const storage::FlatRows<LabelEntry>& inverted) const;
  std::vector<NodeDist> CollectAmong(
      NodeId from, const storage::FlatRows<LabelEntry>& labels,
      const storage::FlatRows<LabelEntry>& filtered_inverted) const;

  // Per-node labels, each sorted by hub id (for merge-join queries).
  storage::FlatRows<LabelEntry> out_labels_;
  storage::FlatRows<LabelEntry> in_labels_;
  // Per-hub inverted lists: inverted_in_[h] = nodes v with (h,d) in L_in(v),
  // i.e., nodes reachable *from* h; inverted_out_[h] symmetrically holds
  // nodes that can reach h. Rebuilt from the labels after construction (or
  // mapped directly from a paged segment) and kept sorted by (distance,
  // node) so enumeration cursors can merge them.
  storage::FlatRows<LabelEntry> inverted_in_;
  storage::FlatRows<LabelEntry> inverted_out_;
  storage::FlatVec<TagId> tag_;
  // Label entries store hub *ranks* (processing order), which keeps each
  // label vector sorted as it is appended to; these map rank <-> node id.
  storage::FlatVec<NodeId> rank_of_node_;
  storage::FlatVec<NodeId> node_of_rank_;

  // Registered probe sets (see RegisterLinkSources/RegisterEntryNodes) and
  // the per-hub inverted lists filtered down to them. Always heap-owned:
  // they are small derived caches, recomputed after any load.
  std::vector<NodeId> registered_sources_;
  storage::FlatRows<LabelEntry> inverted_in_sources_;
  std::vector<NodeId> registered_entries_;
  storage::FlatRows<LabelEntry> inverted_out_entries_;
};

}  // namespace flix::index

#endif  // FLIX_INDEX_HOPI_H_
