#include "index/dataguide.h"

#include <algorithm>
#include <deque>
#include <map>

namespace flix::index {

StatusOr<std::unique_ptr<DataGuide>> DataGuide::Build(
    const graph::Digraph& g, const DataGuideOptions& options) {
  auto guide = std::unique_ptr<DataGuide>(new DataGuide());

  // Memo: set of data nodes -> state id, so shared target sets collapse to
  // one guide state (this is what makes the guide "strong").
  std::map<std::vector<NodeId>, uint32_t> memo;

  // Group roots by tag into initial target sets.
  std::map<TagId, std::vector<NodeId>> root_sets;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.InDegree(v) == 0) root_sets[g.Tag(v)].push_back(v);
  }

  std::deque<uint32_t> worklist;
  const auto intern_state = [&](std::vector<NodeId> set,
                                uint32_t* id) -> Status {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    const auto it = memo.find(set);
    if (it != memo.end()) {
      *id = it->second;
      return Status::Ok();
    }
    if (guide->states_.size() >= options.max_states) {
      return OutOfRangeError("DataGuide exceeds max_states");
    }
    const uint32_t state = static_cast<uint32_t>(guide->states_.size());
    guide->states_.push_back(State{set, {}});
    memo.emplace(std::move(set), state);
    worklist.push_back(state);
    *id = state;
    return Status::Ok();
  };

  for (auto& [tag, set] : root_sets) {
    uint32_t id;
    if (Status s = intern_state(std::move(set), &id); !s.ok()) return s;
    guide->roots_.emplace(tag, id);
  }

  while (!worklist.empty()) {
    const uint32_t state = worklist.front();
    worklist.pop_front();
    // Successor target sets grouped by tag.
    std::map<TagId, std::vector<NodeId>> successors;
    for (const NodeId v : guide->states_[state].extent) {
      for (const graph::Digraph::Arc& arc : g.OutArcs(v)) {
        successors[g.Tag(arc.target)].push_back(arc.target);
      }
    }
    for (auto& [tag, set] : successors) {
      uint32_t id;
      if (Status s = intern_state(std::move(set), &id); !s.ok()) return s;
      guide->states_[state].children.emplace(tag, id);
    }
  }
  return guide;
}

std::vector<NodeId> DataGuide::Lookup(const std::vector<TagId>& path) const {
  if (path.empty()) return {};
  const auto root_it = roots_.find(path[0]);
  if (root_it == roots_.end()) return {};
  uint32_t state = root_it->second;
  for (size_t i = 1; i < path.size(); ++i) {
    const auto it = states_[state].children.find(path[i]);
    if (it == states_[state].children.end()) return {};
    state = it->second;
  }
  return states_[state].extent;
}

size_t DataGuide::MemoryBytes() const {
  size_t bytes = states_.capacity() * sizeof(State);
  for (const State& s : states_) {
    bytes += s.extent.capacity() * sizeof(NodeId);
    bytes += s.children.size() * (sizeof(TagId) + sizeof(uint32_t) + 16);
  }
  bytes += roots_.size() * (sizeof(TagId) + sizeof(uint32_t) + 16);
  return bytes;
}

}  // namespace flix::index
