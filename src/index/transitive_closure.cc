#include "index/transitive_closure.h"

#include <algorithm>
#include <deque>
#include <string>
#include <tuple>
#include <unordered_set>

#include "common/bytes.h"
#include "common/rng.h"
#include "graph/traversal.h"
#include "obs/metrics.h"

namespace flix::index {
namespace {

// Process-wide count of results yielded by TC row cursors (resolved once;
// Counter addresses survive MetricsRegistry::Reset()).
obs::Counter& TcPullCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("flix.cursor.pulled.tc");
  return counter;
}

// Scans one pre-sorted closure row, filtering by tag or by a wanted set.
// With a wanted set that contains the row's owner, the owner is emitted
// first at distance 0 (all row entries are proper pairs at distance >= 1),
// preserving the "includes `from` if listed" contract of ReachableAmong.
class TcRowCursor : public NodeDistCursor {
 public:
  TcRowCursor(const std::vector<NodeDist>& row,
              const std::vector<TagId>& tag_of, TagId tag, bool wildcard)
      : row_(row), tag_of_(tag_of), tag_(tag), wildcard_(wildcard) {
    Advance();
  }

  TcRowCursor(const std::vector<NodeDist>& row,
              const std::vector<TagId>& tag_of, NodeId self,
              std::unordered_set<NodeId> wanted)
      : row_(row),
        tag_of_(tag_of),
        tag_(kInvalidTag),
        wildcard_(true),
        wanted_(std::move(wanted)) {
    if (wanted_->contains(self)) {
      pending_ = NodeDist{self, 0};
    } else {
      Advance();
    }
  }

  std::optional<NodeDist> Next() override {
    if (!pending_.has_value()) return std::nullopt;
    const NodeDist result = *pending_;
    Advance();
    TcPullCounter().Increment();
    return result;
  }

  Distance BoundHint() const override {
    return pending_.has_value() ? pending_->distance : kUnreachable;
  }

  size_t RemainingHint() const override {
    return (pending_.has_value() ? 1 : 0) + (row_.size() - pos_);
  }

 private:
  void Advance() {
    pending_.reset();
    while (pos_ < row_.size()) {
      const NodeDist& nd = row_[pos_++];
      if (!wildcard_ && tag_of_[nd.node] != tag_) continue;
      if (wanted_.has_value() && !wanted_->contains(nd.node)) continue;
      pending_ = nd;
      return;
    }
  }

  const std::vector<NodeDist>& row_;
  const std::vector<TagId>& tag_of_;
  const TagId tag_;
  const bool wildcard_;
  std::optional<std::unordered_set<NodeId>> wanted_;
  size_t pos_ = 0;
  std::optional<NodeDist> pending_;
};

}  // namespace

StatusOr<std::unique_ptr<TransitiveClosureIndex>> TransitiveClosureIndex::Build(
    const graph::Digraph& g, const TcOptions& options) {
  auto index =
      std::unique_ptr<TransitiveClosureIndex>(new TransitiveClosureIndex());
  const size_t n = g.NumNodes();
  index->closure_.assign(n, {});
  index->reverse_.assign(n, {});
  index->tag_.resize(n);
  for (NodeId v = 0; v < n; ++v) index->tag_[v] = g.Tag(v);

  size_t pairs = 0;
  std::vector<Distance> dist(n, kUnreachable);
  std::vector<NodeId> touched;
  for (NodeId source = 0; source < n; ++source) {
    touched.clear();
    dist[source] = 0;
    touched.push_back(source);
    std::deque<NodeId> queue = {source};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
        if (dist[arc.target] == kUnreachable) {
          dist[arc.target] = dist[u] + 1;
          touched.push_back(arc.target);
          queue.push_back(arc.target);
        }
      }
    }
    for (const NodeId v : touched) {
      if (v != source) {
        index->closure_[source].push_back({v, dist[v]});
        ++pairs;
      }
      dist[v] = kUnreachable;
    }
    if (pairs > options.max_pairs) {
      return OutOfRangeError("transitive closure exceeds max_pairs");
    }
    SortByDistance(index->closure_[source]);
  }

  for (NodeId u = 0; u < n; ++u) {
    for (const NodeDist& nd : index->closure_[u]) {
      index->reverse_[nd.node].push_back({u, nd.distance});
    }
  }
  for (auto& row : index->reverse_) SortByDistance(row);
  return index;
}

Distance TransitiveClosureIndex::DistanceBetween(NodeId from, NodeId to) const {
  if (from == to) return 0;
  for (const NodeDist& nd : closure_[from]) {
    if (nd.node == to) return nd.distance;
  }
  return kUnreachable;
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::DescendantsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<TcRowCursor>(closure_[from], tag_, tag,
                                       /*wildcard=*/false);
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::DescendantsCursor(
    NodeId from) const {
  return std::make_unique<TcRowCursor>(closure_[from], tag_, kInvalidTag,
                                       /*wildcard=*/true);
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::AncestorsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<TcRowCursor>(reverse_[from], tag_, tag,
                                       /*wildcard=*/false);
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::ReachableAmongCursor(
    NodeId from, const std::vector<NodeId>& targets) const {
  return std::make_unique<TcRowCursor>(
      closure_[from], tag_, from,
      std::unordered_set<NodeId>(targets.begin(), targets.end()));
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::AncestorsAmongCursor(
    NodeId from, const std::vector<NodeId>& sources) const {
  return std::make_unique<TcRowCursor>(
      reverse_[from], tag_, from,
      std::unordered_set<NodeId>(sources.begin(), sources.end()));
}

size_t TransitiveClosureIndex::MemoryBytes() const {
  size_t bytes = VectorBytes(tag_);
  for (const auto& row : closure_) bytes += VectorBytes(row);
  for (const auto& row : reverse_) bytes += VectorBytes(row);
  bytes += VectorBytes(closure_) + VectorBytes(reverse_);
  return bytes;
}

Status TransitiveClosureIndex::Validate(const graph::Digraph& g,
                                        const ValidateOptions& options) const {
  const size_t n = g.NumNodes();
  if (closure_.size() != n || reverse_.size() != n || tag_.size() != n) {
    return InternalError("tc: closure has " + std::to_string(closure_.size()) +
                         " rows, graph has " + std::to_string(n) + " nodes");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (tag_[v] != g.Tag(v)) {
      return InternalError("tc: stored tag " + std::to_string(tag_[v]) +
                           " at node " + std::to_string(v) +
                           " differs from graph tag " +
                           std::to_string(g.Tag(v)));
    }
  }

  // reverse_ must be the exact transpose of closure_ (same pairs, same
  // distances), and both sides sorted ascending by (distance, node).
  size_t forward_pairs = 0;
  size_t reverse_pairs = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const auto* side : {&closure_, &reverse_}) {
      const std::vector<NodeDist>& row = (*side)[v];
      const bool is_forward = side == &closure_;
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i].node >= n || row[i].distance < 1 || row[i].node == v) {
          return InternalError("tc: " +
                               std::string(is_forward ? "closure" : "reverse") +
                               " row of node " + std::to_string(v) +
                               " has invalid entry (node " +
                               std::to_string(row[i].node) + ", dist " +
                               std::to_string(row[i].distance) + ")");
        }
        if (i > 0 && std::tie(row[i - 1].distance, row[i - 1].node) >=
                         std::tie(row[i].distance, row[i].node)) {
          return InternalError("tc: " +
                               std::string(is_forward ? "closure" : "reverse") +
                               " row of node " + std::to_string(v) +
                               " is not ascending by (distance, node) at "
                               "position " +
                               std::to_string(i));
        }
      }
    }
    forward_pairs += closure_[v].size();
    reverse_pairs += reverse_[v].size();
  }
  if (forward_pairs != reverse_pairs) {
    return InternalError("tc: closure holds " + std::to_string(forward_pairs) +
                         " pairs but reverse holds " +
                         std::to_string(reverse_pairs));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeDist& nd : closure_[u]) {
      const std::vector<NodeDist>& row = reverse_[nd.node];
      const auto it = std::lower_bound(
          row.begin(), row.end(), NodeDist{u, nd.distance},
          [](const NodeDist& a, const NodeDist& b) {
            return std::tie(a.distance, a.node) < std::tie(b.distance, b.node);
          });
      if (it == row.end() || it->node != u || it->distance != nd.distance) {
        return InternalError("tc: closure pair " + std::to_string(u) + " -> " +
                             std::to_string(nd.node) + " (dist " +
                             std::to_string(nd.distance) +
                             ") is missing from the reverse row of node " +
                             std::to_string(nd.node));
      }
    }
  }

  // Row = BFS closure: each checked row must be exactly the node's BFS level
  // sets (a truncated or padded row shows up as a size or entry mismatch).
  Rng rng(options.seed ^ 0x54435643u);  // "TCVC"
  std::vector<NodeId> sample;
  if ((options.deep && n <= options.exhaustive_limit) ||
      n <= options.sample_sources) {
    sample.resize(n);
    for (NodeId v = 0; v < n; ++v) sample[v] = v;
  } else {
    std::unordered_set<NodeId> seen;
    while (sample.size() < options.sample_sources) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (seen.insert(v).second) sample.push_back(v);
    }
  }
  for (const NodeId source : sample) {
    const std::vector<Distance> dist =
        graph::BfsDistances(g, source, graph::Direction::kForward);
    std::vector<NodeDist> expected;
    for (NodeId v = 0; v < n; ++v) {
      if (v != source && dist[v] != kUnreachable) {
        expected.push_back({v, dist[v]});
      }
    }
    SortByDistance(expected);
    const std::vector<NodeDist>& row = closure_[source];
    if (row.size() != expected.size()) {
      return InternalError("tc: closure row of node " + std::to_string(source) +
                           " holds " + std::to_string(row.size()) +
                           " entries, BFS reaches " +
                           std::to_string(expected.size()) + " nodes");
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      if (row[i] != expected[i]) {
        return InternalError(
            "tc: closure row of node " + std::to_string(source) +
            " diverges from BFS at position " + std::to_string(i) +
            " (stored node " + std::to_string(row[i].node) + " dist " +
            std::to_string(row[i].distance) + ", BFS has node " +
            std::to_string(expected[i].node) + " dist " +
            std::to_string(expected[i].distance) + ")");
      }
    }
  }
  return PathIndex::Validate(g, options);
}

void TransitiveClosureIndex::Save(BinaryWriter& writer) const {
  writer.WriteNestedVec(closure_);
  writer.WriteNestedVec(reverse_);
  writer.WriteVec(tag_);
}

StatusOr<std::unique_ptr<TransitiveClosureIndex>> TransitiveClosureIndex::Load(
    BinaryReader& reader) {
  auto index =
      std::unique_ptr<TransitiveClosureIndex>(new TransitiveClosureIndex());
  index->closure_ = reader.ReadNestedVec<NodeDist>();
  index->reverse_ = reader.ReadNestedVec<NodeDist>();
  index->tag_ = reader.ReadVec<TagId>();
  const size_t n = index->tag_.size();
  if (!reader.ok() || index->closure_.size() != n ||
      index->reverse_.size() != n) {
    return InvalidArgumentError("corrupt transitive-closure index payload");
  }
  for (const auto* table : {&index->closure_, &index->reverse_}) {
    for (const auto& row : *table) {
      for (const NodeDist& nd : row) {
        if (nd.node >= n || nd.distance < 0) {
          return InvalidArgumentError("corrupt transitive-closure entry");
        }
      }
    }
  }
  return index;
}

size_t TransitiveClosureIndex::NumPairs() const {
  size_t pairs = 0;
  for (const auto& row : closure_) pairs += row.size();
  return pairs;
}

size_t CountClosurePairs(const graph::Digraph& g) {
  const size_t n = g.NumNodes();
  size_t pairs = 0;
  std::vector<uint32_t> stamp(n, UINT32_MAX);
  std::deque<NodeId> queue;
  for (NodeId source = 0; source < n; ++source) {
    stamp[source] = source;
    queue.clear();
    queue.push_back(source);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
        if (stamp[arc.target] != source) {
          stamp[arc.target] = source;
          ++pairs;
          queue.push_back(arc.target);
        }
      }
    }
  }
  return pairs;
}

}  // namespace flix::index
