#include "index/transitive_closure.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/bytes.h"
#include "graph/traversal.h"

namespace flix::index {

StatusOr<std::unique_ptr<TransitiveClosureIndex>> TransitiveClosureIndex::Build(
    const graph::Digraph& g, const TcOptions& options) {
  auto index =
      std::unique_ptr<TransitiveClosureIndex>(new TransitiveClosureIndex());
  const size_t n = g.NumNodes();
  index->closure_.assign(n, {});
  index->reverse_.assign(n, {});
  index->tag_.resize(n);
  for (NodeId v = 0; v < n; ++v) index->tag_[v] = g.Tag(v);

  size_t pairs = 0;
  std::vector<Distance> dist(n, kUnreachable);
  std::vector<NodeId> touched;
  for (NodeId source = 0; source < n; ++source) {
    touched.clear();
    dist[source] = 0;
    touched.push_back(source);
    std::deque<NodeId> queue = {source};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
        if (dist[arc.target] == kUnreachable) {
          dist[arc.target] = dist[u] + 1;
          touched.push_back(arc.target);
          queue.push_back(arc.target);
        }
      }
    }
    for (const NodeId v : touched) {
      if (v != source) {
        index->closure_[source].push_back({v, dist[v]});
        ++pairs;
      }
      dist[v] = kUnreachable;
    }
    if (pairs > options.max_pairs) {
      return OutOfRangeError("transitive closure exceeds max_pairs");
    }
    SortByDistance(index->closure_[source]);
  }

  for (NodeId u = 0; u < n; ++u) {
    for (const NodeDist& nd : index->closure_[u]) {
      index->reverse_[nd.node].push_back({u, nd.distance});
    }
  }
  for (auto& row : index->reverse_) SortByDistance(row);
  return index;
}

Distance TransitiveClosureIndex::DistanceBetween(NodeId from, NodeId to) const {
  if (from == to) return 0;
  for (const NodeDist& nd : closure_[from]) {
    if (nd.node == to) return nd.distance;
  }
  return kUnreachable;
}

std::vector<NodeDist> TransitiveClosureIndex::DescendantsByTag(
    NodeId from, TagId tag) const {
  std::vector<NodeDist> result;
  for (const NodeDist& nd : closure_[from]) {
    if (tag_[nd.node] == tag) result.push_back(nd);
  }
  return result;
}

std::vector<NodeDist> TransitiveClosureIndex::Descendants(NodeId from) const {
  return closure_[from];
}

std::vector<NodeDist> TransitiveClosureIndex::AncestorsByTag(NodeId from,
                                                             TagId tag) const {
  std::vector<NodeDist> result;
  for (const NodeDist& nd : reverse_[from]) {
    if (tag_[nd.node] == tag) result.push_back(nd);
  }
  return result;
}

std::vector<NodeDist> TransitiveClosureIndex::ReachableAmong(
    NodeId from, const std::vector<NodeId>& targets) const {
  const std::unordered_set<NodeId> wanted(targets.begin(), targets.end());
  std::vector<NodeDist> result;
  if (wanted.contains(from)) result.push_back({from, 0});
  for (const NodeDist& nd : closure_[from]) {
    if (wanted.contains(nd.node)) result.push_back(nd);
  }
  SortByDistance(result);
  return result;
}

std::vector<NodeDist> TransitiveClosureIndex::AncestorsAmong(
    NodeId from, const std::vector<NodeId>& sources) const {
  const std::unordered_set<NodeId> wanted(sources.begin(), sources.end());
  std::vector<NodeDist> result;
  if (wanted.contains(from)) result.push_back({from, 0});
  for (const NodeDist& nd : reverse_[from]) {
    if (wanted.contains(nd.node)) result.push_back(nd);
  }
  SortByDistance(result);
  return result;
}

size_t TransitiveClosureIndex::MemoryBytes() const {
  size_t bytes = VectorBytes(tag_);
  for (const auto& row : closure_) bytes += VectorBytes(row);
  for (const auto& row : reverse_) bytes += VectorBytes(row);
  bytes += VectorBytes(closure_) + VectorBytes(reverse_);
  return bytes;
}

void TransitiveClosureIndex::Save(BinaryWriter& writer) const {
  writer.WriteNestedVec(closure_);
  writer.WriteNestedVec(reverse_);
  writer.WriteVec(tag_);
}

StatusOr<std::unique_ptr<TransitiveClosureIndex>> TransitiveClosureIndex::Load(
    BinaryReader& reader) {
  auto index =
      std::unique_ptr<TransitiveClosureIndex>(new TransitiveClosureIndex());
  index->closure_ = reader.ReadNestedVec<NodeDist>();
  index->reverse_ = reader.ReadNestedVec<NodeDist>();
  index->tag_ = reader.ReadVec<TagId>();
  const size_t n = index->tag_.size();
  if (!reader.ok() || index->closure_.size() != n ||
      index->reverse_.size() != n) {
    return InvalidArgumentError("corrupt transitive-closure index payload");
  }
  for (const auto* table : {&index->closure_, &index->reverse_}) {
    for (const auto& row : *table) {
      for (const NodeDist& nd : row) {
        if (nd.node >= n || nd.distance < 0) {
          return InvalidArgumentError("corrupt transitive-closure entry");
        }
      }
    }
  }
  return index;
}

size_t TransitiveClosureIndex::NumPairs() const {
  size_t pairs = 0;
  for (const auto& row : closure_) pairs += row.size();
  return pairs;
}

size_t CountClosurePairs(const graph::Digraph& g) {
  const size_t n = g.NumNodes();
  size_t pairs = 0;
  std::vector<uint32_t> stamp(n, UINT32_MAX);
  std::deque<NodeId> queue;
  for (NodeId source = 0; source < n; ++source) {
    stamp[source] = source;
    queue.clear();
    queue.push_back(source);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
        if (stamp[arc.target] != source) {
          stamp[arc.target] = source;
          ++pairs;
          queue.push_back(arc.target);
        }
      }
    }
  }
  return pairs;
}

}  // namespace flix::index
