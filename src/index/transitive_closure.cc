#include "index/transitive_closure.h"

#include <algorithm>
#include <deque>
#include <span>
#include <string>
#include <tuple>
#include <unordered_set>

#include "common/bytes.h"
#include "common/rng.h"
#include "graph/traversal.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace flix::index {
namespace {

// Process-wide count of results yielded by TC row cursors (resolved once;
// Counter addresses survive MetricsRegistry::Reset()).
obs::Counter& TcPullCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter(obs::names::kCursorPulledTc);
  return counter;
}

// Segment array ids (kIndex segment, strategy = kTransitiveClosure).
constexpr uint32_t kClosureOffsets = 1;
constexpr uint32_t kClosureFlat = 2;
constexpr uint32_t kReverseOffsets = 3;
constexpr uint32_t kReverseFlat = 4;
constexpr uint32_t kTagArray = 5;

// Scans one pre-sorted closure row, filtering by tag or by a wanted set.
// With a wanted set that contains the row's owner, the owner is emitted
// first at distance 0 (all row entries are proper pairs at distance >= 1),
// preserving the "includes `from` if listed" contract of ReachableAmong.
class TcRowCursor : public NodeDistCursor {
 public:
  TcRowCursor(std::span<const NodeDist> row, std::span<const TagId> tag_of,
              TagId tag, bool wildcard)
      : row_(row), tag_of_(tag_of), tag_(tag), wildcard_(wildcard) {
    Advance();
  }

  TcRowCursor(std::span<const NodeDist> row, std::span<const TagId> tag_of,
              NodeId self, std::unordered_set<NodeId> wanted)
      : row_(row),
        tag_of_(tag_of),
        tag_(kInvalidTag),
        wildcard_(true),
        wanted_(std::move(wanted)) {
    if (wanted_->contains(self)) {
      pending_ = NodeDist{self, 0};
    } else {
      Advance();
    }
  }

  std::optional<NodeDist> Next() override {
    if (!pending_.has_value()) return std::nullopt;
    const NodeDist result = *pending_;
    Advance();
    TcPullCounter().Increment();
    return result;
  }

  Distance BoundHint() const override {
    return pending_.has_value() ? pending_->distance : kUnreachable;
  }

  size_t RemainingHint() const override {
    return (pending_.has_value() ? 1 : 0) + (row_.size() - pos_);
  }

 private:
  void Advance() {
    pending_.reset();
    while (pos_ < row_.size()) {
      const NodeDist& nd = row_[pos_++];
      if (!wildcard_ && tag_of_[nd.node] != tag_) continue;
      if (wanted_.has_value() && !wanted_->contains(nd.node)) continue;
      pending_ = nd;
      return;
    }
  }

  const std::span<const NodeDist> row_;
  const std::span<const TagId> tag_of_;
  const TagId tag_;
  const bool wildcard_;
  std::optional<std::unordered_set<NodeId>> wanted_;
  size_t pos_ = 0;
  std::optional<NodeDist> pending_;
};

}  // namespace

StatusOr<std::unique_ptr<TransitiveClosureIndex>> TransitiveClosureIndex::Build(
    const graph::Digraph& g, const TcOptions& options) {
  auto index =
      std::unique_ptr<TransitiveClosureIndex>(new TransitiveClosureIndex());
  const size_t n = g.NumNodes();
  index->closure_.Assign(n);
  index->reverse_.Assign(n);
  index->tag_.resize(n);
  for (NodeId v = 0; v < n; ++v) index->tag_[v] = g.Tag(v);

  size_t pairs = 0;
  std::vector<Distance> dist(n, kUnreachable);
  std::vector<NodeId> touched;
  for (NodeId source = 0; source < n; ++source) {
    touched.clear();
    dist[source] = 0;
    touched.push_back(source);
    std::deque<NodeId> queue = {source};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
        if (dist[arc.target] == kUnreachable) {
          dist[arc.target] = dist[u] + 1;
          touched.push_back(arc.target);
          queue.push_back(arc.target);
        }
      }
    }
    for (const NodeId v : touched) {
      if (v != source) {
        index->closure_.Row(source).push_back({v, dist[v]});
        ++pairs;
      }
      dist[v] = kUnreachable;
    }
    if (pairs > options.max_pairs) {
      return OutOfRangeError("transitive closure exceeds max_pairs");
    }
    SortByDistance(index->closure_.Row(source));
  }

  for (NodeId u = 0; u < n; ++u) {
    for (const NodeDist& nd : index->closure_[u]) {
      index->reverse_.Row(nd.node).push_back({u, nd.distance});
    }
  }
  for (auto& row : index->reverse_.OwnedRows()) SortByDistance(row);
  return index;
}

Distance TransitiveClosureIndex::DistanceBetween(NodeId from, NodeId to) const {
  if (from == to) return 0;
  for (const NodeDist& nd : closure_[from]) {
    if (nd.node == to) return nd.distance;
  }
  return kUnreachable;
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::DescendantsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<TcRowCursor>(closure_[from], tag_.span(), tag,
                                       /*wildcard=*/false);
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::DescendantsCursor(
    NodeId from) const {
  return std::make_unique<TcRowCursor>(closure_[from], tag_.span(),
                                       kInvalidTag,
                                       /*wildcard=*/true);
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::AncestorsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<TcRowCursor>(reverse_[from], tag_.span(), tag,
                                       /*wildcard=*/false);
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::ReachableAmongCursor(
    NodeId from, std::span<const NodeId> targets) const {
  return std::make_unique<TcRowCursor>(
      closure_[from], tag_.span(), from,
      std::unordered_set<NodeId>(targets.begin(), targets.end()));
}

std::unique_ptr<NodeDistCursor> TransitiveClosureIndex::AncestorsAmongCursor(
    NodeId from, std::span<const NodeId> sources) const {
  return std::make_unique<TcRowCursor>(
      reverse_[from], tag_.span(), from,
      std::unordered_set<NodeId>(sources.begin(), sources.end()));
}

size_t TransitiveClosureIndex::MemoryBytes() const {
  return tag_.MemoryBytes() + closure_.MemoryBytes() + reverse_.MemoryBytes();
}

Status TransitiveClosureIndex::Validate(const graph::Digraph& g,
                                        const ValidateOptions& options) const {
  const size_t n = g.NumNodes();
  if (closure_.size() != n || reverse_.size() != n || tag_.size() != n) {
    return InternalError("tc: closure has " + std::to_string(closure_.size()) +
                         " rows, graph has " + std::to_string(n) + " nodes");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (tag_[v] != g.Tag(v)) {
      return InternalError("tc: stored tag " + std::to_string(tag_[v]) +
                           " at node " + std::to_string(v) +
                           " differs from graph tag " +
                           std::to_string(g.Tag(v)));
    }
  }

  // reverse_ must be the exact transpose of closure_ (same pairs, same
  // distances), and both sides sorted ascending by (distance, node).
  size_t forward_pairs = 0;
  size_t reverse_pairs = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const auto* side : {&closure_, &reverse_}) {
      const std::span<const NodeDist> row = (*side)[v];
      const bool is_forward = side == &closure_;
      for (size_t i = 0; i < row.size(); ++i) {
        if (row[i].node >= n || row[i].distance < 1 || row[i].node == v) {
          return InternalError("tc: " +
                               std::string(is_forward ? "closure" : "reverse") +
                               " row of node " + std::to_string(v) +
                               " has invalid entry (node " +
                               std::to_string(row[i].node) + ", dist " +
                               std::to_string(row[i].distance) + ")");
        }
        if (i > 0 && std::tie(row[i - 1].distance, row[i - 1].node) >=
                         std::tie(row[i].distance, row[i].node)) {
          return InternalError("tc: " +
                               std::string(is_forward ? "closure" : "reverse") +
                               " row of node " + std::to_string(v) +
                               " is not ascending by (distance, node) at "
                               "position " +
                               std::to_string(i));
        }
      }
    }
    forward_pairs += closure_[v].size();
    reverse_pairs += reverse_[v].size();
  }
  if (forward_pairs != reverse_pairs) {
    return InternalError("tc: closure holds " + std::to_string(forward_pairs) +
                         " pairs but reverse holds " +
                         std::to_string(reverse_pairs));
  }
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeDist& nd : closure_[u]) {
      const std::span<const NodeDist> row = reverse_[nd.node];
      const auto it = std::lower_bound(
          row.begin(), row.end(), NodeDist{u, nd.distance},
          [](const NodeDist& a, const NodeDist& b) {
            return std::tie(a.distance, a.node) < std::tie(b.distance, b.node);
          });
      if (it == row.end() || it->node != u || it->distance != nd.distance) {
        return InternalError("tc: closure pair " + std::to_string(u) + " -> " +
                             std::to_string(nd.node) + " (dist " +
                             std::to_string(nd.distance) +
                             ") is missing from the reverse row of node " +
                             std::to_string(nd.node));
      }
    }
  }

  // Row = BFS closure: each checked row must be exactly the node's BFS level
  // sets (a truncated or padded row shows up as a size or entry mismatch).
  Rng rng(options.seed ^ 0x54435643u);  // "TCVC"
  std::vector<NodeId> sample;
  if ((options.deep && n <= options.exhaustive_limit) ||
      n <= options.sample_sources) {
    sample.resize(n);
    for (NodeId v = 0; v < n; ++v) sample[v] = v;
  } else {
    std::unordered_set<NodeId> seen;
    while (sample.size() < options.sample_sources) {
      const NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (seen.insert(v).second) sample.push_back(v);
    }
  }
  for (const NodeId source : sample) {
    const std::vector<Distance> dist =
        graph::BfsDistances(g, source, graph::Direction::kForward);
    std::vector<NodeDist> expected;
    for (NodeId v = 0; v < n; ++v) {
      if (v != source && dist[v] != kUnreachable) {
        expected.push_back({v, dist[v]});
      }
    }
    SortByDistance(expected);
    const std::span<const NodeDist> row = closure_[source];
    if (row.size() != expected.size()) {
      return InternalError("tc: closure row of node " + std::to_string(source) +
                           " holds " + std::to_string(row.size()) +
                           " entries, BFS reaches " +
                           std::to_string(expected.size()) + " nodes");
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      if (row[i] != expected[i]) {
        return InternalError(
            "tc: closure row of node " + std::to_string(source) +
            " diverges from BFS at position " + std::to_string(i) +
            " (stored node " + std::to_string(row[i].node) + " dist " +
            std::to_string(row[i].distance) + ", BFS has node " +
            std::to_string(expected[i].node) + " dist " +
            std::to_string(expected[i].distance) + ")");
      }
    }
  }
  return PathIndex::Validate(g, options);
}

void TransitiveClosureIndex::Save(BinaryWriter& writer) const {
  // Row-wise writes keep the exact WriteNestedVec byte layout in both
  // storage modes.
  writer.WriteU64(closure_.size());
  for (size_t v = 0; v < closure_.size(); ++v) writer.WriteSpan(closure_[v]);
  writer.WriteU64(reverse_.size());
  for (size_t v = 0; v < reverse_.size(); ++v) writer.WriteSpan(reverse_[v]);
  writer.WriteSpan(tag_.span());
}

StatusOr<std::unique_ptr<TransitiveClosureIndex>> TransitiveClosureIndex::Load(
    BinaryReader& reader) {
  auto index =
      std::unique_ptr<TransitiveClosureIndex>(new TransitiveClosureIndex());
  index->closure_ = reader.ReadNestedVec<NodeDist>();
  index->reverse_ = reader.ReadNestedVec<NodeDist>();
  index->tag_ = reader.ReadVec<TagId>();
  const size_t n = index->tag_.size();
  if (!reader.ok() || index->closure_.size() != n ||
      index->reverse_.size() != n) {
    return InvalidArgumentError("corrupt transitive-closure index payload");
  }
  for (const auto* table : {&index->closure_, &index->reverse_}) {
    for (size_t v = 0; v < table->size(); ++v) {
      for (const NodeDist& nd : (*table)[v]) {
        if (nd.node >= n || nd.distance < 0) {
          return InvalidArgumentError("corrupt transitive-closure entry");
        }
      }
    }
  }
  return index;
}

void TransitiveClosureIndex::SaveSegment(storage::SegmentWriter& seg) const {
  std::vector<uint64_t> offsets;
  std::vector<NodeDist> flat;
  closure_.Flatten(offsets, flat);
  seg.Add(kClosureOffsets, offsets);
  seg.Add(kClosureFlat, flat);
  reverse_.Flatten(offsets, flat);
  seg.Add(kReverseOffsets, offsets);
  seg.Add(kReverseFlat, flat);
  seg.Add(kTagArray, tag_.span());
}

StatusOr<std::unique_ptr<TransitiveClosureIndex>>
TransitiveClosureIndex::LoadSegment(const storage::SegmentView& view) {
  auto closure_offsets = view.GetArray<uint64_t>(kClosureOffsets);
  if (!closure_offsets.ok()) return closure_offsets.status();
  auto closure_flat = view.GetArray<NodeDist>(kClosureFlat);
  if (!closure_flat.ok()) return closure_flat.status();
  auto reverse_offsets = view.GetArray<uint64_t>(kReverseOffsets);
  if (!reverse_offsets.ok()) return reverse_offsets.status();
  auto reverse_flat = view.GetArray<NodeDist>(kReverseFlat);
  if (!reverse_flat.ok()) return reverse_flat.status();
  auto tag = view.GetArray<TagId>(kTagArray);
  if (!tag.ok()) return tag.status();
  auto closure = storage::FlatRows<NodeDist>::FromView(closure_offsets.value(),
                                                       closure_flat.value());
  if (!closure.ok()) return closure.status();
  auto reverse = storage::FlatRows<NodeDist>::FromView(reverse_offsets.value(),
                                                       reverse_flat.value());
  if (!reverse.ok()) return reverse.status();
  const size_t n = tag.value().size();
  if (closure.value().size() != n || reverse.value().size() != n) {
    return InvalidArgumentError("tc segment: array size mismatch");
  }
  // Semantic row validation is intentionally skipped here: the segment
  // checksum already proves the bytes are exactly what the writer produced,
  // and `check --deep` / Validate() covers semantics.
  auto index =
      std::unique_ptr<TransitiveClosureIndex>(new TransitiveClosureIndex());
  index->closure_ = std::move(closure).value();
  index->reverse_ = std::move(reverse).value();
  index->tag_ = storage::FlatVec<TagId>::FromView(tag.value());
  return index;
}

size_t TransitiveClosureIndex::NumPairs() const {
  return closure_.TotalEntries();
}

size_t CountClosurePairs(const graph::Digraph& g) {
  const size_t n = g.NumNodes();
  size_t pairs = 0;
  std::vector<uint32_t> stamp(n, UINT32_MAX);
  std::deque<NodeId> queue;
  for (NodeId source = 0; source < n; ++source) {
    stamp[source] = source;
    queue.clear();
    queue.push_back(source);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
        if (stamp[arc.target] != source) {
          stamp[arc.target] = source;
          ++pairs;
          queue.push_back(arc.target);
        }
      }
    }
  }
  return pairs;
}

}  // namespace flix::index
