#include "index/path_index.h"

#include <algorithm>
#include <tuple>

#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "index/transitive_closure.h"

namespace flix::index {

std::string_view StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kPpo: return "PPO";
    case StrategyKind::kHopi: return "HOPI";
    case StrategyKind::kApex: return "APEX";
    case StrategyKind::kTransitiveClosure: return "TC";
    case StrategyKind::kSummary: return "SUMMARY";
  }
  return "UNKNOWN";
}

FrontierCursor::FrontierCursor(const graph::Digraph& g, NodeId source,
                               graph::Direction dir,
                               graph::BfsFrontier::ExpandFilter filter,
                               TagId tag, bool wildcard, bool include_source,
                               std::optional<std::unordered_set<NodeId>> wanted)
    : g_(g),
      frontier_(g, source, dir, std::move(filter)),
      source_(source),
      tag_(tag),
      wildcard_(wildcard),
      include_source_(include_source),
      wanted_(std::move(wanted)) {}

std::optional<NodeDist> FrontierCursor::Next() {
  while (pos_ >= buffer_.size()) {
    if (frontier_.Done()) return std::nullopt;
    const std::vector<NodeId>& level = frontier_.NextLevel();
    if (level.empty()) return std::nullopt;
    depth_ = frontier_.depth();
    buffer_.clear();
    pos_ = 0;
    for (const NodeId v : level) {
      if (v == source_ && !include_source_) continue;
      if (!wildcard_ && g_.Tag(v) != tag_) continue;
      if (wanted_.has_value() && !wanted_->contains(v)) continue;
      buffer_.push_back(v);
    }
  }
  return NodeDist{buffer_[pos_++], depth_};
}

Distance FrontierCursor::BoundHint() const {
  if (pos_ < buffer_.size()) return depth_;
  if (frontier_.Done()) return kUnreachable;
  return depth_ + 1;  // anything still to come is at least one level deeper
}

size_t FrontierCursor::RemainingHint() const {
  // Matches still buffered plus the queued next level — a lower bound on
  // the traversal work an early close skips.
  return (buffer_.size() - pos_) + frontier_.PendingSize();
}

std::vector<NodeDist> DrainCursor(NodeDistCursor& cursor) {
  std::vector<NodeDist> result;
  while (std::optional<NodeDist> nd = cursor.Next()) result.push_back(*nd);
  return result;
}

std::unique_ptr<NodeDistCursor> PathIndex::ReachableAmongCursor(
    NodeId from, const std::vector<NodeId>& targets) const {
  std::vector<NodeDist> result;
  for (const NodeId t : targets) {
    const Distance d = DistanceBetween(from, t);
    if (d != kUnreachable) result.push_back({t, d});
  }
  SortByDistance(result);
  return std::make_unique<MaterializedCursor>(std::move(result));
}

std::unique_ptr<NodeDistCursor> PathIndex::AncestorsAmongCursor(
    NodeId from, const std::vector<NodeId>& sources) const {
  std::vector<NodeDist> result;
  for (const NodeId s : sources) {
    const Distance d = DistanceBetween(s, from);
    if (d != kUnreachable) result.push_back({s, d});
  }
  SortByDistance(result);
  return std::make_unique<MaterializedCursor>(std::move(result));
}

std::vector<NodeDist> PathIndex::DescendantsByTag(NodeId from, TagId tag) const {
  return DrainCursor(*DescendantsByTagCursor(from, tag));
}

std::vector<NodeDist> PathIndex::Descendants(NodeId from) const {
  return DrainCursor(*DescendantsCursor(from));
}

std::vector<NodeDist> PathIndex::AncestorsByTag(NodeId from, TagId tag) const {
  return DrainCursor(*AncestorsByTagCursor(from, tag));
}

std::vector<NodeDist> PathIndex::ReachableAmong(
    NodeId from, const std::vector<NodeId>& targets) const {
  return DrainCursor(*ReachableAmongCursor(from, targets));
}

std::vector<NodeDist> PathIndex::AncestorsAmong(
    NodeId from, const std::vector<NodeId>& sources) const {
  return DrainCursor(*AncestorsAmongCursor(from, sources));
}

void PathIndex::RegisterLinkSources(const std::vector<NodeId>& sources) {
  (void)sources;
}

void PathIndex::RegisterEntryNodes(const std::vector<NodeId>& targets) {
  (void)targets;
}

void SaveIndex(const PathIndex& index, BinaryWriter& writer) {
  writer.WriteU32(static_cast<uint32_t>(index.kind()));
  switch (index.kind()) {
    case StrategyKind::kPpo:
      static_cast<const PpoIndex&>(index).Save(writer);
      break;
    case StrategyKind::kHopi:
      static_cast<const HopiIndex&>(index).Save(writer);
      break;
    case StrategyKind::kApex:
      static_cast<const ApexIndex&>(index).Save(writer);
      break;
    case StrategyKind::kTransitiveClosure:
      static_cast<const TransitiveClosureIndex&>(index).Save(writer);
      break;
    case StrategyKind::kSummary:
      static_cast<const SummaryIndex&>(index).Save(writer);
      break;
  }
}

StatusOr<std::unique_ptr<PathIndex>> LoadIndex(BinaryReader& reader,
                                               const graph::Digraph& graph) {
  const uint32_t kind = reader.ReadU32();
  if (!reader.ok()) return InvalidArgumentError("truncated index payload");
  switch (static_cast<StrategyKind>(kind)) {
    case StrategyKind::kPpo: {
      auto loaded = PpoIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kHopi: {
      auto loaded = HopiIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kApex: {
      auto loaded = ApexIndex::Load(reader, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kTransitiveClosure: {
      auto loaded = TransitiveClosureIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kSummary: {
      auto loaded = SummaryIndex::Load(reader, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
  }
  return InvalidArgumentError("unknown index strategy kind " +
                              std::to_string(kind));
}

void SortByDistance(std::vector<NodeDist>& v) {
  std::sort(v.begin(), v.end(), [](const NodeDist& a, const NodeDist& b) {
    return std::tie(a.distance, a.node) < std::tie(b.distance, b.node);
  });
}

}  // namespace flix::index
