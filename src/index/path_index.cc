#include "index/path_index.h"

#include <algorithm>
#include <tuple>

#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "index/transitive_closure.h"

namespace flix::index {

std::string_view StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kPpo: return "PPO";
    case StrategyKind::kHopi: return "HOPI";
    case StrategyKind::kApex: return "APEX";
    case StrategyKind::kTransitiveClosure: return "TC";
    case StrategyKind::kSummary: return "SUMMARY";
  }
  return "UNKNOWN";
}

std::vector<NodeDist> PathIndex::ReachableAmong(
    NodeId from, const std::vector<NodeId>& targets) const {
  std::vector<NodeDist> result;
  for (const NodeId t : targets) {
    const Distance d = DistanceBetween(from, t);
    if (d != kUnreachable) result.push_back({t, d});
  }
  SortByDistance(result);
  return result;
}

std::vector<NodeDist> PathIndex::AncestorsAmong(
    NodeId from, const std::vector<NodeId>& sources) const {
  std::vector<NodeDist> result;
  for (const NodeId s : sources) {
    const Distance d = DistanceBetween(s, from);
    if (d != kUnreachable) result.push_back({s, d});
  }
  SortByDistance(result);
  return result;
}

void PathIndex::RegisterLinkSources(const std::vector<NodeId>& sources) {
  (void)sources;
}

void PathIndex::RegisterEntryNodes(const std::vector<NodeId>& targets) {
  (void)targets;
}

void SaveIndex(const PathIndex& index, BinaryWriter& writer) {
  writer.WriteU32(static_cast<uint32_t>(index.kind()));
  switch (index.kind()) {
    case StrategyKind::kPpo:
      static_cast<const PpoIndex&>(index).Save(writer);
      break;
    case StrategyKind::kHopi:
      static_cast<const HopiIndex&>(index).Save(writer);
      break;
    case StrategyKind::kApex:
      static_cast<const ApexIndex&>(index).Save(writer);
      break;
    case StrategyKind::kTransitiveClosure:
      static_cast<const TransitiveClosureIndex&>(index).Save(writer);
      break;
    case StrategyKind::kSummary:
      static_cast<const SummaryIndex&>(index).Save(writer);
      break;
  }
}

StatusOr<std::unique_ptr<PathIndex>> LoadIndex(BinaryReader& reader,
                                               const graph::Digraph& graph) {
  const uint32_t kind = reader.ReadU32();
  if (!reader.ok()) return InvalidArgumentError("truncated index payload");
  switch (static_cast<StrategyKind>(kind)) {
    case StrategyKind::kPpo: {
      auto loaded = PpoIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kHopi: {
      auto loaded = HopiIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kApex: {
      auto loaded = ApexIndex::Load(reader, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kTransitiveClosure: {
      auto loaded = TransitiveClosureIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kSummary: {
      auto loaded = SummaryIndex::Load(reader, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
  }
  return InvalidArgumentError("unknown index strategy kind " +
                              std::to_string(kind));
}

void SortByDistance(std::vector<NodeDist>& v) {
  std::sort(v.begin(), v.end(), [](const NodeDist& a, const NodeDist& b) {
    return std::tie(a.distance, a.node) < std::tie(b.distance, b.node);
  });
}

}  // namespace flix::index
