#include "index/path_index.h"

#include <algorithm>
#include <string>
#include <tuple>

#include "common/rng.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "index/transitive_closure.h"

namespace flix::index {

std::string_view StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kPpo: return "PPO";
    case StrategyKind::kHopi: return "HOPI";
    case StrategyKind::kApex: return "APEX";
    case StrategyKind::kTransitiveClosure: return "TC";
    case StrategyKind::kSummary: return "SUMMARY";
  }
  return "UNKNOWN";
}

FrontierCursor::FrontierCursor(const graph::Digraph& g, NodeId source,
                               graph::Direction dir,
                               graph::BfsFrontier::ExpandFilter filter,
                               TagId tag, bool wildcard, bool include_source,
                               std::optional<std::unordered_set<NodeId>> wanted,
                               obs::Counter* pull_counter)
    : g_(g),
      frontier_(g, source, dir, std::move(filter)),
      source_(source),
      tag_(tag),
      wildcard_(wildcard),
      include_source_(include_source),
      wanted_(std::move(wanted)),
      pull_counter_(pull_counter) {}

std::optional<NodeDist> FrontierCursor::Next() {
  while (pos_ >= buffer_.size()) {
    if (frontier_.Done()) return std::nullopt;
    const std::vector<NodeId>& level = frontier_.NextLevel();
    if (level.empty()) return std::nullopt;
    depth_ = frontier_.depth();
    buffer_.clear();
    pos_ = 0;
    for (const NodeId v : level) {
      if (v == source_ && !include_source_) continue;
      if (!wildcard_ && g_.Tag(v) != tag_) continue;
      if (wanted_.has_value() && !wanted_->contains(v)) continue;
      buffer_.push_back(v);
    }
  }
  if (pull_counter_ != nullptr) pull_counter_->Increment();
  return NodeDist{buffer_[pos_++], depth_};
}

Distance FrontierCursor::BoundHint() const {
  if (pos_ < buffer_.size()) return depth_;
  if (frontier_.Done()) return kUnreachable;
  return depth_ + 1;  // anything still to come is at least one level deeper
}

size_t FrontierCursor::RemainingHint() const {
  // Matches still buffered plus the queued next level — a lower bound on
  // the traversal work an early close skips.
  return (buffer_.size() - pos_) + frontier_.PendingSize();
}

std::vector<NodeDist> DrainCursor(NodeDistCursor& cursor) {
  std::vector<NodeDist> result;
  while (std::optional<NodeDist> nd = cursor.Next()) result.push_back(*nd);
  return result;
}

std::unique_ptr<NodeDistCursor> PathIndex::ReachableAmongCursor(
    NodeId from, std::span<const NodeId> targets) const {
  std::vector<NodeDist> result;
  for (const NodeId t : targets) {
    const Distance d = DistanceBetween(from, t);
    if (d != kUnreachable) result.push_back({t, d});
  }
  SortByDistance(result);
  return std::make_unique<MaterializedCursor>(std::move(result));
}

std::unique_ptr<NodeDistCursor> PathIndex::AncestorsAmongCursor(
    NodeId from, std::span<const NodeId> sources) const {
  std::vector<NodeDist> result;
  for (const NodeId s : sources) {
    const Distance d = DistanceBetween(s, from);
    if (d != kUnreachable) result.push_back({s, d});
  }
  SortByDistance(result);
  return std::make_unique<MaterializedCursor>(std::move(result));
}

std::vector<NodeDist> PathIndex::DescendantsByTag(NodeId from, TagId tag) const {
  return DrainCursor(*DescendantsByTagCursor(from, tag));
}

std::vector<NodeDist> PathIndex::Descendants(NodeId from) const {
  return DrainCursor(*DescendantsCursor(from));
}

std::vector<NodeDist> PathIndex::AncestorsByTag(NodeId from, TagId tag) const {
  return DrainCursor(*AncestorsByTagCursor(from, tag));
}

std::vector<NodeDist> PathIndex::ReachableAmong(
    NodeId from, std::span<const NodeId> targets) const {
  return DrainCursor(*ReachableAmongCursor(from, targets));
}

std::vector<NodeDist> PathIndex::AncestorsAmong(
    NodeId from, std::span<const NodeId> sources) const {
  return DrainCursor(*AncestorsAmongCursor(from, sources));
}

void PathIndex::RegisterLinkSources(std::span<const NodeId> sources) {
  (void)sources;
}

void PathIndex::RegisterEntryNodes(std::span<const NodeId> targets) {
  (void)targets;
}

void SaveIndex(const PathIndex& index, BinaryWriter& writer) {
  writer.WriteU32(static_cast<uint32_t>(index.kind()));
  switch (index.kind()) {
    case StrategyKind::kPpo:
      static_cast<const PpoIndex&>(index).Save(writer);
      break;
    case StrategyKind::kHopi:
      static_cast<const HopiIndex&>(index).Save(writer);
      break;
    case StrategyKind::kApex:
      static_cast<const ApexIndex&>(index).Save(writer);
      break;
    case StrategyKind::kTransitiveClosure:
      static_cast<const TransitiveClosureIndex&>(index).Save(writer);
      break;
    case StrategyKind::kSummary:
      static_cast<const SummaryIndex&>(index).Save(writer);
      break;
  }
}

StatusOr<std::unique_ptr<PathIndex>> LoadIndex(BinaryReader& reader,
                                               const graph::Digraph& graph) {
  const uint32_t kind = reader.ReadU32();
  if (!reader.ok()) return InvalidArgumentError("truncated index payload");
  switch (static_cast<StrategyKind>(kind)) {
    case StrategyKind::kPpo: {
      auto loaded = PpoIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kHopi: {
      auto loaded = HopiIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kApex: {
      auto loaded = ApexIndex::Load(reader, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kTransitiveClosure: {
      auto loaded = TransitiveClosureIndex::Load(reader);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kSummary: {
      auto loaded = SummaryIndex::Load(reader, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
  }
  return InvalidArgumentError("unknown index strategy kind " +
                              std::to_string(kind));
}

void SaveIndexSegment(const PathIndex& index, storage::SegmentWriter& seg) {
  switch (index.kind()) {
    case StrategyKind::kPpo:
      static_cast<const PpoIndex&>(index).SaveSegment(seg);
      break;
    case StrategyKind::kHopi:
      static_cast<const HopiIndex&>(index).SaveSegment(seg);
      break;
    case StrategyKind::kApex:
      static_cast<const ApexIndex&>(index).SaveSegment(seg);
      break;
    case StrategyKind::kTransitiveClosure:
      static_cast<const TransitiveClosureIndex&>(index).SaveSegment(seg);
      break;
    case StrategyKind::kSummary:
      static_cast<const SummaryIndex&>(index).SaveSegment(seg);
      break;
  }
}

StatusOr<std::unique_ptr<PathIndex>> LoadIndexSegment(
    const storage::SegmentView& view, StrategyKind kind,
    const graph::Digraph& graph) {
  switch (kind) {
    case StrategyKind::kPpo: {
      auto loaded = PpoIndex::LoadSegment(view);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kHopi: {
      auto loaded = HopiIndex::LoadSegment(view);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kApex: {
      auto loaded = ApexIndex::LoadSegment(view, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kTransitiveClosure: {
      auto loaded = TransitiveClosureIndex::LoadSegment(view);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
    case StrategyKind::kSummary: {
      auto loaded = SummaryIndex::LoadSegment(view, graph);
      if (!loaded.ok()) return loaded.status();
      return StatusOr<std::unique_ptr<PathIndex>>(std::move(loaded).value());
    }
  }
  return InvalidArgumentError("unknown index strategy kind " +
                              std::to_string(static_cast<uint32_t>(kind)));
}

namespace {

// Sampled node set for the differential checks: deterministic, deduplicated,
// covering the whole graph in deep mode when it is small enough.
std::vector<NodeId> SampleNodes(size_t num_nodes, size_t want, Rng& rng,
                                bool exhaustive) {
  std::vector<NodeId> nodes;
  if (num_nodes == 0) return nodes;
  if (exhaustive || want >= num_nodes) {
    nodes.resize(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v) nodes[v] = v;
    return nodes;
  }
  std::unordered_set<NodeId> seen;
  while (seen.size() < want) {
    seen.insert(static_cast<NodeId>(rng.Uniform(num_nodes)));
  }
  nodes.assign(seen.begin(), seen.end());
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::string DescribeDiff(std::string_view what, NodeId from,
                         const std::vector<NodeDist>& got,
                         const std::vector<NodeDist>& want) {
  std::string msg = std::string(what) + " mismatch at source node " +
                    std::to_string(from) + ": index returned " +
                    std::to_string(got.size()) + " results, oracle " +
                    std::to_string(want.size());
  const size_t n = std::min(got.size(), want.size());
  for (size_t i = 0; i < n; ++i) {
    if (got[i] != want[i]) {
      msg += "; first divergence at rank " + std::to_string(i) + ": index (" +
             std::to_string(got[i].node) + ", d=" +
             std::to_string(got[i].distance) + ") vs oracle (" +
             std::to_string(want[i].node) + ", d=" +
             std::to_string(want[i].distance) + ")";
      return msg;
    }
  }
  if (got.size() != want.size()) {
    const std::vector<NodeDist>& longer = got.size() > want.size() ? got : want;
    msg += "; first extra entry (" + std::to_string(longer[n].node) + ", d=" +
           std::to_string(longer[n].distance) + ") on the " +
           (got.size() > want.size() ? "index" : "oracle") + " side";
  }
  return msg;
}

}  // namespace

Status PathIndex::Validate(const graph::Digraph& g,
                           const ValidateOptions& options) const {
  const size_t n = g.NumNodes();
  if (n == 0) return Status::Ok();
  const std::string who = std::string(name());
  Rng rng(options.seed);
  const bool exhaustive = options.deep && n <= options.exhaustive_limit;

  // Distance probes: DistanceBetween must equal the BFS distance for every
  // sampled pair (exhaustive on small graphs in deep mode). This is the
  // 2-hop cover completeness check for HOPI (a missing hub shows up as
  // kUnreachable or an inflated distance) and a window-test check for PPO.
  if (exhaustive) {
    for (NodeId from = 0; from < n; ++from) {
      const std::vector<Distance> truth = graph::BfsDistances(g, from);
      for (NodeId to = 0; to < n; ++to) {
        const Distance got = DistanceBetween(from, to);
        if (got != truth[to]) {
          return InternalError(
              who + ": distance(" + std::to_string(from) + ", " +
              std::to_string(to) + ") = " + std::to_string(got) +
              ", BFS oracle says " + std::to_string(truth[to]));
        }
      }
    }
  } else {
    for (size_t i = 0; i < options.sample_pairs; ++i) {
      const NodeId from = static_cast<NodeId>(rng.Uniform(n));
      const NodeId to = static_cast<NodeId>(rng.Uniform(n));
      const Distance got = DistanceBetween(from, to);
      const Distance want = graph::BfsDistance(g, from, to);
      if (got != want) {
        return InternalError(who + ": distance(" + std::to_string(from) +
                             ", " + std::to_string(to) + ") = " +
                             std::to_string(got) + ", BFS oracle says " +
                             std::to_string(want));
      }
    }
  }

  // Enumeration diffs: for sampled sources, the bulk vector, a full cursor
  // drain, and the BFS oracle must agree element-for-element (set, distance
  // and (distance, node) order). Covers the wildcard, tag-filtered and
  // ancestor axes — the three probes the PEE issues.
  const graph::ReachabilityOracle oracle(g);
  const std::vector<NodeId> sources =
      SampleNodes(n, options.sample_sources, rng, exhaustive);
  for (const NodeId from : sources) {
    {
      const std::vector<NodeDist> want = oracle.Descendants(from);
      const std::vector<NodeDist> bulk = Descendants(from);
      if (bulk != want) {
        return InternalError(who + ": " +
                             DescribeDiff("descendants", from, bulk, want));
      }
      const std::vector<NodeDist> drained =
          DrainCursor(*DescendantsCursor(from));
      if (drained != want) {
        return InternalError(
            who + ": " + DescribeDiff("descendants cursor", from, drained,
                                      want));
      }
    }
    const TagId tag = g.Tag(from);
    if (tag != kInvalidTag) {
      const std::vector<NodeDist> want = oracle.DescendantsByTag(from, tag);
      const std::vector<NodeDist> bulk = DescendantsByTag(from, tag);
      if (bulk != want) {
        return InternalError(
            who + ": " + DescribeDiff("descendants-by-tag", from, bulk, want));
      }
      const std::vector<NodeDist> drained =
          DrainCursor(*DescendantsByTagCursor(from, tag));
      if (drained != want) {
        return InternalError(
            who + ": " + DescribeDiff("descendants-by-tag cursor", from,
                                      drained, want));
      }
      const std::vector<NodeDist> want_up = oracle.AncestorsByTag(from, tag);
      const std::vector<NodeDist> up = AncestorsByTag(from, tag);
      if (up != want_up) {
        return InternalError(
            who + ": " + DescribeDiff("ancestors-by-tag", from, up, want_up));
      }
    }
  }
  return Status::Ok();
}

void SortByDistance(std::vector<NodeDist>& v) {
  std::sort(v.begin(), v.end(), [](const NodeDist& a, const NodeDist& b) {
    return std::tie(a.distance, a.node) < std::tie(b.distance, b.node);
  });
}

}  // namespace flix::index
