// Materialized transitive closure with distances — the brute-force baseline
// the HOPI paper compares sizes against ("HOPI is usually an order of
// magnitude more compact than the transitive closure").
//
// Stores, per node, the full list of (descendant, distance) pairs sorted by
// (distance, node). Queries are trivially fast; the price is the quadratic
// worst-case size, which is exactly the point of the comparison in Table 1.
#ifndef FLIX_INDEX_TRANSITIVE_CLOSURE_H_
#define FLIX_INDEX_TRANSITIVE_CLOSURE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "index/path_index.h"
#include "storage/flat.h"

namespace flix::index {

struct TcOptions {
  // Build fails once the closure exceeds this many pairs (guards against
  // accidentally materializing a quadratic monster).
  size_t max_pairs = 500'000'000;
};

class TransitiveClosureIndex : public PathIndex {
 public:
  static StatusOr<std::unique_ptr<TransitiveClosureIndex>> Build(
      const graph::Digraph& g, const TcOptions& options = {});

  StrategyKind kind() const override {
    return StrategyKind::kTransitiveClosure;
  }

  Distance DistanceBetween(NodeId from, NodeId to) const override;
  // All enumeration cursors are pointer walks over the pre-sorted closure
  // rows — the ideal case for the lazy pipeline: zero setup cost, and a
  // top-k pull touches exactly k row entries.
  std::unique_ptr<NodeDistCursor> DescendantsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> DescendantsCursor(NodeId from) const override;
  std::unique_ptr<NodeDistCursor> AncestorsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> ReachableAmongCursor(
      NodeId from, std::span<const NodeId> targets) const override;
  std::unique_ptr<NodeDistCursor> AncestorsAmongCursor(
      NodeId from, std::span<const NodeId> sources) const override;
  size_t MemoryBytes() const override;

  // Structural invariants: every closure row equals the node's exact BFS
  // level sets (sampled rows by default, every row in deep mode), rows are
  // ascending by (distance, node), and reverse_ is the exact transpose of
  // closure_. Then the base differential check.
  Status Validate(const graph::Digraph& g,
                  const ValidateOptions& options = {}) const override;

  // Binary persistence (stream format; works in both storage modes).
  void Save(BinaryWriter& writer) const;
  static StatusOr<std::unique_ptr<TransitiveClosureIndex>> Load(
      BinaryReader& reader);

  // Paged persistence: CSR rows in a segment, loaded as a zero-copy view.
  void SaveSegment(storage::SegmentWriter& seg) const;
  static StatusOr<std::unique_ptr<TransitiveClosureIndex>> LoadSegment(
      const storage::SegmentView& view);

  // Number of (ancestor, descendant) pairs in the closure (self excluded).
  size_t NumPairs() const;

 private:
  friend struct CorruptionHook;

  TransitiveClosureIndex() = default;

  // closure_[v]: proper descendants of v with distances, ascending by
  // (distance, node). reverse_[v]: proper ancestors likewise.
  storage::FlatRows<NodeDist> closure_;
  storage::FlatRows<NodeDist> reverse_;
  storage::FlatVec<TagId> tag_;
};

// Counts the closure without materializing it: number of reachable proper
// pairs. Used by the Table 1 bench to report |TC| even when storing it
// would be wasteful.
size_t CountClosurePairs(const graph::Digraph& g);

}  // namespace flix::index

#endif  // FLIX_INDEX_TRANSITIVE_CLOSURE_H_
