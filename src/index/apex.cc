#include "index/apex.h"

#include <algorithm>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "graph/scc.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace flix::index {
namespace {

// Process-wide count of results yielded by APEX frontier cursors (resolved
// once; Counter addresses survive MetricsRegistry::Reset()).
obs::Counter& ApexPullCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter(obs::names::kCursorPulledApex);
  return counter;
}

// Maximum tag id occurring in g, plus one (0 if untagged).
size_t TagUniverse(const graph::Digraph& g) {
  TagId max_tag = 0;
  bool any = false;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.Tag(v) != kInvalidTag) {
      max_tag = std::max(max_tag, g.Tag(v));
      any = true;
    }
  }
  return any ? static_cast<size_t>(max_tag) + 1 : 0;
}

// Segment array ids (kIndex segment, strategy = kApex). The summary graph's
// arrays start at kSummaryBase (graph::Digraph::AppendArrays convention).
constexpr uint32_t kBlockOfArray = 1;
constexpr uint32_t kExtentOffsets = 2;
constexpr uint32_t kExtentFlat = 3;
constexpr uint32_t kReachTagsOffsets = 4;
constexpr uint32_t kReachTagsFlat = 5;
constexpr uint32_t kBlockClosureOffsets = 6;
constexpr uint32_t kBlockClosureFlat = 7;
constexpr uint32_t kApexParams = 8;  // [tag_words, have_block_closure]
constexpr uint32_t kSummaryBase = 10;

}  // namespace

std::unique_ptr<ApexIndex> ApexIndex::Build(const graph::Digraph& g,
                                            const ApexOptions& options) {
  auto index = std::unique_ptr<ApexIndex>(new ApexIndex(g));
  index->BuildSummary(options);
  index->BuildReachability(options);
  return index;
}

void ApexIndex::BuildSummary(const ApexOptions& options) {
  const size_t n = g_.NumNodes();
  block_of_.assign(n, 0);

  // Round 0: partition by tag.
  {
    std::unordered_map<TagId, uint32_t> block_of_tag;
    for (NodeId v = 0; v < n; ++v) {
      const auto [it, inserted] = block_of_tag.emplace(
          g_.Tag(v), static_cast<uint32_t>(block_of_tag.size()));
      block_of_[v] = it->second;
    }
  }

  // Iterate: signature(v) = (old block, sorted set of predecessor blocks);
  // nodes with equal signatures share a block. Fixpoint = backward
  // bisimulation (incoming-path equivalence).
  size_t num_blocks = 0;
  for (int round = 0;
       options.max_refinement_rounds < 0 || round < options.max_refinement_rounds;
       ++round) {
    std::map<std::pair<uint32_t, std::vector<uint32_t>>, uint32_t> blocks;
    std::vector<uint32_t> next(n);
    std::vector<uint32_t> preds;
    for (NodeId v = 0; v < n; ++v) {
      preds.clear();
      for (const graph::Digraph::Arc& arc : g_.InArcs(v)) {
        preds.push_back(block_of_[arc.target]);
      }
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
      const auto [it, inserted] = blocks.emplace(
          std::make_pair(block_of_[v], preds),
          static_cast<uint32_t>(blocks.size()));
      next[v] = it->second;
    }
    const bool stable =
        blocks.size() == num_blocks &&
        std::equal(next.begin(), next.end(), block_of_.begin());
    block_of_ = std::move(next);
    num_blocks = blocks.size();
    if (stable) break;
    // A partition refined to the size of the previous round's partition is
    // the fixpoint (refinement never merges blocks).
  }

  // Renumber blocks densely in first-occurrence order and build extents.
  std::unordered_map<uint32_t, uint32_t> remap;
  for (NodeId v = 0; v < n; ++v) {
    const auto [it, inserted] =
        remap.emplace(block_of_[v], static_cast<uint32_t>(remap.size()));
    block_of_[v] = it->second;
  }
  extents_.Assign(remap.size());
  for (NodeId v = 0; v < n; ++v) extents_.Row(block_of_[v]).push_back(v);

  // Summary graph: deduplicated block edges.
  summary_ = graph::Digraph(extents_.size());
  std::vector<uint32_t> last_seen(extents_.size(), UINT32_MAX);
  for (uint32_t b = 0; b < extents_.size(); ++b) {
    for (const NodeId v : extents_[b]) {
      for (const graph::Digraph::Arc& arc : g_.OutArcs(v)) {
        const uint32_t target = block_of_[arc.target];
        if (last_seen[target] == b) continue;
        last_seen[target] = b;
        summary_.AddEdge(b, target, arc.kind);
      }
    }
    // Self-edges are permitted in the summary (block reaching itself).
  }
}

void ApexIndex::BuildReachability(const ApexOptions& options) {
  const size_t num_blocks = extents_.size();
  const size_t num_tags = TagUniverse(g_);
  tag_words_ = (num_tags + 63) / 64;

  // reachable_tags_ via reverse-topological accumulation over the summary's
  // SCC condensation (the summary may be cyclic when the data graph is).
  reachable_tags_.Assign(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    reachable_tags_.Row(b).assign(tag_words_, 0);
    const TagId tag = extents_[b].empty() ? kInvalidTag
                                          : g_.Tag(extents_[b].front());
    if (tag != kInvalidTag) {
      reachable_tags_.Row(b)[tag / 64] |= uint64_t{1} << (tag % 64);
    }
  }
  const graph::SccResult scc = graph::StronglyConnectedComponents(summary_);
  const graph::Digraph condensed = graph::Condense(summary_, scc);
  // Tarjan numbers components in reverse topological order, so ascending
  // component id = sinks first: accumulate successors into predecessors by
  // walking components in ascending order.
  std::vector<std::vector<uint64_t>> comp_tags(
      scc.num_components, std::vector<uint64_t>(tag_words_, 0));
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    for (const NodeId b : scc.members[c]) {
      for (size_t w = 0; w < tag_words_; ++w) {
        comp_tags[c][w] |= reachable_tags_[b][w];
      }
    }
    for (const graph::Digraph::Arc& arc : condensed.OutArcs(c)) {
      for (size_t w = 0; w < tag_words_; ++w) {
        comp_tags[c][w] |= comp_tags[arc.target][w];
      }
    }
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    reachable_tags_.Row(b) = comp_tags[scc.component_of[b]];
  }

  // Optional block-level closure for fast IsReachable pruning.
  if (num_blocks <= options.max_blocks_for_closure) {
    const size_t block_words = (num_blocks + 63) / 64;
    std::vector<std::vector<uint64_t>> comp_reach(
        scc.num_components, std::vector<uint64_t>(block_words, 0));
    for (uint32_t c = 0; c < scc.num_components; ++c) {
      for (const NodeId b : scc.members[c]) {
        comp_reach[c][b / 64] |= uint64_t{1} << (b % 64);
      }
      for (const graph::Digraph::Arc& arc : condensed.OutArcs(c)) {
        for (size_t w = 0; w < block_words; ++w) {
          comp_reach[c][w] |= comp_reach[arc.target][w];
        }
      }
    }
    block_closure_.Assign(num_blocks);
    for (uint32_t b = 0; b < num_blocks; ++b) {
      block_closure_.Row(b) = comp_reach[scc.component_of[b]];
    }
    have_block_closure_ = true;
  }
}

bool ApexIndex::BlockCanReachTag(uint32_t block, TagId tag) const {
  if (tag == kInvalidTag) return true;
  const size_t word = tag / 64;
  if (word >= tag_words_) return false;
  return (reachable_tags_[block][word] >> (tag % 64)) & 1;
}

bool ApexIndex::BlockCanReachBlock(uint32_t from, uint32_t to) const {
  if (!have_block_closure_) return true;  // unknown: cannot prune
  return (block_closure_[from][to / 64] >> (to % 64)) & 1;
}

Distance ApexIndex::PointSearch(NodeId from, NodeId stop_at) const {
  const uint32_t target_block = block_of_[stop_at];
  std::vector<Distance> dist(g_.NumNodes(), kUnreachable);
  dist[from] = 0;
  std::deque<NodeId> queue = {from};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (v == stop_at && v != from) return dist[v];
    for (const graph::Digraph::Arc& arc : g_.OutArcs(v)) {
      const NodeId w = arc.target;
      if (dist[w] != kUnreachable) continue;
      // Summary pruning: skip branches that cannot reach the target block.
      if (w != stop_at && !BlockCanReachBlock(block_of_[w], target_block)) {
        continue;
      }
      dist[w] = dist[v] + 1;
      queue.push_back(w);
    }
  }
  return kUnreachable;
}

bool ApexIndex::IsReachable(NodeId from, NodeId to) const {
  return DistanceBetween(from, to) != kUnreachable;
}

Distance ApexIndex::DistanceBetween(NodeId from, NodeId to) const {
  if (from == to) return 0;
  if (!BlockCanReachBlock(block_of_[from], block_of_[to])) return kUnreachable;
  return PointSearch(from, to);
}

std::unique_ptr<NodeDistCursor> ApexIndex::DescendantsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kForward,
      [this, tag](NodeId w) { return BlockCanReachTag(block_of_[w], tag); },
      tag, /*wildcard=*/false, /*include_source=*/false, std::nullopt,
      &ApexPullCounter());
}

std::unique_ptr<NodeDistCursor> ApexIndex::DescendantsCursor(
    NodeId from) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kForward, graph::BfsFrontier::ExpandFilter{},
      kInvalidTag, /*wildcard=*/true, /*include_source=*/false, std::nullopt,
      &ApexPullCounter());
}

std::unique_ptr<NodeDistCursor> ApexIndex::AncestorsByTagCursor(
    NodeId from, TagId tag) const {
  // Backward traversal; summary pruning does not apply (reachable_tags_ is
  // forward-only), so this is a plain lazy reverse BFS with tag filtering.
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kBackward, graph::BfsFrontier::ExpandFilter{},
      tag, /*wildcard=*/false, /*include_source=*/false, std::nullopt,
      &ApexPullCounter());
}

std::unique_ptr<NodeDistCursor> ApexIndex::ReachableAmongCursor(
    NodeId from, std::span<const NodeId> targets) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kForward, graph::BfsFrontier::ExpandFilter{},
      kInvalidTag, /*wildcard=*/true, /*include_source=*/true,
      std::unordered_set<NodeId>(targets.begin(), targets.end()),
      &ApexPullCounter());
}

std::unique_ptr<NodeDistCursor> ApexIndex::AncestorsAmongCursor(
    NodeId from, std::span<const NodeId> sources) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kBackward, graph::BfsFrontier::ExpandFilter{},
      kInvalidTag, /*wildcard=*/true, /*include_source=*/true,
      std::unordered_set<NodeId>(sources.begin(), sources.end()),
      &ApexPullCounter());
}

void ApexIndex::Save(BinaryWriter& writer) const {
  // Row-wise writes keep the exact WriteNestedVec byte layout in both
  // storage modes.
  writer.WriteSpan(block_of_.span());
  writer.WriteU64(extents_.size());
  for (size_t b = 0; b < extents_.size(); ++b) writer.WriteSpan(extents_[b]);
  summary_.Save(writer);
  writer.WriteU64(reachable_tags_.size());
  for (size_t b = 0; b < reachable_tags_.size(); ++b) {
    writer.WriteSpan(reachable_tags_[b]);
  }
  writer.WriteU64(tag_words_);
  writer.WriteBool(have_block_closure_);
  if (have_block_closure_) {
    writer.WriteU64(block_closure_.size());
    for (size_t b = 0; b < block_closure_.size(); ++b) {
      writer.WriteSpan(block_closure_[b]);
    }
  }
}

StatusOr<std::unique_ptr<ApexIndex>> ApexIndex::Load(BinaryReader& reader,
                                                     const graph::Digraph& g) {
  auto index = std::unique_ptr<ApexIndex>(new ApexIndex(g));
  index->block_of_ = reader.ReadVec<uint32_t>();
  index->extents_ = reader.ReadNestedVec<NodeId>();
  index->summary_ = graph::Digraph::Load(reader);
  index->reachable_tags_ = reader.ReadNestedVec<uint64_t>();
  index->tag_words_ = reader.ReadU64();
  index->have_block_closure_ = reader.ReadBool();
  if (index->have_block_closure_) {
    index->block_closure_ = reader.ReadNestedVec<uint64_t>();
  }
  if (!reader.ok() || index->block_of_.size() != g.NumNodes() ||
      index->extents_.size() != index->summary_.NumNodes()) {
    return InvalidArgumentError("corrupt APEX index payload");
  }
  const size_t num_blocks = index->extents_.size();
  for (const uint32_t b : index->block_of_.span()) {
    if (b >= num_blocks) return InvalidArgumentError("corrupt APEX block id");
  }
  if (index->reachable_tags_.size() != num_blocks) {
    return InvalidArgumentError("corrupt APEX tag table");
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    if (index->reachable_tags_[b].size() != index->tag_words_) {
      return InvalidArgumentError("corrupt APEX tag row");
    }
  }
  if (index->have_block_closure_) {
    const size_t block_words = (num_blocks + 63) / 64;
    if (index->block_closure_.size() != num_blocks) {
      return InvalidArgumentError("corrupt APEX closure");
    }
    for (size_t b = 0; b < num_blocks; ++b) {
      if (index->block_closure_[b].size() != block_words) {
        return InvalidArgumentError("corrupt APEX closure row");
      }
    }
  }
  return index;
}

void ApexIndex::SaveSegment(storage::SegmentWriter& seg) const {
  seg.Add(kBlockOfArray, block_of_.span());
  std::vector<uint64_t> offsets;
  std::vector<NodeId> extent_flat;
  extents_.Flatten(offsets, extent_flat);
  seg.Add(kExtentOffsets, offsets);
  seg.Add(kExtentFlat, extent_flat);
  std::vector<uint64_t> bit_flat;
  reachable_tags_.Flatten(offsets, bit_flat);
  seg.Add(kReachTagsOffsets, offsets);
  seg.Add(kReachTagsFlat, bit_flat);
  if (have_block_closure_) {
    block_closure_.Flatten(offsets, bit_flat);
    seg.Add(kBlockClosureOffsets, offsets);
    seg.Add(kBlockClosureFlat, bit_flat);
  }
  const std::vector<uint64_t> params = {
      static_cast<uint64_t>(tag_words_),
      have_block_closure_ ? uint64_t{1} : uint64_t{0}};
  seg.Add(kApexParams, params);
  summary_.AppendArrays(seg, kSummaryBase);
}

StatusOr<std::unique_ptr<ApexIndex>> ApexIndex::LoadSegment(
    const storage::SegmentView& view, const graph::Digraph& g) {
  auto params = view.GetArray<uint64_t>(kApexParams);
  if (!params.ok()) return params.status();
  if (params.value().size() != 2) {
    return InvalidArgumentError("apex segment: bad parameter array");
  }
  auto block_of = view.GetArray<uint32_t>(kBlockOfArray);
  if (!block_of.ok()) return block_of.status();
  auto extent_offsets = view.GetArray<uint64_t>(kExtentOffsets);
  if (!extent_offsets.ok()) return extent_offsets.status();
  auto extent_flat = view.GetArray<NodeId>(kExtentFlat);
  if (!extent_flat.ok()) return extent_flat.status();
  auto extents = storage::FlatRows<NodeId>::FromView(extent_offsets.value(),
                                                     extent_flat.value());
  if (!extents.ok()) return extents.status();
  auto tags_offsets = view.GetArray<uint64_t>(kReachTagsOffsets);
  if (!tags_offsets.ok()) return tags_offsets.status();
  auto tags_flat = view.GetArray<uint64_t>(kReachTagsFlat);
  if (!tags_flat.ok()) return tags_flat.status();
  auto reach_tags = storage::FlatRows<uint64_t>::FromView(tags_offsets.value(),
                                                          tags_flat.value());
  if (!reach_tags.ok()) return reach_tags.status();
  auto summary = graph::Digraph::FromSegment(view, kSummaryBase);
  if (!summary.ok()) return summary.status();

  auto index = std::unique_ptr<ApexIndex>(new ApexIndex(g));
  index->tag_words_ = static_cast<size_t>(params.value()[0]);
  index->have_block_closure_ = params.value()[1] != 0;
  index->block_of_ = storage::FlatVec<uint32_t>::FromView(block_of.value());
  index->extents_ = std::move(extents).value();
  index->reachable_tags_ = std::move(reach_tags).value();
  index->summary_ = std::move(summary).value();
  if (index->have_block_closure_) {
    auto closure_offsets = view.GetArray<uint64_t>(kBlockClosureOffsets);
    if (!closure_offsets.ok()) return closure_offsets.status();
    auto closure_flat = view.GetArray<uint64_t>(kBlockClosureFlat);
    if (!closure_flat.ok()) return closure_flat.status();
    auto closure = storage::FlatRows<uint64_t>::FromView(
        closure_offsets.value(), closure_flat.value());
    if (!closure.ok()) return closure.status();
    index->block_closure_ = std::move(closure).value();
    if (index->block_closure_.size() != index->extents_.size()) {
      return InvalidArgumentError("apex segment: array size mismatch");
    }
  }
  // Shape checks only; segment checksums prove the bytes, `check --deep`
  // covers the semantics.
  if (index->block_of_.size() != g.NumNodes() ||
      index->extents_.size() != index->summary_.NumNodes() ||
      index->reachable_tags_.size() != index->extents_.size()) {
    return InvalidArgumentError("apex segment: array size mismatch");
  }
  return index;
}

Status ApexIndex::Validate(const graph::Digraph& g,
                           const ValidateOptions& options) const {
  if (&g != &g_) {
    return InternalError("apex: validated against a graph other than the one "
                         "the index is bound to");
  }
  const size_t n = g.NumNodes();
  const size_t num_blocks = extents_.size();
  if (block_of_.size() != n) {
    return InternalError("apex: block map covers " +
                         std::to_string(block_of_.size()) +
                         " nodes, graph has " + std::to_string(n));
  }

  // Exact partition: every node sits in precisely the extent its block id
  // names, and extents contain nothing else.
  size_t extent_members = 0;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    if (extents_[b].empty()) {
      return InternalError("apex: block " + std::to_string(b) +
                           " has an empty extent");
    }
    const TagId block_tag = g.Tag(extents_[b].front());
    for (const NodeId v : extents_[b]) {
      if (v >= n || block_of_[v] != b) {
        return InternalError("apex: extent of block " + std::to_string(b) +
                             " lists node " + std::to_string(v) +
                             ", whose block id is " +
                             std::to_string(v < n ? block_of_[v]
                                                  : kInvalidNode));
      }
      if (g.Tag(v) != block_tag) {
        return InternalError("apex: block " + std::to_string(b) +
                             " is not tag-homogeneous (node " +
                             std::to_string(v) + " has tag " +
                             std::to_string(g.Tag(v)) + ", block tag is " +
                             std::to_string(block_tag) + ")");
      }
    }
    extent_members += extents_[b].size();
  }
  if (extent_members != n) {
    return InternalError("apex: extents hold " +
                         std::to_string(extent_members) +
                         " members, graph has " + std::to_string(n) +
                         " nodes — some node is missing or duplicated");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (block_of_[v] >= num_blocks) {
      return InternalError("apex: node " + std::to_string(v) +
                           " maps to block " + std::to_string(block_of_[v]) +
                           ", only " + std::to_string(num_blocks) + " exist");
    }
  }

  // Summary = exact quotient graph: block edges are precisely the projected
  // element edges. Soundness of every pruning decision hangs on this.
  if (summary_.NumNodes() != num_blocks) {
    return InternalError("apex: summary graph has " +
                         std::to_string(summary_.NumNodes()) +
                         " nodes, partition has " + std::to_string(num_blocks) +
                         " blocks");
  }
  if (reachable_tags_.size() != num_blocks ||
      (have_block_closure_ && block_closure_.size() != num_blocks)) {
    return InternalError("apex: pruning tables cover " +
                         std::to_string(reachable_tags_.size()) +
                         " blocks, partition has " +
                         std::to_string(num_blocks));
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    if (reachable_tags_[b].size() != tag_words_) {
      return InternalError("apex: reachable-tag row width " +
                           std::to_string(reachable_tags_[b].size()) +
                           " != tag_words " + std::to_string(tag_words_));
    }
  }
  std::vector<std::unordered_set<uint32_t>> projected(num_blocks);
  for (NodeId u = 0; u < n; ++u) {
    for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
      projected[block_of_[u]].insert(block_of_[arc.target]);
    }
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    std::unordered_set<uint32_t> stored;
    for (const graph::Digraph::Arc& arc : summary_.OutArcs(b)) {
      stored.insert(static_cast<uint32_t>(arc.target));
    }
    if (stored != projected[b]) {
      for (const uint32_t c : projected[b]) {
        if (!stored.contains(c)) {
          return InternalError("apex: summary is missing block edge " +
                               std::to_string(b) + " -> " + std::to_string(c) +
                               " implied by the element graph");
        }
      }
      for (const uint32_t c : stored) {
        if (!projected[b].contains(c)) {
          return InternalError("apex: summary block edge " + std::to_string(b) +
                               " -> " + std::to_string(c) +
                               " has no witness in the element graph");
        }
      }
    }
  }

  // Pruning tables must equal recomputed summary reachability: a missing
  // bit makes the traversal cursors drop real results silently.
  std::vector<uint8_t> reached(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    std::fill(reached.begin(), reached.end(), 0);
    std::deque<uint32_t> queue = {b};
    reached[b] = 1;
    while (!queue.empty()) {
      const uint32_t c = queue.front();
      queue.pop_front();
      for (const graph::Digraph::Arc& arc : summary_.OutArcs(c)) {
        if (!reached[arc.target]) {
          reached[arc.target] = 1;
          queue.push_back(static_cast<uint32_t>(arc.target));
        }
      }
    }
    std::vector<uint64_t> want_tags(tag_words_, 0);
    for (uint32_t c = 0; c < num_blocks; ++c) {
      if (!reached[c]) continue;
      const TagId tag = g.Tag(extents_[c].front());
      if (tag != kInvalidTag) {
        want_tags[tag / 64] |= uint64_t{1} << (tag % 64);
      }
    }
    const std::span<const uint64_t> have_tags = reachable_tags_[b];
    if (!std::equal(have_tags.begin(), have_tags.end(), want_tags.begin(),
                    want_tags.end())) {
      return InternalError("apex: reachable-tag bitset of block " +
                           std::to_string(b) +
                           " differs from recomputed summary reachability");
    }
    if (have_block_closure_) {
      std::vector<uint64_t> want_blocks((num_blocks + 63) / 64, 0);
      for (uint32_t c = 0; c < num_blocks; ++c) {
        if (reached[c]) want_blocks[c / 64] |= uint64_t{1} << (c % 64);
      }
      const std::span<const uint64_t> have_blocks = block_closure_[b];
      if (!std::equal(have_blocks.begin(), have_blocks.end(),
                      want_blocks.begin(), want_blocks.end())) {
        return InternalError("apex: block-closure row of block " +
                             std::to_string(b) +
                             " differs from recomputed summary reachability");
      }
    }
  }
  return PathIndex::Validate(g, options);
}

size_t ApexIndex::MemoryBytes() const {
  return block_of_.MemoryBytes() + extents_.MemoryBytes() +
         summary_.MemoryBytes() + reachable_tags_.MemoryBytes() +
         block_closure_.MemoryBytes();
}

}  // namespace flix::index
