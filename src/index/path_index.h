// Common interface of all path indexing strategies (PIS in the paper's
// architecture, Figure 2). A path index answers connection queries within
// one meta document: reachability, distance, and tag-filtered descendant /
// ancestor enumeration in ascending distance order.
//
// Enumeration is cursor-based: every strategy implements pull-based
// NodeDistCursor factories, and the vector-returning convenience methods
// default to draining a cursor (strategies with a cheaper bulk plan
// override them). The PEE merges cursors directly, so top-k /
// bounded-distance / cancelled queries terminate index work early instead
// of discarding fully materialized result sets.
//
// All node ids are local to the indexed graph. Lifetime contract: strategies
// may keep a pointer to the Digraph they were built from; the graph must
// outlive the index (meta documents own both, in that order), and an index
// must outlive every cursor it opened.
#ifndef FLIX_INDEX_PATH_INDEX_H_
#define FLIX_INDEX_PATH_INDEX_H_

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/digraph.h"
#include "graph/traversal.h"
#include "obs/metrics.h"
#include "storage/segment.h"

namespace flix::index {

using graph::NodeDist;

// Test hook for the mutation suite of the correctness tooling (see
// src/check/corruption.h): a friend of every strategy that can seed
// controlled corruptions, so the validators can be proven to detect them.
// Never used outside tests.
struct CorruptionHook;

// Knobs for PathIndex::Validate / the check subsystem. Sampled checks use a
// deterministic RNG so a reported violation reproduces bit-for-bit.
struct ValidateOptions {
  // Deep mode additionally runs the exhaustive variants of checks that are
  // sampled by default (full pairwise distance diffs on small graphs, every
  // TC row, every source enumerated).
  bool deep = false;
  uint64_t seed = 20260806;
  // Sources sampled for enumeration diffs (cursor vs bulk vs BFS oracle).
  size_t sample_sources = 24;
  // (from, to) pairs sampled for distance diffs against the BFS oracle.
  size_t sample_pairs = 192;
  // Deep mode runs exhaustive pairwise checks only below this node count.
  size_t exhaustive_limit = 512;
};

// Identifies a concrete strategy, used by the Indexing Strategy Selector.
enum class StrategyKind {
  kPpo,
  kHopi,
  kApex,
  kTransitiveClosure,
  // Generalized structure summary (F&B / D(k), see summary_index.h).
  kSummary,
};

std::string_view StrategyName(StrategyKind kind);

// Pull-based iterator over connection-query results, yielding NodeDist
// elements in ascending (distance, node) order. Destroying a cursor before
// exhaustion is the early-close: any work the strategy deferred (interval
// scanning, list merging, graph traversal) is simply never done.
class NodeDistCursor {
 public:
  virtual ~NodeDistCursor() = default;

  // The next element, or nullopt once exhausted (exhaustion is permanent).
  virtual std::optional<NodeDist> Next() = 0;

  // Lower bound on the distance of any element still to come; kUnreachable
  // once exhausted. Never decreases. The PEE uses it to let a cursor's head
  // compete in its priority queue without pulling eagerly.
  virtual Distance BoundHint() const = 0;

  // Best-effort estimate of the elements not yet pulled — exact for
  // materialized/row-scan cursors, a frontier-size lower bound for lazy
  // traversals. Observability only (the flix.query.cursor.saved counter);
  // never used for query semantics.
  virtual size_t RemainingHint() const { return 0; }
};

// Cursor over an already-sorted (distance, node) vector: the fallback for
// strategies whose batch plan beats any lazy scheme (e.g. per-target label
// joins over a handful of targets), and the bridge for callers that hold a
// vector but need a cursor.
class MaterializedCursor : public NodeDistCursor {
 public:
  // `items` must already be ascending by (distance, node).
  explicit MaterializedCursor(std::vector<NodeDist> items)
      : items_(std::move(items)) {}

  std::optional<NodeDist> Next() override {
    if (pos_ >= items_.size()) return std::nullopt;
    return items_[pos_++];
  }

  Distance BoundHint() const override {
    return pos_ < items_.size() ? items_[pos_].distance : kUnreachable;
  }

  size_t RemainingHint() const override { return items_.size() - pos_; }

 private:
  std::vector<NodeDist> items_;
  size_t pos_ = 0;
};

// Lazy BFS enumeration cursor over the element graph, pulling one depth
// level at a time from a graph::BfsFrontier. A level's depth is the exact
// distance, so the canonical (distance, node) order falls out for free, and
// an early-closed cursor never traverses the remaining levels — this is
// what makes top-k cheap for the traversal-backed strategies (APEX,
// structure summaries), which wrap it with their summary-pruning filter.
class FrontierCursor : public NodeDistCursor {
 public:
  // `wanted`, when set, restricts results to that node set (the Among
  // probes). The source node is reported (at distance 0) only when
  // `include_source` is true and it passes the filters.
  // `pull_counter`, when non-null, is incremented once per yielded result —
  // strategies pass their own flix.cursor.pulled.* counter so the shared
  // frontier machinery stays strategy-agnostic.
  FrontierCursor(const graph::Digraph& g, NodeId source, graph::Direction dir,
                 graph::BfsFrontier::ExpandFilter filter, TagId tag,
                 bool wildcard, bool include_source,
                 std::optional<std::unordered_set<NodeId>> wanted = {},
                 obs::Counter* pull_counter = nullptr);

  std::optional<NodeDist> Next() override;
  Distance BoundHint() const override;
  size_t RemainingHint() const override;

 private:
  const graph::Digraph& g_;
  graph::BfsFrontier frontier_;
  const NodeId source_;
  const TagId tag_;
  const bool wildcard_;
  const bool include_source_;
  const std::optional<std::unordered_set<NodeId>> wanted_;
  obs::Counter* const pull_counter_;
  std::vector<NodeId> buffer_;
  size_t pos_ = 0;
  Distance depth_ = -1;
};

class PathIndex {
 public:
  virtual ~PathIndex() = default;

  virtual StrategyKind kind() const = 0;
  std::string_view name() const { return StrategyName(kind()); }

  // True iff there is a directed path from `from` to `to` (from == to counts
  // as reachable at distance 0).
  virtual bool IsReachable(NodeId from, NodeId to) const {
    return DistanceBetween(from, to) != kUnreachable;
  }

  // Length of the shortest path, or kUnreachable.
  virtual Distance DistanceBetween(NodeId from, NodeId to) const = 0;

  // Cursor over the proper descendants of `from` with tag `tag`, ascending
  // by (distance, node id).
  virtual std::unique_ptr<NodeDistCursor> DescendantsByTagCursor(
      NodeId from, TagId tag) const = 0;

  // Cursor over the proper descendants of `from` (the a//* wildcard),
  // ascending by (distance, node id).
  virtual std::unique_ptr<NodeDistCursor> DescendantsCursor(
      NodeId from) const = 0;

  // Cursor over the proper ancestors of `from` with tag `tag`, ascending by
  // (distance, node id).
  virtual std::unique_ptr<NodeDistCursor> AncestorsByTagCursor(
      NodeId from, TagId tag) const = 0;

  // Cursor over the reachable elements among `targets` (ascending node ids,
  // duplicates allowed but wasteful) with their distances from `from`,
  // ascending by (distance, node id). This implements the paper's L(a) =
  // descendants(a) ∩ L_i lookup (Section 4.2). Includes `from` itself if
  // listed. The default materializes a per-target DistanceBetween loop;
  // strategies override with cheaper plans.
  virtual std::unique_ptr<NodeDistCursor> ReachableAmongCursor(
      NodeId from, std::span<const NodeId> targets) const;

  // Reverse variant: elements among `sources` that can reach `from`, with
  // their distances *to* `from`. Used when evaluating ancestors-or-self
  // queries across meta documents.
  virtual std::unique_ptr<NodeDistCursor> AncestorsAmongCursor(
      NodeId from, std::span<const NodeId> sources) const;

  // Vector-returning conveniences: by default thin wrappers that drain the
  // matching cursor. Kept for persistence checks, step axes and batch
  // callers. A strategy overrides one when it has a bulk plan that beats
  // draining its own cursor (e.g. HOPI's dense relax over the inverted
  // lists); overrides must return the same (distance, node)-ascending set
  // the cursor yields.
  virtual std::vector<NodeDist> DescendantsByTag(NodeId from, TagId tag) const;
  virtual std::vector<NodeDist> Descendants(NodeId from) const;
  virtual std::vector<NodeDist> AncestorsByTag(NodeId from, TagId tag) const;
  virtual std::vector<NodeDist> ReachableAmong(
      NodeId from, std::span<const NodeId> targets) const;
  virtual std::vector<NodeDist> AncestorsAmong(
      NodeId from, std::span<const NodeId> sources) const;

  // Optional optimization hooks: the Index Builder registers the meta
  // document's link-source set L_i and entry-node set once, so strategies
  // can precompute filtered structures for the ReachableAmong /
  // AncestorsAmong probes the PEE issues per visited entry point. Defaults
  // are no-ops.
  virtual void RegisterLinkSources(std::span<const NodeId> sources);
  virtual void RegisterEntryNodes(std::span<const NodeId> targets);

  // Heap footprint of the index structure in bytes.
  virtual size_t MemoryBytes() const = 0;

  // Mechanically verifies the index against `g`, the graph it was built
  // from. The base implementation is a differential check: sampled
  // (from, to) distance probes and sampled enumeration diffs (cursor drain
  // vs bulk vector vs a naive BFS oracle) — sound for any strategy.
  // Strategies override to verify their structural invariants first (PPO
  // interval nesting, HOPI label/inverted-list consistency, extent
  // partitioning, TC row = BFS closure) and then run the base diff, so a
  // violation is reported at the structure that broke, not at a distant
  // query. Returns the first violation found, with a pinpointing message.
  virtual Status Validate(const graph::Digraph& g,
                          const ValidateOptions& options = {}) const;
};

// Sorts by (distance, node) — the canonical result order.
void SortByDistance(std::vector<NodeDist>& v);

// Pulls a cursor to exhaustion into a vector (the order is whatever the
// cursor yields, i.e. ascending (distance, node) for conforming cursors).
std::vector<NodeDist> DrainCursor(NodeDistCursor& cursor);

// Persistence dispatcher: writes the strategy kind followed by the payload.
void SaveIndex(const PathIndex& index, BinaryWriter& writer);
// Loads any strategy; `graph` must be the graph the index was built from
// (needed by APEX, ignored by the others) and must outlive the index.
StatusOr<std::unique_ptr<PathIndex>> LoadIndex(BinaryReader& reader,
                                               const graph::Digraph& graph);

// Paged-format dispatchers. SaveIndexSegment appends the strategy's flat
// arrays to `seg` (the strategy kind itself travels in the segment-table
// entry, not the payload); LoadIndexSegment reconstructs a zero-copy view —
// the mapping behind `view` and `graph` must outlive the index.
void SaveIndexSegment(const PathIndex& index, storage::SegmentWriter& seg);
StatusOr<std::unique_ptr<PathIndex>> LoadIndexSegment(
    const storage::SegmentView& view, StrategyKind kind,
    const graph::Digraph& graph);

}  // namespace flix::index

#endif  // FLIX_INDEX_PATH_INDEX_H_
