// Common interface of all path indexing strategies (PIS in the paper's
// architecture, Figure 2). A path index answers connection queries within
// one meta document: reachability, distance, and tag-filtered descendant /
// ancestor enumeration in ascending distance order.
//
// All node ids are local to the indexed graph. Lifetime contract: strategies
// may keep a pointer to the Digraph they were built from; the graph must
// outlive the index (meta documents own both, in that order).
#ifndef FLIX_INDEX_PATH_INDEX_H_
#define FLIX_INDEX_PATH_INDEX_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/digraph.h"
#include "graph/traversal.h"

namespace flix::index {

using graph::NodeDist;

// Identifies a concrete strategy, used by the Indexing Strategy Selector.
enum class StrategyKind {
  kPpo,
  kHopi,
  kApex,
  kTransitiveClosure,
  // Generalized structure summary (F&B / D(k), see summary_index.h).
  kSummary,
};

std::string_view StrategyName(StrategyKind kind);

class PathIndex {
 public:
  virtual ~PathIndex() = default;

  virtual StrategyKind kind() const = 0;
  std::string_view name() const { return StrategyName(kind()); }

  // True iff there is a directed path from `from` to `to` (from == to counts
  // as reachable at distance 0).
  virtual bool IsReachable(NodeId from, NodeId to) const {
    return DistanceBetween(from, to) != kUnreachable;
  }

  // Length of the shortest path, or kUnreachable.
  virtual Distance DistanceBetween(NodeId from, NodeId to) const = 0;

  // Proper descendants of `from` with tag `tag`, ascending by (distance,
  // node id).
  virtual std::vector<NodeDist> DescendantsByTag(NodeId from,
                                                 TagId tag) const = 0;

  // Proper descendants of `from` (the a//* wildcard), ascending by
  // (distance, node id).
  virtual std::vector<NodeDist> Descendants(NodeId from) const = 0;

  // Proper ancestors of `from` with tag `tag`, ascending by (distance,
  // node id).
  virtual std::vector<NodeDist> AncestorsByTag(NodeId from,
                                               TagId tag) const = 0;

  // Reachable elements among `targets` (ascending node ids, duplicates
  // allowed but wasteful) with their distances from `from`, ascending by
  // (distance, node id). This implements the paper's L(a) =
  // descendants(a) ∩ L_i lookup (Section 4.2). Includes `from` itself if
  // listed. The default loops over targets; strategies override with
  // cheaper plans.
  virtual std::vector<NodeDist> ReachableAmong(
      NodeId from, const std::vector<NodeId>& targets) const;

  // Reverse variant: elements among `sources` that can reach `from`, with
  // their distances *to* `from`. Used when evaluating ancestors-or-self
  // queries across meta documents.
  virtual std::vector<NodeDist> AncestorsAmong(
      NodeId from, const std::vector<NodeId>& sources) const;

  // Optional optimization hooks: the Index Builder registers the meta
  // document's link-source set L_i and entry-node set once, so strategies
  // can precompute filtered structures for the ReachableAmong /
  // AncestorsAmong probes the PEE issues per visited entry point. Defaults
  // are no-ops.
  virtual void RegisterLinkSources(const std::vector<NodeId>& sources);
  virtual void RegisterEntryNodes(const std::vector<NodeId>& targets);

  // Heap footprint of the index structure in bytes.
  virtual size_t MemoryBytes() const = 0;
};

// Sorts by (distance, node) — the canonical result order.
void SortByDistance(std::vector<NodeDist>& v);

// Persistence dispatcher: writes the strategy kind followed by the payload.
void SaveIndex(const PathIndex& index, BinaryWriter& writer);
// Loads any strategy; `graph` must be the graph the index was built from
// (needed by APEX, ignored by the others) and must outlive the index.
StatusOr<std::unique_ptr<PathIndex>> LoadIndex(BinaryReader& reader,
                                               const graph::Digraph& graph);

}  // namespace flix::index

#endif  // FLIX_INDEX_PATH_INDEX_H_
