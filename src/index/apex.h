// APEX-style adaptive path index [Chung et al., SIGMOD'02].
//
// The core of APEX is a structure summary: elements are grouped into blocks
// by (backward) bisimulation over their incoming label paths — the classic
// 1-index construction — and each block stores its extent (member elements).
// Label-path queries are answered on the summary, then expanded via extents.
// APEX's workload adaptation refines this summary for frequent paths; the
// paper's experiments use the unoptimized variant ("without optimizations
// for frequent queries"), which is what we build. A `max_refinement_rounds`
// knob additionally yields A(k)-index behaviour (k-bisimulation) when finite.
//
// Connection queries from a *specific* element (a//b with distances) cannot
// be answered from the summary alone; like the paper's database-backed APEX
// implementation, we traverse the element graph, but prune the traversal
// with the summary: a branch is abandoned as soon as its block provably
// cannot reach any block containing the target tag. The summary also makes
// IsReachable fail fast via block-level reachability.
#ifndef FLIX_INDEX_APEX_H_
#define FLIX_INDEX_APEX_H_

#include <memory>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "index/path_index.h"
#include "storage/flat.h"

namespace flix::index {

struct ApexOptions {
  // Number of refinement rounds; < 0 means refine to the full bisimulation
  // fixpoint (1-index), k >= 0 gives the A(k)-index.
  int max_refinement_rounds = -1;
  // Block-level transitive closure is skipped above this summary size (the
  // tag-reachability pruning still applies).
  size_t max_blocks_for_closure = 50000;
};

class ApexIndex : public PathIndex {
 public:
  // Keeps a reference to `g`; the graph must outlive the index.
  static std::unique_ptr<ApexIndex> Build(const graph::Digraph& g,
                                          const ApexOptions& options = {});

  StrategyKind kind() const override { return StrategyKind::kApex; }

  bool IsReachable(NodeId from, NodeId to) const override;
  Distance DistanceBetween(NodeId from, NodeId to) const override;
  // Lazy summary-pruned BFS (one frontier level per pull): branches whose
  // block provably cannot reach the target tag are cut, and levels beyond
  // the last one pulled are never traversed.
  std::unique_ptr<NodeDistCursor> DescendantsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> DescendantsCursor(NodeId from) const override;
  std::unique_ptr<NodeDistCursor> AncestorsByTagCursor(
      NodeId from, TagId tag) const override;
  // One lazy BFS watching all listed targets — far cheaper than the default
  // per-target point query (which would BFS once per target).
  std::unique_ptr<NodeDistCursor> ReachableAmongCursor(
      NodeId from, std::span<const NodeId> targets) const override;
  std::unique_ptr<NodeDistCursor> AncestorsAmongCursor(
      NodeId from, std::span<const NodeId> sources) const override;
  size_t MemoryBytes() const override;

  // Structural invariants: extents partition the node set exactly (each
  // node in precisely the extent its block id names), blocks are
  // tag-homogeneous, the summary is the exact quotient graph of the
  // partition, and the pruning tables (reachable_tags_, block_closure_)
  // equal the recomputed summary reachability — so pruning can never cut a
  // real result. Then the base differential check.
  Status Validate(const graph::Digraph& g,
                  const ValidateOptions& options = {}) const override;

  // Binary persistence. Load rebinds to `g`, which must be the same graph
  // the saved index was built from.
  void Save(BinaryWriter& writer) const;
  static StatusOr<std::unique_ptr<ApexIndex>> Load(BinaryReader& reader,
                                                   const graph::Digraph& g);

  // Paged persistence. Like the stream Load, LoadSegment rebinds to `g`.
  void SaveSegment(storage::SegmentWriter& seg) const;
  static StatusOr<std::unique_ptr<ApexIndex>> LoadSegment(
      const storage::SegmentView& view, const graph::Digraph& g);

  // Summary introspection (tests, stats).
  size_t NumBlocks() const { return extents_.size(); }
  uint32_t BlockOf(NodeId v) const { return block_of_[v]; }
  std::span<const NodeId> Extent(uint32_t block) const {
    return extents_[block];
  }

 private:
  friend struct CorruptionHook;

  explicit ApexIndex(const graph::Digraph& g) : g_(g) {}

  void BuildSummary(const ApexOptions& options);
  void BuildReachability(const ApexOptions& options);

  bool BlockCanReachTag(uint32_t block, TagId tag) const;
  bool BlockCanReachBlock(uint32_t from, uint32_t to) const;

  // Summary-pruned point lookup: BFS from `from` that prunes branches
  // whose block cannot reach `stop_at`'s block, stopping at `stop_at`.
  Distance PointSearch(NodeId from, NodeId stop_at) const;

  const graph::Digraph& g_;
  storage::FlatVec<uint32_t> block_of_;
  storage::FlatRows<NodeId> extents_;
  // Summary graph over blocks.
  graph::Digraph summary_;
  // Per block: bitset over tag ids reachable via summary edges (including
  // the block's own tag), for traversal pruning. Words of 64 tags.
  storage::FlatRows<uint64_t> reachable_tags_;
  size_t tag_words_ = 0;
  // Optional block-level reachability closure (bitset rows over blocks).
  bool have_block_closure_ = false;
  storage::FlatRows<uint64_t> block_closure_;
};

}  // namespace flix::index

#endif  // FLIX_INDEX_APEX_H_
