#include "index/ppo.h"

#include <algorithm>

#include "common/bytes.h"
#include "graph/tree_utils.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace flix::index {
namespace {

// Paged-segment array ids.
constexpr uint32_t kPreArray = 1;
constexpr uint32_t kPostArray = 2;
constexpr uint32_t kDepthArray = 3;
constexpr uint32_t kParentArray = 4;
constexpr uint32_t kSubtreeSizeArray = 5;
constexpr uint32_t kOrderArray = 6;
constexpr uint32_t kTagArray = 7;

// Process-wide count of results yielded by PPO cursors. The reference is
// resolved once (registry lookups take a lock); Counter addresses are
// stable for the process lifetime, surviving MetricsRegistry::Reset().
obs::Counter& PpoPullCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter(obs::names::kCursorPulledPpo);
  return counter;
}

// Lazy descendant cursor over the preorder interval of `from`'s subtree.
// The interval is bucketed by relative depth on the first pull (one linear
// scan, tag filter applied); each depth bucket is sorted by node id only
// when the cursor reaches it. Early-closed cursors skip the remaining
// sorts entirely.
class PpoSubtreeCursor : public NodeDistCursor {
 public:
  PpoSubtreeCursor(std::span<const uint32_t> depth,
                   std::span<const NodeId> order,
                   std::span<const TagId> tag_of, NodeId from, TagId tag,
                   bool wildcard, uint32_t begin, uint32_t end)
      : depth_(depth),
        order_(order),
        tag_of_(tag_of),
        from_depth_(depth[from]),
        tag_(tag),
        wildcard_(wildcard),
        begin_(begin),
        end_(end) {}

  std::optional<NodeDist> Next() override {
    if (!initialized_) Initialize();
    while (bucket_ < buckets_.size()) {
      std::vector<NodeId>& level = buckets_[bucket_];
      if (pos_ == 0) std::sort(level.begin(), level.end());
      if (pos_ < level.size()) {
        --remaining_;
        PpoPullCounter().Increment();
        return NodeDist{level[pos_++],
                        static_cast<Distance>(bucket_ + 1)};
      }
      ++bucket_;
      pos_ = 0;
    }
    return std::nullopt;
  }

  Distance BoundHint() const override {
    if (!initialized_) return begin_ < end_ ? 1 : kUnreachable;
    for (size_t b = bucket_; b < buckets_.size(); ++b) {
      if ((b == bucket_ ? pos_ : 0) < buckets_[b].size()) {
        return static_cast<Distance>(b + 1);
      }
    }
    return kUnreachable;
  }

  size_t RemainingHint() const override {
    // Before the first pull the un-scanned interval is the best estimate.
    return initialized_ ? remaining_ : end_ - begin_;
  }

 private:
  void Initialize() {
    initialized_ = true;
    for (uint32_t p = begin_; p < end_; ++p) {
      const NodeId v = order_[p];
      if (!wildcard_ && tag_of_[v] != tag_) continue;
      const size_t bucket = depth_[v] - from_depth_ - 1;
      if (bucket >= buckets_.size()) buckets_.resize(bucket + 1);
      buckets_[bucket].push_back(v);
      ++remaining_;
    }
  }

  const std::span<const uint32_t> depth_;
  const std::span<const NodeId> order_;
  const std::span<const TagId> tag_of_;
  const uint32_t from_depth_;
  const TagId tag_;
  const bool wildcard_;
  const uint32_t begin_;
  const uint32_t end_;

  bool initialized_ = false;
  std::vector<std::vector<NodeId>> buckets_;
  size_t bucket_ = 0;
  size_t pos_ = 0;
  size_t remaining_ = 0;
};

// Ancestors: one parent pointer per pull, with a single-element lookahead
// so BoundHint is exact.
class PpoAncestorCursor : public NodeDistCursor {
 public:
  PpoAncestorCursor(std::span<const NodeId> parent,
                    std::span<const TagId> tag_of, NodeId from, TagId tag)
      : parent_(parent), tag_of_(tag_of), walk_(from), tag_(tag) {
    Advance();
  }

  std::optional<NodeDist> Next() override {
    if (!pending_.has_value()) return std::nullopt;
    const NodeDist result = *pending_;
    Advance();
    PpoPullCounter().Increment();
    return result;
  }

  Distance BoundHint() const override {
    return pending_.has_value() ? pending_->distance : kUnreachable;
  }

  size_t RemainingHint() const override { return pending_.has_value() ? 1 : 0; }

 private:
  void Advance() {
    pending_.reset();
    NodeId v = parent_[walk_];
    while (v != kInvalidNode) {
      ++walk_distance_;
      walk_ = v;
      if (tag_of_[v] == tag_) {
        pending_ = NodeDist{v, walk_distance_};
        return;
      }
      v = parent_[v];
    }
  }

  const std::span<const NodeId> parent_;
  const std::span<const TagId> tag_of_;
  NodeId walk_;
  const TagId tag_;
  Distance walk_distance_ = 0;
  std::optional<NodeDist> pending_;
};

}  // namespace

StatusOr<std::unique_ptr<PpoIndex>> PpoIndex::Build(const graph::Digraph& g) {
  if (!graph::IsForest(g)) {
    return FailedPreconditionError(
        "PPO requires a forest; the graph has a node with two parents or a "
        "cycle");
  }
  const size_t n = g.NumNodes();
  auto index = std::unique_ptr<PpoIndex>(new PpoIndex());
  index->pre_.assign(n, 0);
  index->post_.assign(n, 0);
  index->depth_.assign(n, 0);
  index->parent_.assign(n, kInvalidNode);
  index->subtree_size_.assign(n, 1);
  index->order_.assign(n, kInvalidNode);
  index->tag_.assign(n, kInvalidTag);
  for (NodeId v = 0; v < n; ++v) index->tag_[v] = g.Tag(v);

  uint32_t next_pre = 0;
  uint32_t next_post = 0;

  // Iterative DFS; frame tracks the next child arc to visit.
  struct Frame {
    NodeId node;
    size_t arc_pos;
  };
  std::vector<Frame> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (g.InDegree(root) != 0) continue;
    index->pre_[root] = next_pre;
    index->order_[next_pre] = root;
    ++next_pre;
    index->depth_[root] = 0;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId u = frame.node;
      if (frame.arc_pos < g.OutArcs(u).size()) {
        const NodeId child = g.OutArcs(u)[frame.arc_pos++].target;
        index->parent_[child] = u;
        index->depth_[child] = index->depth_[u] + 1;
        index->pre_[child] = next_pre;
        index->order_[next_pre] = child;
        ++next_pre;
        stack.push_back({child, 0});
      } else {
        index->post_[u] = next_post++;
        stack.pop_back();
        if (!stack.empty()) {
          index->subtree_size_[stack.back().node] += index->subtree_size_[u];
        }
      }
    }
  }
  return index;
}

bool PpoIndex::IsReachable(NodeId from, NodeId to) const {
  if (from == to) return true;
  return pre_[from] < pre_[to] && post_[from] > post_[to];
}

Distance PpoIndex::DistanceBetween(NodeId from, NodeId to) const {
  if (!IsReachable(from, to)) return kUnreachable;
  return static_cast<Distance>(depth_[to] - depth_[from]);
}

std::unique_ptr<NodeDistCursor> PpoIndex::DescendantsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<PpoSubtreeCursor>(
      depth_.span(), order_.span(), tag_.span(), from, tag,
      /*wildcard=*/false, pre_[from] + 1, pre_[from] + subtree_size_[from]);
}

std::unique_ptr<NodeDistCursor> PpoIndex::DescendantsCursor(
    NodeId from) const {
  return std::make_unique<PpoSubtreeCursor>(
      depth_.span(), order_.span(), tag_.span(), from, kInvalidTag,
      /*wildcard=*/true, pre_[from] + 1, pre_[from] + subtree_size_[from]);
}

std::unique_ptr<NodeDistCursor> PpoIndex::AncestorsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<PpoAncestorCursor>(parent_.span(), tag_.span(),
                                             from, tag);
}

std::unique_ptr<NodeDistCursor> PpoIndex::ReachableAmongCursor(
    NodeId from, std::span<const NodeId> targets) const {
  return std::make_unique<MaterializedCursor>(ReachableAmong(from, targets));
}

std::vector<NodeDist> PpoIndex::DescendantsByTag(NodeId from,
                                                 TagId tag) const {
  std::vector<NodeDist> result;
  const uint32_t begin = pre_[from] + 1;
  const uint32_t end = pre_[from] + subtree_size_[from];  // exclusive
  for (uint32_t p = begin; p < end; ++p) {
    const NodeId v = order_[p];
    if (tag_[v] == tag) {
      result.push_back({v, static_cast<Distance>(depth_[v] - depth_[from])});
    }
  }
  SortByDistance(result);
  return result;
}

std::vector<NodeDist> PpoIndex::Descendants(NodeId from) const {
  std::vector<NodeDist> result;
  const uint32_t begin = pre_[from] + 1;
  const uint32_t end = pre_[from] + subtree_size_[from];  // exclusive
  result.reserve(end - begin);
  for (uint32_t p = begin; p < end; ++p) {
    const NodeId v = order_[p];
    result.push_back({v, static_cast<Distance>(depth_[v] - depth_[from])});
  }
  SortByDistance(result);
  return result;
}

std::vector<NodeDist> PpoIndex::AncestorsByTag(NodeId from, TagId tag) const {
  std::vector<NodeDist> result;
  Distance d = 0;
  NodeId v = parent_[from];
  while (v != kInvalidNode) {
    ++d;
    if (tag_[v] == tag) result.push_back({v, d});
    v = parent_[v];
  }
  return result;
}

std::vector<NodeDist> PpoIndex::ReachableAmong(
    NodeId from, std::span<const NodeId> targets) const {
  std::vector<NodeDist> result;
  const uint32_t lo = pre_[from];
  const uint32_t end = pre_[from] + subtree_size_[from];  // exclusive
  for (const NodeId t : targets) {
    if (t == from) {
      result.push_back({t, 0});
    } else if (pre_[t] > lo && pre_[t] < end) {
      result.push_back({t, static_cast<Distance>(depth_[t] - depth_[from])});
    }
  }
  SortByDistance(result);
  return result;
}

void PpoIndex::Save(BinaryWriter& writer) const {
  writer.WriteSpan(pre_.span());
  writer.WriteSpan(post_.span());
  writer.WriteSpan(depth_.span());
  writer.WriteSpan(parent_.span());
  writer.WriteSpan(subtree_size_.span());
  writer.WriteSpan(order_.span());
  writer.WriteSpan(tag_.span());
}

StatusOr<std::unique_ptr<PpoIndex>> PpoIndex::Load(BinaryReader& reader) {
  auto index = std::unique_ptr<PpoIndex>(new PpoIndex());
  index->pre_ = reader.ReadVec<uint32_t>();
  index->post_ = reader.ReadVec<uint32_t>();
  index->depth_ = reader.ReadVec<uint32_t>();
  index->parent_ = reader.ReadVec<NodeId>();
  index->subtree_size_ = reader.ReadVec<uint32_t>();
  index->order_ = reader.ReadVec<NodeId>();
  index->tag_ = reader.ReadVec<TagId>();
  const size_t n = index->pre_.size();
  if (!reader.ok() || index->post_.size() != n || index->depth_.size() != n ||
      index->parent_.size() != n || index->subtree_size_.size() != n ||
      index->order_.size() != n || index->tag_.size() != n) {
    return InvalidArgumentError("corrupt PPO index payload");
  }
  // Semantic validation: pre/order must be inverse permutations, parents in
  // range, and subtree intervals inside the node range (queries scan them).
  for (NodeId v = 0; v < n; ++v) {
    if (index->pre_[v] >= n || index->order_[index->pre_[v]] != v ||
        (index->parent_[v] != kInvalidNode && index->parent_[v] >= n) ||
        index->subtree_size_[v] == 0 ||
        index->pre_[v] + index->subtree_size_[v] > n) {
      return InvalidArgumentError("corrupt PPO numbering");
    }
  }
  return index;
}

void PpoIndex::SaveSegment(storage::SegmentWriter& seg) const {
  seg.Add(kPreArray, pre_.span());
  seg.Add(kPostArray, post_.span());
  seg.Add(kDepthArray, depth_.span());
  seg.Add(kParentArray, parent_.span());
  seg.Add(kSubtreeSizeArray, subtree_size_.span());
  seg.Add(kOrderArray, order_.span());
  seg.Add(kTagArray, tag_.span());
}

StatusOr<std::unique_ptr<PpoIndex>> PpoIndex::LoadSegment(
    const storage::SegmentView& view) {
  auto pre = view.GetArray<uint32_t>(kPreArray);
  if (!pre.ok()) return pre.status();
  auto post = view.GetArray<uint32_t>(kPostArray);
  if (!post.ok()) return post.status();
  auto depth = view.GetArray<uint32_t>(kDepthArray);
  if (!depth.ok()) return depth.status();
  auto parent = view.GetArray<NodeId>(kParentArray);
  if (!parent.ok()) return parent.status();
  auto subtree = view.GetArray<uint32_t>(kSubtreeSizeArray);
  if (!subtree.ok()) return subtree.status();
  auto order = view.GetArray<NodeId>(kOrderArray);
  if (!order.ok()) return order.status();
  auto tag = view.GetArray<TagId>(kTagArray);
  if (!tag.ok()) return tag.status();
  const size_t n = pre.value().size();
  if (post.value().size() != n || depth.value().size() != n ||
      parent.value().size() != n || subtree.value().size() != n ||
      order.value().size() != n || tag.value().size() != n) {
    return InvalidArgumentError("ppo segment: array size mismatch");
  }
  // Deeper semantic validation is intentionally skipped here: the segment
  // checksum already proves these are the writer's bytes, and touching
  // every page would defeat the lazy zero-copy open. `check --deep` covers
  // semantics.
  auto index = std::unique_ptr<PpoIndex>(new PpoIndex());
  index->pre_ = storage::FlatVec<uint32_t>::FromView(pre.value());
  index->post_ = storage::FlatVec<uint32_t>::FromView(post.value());
  index->depth_ = storage::FlatVec<uint32_t>::FromView(depth.value());
  index->parent_ = storage::FlatVec<NodeId>::FromView(parent.value());
  index->subtree_size_ = storage::FlatVec<uint32_t>::FromView(subtree.value());
  index->order_ = storage::FlatVec<NodeId>::FromView(order.value());
  index->tag_ = storage::FlatVec<TagId>::FromView(tag.value());
  return index;
}

size_t PpoIndex::MemoryBytes() const {
  return pre_.MemoryBytes() + post_.MemoryBytes() + depth_.MemoryBytes() +
         parent_.MemoryBytes() + subtree_size_.MemoryBytes() +
         order_.MemoryBytes() + tag_.MemoryBytes();
}

Status PpoIndex::Validate(const graph::Digraph& g,
                          const ValidateOptions& options) const {
  const size_t n = g.NumNodes();
  if (pre_.size() != n || post_.size() != n || depth_.size() != n ||
      parent_.size() != n || subtree_size_.size() != n ||
      order_.size() != n || tag_.size() != n) {
    return InternalError("ppo: numbering covers " +
                         std::to_string(pre_.size()) + " nodes, graph has " +
                         std::to_string(n));
  }

  // Pre and post must be permutations of [0, n), with order_ the inverse of
  // pre (the interval scans walk order_[pre+1 .. pre+size)).
  std::vector<uint8_t> post_seen(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (pre_[v] >= n || order_[pre_[v]] != v) {
      return InternalError("ppo: pre/order inversion broken at node " +
                           std::to_string(v) + " (pre=" +
                           std::to_string(pre_[v]) + ", order[pre]=" +
                           std::to_string(pre_[v] < n
                                              ? order_[pre_[v]]
                                              : kInvalidNode) + ")");
    }
    if (post_[v] >= n || post_seen[post_[v]]++ != 0) {
      return InternalError("ppo: postorder is not a permutation at node " +
                           std::to_string(v) + " (post=" +
                           std::to_string(post_[v]) + ")");
    }
    if (tag_[v] != g.Tag(v)) {
      return InternalError("ppo: stored tag " + std::to_string(tag_[v]) +
                           " at node " + std::to_string(v) +
                           " differs from graph tag " +
                           std::to_string(g.Tag(v)));
    }
    if (subtree_size_[v] == 0 || pre_[v] + subtree_size_[v] > n) {
      return InternalError("ppo: subtree interval of node " +
                           std::to_string(v) + " out of range (pre=" +
                           std::to_string(pre_[v]) + ", size=" +
                           std::to_string(subtree_size_[v]) + ")");
    }
  }

  // Per-edge window invariants: each child's interval nests strictly inside
  // its parent's, with depth +1 and descending post — the exact conditions
  // IsReachable/DistanceBetween rely on.
  for (NodeId p = 0; p < n; ++p) {
    uint32_t children_size = 0;
    for (const graph::Digraph::Arc& arc : g.OutArcs(p)) {
      const NodeId c = arc.target;
      if (parent_[c] != p) {
        return InternalError("ppo: parent pointer of node " +
                             std::to_string(c) + " is " +
                             std::to_string(parent_[c]) +
                             ", graph edge says " + std::to_string(p));
      }
      if (depth_[c] != depth_[p] + 1) {
        return InternalError("ppo: depth of node " + std::to_string(c) +
                             " is " + std::to_string(depth_[c]) +
                             ", parent " + std::to_string(p) + " has depth " +
                             std::to_string(depth_[p]));
      }
      if (pre_[c] <= pre_[p] ||
          pre_[c] >= pre_[p] + subtree_size_[p] || post_[c] >= post_[p]) {
        return InternalError(
            "ppo: interval nesting violated on edge " + std::to_string(p) +
            " -> " + std::to_string(c) + " (parent pre=" +
            std::to_string(pre_[p]) + " size=" +
            std::to_string(subtree_size_[p]) + " post=" +
            std::to_string(post_[p]) + ", child pre=" +
            std::to_string(pre_[c]) + " post=" + std::to_string(post_[c]) +
            ")");
      }
      children_size += subtree_size_[c];
    }
    if (subtree_size_[p] != children_size + 1) {
      return InternalError("ppo: subtree size of node " + std::to_string(p) +
                           " is " + std::to_string(subtree_size_[p]) +
                           ", children sum to " +
                           std::to_string(children_size));
    }
    if (g.InDegree(p) == 0 &&
        (parent_[p] != kInvalidNode || depth_[p] != 0)) {
      return InternalError("ppo: root node " + std::to_string(p) +
                           " has parent/depth bookkeeping");
    }
  }
  return PathIndex::Validate(g, options);
}

}  // namespace flix::index
