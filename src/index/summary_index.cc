#include "index/summary_index.h"

#include <algorithm>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.h"
#include "graph/scc.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace flix::index {
namespace {

// Process-wide count of results yielded by summary-pruned frontier cursors
// (resolved once; Counter addresses survive MetricsRegistry::Reset()).
obs::Counter& SummaryPullCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter(obs::names::kCursorPulledSummary);
  return counter;
}

size_t TagUniverse(const graph::Digraph& g) {
  TagId max_tag = 0;
  bool any = false;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.Tag(v) != kInvalidTag) {
      max_tag = std::max(max_tag, g.Tag(v));
      any = true;
    }
  }
  return any ? static_cast<size_t>(max_tag) + 1 : 0;
}

int DepthLimit(const SummaryOptions& options, TagId tag) {
  if (options.depth_of_tag.empty()) return INT32_MAX;
  if (tag == kInvalidTag || tag >= options.depth_of_tag.size()) return 0;
  return options.depth_of_tag[tag];
}

// Segment array ids (kIndex segment, strategy = kSummary). The quotient
// graph's arrays start at kSummaryBase (graph::Digraph::AppendArrays).
constexpr uint32_t kBlockOfArray = 1;
constexpr uint32_t kExtentOffsets = 2;
constexpr uint32_t kExtentFlat = 3;
constexpr uint32_t kFwdTagsOffsets = 4;
constexpr uint32_t kFwdTagsFlat = 5;
constexpr uint32_t kBwdTagsOffsets = 6;
constexpr uint32_t kBwdTagsFlat = 7;
constexpr uint32_t kSummaryParams = 8;  // [tag_words]
constexpr uint32_t kSummaryBase = 10;

}  // namespace

std::unique_ptr<SummaryIndex> SummaryIndex::Build(
    const graph::Digraph& g, const SummaryOptions& options) {
  auto index = std::unique_ptr<SummaryIndex>(new SummaryIndex(g));
  index->BuildSummary(options);
  index->BuildPruning();
  return index;
}

std::unique_ptr<SummaryIndex> SummaryIndex::BuildFb(const graph::Digraph& g) {
  SummaryOptions options;
  options.forward_refinement = true;
  return Build(g, options);
}

std::unique_ptr<SummaryIndex> SummaryIndex::BuildDk(
    const graph::Digraph& g,
    const std::vector<std::vector<TagId>>& workload_paths) {
  SummaryOptions options;
  options.depth_of_tag.assign(TagUniverse(g), 0);
  int max_depth = 0;
  for (const auto& path : workload_paths) {
    for (size_t i = 0; i < path.size(); ++i) {
      if (path[i] < options.depth_of_tag.size()) {
        options.depth_of_tag[path[i]] =
            std::max(options.depth_of_tag[path[i]], static_cast<int>(i));
        max_depth = std::max(max_depth, static_cast<int>(i));
      }
    }
  }
  options.max_rounds = max_depth;
  return Build(g, options);
}

void SummaryIndex::BuildSummary(const SummaryOptions& options) {
  const size_t n = g_.NumNodes();
  block_of_.assign(n, 0);

  // Round 0: partition by tag.
  {
    std::unordered_map<TagId, uint32_t> block_of_tag;
    for (NodeId v = 0; v < n; ++v) {
      const auto [it, inserted] = block_of_tag.emplace(
          g_.Tag(v), static_cast<uint32_t>(block_of_tag.size()));
      block_of_[v] = it->second;
    }
  }

  // Iterated refinement. Signature of a live node: (old block, predecessor
  // blocks, successor blocks if F&B). Frozen nodes (their per-tag depth is
  // exhausted) keep their block — the D(k) locality rule.
  size_t num_blocks = 0;
  for (int round = 1;
       options.max_rounds < 0 || round <= options.max_rounds; ++round) {
    using Signature = std::tuple<uint32_t, std::vector<uint32_t>,
                                 std::vector<uint32_t>>;
    std::map<Signature, uint32_t> blocks;
    std::vector<uint32_t> next(n);
    std::vector<uint32_t> preds;
    std::vector<uint32_t> succs;
    // Frozen nodes first so their block numbering is stable per old block.
    std::unordered_map<uint32_t, uint32_t> frozen_blocks;
    for (NodeId v = 0; v < n; ++v) {
      if (DepthLimit(options, g_.Tag(v)) >= round) continue;
      const auto [it, inserted] = frozen_blocks.emplace(
          block_of_[v], static_cast<uint32_t>(frozen_blocks.size()));
      next[v] = it->second;
    }
    uint32_t next_id = static_cast<uint32_t>(frozen_blocks.size());
    for (NodeId v = 0; v < n; ++v) {
      if (DepthLimit(options, g_.Tag(v)) < round) continue;
      preds.clear();
      for (const graph::Digraph::Arc& arc : g_.InArcs(v)) {
        preds.push_back(block_of_[arc.target]);
      }
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
      succs.clear();
      if (options.forward_refinement) {
        for (const graph::Digraph::Arc& arc : g_.OutArcs(v)) {
          succs.push_back(block_of_[arc.target]);
        }
        std::sort(succs.begin(), succs.end());
        succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
      }
      const auto [it, inserted] =
          blocks.emplace(Signature{block_of_[v], preds, succs}, next_id);
      if (inserted) ++next_id;
      next[v] = it->second;
    }
    const bool stable =
        next_id == num_blocks &&
        std::equal(next.begin(), next.end(), block_of_.begin());
    block_of_ = std::move(next);
    num_blocks = next_id;
    if (stable) break;
  }

  // Renumber densely and build extents + summary graph.
  std::unordered_map<uint32_t, uint32_t> remap;
  for (NodeId v = 0; v < n; ++v) {
    const auto [it, inserted] =
        remap.emplace(block_of_[v], static_cast<uint32_t>(remap.size()));
    block_of_[v] = it->second;
  }
  extents_.Assign(remap.size());
  for (NodeId v = 0; v < n; ++v) extents_.Row(block_of_[v]).push_back(v);

  summary_ = graph::Digraph(extents_.size());
  std::vector<uint32_t> last_seen(extents_.size(), UINT32_MAX);
  for (uint32_t b = 0; b < extents_.size(); ++b) {
    for (const NodeId v : extents_[b]) {
      for (const graph::Digraph::Arc& arc : g_.OutArcs(v)) {
        const uint32_t target = block_of_[arc.target];
        if (last_seen[target] == b) continue;
        last_seen[target] = b;
        summary_.AddEdge(b, target, arc.kind);
      }
    }
  }
}

void SummaryIndex::BuildPruning() {
  const size_t num_blocks = extents_.size();
  const size_t num_tags = TagUniverse(g_);
  tag_words_ = (num_tags + 63) / 64;

  forward_tags_.Assign(num_blocks);
  backward_tags_.Assign(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    forward_tags_.Row(b).assign(tag_words_, 0);
    backward_tags_.Row(b).assign(tag_words_, 0);
    const TagId tag =
        extents_[b].empty() ? kInvalidTag : g_.Tag(extents_[b].front());
    if (tag != kInvalidTag) {
      forward_tags_.Row(b)[tag / 64] |= uint64_t{1} << (tag % 64);
      backward_tags_.Row(b)[tag / 64] |= uint64_t{1} << (tag % 64);
    }
  }

  const graph::SccResult scc = graph::StronglyConnectedComponents(summary_);
  const graph::Digraph condensed = graph::Condense(summary_, scc);

  // Forward sets: pull from successors, ascending component ids (Tarjan
  // numbers sinks first, so successors are complete when visited).
  std::vector<std::vector<uint64_t>> comp_fwd(
      scc.num_components, std::vector<uint64_t>(tag_words_, 0));
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    for (const NodeId b : scc.members[c]) {
      for (size_t w = 0; w < tag_words_; ++w) {
        comp_fwd[c][w] |= forward_tags_[b][w];
      }
    }
    for (const graph::Digraph::Arc& arc : condensed.OutArcs(c)) {
      for (size_t w = 0; w < tag_words_; ++w) {
        comp_fwd[c][w] |= comp_fwd[arc.target][w];
      }
    }
  }
  // Backward sets: push into successors, descending ids (ancestors carry
  // higher component numbers, so every contribution to c lands before c is
  // processed).
  std::vector<std::vector<uint64_t>> comp_bwd(
      scc.num_components, std::vector<uint64_t>(tag_words_, 0));
  for (uint32_t c = scc.num_components; c-- > 0;) {
    for (const NodeId b : scc.members[c]) {
      for (size_t w = 0; w < tag_words_; ++w) {
        comp_bwd[c][w] |= backward_tags_[b][w];
      }
    }
    for (const graph::Digraph::Arc& arc : condensed.OutArcs(c)) {
      for (size_t w = 0; w < tag_words_; ++w) {
        comp_bwd[arc.target][w] |= comp_bwd[c][w];
      }
    }
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    forward_tags_.Row(b) = comp_fwd[scc.component_of[b]];
    backward_tags_.Row(b) = comp_bwd[scc.component_of[b]];
  }
}

bool SummaryIndex::CanReachTag(uint32_t block, TagId tag) const {
  if (tag == kInvalidTag) return true;
  const size_t word = tag / 64;
  if (word >= tag_words_) return false;
  return (forward_tags_[block][word] >> (tag % 64)) & 1;
}

bool SummaryIndex::ReachedFromTag(uint32_t block, TagId tag) const {
  if (tag == kInvalidTag) return true;
  const size_t word = tag / 64;
  if (word >= tag_words_) return false;
  return (backward_tags_[block][word] >> (tag % 64)) & 1;
}

Distance SummaryIndex::PointSearch(NodeId from, NodeId stop_at) const {
  const TagId stop_tag = g_.Tag(stop_at);
  std::vector<Distance> dist(g_.NumNodes(), kUnreachable);
  dist[from] = 0;
  std::deque<NodeId> queue = {from};
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (v == stop_at && v != from) return dist[v];
    for (const graph::Digraph::Arc& arc : g_.OutArcs(v)) {
      const NodeId w = arc.target;
      if (dist[w] != kUnreachable) continue;
      // Prune branches that cannot even reach the target's tag.
      if (!CanReachTag(block_of_[w], stop_tag)) continue;
      dist[w] = dist[v] + 1;
      queue.push_back(w);
    }
  }
  return kUnreachable;
}

bool SummaryIndex::IsReachable(NodeId from, NodeId to) const {
  return DistanceBetween(from, to) != kUnreachable;
}

Distance SummaryIndex::DistanceBetween(NodeId from, NodeId to) const {
  if (from == to) return 0;
  return PointSearch(from, to);
}

std::unique_ptr<NodeDistCursor> SummaryIndex::DescendantsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kForward,
      [this, tag](NodeId w) { return CanReachTag(block_of_[w], tag); }, tag,
      /*wildcard=*/false, /*include_source=*/false, std::nullopt,
      &SummaryPullCounter());
}

std::unique_ptr<NodeDistCursor> SummaryIndex::DescendantsCursor(
    NodeId from) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kForward, graph::BfsFrontier::ExpandFilter{},
      kInvalidTag, /*wildcard=*/true, /*include_source=*/false, std::nullopt,
      &SummaryPullCounter());
}

std::unique_ptr<NodeDistCursor> SummaryIndex::AncestorsByTagCursor(
    NodeId from, TagId tag) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kBackward,
      [this, tag](NodeId w) { return ReachedFromTag(block_of_[w], tag); }, tag,
      /*wildcard=*/false, /*include_source=*/false, std::nullopt,
      &SummaryPullCounter());
}

std::unique_ptr<NodeDistCursor> SummaryIndex::ReachableAmongCursor(
    NodeId from, std::span<const NodeId> targets) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kForward, graph::BfsFrontier::ExpandFilter{},
      kInvalidTag, /*wildcard=*/true, /*include_source=*/true,
      std::unordered_set<NodeId>(targets.begin(), targets.end()),
      &SummaryPullCounter());
}

std::unique_ptr<NodeDistCursor> SummaryIndex::AncestorsAmongCursor(
    NodeId from, std::span<const NodeId> sources) const {
  return std::make_unique<FrontierCursor>(
      g_, from, graph::Direction::kBackward, graph::BfsFrontier::ExpandFilter{},
      kInvalidTag, /*wildcard=*/true, /*include_source=*/true,
      std::unordered_set<NodeId>(sources.begin(), sources.end()),
      &SummaryPullCounter());
}


Status SummaryIndex::Validate(const graph::Digraph& g,
                              const ValidateOptions& options) const {
  if (&g != &g_) {
    return InternalError("summary: validated against a graph other than the "
                         "one the index is bound to");
  }
  const size_t n = g.NumNodes();
  const size_t num_blocks = extents_.size();
  if (block_of_.size() != n) {
    return InternalError("summary: block map covers " +
                         std::to_string(block_of_.size()) +
                         " nodes, graph has " + std::to_string(n));
  }
  size_t extent_members = 0;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    if (extents_[b].empty()) {
      return InternalError("summary: block " + std::to_string(b) +
                           " has an empty extent");
    }
    const TagId block_tag = g.Tag(extents_[b].front());
    for (const NodeId v : extents_[b]) {
      if (v >= n || block_of_[v] != b) {
        return InternalError("summary: extent of block " + std::to_string(b) +
                             " lists node " + std::to_string(v) +
                             ", whose block id is " +
                             std::to_string(v < n ? block_of_[v]
                                                  : kInvalidNode));
      }
      if (g.Tag(v) != block_tag) {
        return InternalError("summary: block " + std::to_string(b) +
                             " is not tag-homogeneous (node " +
                             std::to_string(v) + " has tag " +
                             std::to_string(g.Tag(v)) + ", block tag is " +
                             std::to_string(block_tag) + ")");
      }
    }
    extent_members += extents_[b].size();
  }
  if (extent_members != n) {
    return InternalError("summary: extents hold " +
                         std::to_string(extent_members) +
                         " members, graph has " + std::to_string(n) +
                         " nodes — some node is missing or duplicated");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (block_of_[v] >= num_blocks) {
      return InternalError("summary: node " + std::to_string(v) +
                           " maps to block " + std::to_string(block_of_[v]) +
                           ", only " + std::to_string(num_blocks) + " exist");
    }
  }

  if (summary_.NumNodes() != num_blocks) {
    return InternalError("summary: quotient graph has " +
                         std::to_string(summary_.NumNodes()) +
                         " nodes, partition has " +
                         std::to_string(num_blocks) + " blocks");
  }
  if (forward_tags_.size() != num_blocks ||
      backward_tags_.size() != num_blocks) {
    return InternalError("summary: pruning tables cover " +
                         std::to_string(forward_tags_.size()) + "/" +
                         std::to_string(backward_tags_.size()) +
                         " blocks, partition has " +
                         std::to_string(num_blocks));
  }
  for (const auto* table : {&forward_tags_, &backward_tags_}) {
    for (size_t b = 0; b < table->size(); ++b) {
      if ((*table)[b].size() != tag_words_) {
        return InternalError("summary: pruning row width " +
                             std::to_string((*table)[b].size()) +
                             " != tag_words " + std::to_string(tag_words_));
      }
    }
  }
  std::vector<std::unordered_set<uint32_t>> projected(num_blocks);
  for (NodeId u = 0; u < n; ++u) {
    for (const graph::Digraph::Arc& arc : g.OutArcs(u)) {
      projected[block_of_[u]].insert(block_of_[arc.target]);
    }
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    std::unordered_set<uint32_t> stored;
    for (const graph::Digraph::Arc& arc : summary_.OutArcs(b)) {
      stored.insert(static_cast<uint32_t>(arc.target));
    }
    if (stored != projected[b]) {
      return InternalError("summary: block edges of block " +
                           std::to_string(b) +
                           " are not the exact projection of the element "
                           "graph (" +
                           std::to_string(stored.size()) + " stored vs " +
                           std::to_string(projected[b].size()) +
                           " projected)");
    }
  }

  // Both pruning tables must equal recomputed summary reachability — a
  // missing bit silently cuts real results from the pruned traversals.
  std::vector<uint8_t> reached(num_blocks);
  for (const bool forward : {true, false}) {
    for (uint32_t b = 0; b < num_blocks; ++b) {
      std::fill(reached.begin(), reached.end(), 0);
      std::deque<uint32_t> queue = {b};
      reached[b] = 1;
      while (!queue.empty()) {
        const uint32_t c = queue.front();
        queue.pop_front();
        const auto arcs = forward ? summary_.OutArcs(c) : summary_.InArcs(c);
        for (const graph::Digraph::Arc& arc : arcs) {
          if (!reached[arc.target]) {
            reached[arc.target] = 1;
            queue.push_back(static_cast<uint32_t>(arc.target));
          }
        }
      }
      std::vector<uint64_t> want(tag_words_, 0);
      for (uint32_t c = 0; c < num_blocks; ++c) {
        if (!reached[c]) continue;
        const TagId tag = g.Tag(extents_[c].front());
        if (tag != kInvalidTag) want[tag / 64] |= uint64_t{1} << (tag % 64);
      }
      const std::span<const uint64_t> got =
          forward ? forward_tags_[b] : backward_tags_[b];
      if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
        return InternalError("summary: " +
                             std::string(forward ? "forward" : "backward") +
                             "-tag bitset of block " + std::to_string(b) +
                             " differs from recomputed summary reachability");
      }
    }
  }
  return PathIndex::Validate(g, options);
}

size_t SummaryIndex::MemoryBytes() const {
  return block_of_.MemoryBytes() + extents_.MemoryBytes() +
         summary_.MemoryBytes() + forward_tags_.MemoryBytes() +
         backward_tags_.MemoryBytes();
}

void SummaryIndex::Save(BinaryWriter& writer) const {
  // Row-wise writes keep the exact WriteNestedVec byte layout in both
  // storage modes.
  writer.WriteSpan(block_of_.span());
  writer.WriteU64(extents_.size());
  for (size_t b = 0; b < extents_.size(); ++b) writer.WriteSpan(extents_[b]);
  summary_.Save(writer);
  writer.WriteU64(forward_tags_.size());
  for (size_t b = 0; b < forward_tags_.size(); ++b) {
    writer.WriteSpan(forward_tags_[b]);
  }
  writer.WriteU64(backward_tags_.size());
  for (size_t b = 0; b < backward_tags_.size(); ++b) {
    writer.WriteSpan(backward_tags_[b]);
  }
  writer.WriteU64(tag_words_);
}

StatusOr<std::unique_ptr<SummaryIndex>> SummaryIndex::Load(
    BinaryReader& reader, const graph::Digraph& g) {
  auto index = std::unique_ptr<SummaryIndex>(new SummaryIndex(g));
  index->block_of_ = reader.ReadVec<uint32_t>();
  index->extents_ = reader.ReadNestedVec<NodeId>();
  index->summary_ = graph::Digraph::Load(reader);
  index->forward_tags_ = reader.ReadNestedVec<uint64_t>();
  index->backward_tags_ = reader.ReadNestedVec<uint64_t>();
  index->tag_words_ = reader.ReadU64();
  if (!reader.ok() || index->block_of_.size() != g.NumNodes() ||
      index->extents_.size() != index->summary_.NumNodes()) {
    return InvalidArgumentError("corrupt summary index payload");
  }
  const size_t num_blocks = index->extents_.size();
  for (const uint32_t b : index->block_of_.span()) {
    if (b >= num_blocks) {
      return InvalidArgumentError("corrupt summary block id");
    }
  }
  if (index->forward_tags_.size() != num_blocks ||
      index->backward_tags_.size() != num_blocks) {
    return InvalidArgumentError("corrupt summary tag tables");
  }
  for (const auto* table : {&index->forward_tags_, &index->backward_tags_}) {
    for (size_t b = 0; b < table->size(); ++b) {
      if ((*table)[b].size() != index->tag_words_) {
        return InvalidArgumentError("corrupt summary tag row");
      }
    }
  }
  return index;
}

void SummaryIndex::SaveSegment(storage::SegmentWriter& seg) const {
  seg.Add(kBlockOfArray, block_of_.span());
  std::vector<uint64_t> offsets;
  std::vector<NodeId> extent_flat;
  extents_.Flatten(offsets, extent_flat);
  seg.Add(kExtentOffsets, offsets);
  seg.Add(kExtentFlat, extent_flat);
  std::vector<uint64_t> bit_flat;
  forward_tags_.Flatten(offsets, bit_flat);
  seg.Add(kFwdTagsOffsets, offsets);
  seg.Add(kFwdTagsFlat, bit_flat);
  backward_tags_.Flatten(offsets, bit_flat);
  seg.Add(kBwdTagsOffsets, offsets);
  seg.Add(kBwdTagsFlat, bit_flat);
  const std::vector<uint64_t> params = {static_cast<uint64_t>(tag_words_)};
  seg.Add(kSummaryParams, params);
  summary_.AppendArrays(seg, kSummaryBase);
}

StatusOr<std::unique_ptr<SummaryIndex>> SummaryIndex::LoadSegment(
    const storage::SegmentView& view, const graph::Digraph& g) {
  auto params = view.GetArray<uint64_t>(kSummaryParams);
  if (!params.ok()) return params.status();
  if (params.value().size() != 1) {
    return InvalidArgumentError("summary segment: bad parameter array");
  }
  auto block_of = view.GetArray<uint32_t>(kBlockOfArray);
  if (!block_of.ok()) return block_of.status();
  auto extent_offsets = view.GetArray<uint64_t>(kExtentOffsets);
  if (!extent_offsets.ok()) return extent_offsets.status();
  auto extent_flat = view.GetArray<NodeId>(kExtentFlat);
  if (!extent_flat.ok()) return extent_flat.status();
  auto extents = storage::FlatRows<NodeId>::FromView(extent_offsets.value(),
                                                     extent_flat.value());
  if (!extents.ok()) return extents.status();
  auto fwd_offsets = view.GetArray<uint64_t>(kFwdTagsOffsets);
  if (!fwd_offsets.ok()) return fwd_offsets.status();
  auto fwd_flat = view.GetArray<uint64_t>(kFwdTagsFlat);
  if (!fwd_flat.ok()) return fwd_flat.status();
  auto forward = storage::FlatRows<uint64_t>::FromView(fwd_offsets.value(),
                                                       fwd_flat.value());
  if (!forward.ok()) return forward.status();
  auto bwd_offsets = view.GetArray<uint64_t>(kBwdTagsOffsets);
  if (!bwd_offsets.ok()) return bwd_offsets.status();
  auto bwd_flat = view.GetArray<uint64_t>(kBwdTagsFlat);
  if (!bwd_flat.ok()) return bwd_flat.status();
  auto backward = storage::FlatRows<uint64_t>::FromView(bwd_offsets.value(),
                                                        bwd_flat.value());
  if (!backward.ok()) return backward.status();
  auto summary = graph::Digraph::FromSegment(view, kSummaryBase);
  if (!summary.ok()) return summary.status();

  auto index = std::unique_ptr<SummaryIndex>(new SummaryIndex(g));
  index->tag_words_ = static_cast<size_t>(params.value()[0]);
  index->block_of_ = storage::FlatVec<uint32_t>::FromView(block_of.value());
  index->extents_ = std::move(extents).value();
  index->forward_tags_ = std::move(forward).value();
  index->backward_tags_ = std::move(backward).value();
  index->summary_ = std::move(summary).value();
  // Shape checks only; segment checksums prove the bytes, `check --deep`
  // covers the semantics.
  if (index->block_of_.size() != g.NumNodes() ||
      index->extents_.size() != index->summary_.NumNodes() ||
      index->forward_tags_.size() != index->extents_.size() ||
      index->backward_tags_.size() != index->extents_.size()) {
    return InvalidArgumentError("summary segment: array size mismatch");
  }
  return index;
}

}  // namespace flix::index
