// Generalized structure-summary index covering the Index Definition Scheme
// family the paper lists among the candidate path indexing strategies
// (Section 2.2: "1-Index, A(k) Index, D(k) Index, F&B Index"):
//
//   * 1-Index / A(k): backward bisimulation, optionally depth-bounded —
//     that variant lives in ApexIndex (this class generalizes the same
//     refinement machinery).
//   * F&B Index: the fixpoint of alternating backward *and* forward
//     bisimulation. The summary is stable under both edge directions, so
//     both descendant and ancestor traversals can be pruned by it.
//   * D(k) Index: *locally* adaptive refinement depth — nodes whose tags
//     the query workload exercises with long incoming paths get refined
//     deeper than untouched ones (Qun et al., SIGMOD'03). We derive the
//     per-tag depth requirement from a workload of label paths: a tag that
//     appears at position i of some workload path needs i-bisimilarity.
//
// Query evaluation mirrors ApexIndex: summary-pruned BFS over the element
// graph with exact distances; the F&B variant additionally prunes ancestor
// traversals with the backward (reachable-from) tag sets.
#ifndef FLIX_INDEX_SUMMARY_INDEX_H_
#define FLIX_INDEX_SUMMARY_INDEX_H_

#include <memory>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "index/path_index.h"
#include "storage/flat.h"

namespace flix::index {

struct SummaryOptions {
  // Include forward bisimulation in the fixpoint (F&B when true).
  bool forward_refinement = false;
  // Global refinement bound; < 0 = refine to the fixpoint.
  int max_rounds = -1;
  // Per-tag refinement depth (D(k)): node v stops splitting after
  // depth_of_tag[tag(v)] rounds. Empty = no per-node bound. Tags beyond the
  // vector's size get depth 0 (never refined past the tag partition).
  std::vector<int> depth_of_tag;
};

class SummaryIndex : public PathIndex {
 public:
  // Keeps a reference to `g`; the graph must outlive the index.
  static std::unique_ptr<SummaryIndex> Build(const graph::Digraph& g,
                                             const SummaryOptions& options = {});

  // F&B Index: forward+backward bisimulation fixpoint.
  static std::unique_ptr<SummaryIndex> BuildFb(const graph::Digraph& g);

  // D(k) Index: derive per-tag depths from a workload of label paths (a
  // path {a,b,c} requires 0-bisimilarity at a, 1 at b, 2 at c).
  static std::unique_ptr<SummaryIndex> BuildDk(
      const graph::Digraph& g,
      const std::vector<std::vector<TagId>>& workload_paths);

  StrategyKind kind() const override { return StrategyKind::kSummary; }

  bool IsReachable(NodeId from, NodeId to) const override;
  Distance DistanceBetween(NodeId from, NodeId to) const override;
  // Lazy summary-pruned BFS cursors (one frontier level per pull); the
  // ancestors cursor prunes with the backward (reached-from) tag sets.
  std::unique_ptr<NodeDistCursor> DescendantsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> DescendantsCursor(NodeId from) const override;
  std::unique_ptr<NodeDistCursor> AncestorsByTagCursor(
      NodeId from, TagId tag) const override;
  std::unique_ptr<NodeDistCursor> ReachableAmongCursor(
      NodeId from, std::span<const NodeId> targets) const override;
  std::unique_ptr<NodeDistCursor> AncestorsAmongCursor(
      NodeId from, std::span<const NodeId> sources) const override;
  size_t MemoryBytes() const override;

  // Structural invariants mirroring ApexIndex::Validate: exact extent
  // partition, tag-homogeneous blocks, summary = exact quotient graph, and
  // both pruning tables (forward_tags_, backward_tags_) equal to the
  // recomputed summary reachability. Then the base differential check.
  Status Validate(const graph::Digraph& g,
                  const ValidateOptions& options = {}) const override;

  void Save(BinaryWriter& writer) const;
  static StatusOr<std::unique_ptr<SummaryIndex>> Load(BinaryReader& reader,
                                                      const graph::Digraph& g);

  // Paged persistence. Like the stream Load, LoadSegment rebinds to `g`.
  void SaveSegment(storage::SegmentWriter& seg) const;
  static StatusOr<std::unique_ptr<SummaryIndex>> LoadSegment(
      const storage::SegmentView& view, const graph::Digraph& g);

  size_t NumBlocks() const { return extents_.size(); }
  uint32_t BlockOf(NodeId v) const { return block_of_[v]; }
  std::span<const NodeId> Extent(uint32_t block) const {
    return extents_[block];
  }

 private:
  friend struct CorruptionHook;

  explicit SummaryIndex(const graph::Digraph& g) : g_(g) {}

  void BuildSummary(const SummaryOptions& options);
  void BuildPruning();

  bool CanReachTag(uint32_t block, TagId tag) const;
  bool ReachedFromTag(uint32_t block, TagId tag) const;

  // Point lookup: forward BFS pruned by the target's tag reachability,
  // stopping at `stop_at`.
  Distance PointSearch(NodeId from, NodeId stop_at) const;

  const graph::Digraph& g_;
  storage::FlatVec<uint32_t> block_of_;
  storage::FlatRows<NodeId> extents_;
  graph::Digraph summary_;
  // Forward pruning: tags reachable from each block; backward pruning: tags
  // occurring on paths into each block.
  storage::FlatRows<uint64_t> forward_tags_;
  storage::FlatRows<uint64_t> backward_tags_;
  size_t tag_words_ = 0;
};

}  // namespace flix::index

#endif  // FLIX_INDEX_SUMMARY_INDEX_H_
