#include "index/transitive_closure.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/traversal.h"

namespace flix::index {
namespace {

graph::Digraph RandomGraph(size_t n, size_t edges, uint64_t seed) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(3)));
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)));
  }
  return g;
}

TEST(TcTest, ChainClosure) {
  graph::Digraph g(4);
  for (NodeId i = 0; i + 1 < 4; ++i) g.AddEdge(i, i + 1);
  auto built = TransitiveClosureIndex::Build(g);
  ASSERT_TRUE(built.ok());
  const auto& tc = *built;
  EXPECT_EQ(tc->NumPairs(), 6u);  // 3+2+1
  EXPECT_EQ(tc->DistanceBetween(0, 3), 3);
  EXPECT_EQ(tc->DistanceBetween(3, 0), kUnreachable);
  EXPECT_EQ(tc->DistanceBetween(2, 2), 0);
}

TEST(TcTest, MatchesOracleEverywhere) {
  const graph::Digraph g = RandomGraph(50, 120, 83);
  auto built = TransitiveClosureIndex::Build(g);
  ASSERT_TRUE(built.ok());
  const auto& tc = *built;
  const graph::ReachabilityOracle oracle(g);
  for (NodeId u = 0; u < 50; u += 3) {
    EXPECT_EQ(tc->Descendants(u), oracle.Descendants(u));
    for (TagId tag = 0; tag < 3; ++tag) {
      EXPECT_EQ(tc->DescendantsByTag(u, tag), oracle.DescendantsByTag(u, tag));
      EXPECT_EQ(tc->AncestorsByTag(u, tag), oracle.AncestorsByTag(u, tag));
    }
  }
}

TEST(TcTest, MaxPairsGuard) {
  // Complete-ish graph blows the pair budget.
  graph::Digraph g(40);
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = 0; v < 40; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  TcOptions options;
  options.max_pairs = 100;
  const auto built = TransitiveClosureIndex::Build(g, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kOutOfRange);
}

TEST(TcTest, CountClosurePairsMatchesBuild) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const graph::Digraph g = RandomGraph(40, 100, seed);
    auto built = TransitiveClosureIndex::Build(g);
    ASSERT_TRUE(built.ok());
    EXPECT_EQ(CountClosurePairs(g), (*built)->NumPairs());
  }
}

TEST(TcTest, CountClosurePairsOnCycle) {
  graph::Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  // Each node reaches the other two (self excluded): 6 pairs.
  EXPECT_EQ(CountClosurePairs(g), 6u);
}

TEST(TcTest, MemoryGrowsWithClosureSize) {
  graph::Digraph sparse(100);
  graph::Digraph dense(100);
  for (NodeId i = 0; i + 1 < 100; ++i) dense.AddEdge(i, i + 1);
  auto tc_sparse = TransitiveClosureIndex::Build(sparse);
  auto tc_dense = TransitiveClosureIndex::Build(dense);
  ASSERT_TRUE(tc_sparse.ok());
  ASSERT_TRUE(tc_dense.ok());
  EXPECT_GT((*tc_dense)->MemoryBytes(), (*tc_sparse)->MemoryBytes());
}

}  // namespace
}  // namespace flix::index
