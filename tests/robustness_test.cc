// Robustness: fuzz the XML parser with corrupted inputs (must return an
// error or a document, never crash or hang) and hammer a built Flix
// instance from many threads (const query API must be thread-safe).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "flix/flix.h"
#include "graph/traversal.h"
#include "workload/dblp_generator.h"
#include "workload/synthetic_generator.h"
#include "xml/collection.h"
#include "xml/parser.h"

namespace flix {
namespace {

TEST(ParserFuzzTest, MutatedDocumentsNeverCrash) {
  Rng rng(2026);
  workload::SyntheticOptions options;
  size_t parsed_ok = 0;
  size_t rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string text =
        workload::GenerateDocumentXml(options, "doc", 20, rng);
    // Corrupt 1-6 random bytes (overwrite, delete, or insert).
    const int mutations = 1 + static_cast<int>(rng.Uniform(6));
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const size_t pos = rng.Uniform(text.size());
      switch (rng.Uniform(3)) {
        case 0:
          text[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, static_cast<char>(rng.Uniform(128)));
      }
    }
    xml::NamePool pool;
    const StatusOr<xml::Document> result =
        xml::ParseDocument(text, "fuzz", pool);
    if (result.ok()) {
      ++parsed_ok;
      EXPECT_GT(result->NumElements(), 0u);
    } else {
      ++rejected;
      EXPECT_FALSE(result.status().message().empty());
    }
  }
  // Both outcomes must occur: mutations often break well-formedness but
  // sometimes only touch text content.
  EXPECT_GT(parsed_ok, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text(rng.Uniform(200), '\0');
    for (char& c : text) c = static_cast<char>(rng.Uniform(256));
    xml::NamePool pool;
    (void)xml::ParseDocument(text, "noise", pool);  // must not crash
  }
  SUCCEED();
}

TEST(PersistenceFuzzTest, CorruptedIndexFilesNeverCrash) {
  // Save a real index, then mutate bytes at random positions; Load must
  // return an error or (if the mutation is benign) a working instance —
  // never crash or hang.
  const auto collection = workload::GenerateSynthetic({.seed = 3033});
  ASSERT_TRUE(collection.ok());
  auto flix = core::Flix::Build(*collection, {});
  ASSERT_TRUE(flix.ok());
  std::stringstream original;
  ASSERT_TRUE((*flix)->Save(original).ok());
  const std::string bytes = original.str();

  Rng rng(99);
  size_t rejected = 0;
  for (int trial = 0; trial < 120; ++trial) {
    std::string mutated = bytes;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    std::stringstream stream(mutated);
    const auto loaded = core::Flix::Load(stream, *collection);
    if (!loaded.ok()) {
      ++rejected;
      EXPECT_FALSE(loaded.status().message().empty());
    } else {
      // A benign mutation (e.g. inside a distance value) may load; the
      // instance must still answer queries without crashing.
      (void)(*loaded)->FindDescendantsByName(collection->GlobalId(0, 0), "t0");
    }
  }
  EXPECT_GT(rejected, 50u);  // most random mutations must be caught
}

TEST(PersistenceFuzzTest, TruncatedIndexFilesNeverCrash) {
  const auto collection = workload::GenerateSynthetic({.seed = 3035});
  ASSERT_TRUE(collection.ok());
  auto flix = core::Flix::Build(*collection, {});
  ASSERT_TRUE(flix.ok());
  std::stringstream original;
  ASSERT_TRUE((*flix)->Save(original).ok());
  const std::string bytes = original.str();

  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t cut = rng.Uniform(bytes.size());
    std::stringstream stream(bytes.substr(0, cut));
    const auto loaded = core::Flix::Load(stream, *collection);
    // A strict prefix of the file can never be a complete index.
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << bytes.size();
  }
}

TEST(PersistenceFuzzTest, CorruptedCollectionFilesNeverCrash) {
  const auto collection = workload::GenerateSynthetic({.seed = 3037});
  ASSERT_TRUE(collection.ok());
  std::stringstream original;
  ASSERT_TRUE(collection->Save(original).ok());
  const std::string bytes = original.str();

  Rng rng(103);
  for (int trial = 0; trial < 120; ++trial) {
    std::string mutated = bytes;
    for (int m = 0; m < 3; ++m) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    std::stringstream stream(mutated);
    (void)xml::Collection::Load(stream);  // must not crash
  }
  for (int trial = 0; trial < 60; ++trial) {
    std::stringstream stream(bytes.substr(0, rng.Uniform(bytes.size())));
    (void)xml::Collection::Load(stream);  // must not crash
  }
  SUCCEED();
}

TEST(ConcurrencyTest, ParallelQueriesAgreeWithSerialResults) {
  workload::DblpOptions options;
  options.num_publications = 300;
  const auto collection = workload::GenerateDblp(options);
  ASSERT_TRUE(collection.ok());
  core::FlixOptions fopts;
  fopts.config = core::MdbConfig::kHybrid;
  fopts.partition_bound = 2000;
  auto flix = core::Flix::Build(*collection, fopts);
  ASSERT_TRUE(flix.ok());

  // Serial reference answers.
  const graph::Digraph g = collection->BuildGraph();
  std::vector<NodeId> starts;
  for (DocId d = collection->NumDocuments(); d-- > 0 && starts.size() < 8;) {
    starts.push_back(collection->GlobalId(d, 0));
  }
  std::vector<std::vector<core::Result>> reference;
  for (const NodeId start : starts) {
    reference.push_back((*flix)->FindDescendantsByName(start, "article"));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        for (size_t i = 0; i < starts.size(); ++i) {
          const auto results =
              (*flix)->FindDescendantsByName(starts[i], "article");
          if (results != reference[i]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Statistics got accumulated from every thread without tearing.
  const core::QueryStats stats = (*flix)->CumulativeQueryStats();
  EXPECT_GE(stats.index_probes, 4u * 20u * starts.size());
}

TEST(ConcurrencyTest, ParallelConnectionTests) {
  const auto collection = workload::GenerateSynthetic({.seed = 2030});
  ASSERT_TRUE(collection.ok());
  auto flix = core::Flix::Build(*collection, {});
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 200; ++i) {
        const NodeId a = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
        const NodeId b = static_cast<NodeId>(rng.Uniform(g.NumNodes()));
        if ((*flix)->IsConnected(a, b) != oracle.IsReachable(a, b)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace flix
