#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/document.h"
#include "xml/name_pool.h"

namespace flix::xml {
namespace {

Document MustParse(std::string_view text, NamePool& pool) {
  StatusOr<Document> doc = ParseDocument(text, "test", pool);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

TEST(ParserTest, MinimalDocument) {
  NamePool pool;
  const Document doc = MustParse("<root/>", pool);
  ASSERT_EQ(doc.NumElements(), 1u);
  EXPECT_EQ(pool.Name(doc.element(0).tag), "root");
  EXPECT_EQ(doc.element(0).parent, kInvalidElement);
}

TEST(ParserTest, NestedElements) {
  NamePool pool;
  const Document doc = MustParse("<a><b><c/></b><d/></a>", pool);
  ASSERT_EQ(doc.NumElements(), 4u);
  EXPECT_EQ(pool.Name(doc.element(0).tag), "a");
  EXPECT_EQ(pool.Name(doc.element(1).tag), "b");
  EXPECT_EQ(pool.Name(doc.element(2).tag), "c");
  EXPECT_EQ(pool.Name(doc.element(3).tag), "d");
  EXPECT_EQ(doc.element(1).parent, 0u);
  EXPECT_EQ(doc.element(2).parent, 1u);
  EXPECT_EQ(doc.element(3).parent, 0u);
  ASSERT_EQ(doc.element(0).children.size(), 2u);
}

TEST(ParserTest, ElementsAreInDocumentOrder) {
  NamePool pool;
  const Document doc = MustParse("<a><b/><c><d/></c><e/></a>", pool);
  const char* expected[] = {"a", "b", "c", "d", "e"};
  for (ElementId i = 0; i < doc.NumElements(); ++i) {
    EXPECT_EQ(pool.Name(doc.element(i).tag), expected[i]);
  }
}

TEST(ParserTest, Attributes) {
  NamePool pool;
  const Document doc =
      MustParse(R"(<a x="1" y='two' z="a&amp;b"/>)", pool);
  ASSERT_EQ(doc.element(0).attributes.size(), 3u);
  EXPECT_EQ(doc.element(0).attributes[0].name, "x");
  EXPECT_EQ(doc.element(0).attributes[0].value, "1");
  EXPECT_EQ(doc.element(0).attributes[1].value, "two");
  EXPECT_EQ(doc.element(0).attributes[2].value, "a&b");
  EXPECT_EQ(doc.AttributeValue(0, "y"), "two");
  EXPECT_EQ(doc.AttributeValue(0, "missing"), "");
}

TEST(ParserTest, TextContent) {
  NamePool pool;
  const Document doc = MustParse("<a>  hello world  </a>", pool);
  EXPECT_EQ(doc.element(0).text, "hello world");
}

TEST(ParserTest, TextWhitespacePreservedWhenTrimDisabled) {
  NamePool pool;
  ParseOptions options;
  options.trim_whitespace = false;
  StatusOr<Document> doc = ParseDocument("<a> x </a>", "t", pool, options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->element(0).text, " x ");
}

TEST(ParserTest, EntityDecoding) {
  NamePool pool;
  const Document doc =
      MustParse("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos;</a>", pool);
  EXPECT_EQ(doc.element(0).text, "<tag> & \"q\" 's'");
}

TEST(ParserTest, NumericCharacterReferences) {
  NamePool pool;
  const Document doc = MustParse("<a>&#65;&#x42;&#x2013;</a>", pool);
  EXPECT_EQ(doc.element(0).text, "AB\xE2\x80\x93");
}

TEST(ParserTest, CdataSection) {
  NamePool pool;
  const Document doc =
      MustParse("<a><![CDATA[raw <markup> & stuff]]></a>", pool);
  EXPECT_EQ(doc.element(0).text, "raw <markup> & stuff");
}

TEST(ParserTest, CommentsIgnored) {
  NamePool pool;
  const Document doc =
      MustParse("<!-- before --><a><!-- inside --><b/></a><!-- after -->",
                pool);
  EXPECT_EQ(doc.NumElements(), 2u);
}

TEST(ParserTest, XmlDeclAndDoctypeSkipped) {
  NamePool pool;
  const Document doc = MustParse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE a [ <!ELEMENT a (b)*> ]>\n"
      "<a><b/></a>",
      pool);
  EXPECT_EQ(doc.NumElements(), 2u);
}

TEST(ParserTest, ProcessingInstructionsSkipped) {
  NamePool pool;
  const Document doc = MustParse("<a><?php echo; ?><b/></a>", pool);
  EXPECT_EQ(doc.NumElements(), 2u);
}

TEST(ParserTest, IdAttributesRegisterAnchors) {
  NamePool pool;
  const Document doc =
      MustParse(R"(<a id="root"><b id="x1"/><c xml:id="x2"/></a>)", pool);
  EXPECT_EQ(doc.FindAnchor("root"), 0u);
  EXPECT_EQ(doc.FindAnchor("x1"), 1u);
  EXPECT_EQ(doc.FindAnchor("x2"), 2u);
  EXPECT_EQ(doc.FindAnchor("nope"), kInvalidElement);
}

TEST(ParserTest, CustomIdAttributes) {
  NamePool pool;
  ParseOptions options;
  options.id_attributes = {"anchor"};
  StatusOr<Document> doc =
      ParseDocument(R"(<a anchor="here" id="ignored"/>)", "t", pool, options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->FindAnchor("here"), 0u);
  EXPECT_EQ(doc->FindAnchor("ignored"), kInvalidElement);
}

TEST(ParserTest, MixedContentConcatenatesText) {
  NamePool pool;
  const Document doc = MustParse("<a>one <b/> two</a>", pool);
  EXPECT_EQ(doc.element(0).text, "one  two");
}

TEST(ParserTest, TagNamesWithNamespacesAndDashes) {
  NamePool pool;
  const Document doc =
      MustParse(R"(<ns:doc><science-fiction xlink:href="x"/></ns:doc>)", pool);
  EXPECT_EQ(pool.Name(doc.element(0).tag), "ns:doc");
  EXPECT_EQ(pool.Name(doc.element(1).tag), "science-fiction");
  EXPECT_EQ(doc.element(1).attributes[0].name, "xlink:href");
}

// ---- Malformed input ----

TEST(ParserErrorTest, MismatchedEndTag) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a><b></a></b>", "t", pool).ok());
}

TEST(ParserErrorTest, UnterminatedElement) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a><b>", "t", pool).ok());
}

TEST(ParserErrorTest, GarbageAfterRoot) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a/>trailing", "t", pool).ok());
  EXPECT_FALSE(ParseDocument("<a/><b/>", "t", pool).ok());
}

TEST(ParserErrorTest, BadAttributeSyntax) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a x=1/>", "t", pool).ok());
  EXPECT_FALSE(ParseDocument("<a x=\"1/>", "t", pool).ok());
  EXPECT_FALSE(ParseDocument("<a x></a>", "t", pool).ok());
}

TEST(ParserErrorTest, UnknownEntity) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a>&unknown;</a>", "t", pool).ok());
}

TEST(ParserErrorTest, BadCharacterReference) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a>&#xZZ;</a>", "t", pool).ok());
  EXPECT_FALSE(ParseDocument("<a>&#;</a>", "t", pool).ok());
  EXPECT_FALSE(ParseDocument("<a>&#1114112;</a>", "t", pool).ok());
}

TEST(ParserErrorTest, UnterminatedComment) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a><!-- no end </a>", "t", pool).ok());
}

TEST(ParserErrorTest, UnterminatedCdata) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a><![CDATA[ no end </a>", "t", pool).ok());
}

TEST(ParserErrorTest, EmptyInput) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("", "t", pool).ok());
  EXPECT_FALSE(ParseDocument("   \n  ", "t", pool).ok());
}

TEST(ParserErrorTest, LtInAttributeValue) {
  NamePool pool;
  EXPECT_FALSE(ParseDocument("<a x=\"<\"/>", "t", pool).ok());
}

TEST(ParserErrorTest, ErrorMentionsLocation) {
  NamePool pool;
  StatusOr<Document> doc = ParseDocument("<a>\n<b x=1/></a>", "t", pool);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos)
      << doc.status().message();
}

TEST(ParserTest, DeeplyNestedDocument) {
  NamePool pool;
  std::string text;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  for (int i = 0; i < kDepth; ++i) text += "</d>";
  const Document doc = MustParse(text, pool);
  EXPECT_EQ(doc.NumElements(), static_cast<size_t>(kDepth));
  EXPECT_EQ(doc.Depth(kDepth - 1), kDepth - 1);
}

TEST(ParserTest, ExcessiveNestingRejected) {
  NamePool pool;
  std::string text;
  for (int i = 0; i < 1500; ++i) text += "<d>";
  for (int i = 0; i < 1500; ++i) text += "</d>";
  const StatusOr<Document> doc = ParseDocument(text, "deep", pool);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("nesting"), std::string::npos);
}

TEST(ParserTest, CustomDepthLimit) {
  NamePool pool;
  ParseOptions options;
  options.max_depth = 3;
  EXPECT_TRUE(ParseDocument("<a><b><c/></b></a>", "t", pool, options).ok());
  EXPECT_FALSE(
      ParseDocument("<a><b><c><d/></c></b></a>", "t", pool, options).ok());
}

TEST(ParserTest, DuplicateAnchorFirstWins) {
  NamePool pool;
  const Document doc = MustParse(R"(<a id="x"><b id="x"/></a>)", pool);
  EXPECT_EQ(doc.FindAnchor("x"), 0u);
}

}  // namespace
}  // namespace flix::xml
