#include "index/apex.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/traversal.h"

namespace flix::index {
namespace {

graph::Digraph RandomGraph(size_t n, size_t edges, uint64_t seed,
                           size_t num_tags = 4) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<TagId>(rng.Uniform(num_tags)));
  }
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)));
  }
  return g;
}

TEST(ApexTest, SummaryGroupsBisimilarNodes) {
  // Two identical subtrees: root(a) -> {b -> c, b -> c}. The two b nodes
  // (and the two c nodes) have identical incoming paths and must share a
  // block.
  graph::Digraph g;
  g.AddNode(0);              // 0: a
  g.AddNode(1);              // 1: b
  g.AddNode(2);              // 2: c
  g.AddNode(1);              // 3: b
  g.AddNode(2);              // 4: c
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  const auto apex = ApexIndex::Build(g);
  EXPECT_EQ(apex->BlockOf(1), apex->BlockOf(3));
  EXPECT_EQ(apex->BlockOf(2), apex->BlockOf(4));
  EXPECT_NE(apex->BlockOf(0), apex->BlockOf(1));
  EXPECT_EQ(apex->NumBlocks(), 3u);
}

TEST(ApexTest, DifferentIncomingPathsSplitBlocks) {
  // c under a/b vs c under a: same tag, different incoming paths.
  graph::Digraph g;
  g.AddNode(0);  // a
  g.AddNode(1);  // b
  g.AddNode(2);  // c (under b)
  g.AddNode(2);  // c (under a)
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  const auto apex = ApexIndex::Build(g);
  EXPECT_NE(apex->BlockOf(2), apex->BlockOf(3));
}

TEST(ApexTest, AkIndexCoarserThanFixpoint) {
  // With zero refinement rounds the summary is the tag partition.
  graph::Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(2);
  g.AddNode(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  ApexOptions options;
  options.max_refinement_rounds = 0;
  const auto apex = ApexIndex::Build(g, options);
  EXPECT_EQ(apex->NumBlocks(), 3u);  // tags 0, 1, 2
  EXPECT_EQ(apex->BlockOf(2), apex->BlockOf(3));
}

TEST(ApexTest, ExtentsPartitionTheNodes) {
  const graph::Digraph g = RandomGraph(60, 120, 61);
  const auto apex = ApexIndex::Build(g);
  std::vector<bool> seen(60, false);
  for (uint32_t b = 0; b < apex->NumBlocks(); ++b) {
    for (const NodeId v : apex->Extent(b)) {
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
      EXPECT_EQ(apex->BlockOf(v), b);
    }
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(ApexTest, DescendantsMatchOracle) {
  const graph::Digraph g = RandomGraph(70, 150, 67);
  const auto apex = ApexIndex::Build(g);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId start = 0; start < 70; start += 6) {
    EXPECT_EQ(apex->Descendants(start), oracle.Descendants(start));
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ(apex->DescendantsByTag(start, tag),
                oracle.DescendantsByTag(start, tag));
    }
  }
}

TEST(ApexTest, AncestorsMatchOracle) {
  const graph::Digraph g = RandomGraph(50, 110, 71);
  const auto apex = ApexIndex::Build(g);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId start = 0; start < 50; start += 4) {
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ(apex->AncestorsByTag(start, tag),
                oracle.AncestorsByTag(start, tag));
    }
  }
}

TEST(ApexTest, DistancesMatchOracle) {
  const graph::Digraph g = RandomGraph(40, 90, 73);
  const auto apex = ApexIndex::Build(g);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId u = 0; u < 40; u += 3) {
    for (NodeId v = 0; v < 40; v += 5) {
      EXPECT_EQ(apex->DistanceBetween(u, v), oracle.Distance(u, v));
    }
  }
}

TEST(ApexTest, WorksWithoutBlockClosure) {
  const graph::Digraph g = RandomGraph(40, 90, 79);
  ApexOptions options;
  options.max_blocks_for_closure = 0;  // force closure off
  const auto apex = ApexIndex::Build(g, options);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId u = 0; u < 40; u += 7) {
    for (NodeId v = 0; v < 40; v += 6) {
      EXPECT_EQ(apex->IsReachable(u, v), oracle.IsReachable(u, v));
    }
    EXPECT_EQ(apex->Descendants(u), oracle.Descendants(u));
  }
}

TEST(ApexTest, CyclicDataHandled) {
  graph::Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);  // cycle between the two tag-1 nodes
  const auto apex = ApexIndex::Build(g);
  EXPECT_TRUE(apex->IsReachable(0, 2));
  EXPECT_EQ(apex->DistanceBetween(0, 2), 2);
  EXPECT_EQ(apex->DescendantsByTag(1, 1).size(), 1u);
}

TEST(ApexTest, SummaryMuchSmallerThanDataOnRegularStructure) {
  // 50 identical small trees: the summary collapses them all.
  graph::Digraph g;
  for (int t = 0; t < 50; ++t) {
    const NodeId root = g.AddNode(0);
    const NodeId mid = g.AddNode(1);
    const NodeId leaf = g.AddNode(2);
    g.AddEdge(root, mid);
    g.AddEdge(mid, leaf);
  }
  const auto apex = ApexIndex::Build(g);
  EXPECT_EQ(apex->NumBlocks(), 3u);
  EXPECT_EQ(apex->Extent(apex->BlockOf(0)).size(), 50u);
}

}  // namespace
}  // namespace flix::index
