// Tests for per-partition workload attribution (obs/profile.h): the
// reconciliation invariant (per-partition sums equal the global
// flix.query.* counters, for every MDB configuration), the profile JSON
// round trip and its rejection of malformed documents, merging, and the
// persistence helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "flix/flix.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "workload/dblp_generator.h"
#include "xml/collection.h"

namespace flix {
namespace {

using core::Flix;
using core::FlixOptions;
using core::MdbConfig;
using core::QueryOptions;
using obs::MetricsRegistry;
using obs::PartitionDeltaMap;
using obs::PartitionProfile;
using obs::WorkloadProfile;
using obs::WorkloadProfiler;

xml::Collection SmallDblp() {
  workload::DblpOptions options;
  options.num_publications = 120;
  auto collection = workload::GenerateDblp(options);
  EXPECT_TRUE(collection.ok());
  return std::move(collection).value();
}

// Global counter values the profiler must reconcile against.
struct GlobalCounters {
  uint64_t entries_processed;
  uint64_t entries_dominated;
  uint64_t index_probes;
  uint64_t links_followed;
  uint64_t cursors_opened;
  uint64_t cursor_pulls;
  uint64_t results_emitted;

  static GlobalCounters Read() {
    auto& reg = MetricsRegistry::Global();
    return GlobalCounters{
        reg.GetCounter("flix.query.entries_processed").Value(),
        reg.GetCounter("flix.query.entries_dominated").Value(),
        reg.GetCounter("flix.query.index_probes").Value(),
        reg.GetCounter("flix.query.links_followed").Value(),
        reg.GetCounter("flix.query.cursor.opened").Value(),
        reg.GetCounter("flix.query.cursor.pulled").Value(),
        reg.GetCounter("flix.query.results_emitted").Value(),
    };
  }
};

PartitionProfile SumPartitions(const WorkloadProfile& profile) {
  return profile.Totals();
}

// Runs a mixed workload through the facade: streaming descendants,
// materialized (exact) descendants, ancestors, and a type query — every
// evaluator path that flushes per-partition deltas.
void RunMixedWorkload(const Flix& flix, const xml::Collection& collection) {
  for (DocId d = 0; d < collection.NumDocuments(); d += 7) {
    const NodeId start = collection.GlobalId(d, 0);
    flix.FindDescendantsByName(start, "author", {},
                               [](const core::Result&) { return true; });
    QueryOptions topk;
    topk.max_results = 5;
    flix.FindDescendantsByName(start, "title", topk);
    QueryOptions exact;
    exact.exact = true;
    flix.FindDescendantsByName(start, "cite", exact);
  }
  for (NodeId n = 1; n < collection.NumElements(); n += 257) {
    flix.FindAncestorsByName(n, "article");
  }
  flix.EvaluateTypeQuery("article", "author");
}

TEST(WorkloadProfilerReconciliation, PartitionSumsMatchGlobalCounters) {
  const xml::Collection collection = SmallDblp();
  const MdbConfig configs[] = {MdbConfig::kNaive, MdbConfig::kMaximalPpo,
                               MdbConfig::kUnconnectedHopi,
                               MdbConfig::kHybrid};
  for (const MdbConfig config : configs) {
    SCOPED_TRACE(core::MdbConfigName(config));
    FlixOptions options;
    options.config = config;
    options.partition_bound = 400;  // several partitions even at this scale
    auto flix = Flix::Build(collection, options);
    ASSERT_TRUE(flix.ok());

    const GlobalCounters before = GlobalCounters::Read();
    RunMixedWorkload(**flix, collection);
    const GlobalCounters after = GlobalCounters::Read();

    const WorkloadProfile profile = (*flix)->Profile();
    EXPECT_EQ(profile.partitions.size(),
              (*flix)->stats().num_meta_documents);
    const PartitionProfile sum = SumPartitions(profile);

    EXPECT_EQ(sum.entries_processed,
              after.entries_processed - before.entries_processed);
    EXPECT_EQ(sum.entries_dominated,
              after.entries_dominated - before.entries_dominated);
    EXPECT_EQ(sum.index_probes, after.index_probes - before.index_probes);
    EXPECT_EQ(sum.entry_fanout, after.links_followed - before.links_followed);
    EXPECT_EQ(sum.cursors_opened,
              after.cursors_opened - before.cursors_opened);
    EXPECT_EQ(sum.cursor_pulls, after.cursor_pulls - before.cursor_pulls);
    EXPECT_EQ(sum.results_emitted,
              after.results_emitted - before.results_emitted);
    // The workload produced real work, so the reconciliation is not an
    // empty 0 == 0 identity.
    EXPECT_GT(sum.entries_processed, 0u);
    EXPECT_GT(sum.results_emitted, 0u);
    EXPECT_GT(sum.queries, 0u);
  }
}

TEST(WorkloadProfilerTest, DisabledProfilerRecordsNothing) {
  const xml::Collection collection = SmallDblp();
  FlixOptions options;
  options.workload_profiling = false;
  auto flix = Flix::Build(collection, options);
  ASSERT_TRUE(flix.ok());
  RunMixedWorkload(**flix, collection);
  const PartitionProfile sum = SumPartitions((*flix)->Profile());
  EXPECT_EQ(sum.queries, 0u);
  EXPECT_EQ(sum.entries_processed, 0u);
  EXPECT_EQ(sum.cursor_pulls, 0u);
  EXPECT_EQ(sum.latency.count, 0u);
  // Partition identity is still described (strategy/node counts are
  // build-time facts, not recordings).
  EXPECT_GT(sum.nodes, 0u);
}

TEST(WorkloadProfilerTest, CacheHitsAttributeToStartPartition) {
  const xml::Collection collection = SmallDblp();
  FlixOptions options;
  options.query_cache_capacity = 64;
  auto flix = Flix::Build(collection, options);
  ASSERT_TRUE(flix.ok());

  const NodeId start = collection.GlobalId(0, 0);
  (*flix)->FindDescendantsByName(start, "author");  // miss + insert
  (*flix)->FindDescendantsByName(start, "author");  // hit
  const WorkloadProfile profile = (*flix)->Profile();
  const uint32_t partition = (*flix)->meta_documents().meta_of_node[start];
  ASSERT_LT(partition, profile.partitions.size());
  EXPECT_EQ(profile.partitions[partition].cache_misses, 1u);
  EXPECT_EQ(profile.partitions[partition].cache_hits, 1u);
  const PartitionProfile sum = SumPartitions(profile);
  EXPECT_EQ(sum.cache_hits, 1u);
  EXPECT_EQ(sum.cache_misses, 1u);
}

TEST(WorkloadProfilerTest, ResetClearsObservationsButKeepsIdentity) {
  WorkloadProfiler profiler;
  profiler.Resize(2);
  profiler.SetPartitionInfo(0, "PPO", 10, 1000);
  profiler.SetPartitionInfo(1, "HOPI", 20, 2000);
  PartitionDeltaMap deltas;
  deltas[1].index_probes = 3;
  profiler.RecordQuery(deltas, 5000);
  profiler.RecordCacheHit(0);

  profiler.Reset();
  const WorkloadProfile profile = profiler.Snapshot();
  ASSERT_EQ(profile.partitions.size(), 2u);
  EXPECT_EQ(profile.partitions[1].index_probes, 0u);
  EXPECT_EQ(profile.partitions[0].cache_hits, 0u);
  EXPECT_EQ(profile.partitions[1].latency.count, 0u);
  EXPECT_EQ(profile.partitions[0].strategy, "PPO");
  EXPECT_EQ(profile.partitions[1].nodes, 20u);
}

TEST(WorkloadProfilerTest, OutOfRangePartitionsAreDropped) {
  WorkloadProfiler profiler;
  profiler.Resize(1);
  PartitionDeltaMap deltas;
  deltas[0].cursor_pulls = 2;
  deltas[7].cursor_pulls = 99;  // no such partition
  profiler.RecordQuery(deltas, 100);
  profiler.RecordCacheHit(7);
  const WorkloadProfile profile = profiler.Snapshot();
  ASSERT_EQ(profile.partitions.size(), 1u);
  EXPECT_EQ(profile.partitions[0].cursor_pulls, 2u);
  EXPECT_EQ(SumPartitions(profile).cache_hits, 0u);
}

WorkloadProfile MakeSampleProfile() {
  WorkloadProfiler profiler;
  profiler.Resize(3);
  profiler.SetPartitionInfo(0, "PPO", 100, 12345);
  profiler.SetPartitionInfo(1, "HOPI", 2000, 6789000);
  profiler.SetPartitionInfo(2, "APEX", 50, 42);
  PartitionDeltaMap deltas;
  deltas[0] = obs::PartitionDelta{5, 1, 7, 2, 31, 4, 6};
  deltas[1] = obs::PartitionDelta{50, 10, 70, 20, 310, 40, 60};
  profiler.RecordQuery(deltas, 1234567);
  PartitionDeltaMap more;
  more[1].results_emitted = 3;
  profiler.RecordQuery(more, 999);
  profiler.RecordCacheHit(2);
  profiler.RecordCacheMiss(2);
  return profiler.Snapshot();
}

TEST(WorkloadProfileJson, RoundTripIsExact) {
  const WorkloadProfile original = MakeSampleProfile();
  const std::string json = obs::ProfileToJson(original);
  WorkloadProfile reparsed;
  ASSERT_TRUE(obs::ProfileFromJson(json, &reparsed));
  ASSERT_EQ(reparsed.partitions.size(), original.partitions.size());
  for (size_t i = 0; i < original.partitions.size(); ++i) {
    const PartitionProfile& a = original.partitions[i];
    const PartitionProfile& b = reparsed.partitions[i];
    EXPECT_EQ(a.partition, b.partition);
    EXPECT_EQ(a.strategy, b.strategy);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.build_ns, b.build_ns);
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.entries_processed, b.entries_processed);
    EXPECT_EQ(a.entries_dominated, b.entries_dominated);
    EXPECT_EQ(a.index_probes, b.index_probes);
    EXPECT_EQ(a.cursors_opened, b.cursors_opened);
    EXPECT_EQ(a.cursor_pulls, b.cursor_pulls);
    EXPECT_EQ(a.entry_fanout, b.entry_fanout);
    EXPECT_EQ(a.results_emitted, b.results_emitted);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.cache_misses, b.cache_misses);
    EXPECT_EQ(a.latency.count, b.latency.count);
    EXPECT_EQ(a.latency.sum, b.latency.sum);
    EXPECT_EQ(a.latency.min, b.latency.min);
    EXPECT_EQ(a.latency.max, b.latency.max);
    EXPECT_EQ(a.latency.mean, b.latency.mean);      // %.17g: exact
    EXPECT_EQ(a.latency.p50, b.latency.p50);
    EXPECT_EQ(a.latency.p95, b.latency.p95);
    EXPECT_EQ(a.latency.p99, b.latency.p99);
    EXPECT_EQ(a.latency.p999, b.latency.p999);
    EXPECT_EQ(a.latency.buckets, b.latency.buckets);
  }
  // A second serialization of the reparsed profile is byte-identical.
  EXPECT_EQ(obs::ProfileToJson(reparsed), json);
}

TEST(WorkloadProfileJson, RejectsMalformedDocuments) {
  const std::string good = obs::ProfileToJson(MakeSampleProfile());
  WorkloadProfile out;
  EXPECT_FALSE(obs::ProfileFromJson("", &out));
  EXPECT_FALSE(obs::ProfileFromJson("{}", &out));
  EXPECT_FALSE(obs::ProfileFromJson("not json at all", &out));
  EXPECT_FALSE(obs::ProfileFromJson("{\"schema_version\":1}", &out));
  // Wrong version.
  EXPECT_FALSE(obs::ProfileFromJson(
      "{\"schema_version\":99,\"partitions\":[]}", &out));
  // Truncations at every prefix must fail, never crash.
  for (size_t len = 0; len < good.size(); len += 13) {
    EXPECT_FALSE(obs::ProfileFromJson(good.substr(0, len), &out)) << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(obs::ProfileFromJson(good + "x", &out));
  // Partition ids must be dense and in order.
  EXPECT_FALSE(obs::ProfileFromJson(
      "{\"schema_version\":1,\"partitions\":[{\"partition\":1,"
      "\"strategy\":\"PPO\",\"nodes\":1,\"build_ns\":0,\"queries\":0,"
      "\"entries_processed\":0,\"entries_dominated\":0,\"index_probes\":0,"
      "\"cursors_opened\":0,\"cursor_pulls\":0,\"entry_fanout\":0,"
      "\"results_emitted\":0,\"cache_hits\":0,\"cache_misses\":0,"
      "\"latency\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"mean\":0,"
      "\"p50\":0,\"p95\":0,\"p99\":0,\"p999\":0,\"buckets\":[]}}]}",
      &out));
  // An empty but well-formed profile parses.
  EXPECT_TRUE(obs::ProfileFromJson(
      "{\"schema_version\":1,\"partitions\":[]}", &out));
  EXPECT_TRUE(out.partitions.empty());
}

TEST(WorkloadProfileTest, MergeAccumulatesAndGrows) {
  const WorkloadProfile a = MakeSampleProfile();
  WorkloadProfile b = MakeSampleProfile();
  b.partitions.resize(2);  // shorter profile: merge must grow the target

  WorkloadProfile merged = b;
  merged.Merge(a);
  ASSERT_EQ(merged.partitions.size(), 3u);
  EXPECT_EQ(merged.partitions[1].cursor_pulls,
            a.partitions[1].cursor_pulls + b.partitions[1].cursor_pulls);
  EXPECT_EQ(merged.partitions[1].queries,
            a.partitions[1].queries + b.partitions[1].queries);
  EXPECT_EQ(merged.partitions[1].latency.count,
            a.partitions[1].latency.count + b.partitions[1].latency.count);
  // Partition 2 exists only in `a` and carries over unchanged.
  EXPECT_EQ(merged.partitions[2].cache_hits, a.partitions[2].cache_hits);
  EXPECT_EQ(merged.partitions[2].strategy, "APEX");
}

TEST(WorkloadProfileTest, RankByWorkOrdersByWorkScore) {
  const WorkloadProfile profile = MakeSampleProfile();
  const std::vector<uint32_t> ranked = profile.RankByWork();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], 1u);  // partition 1 got 10x the work
  EXPECT_EQ(ranked[1], 0u);
  EXPECT_EQ(ranked[2], 2u);  // never touched
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(profile.partitions[ranked[i - 1]].WorkScore(),
              profile.partitions[ranked[i]].WorkScore());
  }
}

TEST(WorkloadProfileTest, ToTextRanksAndTotals) {
  const std::string text = obs::ProfileToText(MakeSampleProfile(), 2);
  EXPECT_NE(text.find("strategy"), std::string::npos);
  EXPECT_NE(text.find("HOPI"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
  // top_n=2 hides the idle APEX partition.
  EXPECT_EQ(text.find("APEX"), std::string::npos);
}

// Every surface that names a partition id — the JSON profile, the text
// table, and the trace span attrs (see obs_trace_test) — uses the field
// name "partition". The JSON/text emitters once disagreed ("meta" in some
// headers); this pins the schema so downstream join scripts keep working.
TEST(WorkloadProfileSchema, PartitionIdFieldIsNamedPartition) {
  const std::string json = obs::ProfileToJson(MakeSampleProfile());
  EXPECT_NE(json.find("\"partition\":"), std::string::npos);
  EXPECT_EQ(json.find("\"meta\""), std::string::npos);

  const std::string text = obs::ProfileToText(MakeSampleProfile(), 0);
  EXPECT_NE(text.find("partition"), std::string::npos);
  EXPECT_EQ(text.find("meta"), std::string::npos);
}

TEST(WorkloadProfilePersistence, SaveLoadRoundTrip) {
  const WorkloadProfile original = MakeSampleProfile();
  const std::string path = testing::TempDir() + "/flix_profile_test.json";
  ASSERT_TRUE(obs::SaveProfileFile(path, original));
  WorkloadProfile loaded;
  ASSERT_TRUE(obs::LoadProfileFile(path, &loaded));
  EXPECT_EQ(obs::ProfileToJson(loaded), obs::ProfileToJson(original));
  std::remove(path.c_str());
  EXPECT_FALSE(obs::LoadProfileFile(path, &loaded));
}

TEST(WorkloadProfilePersistence, ProfileFilePathAppendsSuffix) {
  EXPECT_EQ(obs::ProfileFilePath("data.flix"), "data.flix.profile.json");
  EXPECT_EQ(obs::ProfileFilePath("/x/y/i"), "/x/y/i.profile.json");
}

}  // namespace
}  // namespace flix
