// Concurrency stress tests (ctest label `stress`): hammer the thread-facing
// pieces — StreamedList, AsyncQuery, QueryCache, MetricsRegistry — from
// several threads at once. Under the plain build these assert functional
// invariants (no lost or duplicated results, consistent stats); under
// -DFLIX_SANITIZE=thread they are the workload the TSan CI job runs to
// prove the synchronization itself.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "flix/flix.h"
#include "flix/query_cache.h"
#include "flix/streamed_list.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "workload/query_workload.h"
#include "workload/synthetic_generator.h"

namespace flix::core {
namespace {

constexpr size_t kThreads = 4;

TEST(StreamedListStressTest, ProducersAndConsumersAgreeOnTotals) {
  StreamedList list(/*capacity=*/8);  // small: force blocking on both sides
  constexpr size_t kPerProducer = 500;
  constexpr size_t kProducers = 2;

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&list, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        const NodeId node = static_cast<NodeId>(p * kPerProducer + i);
        if (!list.Push({node, static_cast<Distance>(i % 7)})) return;
      }
    });
  }

  std::atomic<size_t> consumed{0};
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kThreads; ++c) {
    consumers.emplace_back([&list, &consumed, c] {
      while (true) {
        // Mix the blocking and polling paths.
        const std::optional<Result> r =
            (c % 2 == 0) ? list.Next() : list.TryNext();
        if (r.has_value()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (c % 2 == 0) return;  // Next(): closed and drained
        // Pollers retire once production is done; any result still queued
        // at that instant is drained by the blocking consumers.
        if (list.produced() == kProducers * kPerProducer) return;
        std::this_thread::yield();
      }
    });
  }

  for (std::thread& t : producers) t.join();
  list.Close();
  for (std::thread& t : consumers) t.join();

  EXPECT_EQ(list.produced(), kProducers * kPerProducer);
  // Every produced result is handed to exactly one consumer: nothing lost,
  // nothing duplicated.
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(StreamedListStressTest, CancelRacesWithProducer) {
  for (int round = 0; round < 20; ++round) {
    StreamedList list(/*capacity=*/4);
    std::thread producer([&list] {
      NodeId n = 0;
      while (list.Push({n, 0})) ++n;
    });
    std::thread canceller([&list] { list.Cancel(); });
    canceller.join();
    producer.join();
    EXPECT_TRUE(list.cancelled());
  }
}

TEST(QueryCacheStressTest, ConcurrentLookupsAndInsertsStayConsistent) {
  QueryCache cache(/*capacity=*/32);
  constexpr size_t kOps = 2000;

  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      std::vector<Result> results;
      for (size_t i = 0; i < kOps; ++i) {
        const NodeId start = static_cast<NodeId>((t * 13 + i) % 64);
        const TagId tag = static_cast<TagId>(i % 4);
        if (!cache.Lookup(start, tag, &results)) {
          cache.Insert(start, tag,
                       {{start, static_cast<Distance>(i % 5)}});
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  const QueryCacheStats stats = cache.Stats();
  EXPECT_LE(stats.size, 32u);
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOps);
  // Every miss triggered an insert (fresh or overwrite of a racing key).
  EXPECT_EQ(stats.insertions + stats.overwrites, stats.misses);
}

TEST(MetricsStressTest, CountersAndHistogramsCountEveryUpdate) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t counter_before =
      registry.GetCounter("stress.test.counter").Value();
  const uint64_t histogram_before =
      registry.GetHistogram("stress.test.histogram").Count();
  constexpr size_t kOps = 5000;

  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      obs::Counter& counter = registry.GetCounter("stress.test.counter");
      obs::Histogram& histogram =
          registry.GetHistogram("stress.test.histogram");
      for (size_t i = 0; i < kOps; ++i) {
        counter.Add(1);
        histogram.Record(i % 97);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(registry.GetCounter("stress.test.counter").Value(),
            counter_before + kThreads * kOps);
  EXPECT_EQ(registry.GetHistogram("stress.test.histogram").Count(),
            histogram_before + kThreads * kOps);
}

TEST(WorkloadProfilerStressTest, ConcurrentRecordersLoseNoWork) {
  // Threads hammer RecordQuery / cache attribution on overlapping
  // partitions while a reader keeps snapshotting; under TSan this is the
  // synchronization proof, under the plain build an exactness check.
  obs::WorkloadProfiler profiler;
  static constexpr size_t kPartitions = 3;
  profiler.Resize(kPartitions);
  for (uint32_t p = 0; p < kPartitions; ++p) {
    profiler.SetPartitionInfo(p, "PPO", 10 * (p + 1), 100);
  }
  constexpr size_t kQueriesPerThread = 2000;

  std::atomic<bool> stop{false};
  std::thread reader([&profiler, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::WorkloadProfile profile = profiler.Snapshot();
      EXPECT_EQ(profile.partitions.size(), kPartitions);
    }
  });

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&profiler, t] {
      for (size_t i = 0; i < kQueriesPerThread; ++i) {
        obs::PartitionDeltaMap deltas;
        obs::PartitionDelta& mine = deltas[t % kPartitions];
        mine.index_probes = 2;
        mine.cursor_pulls = 3;
        deltas[(t + 1) % kPartitions].results_emitted = 1;
        profiler.RecordQuery(deltas, /*latency_ns=*/i % 1000);
        profiler.RecordCacheHit(t % kPartitions);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const obs::PartitionProfile totals = profiler.Snapshot().Totals();
  const uint64_t total_queries = kThreads * kQueriesPerThread;
  // Each query touched two partitions, so per-partition query counts sum
  // to twice the number of queries and every unit of work survived.
  EXPECT_EQ(totals.queries, 2 * total_queries);
  EXPECT_EQ(totals.index_probes, 2 * total_queries);
  EXPECT_EQ(totals.cursor_pulls, 3 * total_queries);
  EXPECT_EQ(totals.results_emitted, total_queries);
  EXPECT_EQ(totals.cache_hits, total_queries);
  EXPECT_EQ(totals.latency.count, 2 * total_queries);
}

TEST(WorkloadProfilerStressTest, EnableDisableRacesWithRecording) {
  obs::WorkloadProfiler profiler;
  profiler.Resize(1);
  std::atomic<bool> stop{false};
  std::thread toggler([&profiler, &stop] {
    bool on = false;
    while (!stop.load(std::memory_order_relaxed)) {
      profiler.SetEnabled(on = !on);
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&profiler] {
      for (size_t i = 0; i < 5000; ++i) {
        if (!profiler.Enabled()) continue;
        obs::PartitionDeltaMap deltas;
        deltas[0].entry_fanout = 1;
        profiler.RecordQuery(deltas, 10);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  // No exact total to assert (the toggle races by design); the profile just
  // has to be internally consistent and bounded by the attempted work.
  const obs::PartitionProfile totals = profiler.Snapshot().Totals();
  EXPECT_LE(totals.entry_fanout, kThreads * 5000u);
  EXPECT_EQ(totals.latency.count, totals.queries);
}

class AsyncQueryStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto collection = workload::GenerateSynthetic({.seed = 107});
    ASSERT_TRUE(collection.ok());
    collection_ =
        std::make_unique<xml::Collection>(std::move(collection).value());
    FlixOptions options;
    options.config = MdbConfig::kHybrid;
    options.partition_bound = 60;
    auto flix = Flix::Build(*collection_, options);
    ASSERT_TRUE(flix.ok()) << flix.status().ToString();
    flix_ = std::move(flix).value();

    const graph::Digraph g = collection_->BuildGraph();
    workload::QuerySamplerOptions sampler;
    sampler.seed = 109;
    sampler.count = 6;
    sampler.min_results = 4;
    queries_ = workload::SampleDescendantQueries(*collection_, g, sampler);
    ASSERT_FALSE(queries_.empty());
  }

  std::unique_ptr<xml::Collection> collection_;
  std::unique_ptr<Flix> flix_;
  std::vector<workload::DescendantQuery> queries_;
};

TEST_F(AsyncQueryStressTest, ParallelStreamsDeliverExactResultSets) {
  // Reference answer per query, computed single-threaded.
  std::vector<std::set<NodeId>> expected;
  for (const workload::DescendantQuery& q : queries_) {
    std::set<NodeId> nodes;
    for (const Result& r : flix_->FindDescendantsByName(q.start, q.tag_name)) {
      nodes.insert(r.node);
    }
    expected.push_back(std::move(nodes));
  }

  // Each worker streams every query through its own AsyncQuery with a tiny
  // list capacity, so producer and consumer genuinely interleave.
  std::vector<std::thread> workers;
  std::atomic<size_t> mismatches{0};
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t, &expected, &mismatches] {
      for (size_t i = 0; i < queries_.size(); ++i) {
        const workload::DescendantQuery& q = queries_[i];
        AsyncQuery async = flix_->pee().FindDescendantsByTagAsync(
            q.start, q.tag, QueryOptions{}, /*capacity=*/4);
        std::set<NodeId> nodes;
        while (true) {
          // Alternate the polling and blocking consumer paths: TryNext
          // first on odd workers, with Next() settling the empty-or-done
          // ambiguity so the loop can never hang.
          std::optional<Result> r;
          if (t % 2 != 0) r = async.TryNext();
          if (!r.has_value()) r = async.Next();
          if (!r.has_value()) break;
          nodes.insert(r->node);
        }
        if (nodes != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST_F(AsyncQueryStressTest, CancellationRacesLeaveNoStuckThreads) {
  for (int round = 0; round < 10; ++round) {
    const workload::DescendantQuery& q = queries_[round % queries_.size()];
    AsyncQuery async = flix_->pee().FindDescendantsByTagAsync(
        q.start, q.tag, QueryOptions{}, /*capacity=*/2);
    // Consume one result (if any), then cancel while the producer may
    // still be blocked on the tiny list.
    (void)async.TryNext();
    async.Cancel();
    // Destruction joins the worker; reaching the next round proves it.
  }
  SUCCEED();
}

}  // namespace
}  // namespace flix::core
