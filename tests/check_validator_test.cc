// Correctness-tooling tests on *clean* builds: the framework validator, the
// differential query oracle, and the lightweight Flix::Validate hook must
// all pass for every MDB configuration, and the flix.check.* counters must
// record the work. The companion mutation suite (check_mutation_test.cc)
// proves the same machinery rejects corrupted structures.
#include "check/validator.h"

#include <gtest/gtest.h>

#include "check/oracle.h"
#include "flix/flix.h"
#include "obs/metrics.h"
#include "workload/dblp_generator.h"
#include "workload/synthetic_generator.h"

namespace flix::check {
namespace {

core::FlixOptions Options(core::MdbConfig config, size_t bound = 100) {
  core::FlixOptions options;
  options.config = config;
  options.partition_bound = bound;
  return options;
}

std::unique_ptr<core::Flix> MustBuild(const xml::Collection& collection,
                                      const core::FlixOptions& options) {
  auto flix = core::Flix::Build(collection, options);
  EXPECT_TRUE(flix.ok()) << flix.status().ToString();
  return std::move(flix).value();
}

TEST(ValidatorTest, CleanSyntheticBuildPassesEveryConfig) {
  const auto collection = workload::GenerateSynthetic({.seed = 41});
  ASSERT_TRUE(collection.ok());
  for (const core::MdbConfig config :
       {core::MdbConfig::kNaive, core::MdbConfig::kMaximalPpo,
        core::MdbConfig::kUnconnectedHopi, core::MdbConfig::kHybrid}) {
    const auto flix = MustBuild(*collection, Options(config));
    const CheckReport report = ValidateFramework(*flix);
    EXPECT_TRUE(report.ok())
        << core::MdbConfigName(config) << ": " << report.violations.front();
    // Two framework checks plus one per meta document.
    EXPECT_GE(report.checks_run,
              2 + flix->meta_documents().docs.size());
  }
}

TEST(ValidatorTest, CleanMiniDblpBuildPasses) {
  workload::DblpOptions dblp;
  dblp.num_publications = 120;
  dblp.seed = 43;
  const auto collection = workload::GenerateDblp(dblp);
  ASSERT_TRUE(collection.ok());
  const auto flix =
      MustBuild(*collection, Options(core::MdbConfig::kHybrid, 60));
  const CheckReport report = ValidateFramework(*flix);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(ValidatorTest, FlixValidateHookPassesOnCleanBuild) {
  const auto collection = workload::GenerateSynthetic({.seed = 47});
  ASSERT_TRUE(collection.ok());
  const auto flix =
      MustBuild(*collection, Options(core::MdbConfig::kHybrid, 60));
  const Status status = flix->Validate();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(OracleTest, CleanBuildShowsNoDiffs) {
  const auto collection = workload::GenerateSynthetic({.seed = 53});
  ASSERT_TRUE(collection.ok());
  for (const core::MdbConfig config :
       {core::MdbConfig::kNaive, core::MdbConfig::kHybrid}) {
    const auto flix = MustBuild(*collection, Options(config, 60));
    OracleOptions options;
    options.seed = 59;
    options.num_queries = 8;
    options.num_connection_pairs = 24;
    const OracleReport report = RunDifferentialOracle(*flix, options);
    EXPECT_TRUE(report.ok())
        << core::MdbConfigName(config) << ": " << report.diffs.front();
    EXPECT_GT(report.queries_diffed, 0u);
  }
}

TEST(OracleTest, DeepModeCoversMoreQueries) {
  const auto collection = workload::GenerateSynthetic({.seed = 61});
  ASSERT_TRUE(collection.ok());
  const auto flix =
      MustBuild(*collection, Options(core::MdbConfig::kHybrid, 60));
  OracleOptions shallow;
  shallow.seed = 67;
  shallow.num_queries = 6;
  shallow.num_connection_pairs = 12;
  OracleOptions deep = shallow;
  deep.deep = true;
  const OracleReport a = RunDifferentialOracle(*flix, shallow);
  const OracleReport b = RunDifferentialOracle(*flix, deep);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_GT(b.queries_diffed, a.queries_diffed);
}

TEST(CheckMetricsTest, CountersRecordValidatorAndOracleWork) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t validations_before =
      registry.GetCounter("flix.check.validations").Value();
  const uint64_t oracle_before =
      registry.GetCounter("flix.check.oracle_queries").Value();

  const auto collection = workload::GenerateSynthetic({.seed = 71});
  ASSERT_TRUE(collection.ok());
  const auto flix =
      MustBuild(*collection, Options(core::MdbConfig::kHybrid, 60));
  const CheckReport report = ValidateFramework(*flix);
  ASSERT_TRUE(report.ok());
  OracleOptions options;
  options.num_queries = 4;
  options.num_connection_pairs = 8;
  const OracleReport oracle = RunDifferentialOracle(*flix, options);
  ASSERT_TRUE(oracle.ok());

  EXPECT_EQ(registry.GetCounter("flix.check.validations").Value(),
            validations_before + report.checks_run);
  EXPECT_EQ(registry.GetCounter("flix.check.oracle_queries").Value(),
            oracle_before + oracle.queries_diffed);

  // The counters must also surface through the Flix metrics snapshot so
  // `flixctl stats` reports them.
  const obs::MetricsSnapshot snapshot = flix->MetricsSnapshot();
  EXPECT_NE(snapshot.FindCounter("flix.check.validations"), nullptr);
  EXPECT_NE(snapshot.FindCounter("flix.check.violations"), nullptr);
  EXPECT_NE(snapshot.FindCounter("flix.check.oracle_queries"), nullptr);
}

}  // namespace
}  // namespace flix::check
