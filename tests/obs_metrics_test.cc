// Tests for the observability layer (src/obs/) and its wiring into the
// FliX engine: histogram bucketing and quantiles, registry identity and
// reset semantics, trace spans, the JSON/text exporters (including the
// snapshot → JSON → snapshot round trip), QueryStats population by the PEE,
// and the query cache's stats surface.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "flix/flix.h"
#include "flix/query_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/collection.h"

namespace flix {
namespace {

using core::Flix;
using core::FlixOptions;
using core::QueryCache;
using core::QueryStats;
using core::Result;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramStats;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddNegative) {
  Gauge g;
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
  g.Add(15);
  EXPECT_EQ(g.Value(), 10);
}

TEST(HistogramTest, BucketMappingRoundTrips) {
  // The lower bound of every bucket must map back to that bucket, and the
  // mapping must be monotonic in the value.
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLowerBound(b)), b) << b;
  }
  size_t last = 0;
  for (uint64_t v = 0; v < 100000; v += 17) {
    const size_t b = Histogram::BucketFor(v);
    EXPECT_GE(b, last);
    last = b;
  }
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(15), 15u);
  EXPECT_LT(Histogram::BucketFor(UINT64_MAX), Histogram::kNumBuckets);
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramStats stats = h.Snapshot();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_EQ(stats.sum, 500500u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 1000u);
  EXPECT_DOUBLE_EQ(stats.mean, 500.5);
  // 8 sub-buckets per octave bound the relative quantile error by 12.5%
  // (plus the sample itself as a lower bound, since we report bucket upper
  // bounds clamped to the max).
  EXPECT_GE(stats.p50, 500);
  EXPECT_LE(stats.p50, 500 * 1.125 + 1);
  EXPECT_GE(stats.p95, 950);
  EXPECT_LE(stats.p95, 950 * 1.125 + 1);
  EXPECT_GE(stats.p99, 990);
  EXPECT_LE(stats.p99, 1000);  // clamped to the observed max
}

TEST(HistogramTest, SingleSampleReportsItself) {
  Histogram h;
  h.Record(12345);
  const HistogramStats stats = h.Snapshot();
  EXPECT_EQ(stats.min, 12345u);
  EXPECT_EQ(stats.max, 12345u);
  EXPECT_DOUBLE_EQ(stats.p50, 12345);
  EXPECT_DOUBLE_EQ(stats.p99, 12345);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramStats stats = h.Snapshot();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.max, 0u);
  EXPECT_DOUBLE_EQ(stats.p50, 0);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_EQ(h.Snapshot().max, kThreads * kPerThread - 1);
}

TEST(MetricsRegistryTest, SameNameSameObjectAndResetKeepsReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.counter");
  Counter& b = registry.GetCounter("test.counter");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  registry.GetGauge("test.gauge").Set(3);
  registry.GetHistogram("test.hist").Record(100);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_NE(snapshot.FindCounter("test.counter"), nullptr);
  EXPECT_EQ(*snapshot.FindCounter("test.counter"), 7u);
  ASSERT_NE(snapshot.FindGauge("test.gauge"), nullptr);
  EXPECT_EQ(*snapshot.FindGauge("test.gauge"), 3);
  ASSERT_NE(snapshot.FindHistogram("test.hist"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("test.hist")->count, 1u);
  EXPECT_EQ(snapshot.FindCounter("no.such"), nullptr);

  registry.Reset();
  // Registration and references survive, values are zeroed.
  EXPECT_EQ(a.Value(), 0u);
  a.Increment();
  EXPECT_EQ(*registry.Snapshot().FindCounter("test.counter"), 1u);
}

TEST(TraceSpanTest, RecordsIntoHistogramAndLog) {
  Histogram h;
  std::ostringstream log;
  obs::SetTraceLog(&log);
  EXPECT_TRUE(obs::TraceLogEnabled());
  {
    obs::TraceSpan span(&h, "test.span");
    EXPECT_GE(span.ElapsedNanos(), 0u);
  }
  obs::SetTraceLog(nullptr);
  EXPECT_FALSE(obs::TraceLogEnabled());
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_NE(log.str().find("[trace] test.span dur_ns="), std::string::npos);
}

TEST(TraceSpanTest, CancelDropsTheSample) {
  Histogram h;
  {
    obs::TraceSpan span(&h, "cancelled");
    span.Cancel();
  }
  EXPECT_EQ(h.Count(), 0u);
}

TEST(ExportTest, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("rt.queries").Add(1234);
  registry.GetGauge("rt.cache_size").Set(-9);
  Histogram& h = registry.GetHistogram("rt.latency_ns");
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 1000);

  const MetricsSnapshot before = registry.Snapshot();
  const std::string json = obs::ToJson(before);
  MetricsSnapshot after;
  ASSERT_TRUE(obs::FromJson(json, &after)) << json;

  ASSERT_EQ(after.counters.size(), before.counters.size());
  EXPECT_EQ(after.counters[0].first, "rt.queries");
  EXPECT_EQ(after.counters[0].second, 1234u);
  ASSERT_EQ(after.gauges.size(), before.gauges.size());
  EXPECT_EQ(after.gauges[0].second, -9);
  ASSERT_EQ(after.histograms.size(), before.histograms.size());
  const HistogramStats& b = before.histograms[0].second;
  const HistogramStats& a = after.histograms[0].second;
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);

  // A second round trip is bit-identical.
  EXPECT_EQ(obs::ToJson(after), json);
}

TEST(ExportTest, P999AndBucketsRoundTripExactly) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("rt.wide_ns");
  for (uint64_t v = 0; v < 2000; ++v) h.Record(v * v);
  const MetricsSnapshot before = registry.Snapshot();
  const HistogramStats& b = before.histograms[0].second;
  EXPECT_GE(b.p999, b.p99);
  ASSERT_FALSE(b.buckets.empty());
  uint64_t bucket_total = 0;
  for (const auto& [index, count] : b.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, b.count);

  const std::string json = obs::ToJson(before);
  MetricsSnapshot after;
  ASSERT_TRUE(obs::FromJson(json, &after)) << json;
  const HistogramStats& a = after.histograms[0].second;
  EXPECT_EQ(a.p999, b.p999);
  EXPECT_EQ(a.buckets, b.buckets);
  // Quantiles recomputed from the parsed buckets reproduce themselves: the
  // sparse representation carries the full quantile information.
  HistogramStats recomputed = a;
  obs::RecomputeQuantilesFromBuckets(recomputed);
  EXPECT_EQ(recomputed.p50, a.p50);
  EXPECT_EQ(recomputed.p95, a.p95);
  EXPECT_EQ(recomputed.p99, a.p99);
  EXPECT_EQ(recomputed.p999, a.p999);
}

TEST(ExportTest, FromJsonToleratesOldSchemaWithoutP999OrBuckets) {
  // A document written before p999/buckets existed must still parse, with
  // the new fields defaulting to zero/empty.
  MetricsSnapshot snapshot;
  ASSERT_TRUE(obs::FromJson(
      "{\"counters\":{},\"gauges\":{},\"histograms\":{\"old.h\":"
      "{\"count\":4,\"sum\":100,\"min\":10,\"max\":40,\"mean\":25,"
      "\"p50\":20,\"p95\":40,\"p99\":40}}}",
      &snapshot));
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramStats& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.p999, 0.0);
  EXPECT_TRUE(h.buckets.empty());
}

TEST(ExportTest, FromJsonRejectsBadBucketLists) {
  const char* kPrefix =
      "{\"counters\":{},\"gauges\":{},\"histograms\":{\"h\":"
      "{\"count\":2,\"sum\":3,\"min\":1,\"max\":2,\"mean\":1.5,"
      "\"p50\":1,\"p95\":2,\"p99\":2,\"p999\":2,\"buckets\":";
  MetricsSnapshot snapshot;
  // Non-ascending and duplicate bucket indices violate the writer's order.
  EXPECT_FALSE(obs::FromJson(
      std::string(kPrefix) + "[[5,1],[3,1]]}}}", &snapshot));
  EXPECT_FALSE(obs::FromJson(
      std::string(kPrefix) + "[[3,1],[3,1]]}}}", &snapshot));
  // Bucket index beyond the histogram's range.
  EXPECT_FALSE(obs::FromJson(
      std::string(kPrefix) + "[[99999,2]]}}}", &snapshot));
  // The well-formed variant parses.
  EXPECT_TRUE(obs::FromJson(
      std::string(kPrefix) + "[[3,1],[5,1]]}}}", &snapshot));
}

TEST(HistogramMergeTest, MergeWithBucketsRecomputesQuantiles) {
  Histogram low;
  Histogram high;
  Histogram both;
  for (uint64_t v = 1; v <= 100; ++v) {
    low.Record(v);
    both.Record(v);
  }
  for (uint64_t v = 100000; v <= 100100; ++v) {
    high.Record(v);
    both.Record(v);
  }
  HistogramStats merged = low.Snapshot();
  obs::MergeHistogramStats(merged, high.Snapshot());
  const HistogramStats expected = both.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.min, expected.min);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_EQ(merged.p50, expected.p50);
  EXPECT_EQ(merged.p95, expected.p95);
  EXPECT_EQ(merged.p99, expected.p99);
  EXPECT_EQ(merged.p999, expected.p999);
}

TEST(HistogramMergeTest, MergeHandlesEmptySidesAndOldSchema) {
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  const HistogramStats full = h.Snapshot();

  HistogramStats into;  // empty target: plain copy
  obs::MergeHistogramStats(into, full);
  EXPECT_EQ(into.count, full.count);
  EXPECT_EQ(into.buckets, full.buckets);

  HistogramStats unchanged = full;  // empty source: no-op
  obs::MergeHistogramStats(unchanged, HistogramStats{});
  EXPECT_EQ(unchanged.count, full.count);
  EXPECT_EQ(unchanged.p99, full.p99);

  // Old-schema side (no buckets): counts still add, quantiles fall back to
  // the conservative pairwise max, and the merged stats carry no buckets.
  HistogramStats old_schema = full;
  old_schema.buckets.clear();
  HistogramStats mixed = full;
  obs::MergeHistogramStats(mixed, old_schema);
  EXPECT_EQ(mixed.count, 2 * full.count);
  EXPECT_TRUE(mixed.buckets.empty());
  EXPECT_EQ(mixed.p95, full.p95);
}

TEST(ExportTest, FromJsonRejectsGarbage) {
  MetricsSnapshot snapshot;
  EXPECT_FALSE(obs::FromJson("", &snapshot));
  EXPECT_FALSE(obs::FromJson("{}", &snapshot));
  EXPECT_FALSE(obs::FromJson("[1,2]", &snapshot));
  EXPECT_FALSE(obs::FromJson(
      "{\"counters\":{},\"gauges\":{},\"histograms\":{}} trailing", &snapshot));
  // Wrong section order is not our schema.
  EXPECT_FALSE(obs::FromJson(
      "{\"gauges\":{},\"counters\":{},\"histograms\":{}}", &snapshot));
  // The empty document is valid.
  EXPECT_TRUE(obs::FromJson(
      "{\"counters\":{},\"gauges\":{},\"histograms\":{}}", &snapshot));
  EXPECT_TRUE(snapshot.counters.empty());
}

TEST(ExportTest, TextContainsNamesAndTimeUnits) {
  MetricsRegistry registry;
  registry.GetCounter("text.count").Add(5);
  registry.GetHistogram("text.latency_ns").Record(2500000);  // 2.5 ms
  const std::string text = obs::ToText(registry.Snapshot());
  EXPECT_NE(text.find("text.count"), std::string::npos);
  EXPECT_NE(text.find("text.latency_ns"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

// --- Engine wiring ---------------------------------------------------------

// Same shape as the PEE test fixture: three documents chained by links (with
// a cycle), so a small partition bound forces cross-meta-document hops.
xml::Collection ChainedCollection() {
  xml::Collection c;
  EXPECT_TRUE(c.AddXml("<a><b/><link href=\"d1\"/></a>", "d0").ok());
  EXPECT_TRUE(c.AddXml("<a><b><link href=\"d2#mid\"/></b></a>", "d1").ok());
  EXPECT_TRUE(
      c.AddXml(R"(<a><c id="mid"><b/></c><link href="d0"/></a>)", "d2").ok());
  c.ResolveAllLinks();
  return c;
}

TEST(QueryStatsTest, FindDescendantsPopulatesCounters) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  // Size-bounded partitioning guarantees several meta documents even on
  // this 10-element fixture (Hybrid would fold it into one tree group).
  options.config = core::MdbConfig::kUnconnectedHopi;
  options.partition_bound = 4;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok()) << flix.status().ToString();
  ASSERT_GT((*flix)->stats().num_meta_documents, 1u);

  QueryStats stats;
  const TagId tag_b = c.pool().Lookup("b");
  std::vector<Result> results;
  (*flix)->pee().FindDescendantsByTag(c.GlobalId(0, 0), tag_b, {},
                                      [&](const Result& r) {
                                        results.push_back(r);
                                        return true;
                                      },
                                      &stats);
  EXPECT_FALSE(results.empty());
  // A cross-meta-document query must probe local indexes, process several
  // entry points, and follow at least one link.
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.entries_processed, 0u);
  EXPECT_GT(stats.links_followed, 0u);
}

TEST(QueryStatsTest, EvaluateTypeQueryPopulatesCounters) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = core::MdbConfig::kUnconnectedHopi;
  options.partition_bound = 4;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());

  const std::vector<Result> results = (*flix)->EvaluateTypeQuery("a", "b");
  EXPECT_FALSE(results.empty());
  // The facade accumulated the per-query counters.
  const QueryStats total = (*flix)->CumulativeQueryStats();
  EXPECT_GT(total.index_probes, 0u);
  EXPECT_GT(total.entries_processed, 0u);
  EXPECT_GT(total.links_followed, 0u);
}

TEST(QueryStatsTest, GlobalRegistrySeesQueries) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = core::MdbConfig::kUnconnectedHopi;
  options.partition_bound = 4;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());

  auto& reg = MetricsRegistry::Global();
  const uint64_t queries_before = reg.GetCounter("flix.query.count").Value();
  const uint64_t probes_before =
      reg.GetCounter("flix.query.index_probes").Value();
  const uint64_t latency_before =
      reg.GetHistogram("flix.query.latency_ns").Count();

  (*flix)->FindDescendantsByName(c.GlobalId(0, 0), "b");

  EXPECT_EQ(reg.GetCounter("flix.query.count").Value(), queries_before + 1);
  EXPECT_GT(reg.GetCounter("flix.query.index_probes").Value(), probes_before);
  EXPECT_EQ(reg.GetHistogram("flix.query.latency_ns").Count(),
            latency_before + 1);
}

TEST(QueryCacheTest, StatsTrackInsertOverwriteEvictHitMiss) {
  QueryCache cache(2);
  std::vector<Result> results;

  EXPECT_FALSE(cache.Lookup(1, 1, &results));  // miss
  cache.Insert(1, 1, {{10, 1}});               // fresh insert
  cache.Insert(1, 1, {{10, 1}});               // overwrite (same key)
  cache.Insert(2, 1, {{20, 1}});               // fresh insert
  cache.Insert(3, 1, {{30, 1}});               // fresh insert, evicts LRU key 1
  EXPECT_FALSE(cache.Lookup(1, 1, &results));  // miss (evicted)
  EXPECT_TRUE(cache.Lookup(2, 1, &results));   // hit

  const core::QueryCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.overwrites, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 1.0 / 3.0);
}

TEST(FlixMetricsSnapshotTest, ExposesBuildCacheAndQueryMetrics) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = core::MdbConfig::kUnconnectedHopi;
  options.partition_bound = 4;
  options.query_cache_capacity = 8;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());

  // Two identical facade queries: the second must hit the cache.
  (*flix)->FindDescendantsByName(c.GlobalId(0, 0), "b");
  (*flix)->FindDescendantsByName(c.GlobalId(0, 0), "b");

  const MetricsSnapshot snapshot = (*flix)->MetricsSnapshot();

  const int64_t* meta_docs = snapshot.FindGauge("flix.build.meta_documents");
  ASSERT_NE(meta_docs, nullptr);
  EXPECT_EQ(static_cast<size_t>(*meta_docs),
            (*flix)->stats().num_meta_documents);
  ASSERT_NE(snapshot.FindHistogram("flix.build.mdb_ns"), nullptr);
  ASSERT_NE(snapshot.FindHistogram("flix.build.total_ns"), nullptr);
  EXPECT_GT(snapshot.FindHistogram("flix.build.total_ns")->count, 0u);

  const int64_t* hits = snapshot.FindGauge("flix.cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, 1);
  const int64_t* misses = snapshot.FindGauge("flix.cache.misses");
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(*misses, 1);

  ASSERT_NE(snapshot.FindHistogram("flix.query.latency_ns"), nullptr);
  EXPECT_GT(snapshot.FindHistogram("flix.query.latency_ns")->count, 0u);

  // Build phase timings made it into the instance stats too.
  EXPECT_GT((*flix)->stats().build_ms, 0);
  EXPECT_GE((*flix)->stats().mdb_ms, 0);
  EXPECT_GT((*flix)->stats().index_build_ms, 0);

  // And the whole snapshot survives the JSON round trip.
  MetricsSnapshot parsed;
  ASSERT_TRUE(obs::FromJson(obs::ToJson(snapshot), &parsed));
  EXPECT_EQ(parsed.counters.size(), snapshot.counters.size());
  EXPECT_EQ(parsed.gauges.size(), snapshot.gauges.size());
  EXPECT_EQ(parsed.histograms.size(), snapshot.histograms.size());
}

}  // namespace
}  // namespace flix
