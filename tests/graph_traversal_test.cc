#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/digraph.h"

namespace flix::graph {
namespace {

// Chain 0 -> 1 -> 2 -> 3.
Digraph Chain(size_t n) {
  Digraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(BfsTest, DistancesAlongChain) {
  const Digraph g = Chain(4);
  const std::vector<Distance> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<Distance>{0, 1, 2, 3}));
}

TEST(BfsTest, BackwardDirection) {
  const Digraph g = Chain(4);
  const std::vector<Distance> dist = BfsDistances(g, 3, Direction::kBackward);
  EXPECT_EQ(dist, (std::vector<Distance>{3, 2, 1, 0}));
}

TEST(BfsTest, UnreachableMarked) {
  Digraph g(3);
  g.AddEdge(0, 1);
  const std::vector<Distance> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(BfsTest, MaxDepthCutsOff) {
  const Digraph g = Chain(5);
  const std::vector<Distance> dist = BfsDistances(g, 0, Direction::kForward, 2);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsTest, ShortestPathThroughDiamond) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, plus long detour 0 -> 4 -> 5 -> 3.
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  g.AddEdge(0, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  EXPECT_EQ(BfsDistance(g, 0, 3), 2);
}

TEST(BfsTest, PointQuerySelf) {
  const Digraph g = Chain(2);
  EXPECT_EQ(BfsDistance(g, 1, 1), 0);
}

TEST(BfsTest, PointQueryUnreachable) {
  const Digraph g = Chain(3);
  EXPECT_EQ(BfsDistance(g, 2, 0), kUnreachable);
}

TEST(BfsTest, CycleHandled) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  const std::vector<Distance> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<Distance>{0, 1, 2}));
  EXPECT_EQ(BfsDistance(g, 2, 1), 2);
}

TEST(OracleTest, DescendantsByTagSortedByDistance) {
  // 0(t0) -> 1(t1) -> 2(t1), 0 -> 3(t1)
  Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(1);
  g.AddNode(1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  const ReachabilityOracle oracle(g);
  const std::vector<NodeDist> result = oracle.DescendantsByTag(0, 1);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0], (NodeDist{1, 1}));
  EXPECT_EQ(result[1], (NodeDist{3, 1}));
  EXPECT_EQ(result[2], (NodeDist{2, 2}));
}

TEST(OracleTest, SelfExcludedEvenWithMatchingTag) {
  Digraph g;
  g.AddNode(1);
  g.AddNode(1);
  g.AddEdge(0, 1);
  const ReachabilityOracle oracle(g);
  const std::vector<NodeDist> result = oracle.DescendantsByTag(0, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].node, 1u);
}

TEST(OracleTest, WildcardDescendants) {
  Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const ReachabilityOracle oracle(g);
  EXPECT_EQ(oracle.Descendants(0).size(), 2u);
  EXPECT_EQ(oracle.Descendants(2).size(), 0u);
}

TEST(OracleTest, AncestorsByTag) {
  Digraph g;
  g.AddNode(5);
  g.AddNode(6);
  g.AddNode(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const ReachabilityOracle oracle(g);
  const std::vector<NodeDist> result = oracle.AncestorsByTag(2, 5);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (NodeDist{0, 2}));
}

TEST(OracleTest, IsReachableAndDistance) {
  const Digraph g = Chain(4);
  const ReachabilityOracle oracle(g);
  EXPECT_TRUE(oracle.IsReachable(0, 3));
  EXPECT_FALSE(oracle.IsReachable(3, 0));
  EXPECT_EQ(oracle.Distance(0, 3), 3);
  EXPECT_EQ(oracle.Distance(3, 0), kUnreachable);
}

TEST(OracleTest, RandomGraphSelfConsistency) {
  // Descendants found by tag must match the wildcard set filtered by tag.
  Rng rng(44);
  Digraph g;
  for (int i = 0; i < 60; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(4)));
  for (int e = 0; e < 120; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(60)),
              static_cast<NodeId>(rng.Uniform(60)));
  }
  const ReachabilityOracle oracle(g);
  for (NodeId start = 0; start < 10; ++start) {
    const std::vector<NodeDist> wildcard = oracle.Descendants(start);
    for (TagId tag = 0; tag < 4; ++tag) {
      std::vector<NodeDist> expected;
      for (const NodeDist& nd : wildcard) {
        if (g.Tag(nd.node) == tag) expected.push_back(nd);
      }
      EXPECT_EQ(oracle.DescendantsByTag(start, tag), expected);
    }
  }
}

}  // namespace
}  // namespace flix::graph
