// Mutation tests for the correctness tooling: each test seeds exactly one
// corruption class into an otherwise valid structure (via
// index::CorruptionHook or by editing the public MetaDocumentSet fields)
// and proves the matching validator detects it with a pinpointing message.
// A validator that passes clean builds (check_validator_test.cc) but also
// passes these mutants would be vacuous.
#include "check/corruption.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/validator.h"
#include "common/rng.h"
#include "flix/flix.h"
#include "storage/format.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/ppo.h"
#include "index/summary_index.h"
#include "index/transitive_closure.h"
#include "obs/metrics.h"
#include "workload/synthetic_generator.h"

namespace flix::index {
namespace {

// A small tree: 0(a) with children 1(b) and 4(b); 1 has children 2(c), 3(b).
graph::Digraph SampleTree() {
  graph::Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(2);
  g.AddNode(1);
  g.AddNode(1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(0, 4);
  return g;
}

graph::Digraph RandomDigraph(size_t n, size_t edges, uint64_t seed,
                             size_t num_tags = 4) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<TagId>(rng.Uniform(num_tags)));
  }
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)));
  }
  return g;
}

graph::Digraph ChainDag(size_t n) {
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(static_cast<TagId>(i % 3));
  for (NodeId i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

// Corruption class 1: swapped PPO preorder intervals. The pre/order
// permutation still holds, so only the interval-nesting check can see it.
TEST(MutationTest, SwappedPpoIntervalsAreDetected) {
  const graph::Digraph g = SampleTree();
  auto built = PpoIndex::Build(g);
  ASSERT_TRUE(built.ok());
  PpoIndex& ppo = **built;
  ASSERT_TRUE(ppo.Validate(g).ok());

  CorruptionHook::SwapPpoIntervals(ppo, 0, 2);  // root <-> grandchild
  const Status status = ppo.Validate(g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string(status.message()).find("ppo:"), std::string::npos)
      << status.ToString();
}

// Corruption class 2: dropped HOPI hub entry — an inverted list loses one
// node, so a 2-hop enumeration through that hub would silently miss it.
TEST(MutationTest, DroppedHopiHubEntryIsDetected) {
  const graph::Digraph g = RandomDigraph(40, 80, 73);
  const auto hopi = HopiIndex::Build(g);
  ASSERT_TRUE(hopi->Validate(g).ok());

  ASSERT_TRUE(CorruptionHook::DropHopiHubEntry(*hopi));
  const Status status = hopi->Validate(g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string(status.message()).find("hopi: inverted_in"),
            std::string::npos)
      << status.ToString();
}

// Corruption class 2b: a label entry whose distance is no longer the true
// BFS distance (the PLL exactness property).
TEST(MutationTest, SkewedHopiLabelDistanceIsDetected) {
  const graph::Digraph g = RandomDigraph(40, 80, 79);
  const auto hopi = HopiIndex::Build(g);
  ASSERT_TRUE(hopi->Validate(g).ok());

  bool skewed = false;
  for (NodeId v = 0; v < g.NumNodes() && !skewed; ++v) {
    skewed = CorruptionHook::SkewHopiLabelDistance(*hopi, v);
  }
  ASSERT_TRUE(skewed);
  ValidateOptions deep;
  deep.deep = true;  // exhaustive label probes on a graph this small
  const Status status = hopi->Validate(g, deep);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string(status.message()).find("hopi:"), std::string::npos)
      << status.ToString();
}

// Corruption class 3: truncated transitive-closure row — the forward row
// disagrees with both its BFS closure and the reverse transpose.
TEST(MutationTest, TruncatedTcRowIsDetected) {
  const graph::Digraph g = ChainDag(8);
  auto built = TransitiveClosureIndex::Build(g);
  ASSERT_TRUE(built.ok());
  TransitiveClosureIndex& tc = **built;
  ASSERT_TRUE(tc.Validate(g).ok());

  ASSERT_TRUE(CorruptionHook::TruncateTcRow(tc, 0));
  const Status status = tc.Validate(g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string(status.message()).find("tc:"), std::string::npos)
      << status.ToString();
}

// Corruption class 4: wrong APEX extent — a node filed under a foreign
// block breaks the exact-partition invariant.
TEST(MutationTest, MisfiledApexExtentIsDetected) {
  const graph::Digraph g = RandomDigraph(40, 60, 83);
  const auto apex = ApexIndex::Build(g);
  ASSERT_TRUE(apex->Validate(g).ok());

  ASSERT_TRUE(CorruptionHook::MisfileApexExtent(*apex, 0));
  const Status status = apex->Validate(g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string(status.message()).find("apex:"), std::string::npos)
      << status.ToString();
}

// Corruption class 4b: a cleared summary pruning bit — the pruned traversal
// would cut branches that still hold results with that tag.
TEST(MutationTest, ClearedSummaryPruningBitIsDetected) {
  const graph::Digraph g = RandomDigraph(40, 60, 89);
  const auto summary = SummaryIndex::Build(g);
  ASSERT_TRUE(summary->Validate(g).ok());

  ASSERT_TRUE(CorruptionHook::ClearSummaryPruningBit(*summary));
  const Status status = summary->Validate(g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string(status.message()).find("summary:"), std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace flix::index

namespace flix::check {
namespace {

std::unique_ptr<core::Flix> BuildHybrid(const xml::Collection& collection) {
  core::FlixOptions options;
  options.config = core::MdbConfig::kHybrid;
  options.partition_bound = 50;  // small bound => cross links exist
  auto flix = core::Flix::Build(collection, options);
  EXPECT_TRUE(flix.ok()) << flix.status().ToString();
  return std::move(flix).value();
}

bool AnyViolationContains(const CheckReport& report,
                          const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

// Framework-level mutations edit the public MetaDocumentSet fields; the
// const_cast mirrors what an (impossible in production) in-place corruption
// of the built structures would look like.
core::MetaDocumentSet& MutableSet(core::Flix& flix) {
  return const_cast<core::MetaDocumentSet&>(flix.meta_documents());
}

// Corruption class 5: stale L_i entry — a recorded cross link with no
// witnessing element edge.
TEST(FrameworkMutationTest, StaleLinkEntryIsDetected) {
  const auto collection = workload::GenerateSynthetic({.seed = 97});
  ASSERT_TRUE(collection.ok());
  const auto flix = BuildHybrid(*collection);
  ASSERT_TRUE(ValidateFramework(*flix).ok());

  core::MetaDocumentSet& set = MutableSet(*flix);
  core::MetaDocument* victim = nullptr;
  for (core::MetaDocument& doc : set.docs) {
    if (!doc.link_sources.empty()) {
      victim = &doc;
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "expected cross links at this bound";
  // The element graph has no self edges, so source -> source is never
  // witnessed.
  const NodeId local = victim->link_sources[0];
  victim->link_targets.Add(local, victim->global_nodes[local]);

  CheckOptions options;
  options.validate_indexes = false;  // the indexes themselves are intact
  const CheckReport report = ValidateFramework(*flix, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyViolationContains(report, "stale L_i entry"))
      << report.violations.front();
}

// Corruption class 6: orphaned partition node — a global node whose mapping
// no longer round-trips through its meta document.
TEST(FrameworkMutationTest, OrphanedPartitionNodeIsDetected) {
  const auto collection = workload::GenerateSynthetic({.seed = 101});
  ASSERT_TRUE(collection.ok());
  const auto flix = BuildHybrid(*collection);
  ASSERT_TRUE(ValidateFramework(*flix).ok());

  core::MetaDocumentSet& set = MutableSet(*flix);
  // Remove the last element of the largest meta document from its
  // global_nodes list: the node keeps pointing at the meta document, but
  // the meta document no longer claims it.
  core::MetaDocument* victim = &set.docs.front();
  for (core::MetaDocument& doc : set.docs) {
    if (doc.global_nodes.size() > victim->global_nodes.size()) victim = &doc;
  }
  ASSERT_GT(victim->global_nodes.size(), 1u);
  victim->global_nodes.MutableOwned().pop_back();

  CheckOptions options;
  options.validate_indexes = false;
  const CheckReport report = ValidateFramework(*flix, options);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(AnyViolationContains(report, "orphaned"))
      << report.violations.front();
}

// The violations counter must tick for failed runs.
TEST(FrameworkMutationTest, ViolationsCounterAdvancesOnFailure) {
  const auto collection = workload::GenerateSynthetic({.seed = 103});
  ASSERT_TRUE(collection.ok());
  const auto flix = BuildHybrid(*collection);
  core::MetaDocumentSet& set = MutableSet(*flix);
  ASSERT_GT(set.docs.front().global_nodes.size(), 1u);
  set.docs.front().global_nodes.MutableOwned().pop_back();

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t before =
      registry.GetCounter("flix.check.violations").Value();
  CheckOptions options;
  options.validate_indexes = false;
  const CheckReport report = ValidateFramework(*flix, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(registry.GetCounter("flix.check.violations").Value(),
            before + report.violations.size());
}

// ---------------------------------------------------------------------------
// On-disk corruption classes: damage a saved index *file* (instead of the
// in-memory structures above) and prove the load path rejects it with a
// clean Status — never a crash, never a silently wrong instance. The default
// paged load verifies all payload checksums, so every class below must be
// caught before a single query runs.

class OnDiskCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto collection = workload::GenerateSynthetic({.seed = 107});
    ASSERT_TRUE(collection.ok());
    collection_ = std::move(collection).value();
    flix_ = BuildHybrid(collection_);
    // One file per test: ctest runs tests as parallel processes, so a
    // shared name would race.
    const char* test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    path_ = (std::filesystem::path(::testing::TempDir()) /
             (std::string("ondisk_") + test_name + ".flix"))
                .string();
  }

  void SavePaged() {
    ASSERT_TRUE(flix_->Save(path_, core::Flix::IndexFormat::kMapped).ok());
  }

  std::vector<char> ReadFile() {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Status Reload() {
    auto loaded = core::Flix::Load(path_, collection_);
    return loaded.ok() ? Status::Ok() : loaded.status();
  }

  xml::Collection collection_;
  std::unique_ptr<core::Flix> flix_;
  std::string path_;
};

// Corruption class 7: truncation — at the superblock, mid-segment, and
// inside the trailing segment table.
TEST_F(OnDiskCorruptionTest, TruncatedPagedFileIsRejected) {
  SavePaged();
  const std::vector<char> bytes = ReadFile();
  ASSERT_GT(bytes.size(), storage::kPageBytes);
  for (const size_t keep :
       {size_t{32}, size_t{storage::kPageBytes}, bytes.size() / 2,
        bytes.size() - 1}) {
    WriteFile(std::vector<char>(bytes.begin(),
                                bytes.begin() + static_cast<ptrdiff_t>(keep)));
    EXPECT_FALSE(Reload().ok()) << "kept " << keep << " of " << bytes.size();
  }
}

// Corruption class 8: a flipped bit in a superblock identity field — the
// superblock checksum no longer matches.
TEST_F(OnDiskCorruptionTest, FlippedSuperblockBitIsRejected) {
  SavePaged();
  std::vector<char> bytes = ReadFile();
  bytes[offsetof(storage::Superblock, num_elements)] ^= 0x01;
  WriteFile(bytes);
  const Status status = Reload();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(std::string(status.message()).find("checksum"), std::string::npos)
      << status.ToString();
}

// Corruption class 9: a flipped bit deep inside a segment payload — caught
// by the up-front payload checksum sweep of the default load.
TEST_F(OnDiskCorruptionTest, FlippedSegmentPayloadBitIsRejected) {
  SavePaged();
  std::vector<char> bytes = ReadFile();
  // First segment begins on page 1; kArrayAlign past its header sits inside
  // the first array's data, past the self-describing directory.
  bytes[storage::kPageBytes + storage::kArrayAlign + 1] ^= 0x20;
  WriteFile(bytes);
  EXPECT_FALSE(Reload().ok());
}

// Corruption class 10: a damaged segment-table row (length field) — the
// table checksum in the superblock catches it before any segment is mapped.
TEST_F(OnDiskCorruptionTest, FlippedSegmentTableBitIsRejected) {
  SavePaged();
  std::vector<char> bytes = ReadFile();
  storage::Superblock sb;
  std::memcpy(&sb, bytes.data(), sizeof(sb));
  ASSERT_LT(sb.segment_table_offset, bytes.size());
  bytes[sb.segment_table_offset + offsetof(storage::SegmentEntry, length)] ^=
      0x02;
  WriteFile(bytes);
  EXPECT_FALSE(Reload().ok());
}

// Finds the landmark segment's table entry in a raw paged file image.
size_t LandmarkEntryOffset(const std::vector<char>& bytes) {
  storage::Superblock sb;
  std::memcpy(&sb, bytes.data(), sizeof(sb));
  for (uint64_t i = 0; i < sb.segment_count; ++i) {
    const size_t offset =
        sb.segment_table_offset + i * sizeof(storage::SegmentEntry);
    storage::SegmentEntry entry;
    std::memcpy(&entry, bytes.data() + offset, sizeof(entry));
    if (entry.kind == static_cast<uint32_t>(storage::SegmentKind::kLandmarks)) {
      return offset;
    }
  }
  return 0;
}

// Rewrites the segment-table and superblock checksums after an in-place
// edit, so only the intended corruption is visible to the loader.
void ResealChecksums(std::vector<char>& bytes) {
  storage::Superblock sb;
  std::memcpy(&sb, bytes.data(), sizeof(sb));
  sb.segment_table_checksum = storage::Fnv1a64(
      bytes.data() + sb.segment_table_offset,
      sb.segment_count * sizeof(storage::SegmentEntry));
  sb.checksum = storage::Fnv1a64(&sb, offsetof(storage::Superblock, checksum));
  std::memcpy(bytes.data(), &sb, sizeof(sb));
}

// Corruption class 12: a flipped distance byte inside the landmark segment.
// The segment is advisory — its own checksum catches the damage, the load
// must still succeed, and point queries fall back to the blind walk with
// unchanged answers.
TEST_F(OnDiskCorruptionTest, FlippedLandmarkDistanceFallsBackToBlind) {
  SavePaged();
  std::vector<char> bytes = ReadFile();
  const size_t entry_offset = LandmarkEntryOffset(bytes);
  ASSERT_NE(entry_offset, 0u) << "no landmark segment in the saved file";
  storage::SegmentEntry entry;
  std::memcpy(&entry, bytes.data() + entry_offset, sizeof(entry));
  // Flip a byte in the middle of the payload — inside the distance tables,
  // past the segment's array directory.
  bytes[entry.offset + entry.length / 2] ^= 0x11;
  WriteFile(bytes);

  auto loaded = core::Flix::Load(path_, collection_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->meta_documents().landmarks.Snapshot(), nullptr);
  const graph::Digraph g = collection_.BuildGraph();
  for (NodeId a = 0; a < g.NumNodes(); a += 61) {
    for (NodeId b = 0; b < g.NumNodes(); b += 67) {
      EXPECT_EQ((*loaded)->FindDistance(a, b), flix_->FindDistance(a, b));
    }
  }
}

// Corruption class 13: a truncated landmark table whose checksums were
// recomputed to match (a "clean" torn write). The payload checksum passes;
// the segment's shape validation catches the short arrays, and the load
// falls back to blind search instead of crashing or serving garbage.
TEST_F(OnDiskCorruptionTest, TruncatedLandmarkTableFallsBackToBlind) {
  SavePaged();
  std::vector<char> bytes = ReadFile();
  const size_t entry_offset = LandmarkEntryOffset(bytes);
  ASSERT_NE(entry_offset, 0u) << "no landmark segment in the saved file";
  storage::SegmentEntry entry;
  std::memcpy(&entry, bytes.data() + entry_offset, sizeof(entry));
  entry.length /= 2;
  entry.checksum = storage::Fnv1a64(bytes.data() + entry.offset, entry.length);
  std::memcpy(bytes.data() + entry_offset, &entry, sizeof(entry));
  ResealChecksums(bytes);
  WriteFile(bytes);

  auto loaded = core::Flix::Load(path_, collection_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->meta_documents().landmarks.Snapshot(), nullptr);
  const graph::Digraph g = collection_.BuildGraph();
  for (NodeId a = 0; a < g.NumNodes(); a += 61) {
    for (NodeId b = 0; b < g.NumNodes(); b += 67) {
      EXPECT_EQ((*loaded)->FindDistance(a, b), flix_->FindDistance(a, b));
    }
  }
}

// Corruption class 11: the stream (heap) format must reject truncation just
// as cleanly through the same path-based Load.
TEST_F(OnDiskCorruptionTest, TruncatedStreamFileIsRejected) {
  ASSERT_TRUE(flix_->Save(path_, core::Flix::IndexFormat::kHeap).ok());
  const std::vector<char> bytes = ReadFile();
  ASSERT_GT(bytes.size(), 64u);
  for (const size_t keep : {bytes.size() / 4, bytes.size() - 8}) {
    WriteFile(std::vector<char>(bytes.begin(),
                                bytes.begin() + static_cast<ptrdiff_t>(keep)));
    EXPECT_FALSE(Reload().ok()) << "kept " << keep << " of " << bytes.size();
  }
}

}  // namespace
}  // namespace flix::check
