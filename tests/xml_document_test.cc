#include "xml/document.h"

#include <gtest/gtest.h>

#include "xml/name_pool.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace flix::xml {
namespace {

TEST(NamePoolTest, InternReturnsStableIds) {
  NamePool pool;
  const TagId a = pool.Intern("alpha");
  const TagId b = pool.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("alpha"), a);
  EXPECT_EQ(pool.Name(a), "alpha");
  EXPECT_EQ(pool.Name(b), "beta");
  EXPECT_EQ(pool.size(), 2u);
}

TEST(NamePoolTest, LookupWithoutIntern) {
  NamePool pool;
  EXPECT_EQ(pool.Lookup("nope"), kInvalidTag);
  pool.Intern("yes");
  EXPECT_EQ(pool.Lookup("yes"), 0u);
}

TEST(NamePoolTest, ManyNamesNoDangling) {
  // Regression: interned short names must survive pool growth (SSO buffers
  // move if stored in a reallocating vector).
  NamePool pool;
  for (int i = 0; i < 5000; ++i) {
    pool.Intern("t" + std::to_string(i));
  }
  for (int i = 0; i < 5000; ++i) {
    const std::string name = "t" + std::to_string(i);
    EXPECT_EQ(pool.Lookup(name), static_cast<TagId>(i));
    EXPECT_EQ(pool.Name(i), name);
  }
}

TEST(DocumentTest, BuildProgrammatically) {
  NamePool pool;
  Document doc("mydoc");
  const ElementId root = doc.AddElement(pool.Intern("a"), kInvalidElement);
  const ElementId child = doc.AddElement(pool.Intern("b"), root);
  const ElementId grand = doc.AddElement(pool.Intern("c"), child);
  EXPECT_EQ(doc.name(), "mydoc");
  EXPECT_EQ(doc.root(), root);
  EXPECT_EQ(doc.NumElements(), 3u);
  EXPECT_EQ(doc.element(child).parent, root);
  EXPECT_EQ(doc.Depth(root), 0);
  EXPECT_EQ(doc.Depth(child), 1);
  EXPECT_EQ(doc.Depth(grand), 2);
}

TEST(DocumentTest, EmptyDocumentHasNoRoot) {
  Document doc("empty");
  EXPECT_EQ(doc.root(), kInvalidElement);
}

TEST(DocumentTest, AnchorRegistration) {
  NamePool pool;
  Document doc("d");
  const ElementId root = doc.AddElement(pool.Intern("a"), kInvalidElement);
  doc.RegisterAnchor("k1", root);
  EXPECT_EQ(doc.FindAnchor("k1"), root);
  // First registration wins.
  const ElementId child = doc.AddElement(pool.Intern("b"), root);
  doc.RegisterAnchor("k1", child);
  EXPECT_EQ(doc.FindAnchor("k1"), root);
}

TEST(SerializerTest, RoundTripSimple) {
  NamePool pool;
  StatusOr<Document> doc = ParseDocument(
      R"(<a x="1"><b>text &amp; more</b><c y="q&quot;z"/></a>)", "t", pool);
  ASSERT_TRUE(doc.ok());
  const std::string serialized = Serialize(*doc, pool);
  StatusOr<Document> again = ParseDocument(serialized, "t2", pool);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->NumElements(), doc->NumElements());
  for (ElementId i = 0; i < doc->NumElements(); ++i) {
    EXPECT_EQ(again->element(i).tag, doc->element(i).tag);
    EXPECT_EQ(again->element(i).parent, doc->element(i).parent);
    EXPECT_EQ(again->element(i).text, doc->element(i).text);
    EXPECT_EQ(again->element(i).attributes, doc->element(i).attributes);
  }
}

TEST(SerializerTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeXml("<&>\"'"), "&lt;&amp;&gt;&quot;&apos;");
  EXPECT_EQ(EscapeXml("plain"), "plain");
}

TEST(SerializerTest, CompactMode) {
  NamePool pool;
  Document doc("d");
  const ElementId root = doc.AddElement(pool.Intern("a"), kInvalidElement);
  doc.AddElement(pool.Intern("b"), root);
  SerializeOptions options;
  options.pretty = false;
  const std::string out = Serialize(doc, pool, options);
  EXPECT_EQ(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a><b/></a>");
}

TEST(DocumentTest, MemoryBytesGrowsWithContent) {
  NamePool pool;
  Document small("s");
  small.AddElement(pool.Intern("a"), kInvalidElement);
  Document large("l");
  const ElementId root = large.AddElement(pool.Intern("a"), kInvalidElement);
  for (int i = 0; i < 100; ++i) {
    const ElementId e = large.AddElement(pool.Intern("b"), root);
    large.element(e).text = "some text content here";
  }
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace flix::xml
