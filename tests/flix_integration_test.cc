// End-to-end tests: generate collections, build every FliX configuration,
// and validate query results against the BFS oracle on the full element
// graph — the framework-level contract of the paper.
#include <gtest/gtest.h>

#include <set>

#include "flix/flix.h"
#include "graph/traversal.h"
#include "graph/tree_utils.h"
#include "workload/dblp_generator.h"
#include "workload/query_workload.h"
#include "workload/synthetic_generator.h"

namespace flix::core {
namespace {

struct ConfigParam {
  MdbConfig config;
  size_t partition_bound;
};

std::string ConfigName(const ::testing::TestParamInfo<ConfigParam>& info) {
  return std::string(MdbConfigName(info.param.config)) + "_b" +
         std::to_string(info.param.partition_bound);
}

class IntegrationTest : public ::testing::TestWithParam<ConfigParam> {
 protected:
  static FlixOptions Options(const ConfigParam& p) {
    FlixOptions options;
    options.config = p.config;
    options.partition_bound = p.partition_bound;
    return options;
  }
};

TEST_P(IntegrationTest, SyntheticCollectionAllQueriesMatchOracle) {
  const auto collection = workload::GenerateSynthetic(
      {.seed = 11, .tree_docs = 5, .dense_docs = 7, .isolated_docs = 2});
  ASSERT_TRUE(collection.ok());
  auto flix = Flix::Build(*collection, Options(GetParam()));
  ASSERT_TRUE(flix.ok()) << flix.status().ToString();

  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);

  workload::QuerySamplerOptions sampler;
  sampler.seed = 5;
  sampler.count = 12;
  const std::vector<workload::DescendantQuery> queries =
      workload::SampleDescendantQueries(*collection, g, sampler);
  ASSERT_FALSE(queries.empty());

  for (const workload::DescendantQuery& q : queries) {
    const std::vector<Result> results =
        (*flix)->FindDescendantsByName(q.start, q.tag_name);
    EXPECT_TRUE(workload::SameResultSet(results,
                                        oracle.DescendantsByTag(q.start, q.tag)))
        << "query " << q.tag_name << " from " << q.start;
  }
}

TEST_P(IntegrationTest, SyntheticConnectionPairsMatchOracle) {
  const auto collection = workload::GenerateSynthetic({.seed = 13});
  ASSERT_TRUE(collection.ok());
  auto flix = Flix::Build(*collection, Options(GetParam()));
  ASSERT_TRUE(flix.ok());

  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const auto pairs = workload::SampleConnectionPairs(g, 30, 17);
  ASSERT_FALSE(pairs.empty());
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ((*flix)->IsConnected(a, b), oracle.IsReachable(a, b))
        << a << "->" << b;
  }
}

TEST_P(IntegrationTest, MiniDblpDescendantsMatchOracle) {
  workload::DblpOptions dblp;
  dblp.num_publications = 150;
  dblp.seed = 19;
  const auto collection = workload::GenerateDblp(dblp);
  ASSERT_TRUE(collection.ok()) << collection.status().ToString();
  auto flix = Flix::Build(*collection, Options(GetParam()));
  ASSERT_TRUE(flix.ok());

  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const TagId article = collection->pool().Lookup("article");
  ASSERT_NE(article, kInvalidTag);

  // Descendant articles of a handful of publication roots.
  for (DocId d = 0; d < collection->NumDocuments(); d += 29) {
    const NodeId start = collection->GlobalId(d, 0);
    const std::vector<Result> results =
        (*flix)->FindDescendantsByName(start, "article");
    EXPECT_TRUE(workload::SameResultSet(
        results, oracle.DescendantsByTag(start, article)))
        << "start doc " << d;
  }
}

TEST_P(IntegrationTest, StatsAreConsistent) {
  const auto collection = workload::GenerateSynthetic({.seed = 23});
  ASSERT_TRUE(collection.ok());
  auto flix = Flix::Build(*collection, Options(GetParam()));
  ASSERT_TRUE(flix.ok());
  const FlixStats& stats = (*flix)->stats();
  EXPECT_EQ(stats.num_meta_documents, (*flix)->meta_documents().docs.size());
  EXPECT_EQ(stats.per_meta.size(), stats.num_meta_documents);
  EXPECT_EQ(stats.num_ppo + stats.num_hopi + stats.num_apex,
            stats.num_meta_documents);
  EXPECT_GT(stats.total_index_bytes, 0u);
  size_t nodes = 0;
  for (const MetaIndexStats& m : stats.per_meta) nodes += m.nodes;
  EXPECT_EQ(nodes, collection->NumElements());
}

TEST_P(IntegrationTest, EveryMetaDocumentHasAnIndexMatchingItsStructure) {
  const auto collection = workload::GenerateSynthetic({.seed = 29});
  ASSERT_TRUE(collection.ok());
  const ConfigParam p = GetParam();
  auto flix = Flix::Build(*collection, Options(p));
  ASSERT_TRUE(flix.ok());
  for (const MetaDocument& meta : (*flix)->meta_documents().docs) {
    ASSERT_NE(meta.index, nullptr);
    if (meta.index->kind() == index::StrategyKind::kPpo) {
      EXPECT_TRUE(graph::IsForest(meta.graph));
    }
    if (p.config == MdbConfig::kUnconnectedHopi) {
      EXPECT_EQ(meta.index->kind(), index::StrategyKind::kHopi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, IntegrationTest,
    ::testing::Values(ConfigParam{MdbConfig::kNaive, 5000},
                      ConfigParam{MdbConfig::kMaximalPpo, 5000},
                      ConfigParam{MdbConfig::kUnconnectedHopi, 50},
                      ConfigParam{MdbConfig::kUnconnectedHopi, 200},
                      ConfigParam{MdbConfig::kHybrid, 50},
                      ConfigParam{MdbConfig::kHybrid, 200}),
    ConfigName);

TEST(IntegrationTest, ConfigsAgreeWithEachOther) {
  // All four configurations must return identical result sets for the same
  // queries — only performance may differ.
  const auto collection = workload::GenerateSynthetic({.seed = 31});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();

  workload::QuerySamplerOptions sampler;
  sampler.seed = 37;
  sampler.count = 8;
  const auto queries = workload::SampleDescendantQueries(*collection, g, sampler);
  ASSERT_FALSE(queries.empty());

  std::vector<std::unique_ptr<Flix>> builds;
  for (const MdbConfig config :
       {MdbConfig::kNaive, MdbConfig::kMaximalPpo, MdbConfig::kUnconnectedHopi,
        MdbConfig::kHybrid}) {
    FlixOptions options;
    options.config = config;
    options.partition_bound = 60;
    auto flix = Flix::Build(*collection, options);
    ASSERT_TRUE(flix.ok());
    builds.push_back(std::move(flix).value());
  }
  for (const workload::DescendantQuery& q : queries) {
    std::set<NodeId> reference;
    for (const Result& r :
         builds[0]->FindDescendantsByName(q.start, q.tag_name)) {
      reference.insert(r.node);
    }
    for (size_t i = 1; i < builds.size(); ++i) {
      std::set<NodeId> got;
      for (const Result& r :
           builds[i]->FindDescendantsByName(q.start, q.tag_name)) {
        got.insert(r.node);
      }
      EXPECT_EQ(got, reference) << "config " << i << " query from " << q.start;
    }
  }
}

}  // namespace
}  // namespace flix::core
