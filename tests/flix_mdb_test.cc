#include "flix/mdb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>

#include "flix/config.h"
#include "graph/tree_utils.h"
#include "workload/synthetic_generator.h"
#include "xml/collection.h"

namespace flix::core {
namespace {

struct BuiltInput {
  graph::Digraph graph;
  std::vector<uint32_t> doc_of;
  std::vector<NodeId> doc_roots;

  MdbInput View() const {
    MdbInput input;
    input.graph = &graph;
    input.doc_of = &doc_of;
    input.doc_roots = &doc_roots;
    return input;
  }
};

BuiltInput FromCollection(const xml::Collection& collection) {
  BuiltInput built;
  built.graph = collection.BuildGraph();
  built.doc_of = collection.DocOfNode();
  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    built.doc_roots.push_back(collection.GlobalId(d, 0));
  }
  return built;
}

// Collection of three documents: d0 links to d1's root (tree-style), d2 has
// an internal cycle-inducing idref.
xml::Collection SmallCollection() {
  xml::Collection c;
  EXPECT_TRUE(c.AddXml("<a><b/><x href=\"d1\"/></a>", "d0").ok());
  EXPECT_TRUE(c.AddXml("<a><c/></a>", "d1").ok());
  EXPECT_TRUE(
      c.AddXml(R"(<a id="r"><d ref="r"/></a>)", "d2").ok());
  c.ResolveAllLinks();
  return c;
}

// Checks the structural invariants every configuration must satisfy.
void CheckInvariants(const BuiltInput& built, const MetaDocumentSet& set) {
  const size_t n = built.graph.NumNodes();
  ASSERT_EQ(set.meta_of_node.size(), n);
  ASSERT_EQ(set.local_of_node.size(), n);

  // Every node appears in exactly one meta document, consistent maps.
  size_t total = 0;
  for (const MetaDocument& meta : set.docs) {
    total += meta.global_nodes.size();
    EXPECT_EQ(meta.graph.NumNodes(), meta.global_nodes.size());
    for (NodeId local = 0; local < meta.global_nodes.size(); ++local) {
      const NodeId global = meta.global_nodes[local];
      EXPECT_EQ(set.meta_of_node[global], meta.id);
      EXPECT_EQ(set.local_of_node[global], local);
      EXPECT_EQ(meta.graph.Tag(local), built.graph.Tag(global));
    }
  }
  EXPECT_EQ(total, n);

  // Every distinct global edge is represented exactly once: either as a
  // local edge or as a cross link.
  size_t local_edges = 0;
  size_t cross = 0;
  for (const MetaDocument& meta : set.docs) {
    local_edges += meta.graph.NumEdges();
    meta.link_targets.ForEach([&](NodeId src, std::span<const NodeId> targets) {
      EXPECT_TRUE(std::binary_search(meta.link_sources.begin(),
                                     meta.link_sources.end(), src));
      cross += targets.size();
    });
  }
  EXPECT_EQ(cross, set.num_cross_links);

  std::set<std::pair<NodeId, NodeId>> distinct;
  for (const graph::Edge& e : built.graph.Edges()) {
    distinct.insert({e.from, e.to});
  }
  EXPECT_EQ(local_edges + cross, distinct.size());

  // Entry bookkeeping mirrors cross links.
  size_t entries = 0;
  for (const MetaDocument& meta : set.docs) {
    meta.entry_origins.ForEach(
        [&](NodeId target, std::span<const NodeId> origins) {
          EXPECT_TRUE(std::binary_search(meta.entry_nodes.begin(),
                                         meta.entry_nodes.end(), target));
          entries += origins.size();
        });
  }
  EXPECT_EQ(entries, set.num_cross_links);
}

TEST(MdbTest, NaiveOneMetaPerDocument) {
  const xml::Collection c = SmallCollection();
  const BuiltInput built = FromCollection(c);
  FlixOptions options;
  options.config = MdbConfig::kNaive;
  const MetaDocumentSet set = BuildMetaDocuments(built.View(), options);
  CheckInvariants(built, set);
  EXPECT_EQ(set.docs.size(), 3u);
  // Only the inter-document link d0 -> d1 crosses meta documents; d2's
  // intra-document link stays inside its meta document.
  EXPECT_EQ(set.num_cross_links, 1u);
}

TEST(MdbTest, NaiveKeepsIntraDocumentLinksInGraph) {
  const xml::Collection c = SmallCollection();
  const BuiltInput built = FromCollection(c);
  FlixOptions options;
  options.config = MdbConfig::kNaive;
  const MetaDocumentSet set = BuildMetaDocuments(built.View(), options);
  // d2's meta document contains the idref edge -> not a forest.
  const uint32_t meta_d2 = set.meta_of_node[c.GlobalId(2, 0)];
  EXPECT_FALSE(graph::IsForest(set.docs[meta_d2].graph));
}

TEST(MdbTest, MaximalPpoGroupsTreeDocs) {
  const xml::Collection c = SmallCollection();
  const BuiltInput built = FromCollection(c);
  FlixOptions options;
  options.config = MdbConfig::kMaximalPpo;
  const MetaDocumentSet set = BuildMetaDocuments(built.View(), options);
  CheckInvariants(built, set);
  // d0 and d1 merge into one tree group; d2 is a non-tree leftover.
  EXPECT_EQ(set.docs.size(), 2u);
  EXPECT_EQ(set.meta_of_node[c.GlobalId(0, 0)],
            set.meta_of_node[c.GlobalId(1, 0)]);
  EXPECT_NE(set.meta_of_node[c.GlobalId(0, 0)],
            set.meta_of_node[c.GlobalId(2, 0)]);
  // The accepted link is inside the group: no cross links remain.
  EXPECT_EQ(set.num_cross_links, 0u);
  // The tree group's graph is a forest (PPO-ready).
  const uint32_t group = set.meta_of_node[c.GlobalId(0, 0)];
  EXPECT_TRUE(graph::IsForest(set.docs[group].graph));
}

TEST(MdbTest, GrowTreeGroupsRejectsNonRootTargets) {
  xml::Collection c;
  ASSERT_TRUE(c.AddXml("<a><x href=\"d1#deep\"/></a>", "d0").ok());
  ASSERT_TRUE(c.AddXml(R"(<a><b id="deep"/></a>)", "d1").ok());
  c.ResolveAllLinks();
  const BuiltInput built = FromCollection(c);
  std::vector<std::pair<NodeId, NodeId>> accepted;
  const std::vector<uint32_t> groups =
      GrowTreeGroups(built.View(), &accepted);
  // The link targets a non-root element: both docs stay separate groups.
  EXPECT_TRUE(accepted.empty());
  EXPECT_NE(groups[0], groups[1]);
}

TEST(MdbTest, GrowTreeGroupsRejectsSecondParent) {
  xml::Collection c;
  ASSERT_TRUE(c.AddXml("<a><x href=\"d2\"/></a>", "d0").ok());
  ASSERT_TRUE(c.AddXml("<a><x href=\"d2\"/></a>", "d1").ok());
  ASSERT_TRUE(c.AddXml("<a/>", "d2").ok());
  c.ResolveAllLinks();
  const BuiltInput built = FromCollection(c);
  std::vector<std::pair<NodeId, NodeId>> accepted;
  const std::vector<uint32_t> groups = GrowTreeGroups(built.View(), &accepted);
  // Only one of the two links can be accepted.
  EXPECT_EQ(accepted.size(), 1u);
  // d2 joined exactly one group.
  EXPECT_TRUE(groups[2] == groups[0] || groups[2] == groups[1]);
  EXPECT_NE(groups[0], groups[1]);
}

TEST(MdbTest, MaximalPpoRemovedLinkBecomesCrossLink) {
  xml::Collection c;
  // d0 -> d1 (root, accepted) and d0 -> d1#deep (removed, followed at
  // run time).
  ASSERT_TRUE(
      c.AddXml(R"(<a><x href="d1"/><y href="d1#deep"/></a>)", "d0").ok());
  ASSERT_TRUE(c.AddXml(R"(<a><b id="deep"/></a>)", "d1").ok());
  c.ResolveAllLinks();
  const BuiltInput built = FromCollection(c);
  FlixOptions options;
  options.config = MdbConfig::kMaximalPpo;
  const MetaDocumentSet set = BuildMetaDocuments(built.View(), options);
  CheckInvariants(built, set);
  ASSERT_EQ(set.docs.size(), 1u);
  EXPECT_TRUE(graph::IsForest(set.docs[0].graph));
  EXPECT_EQ(set.num_cross_links, 1u);  // the removed y -> deep link
}

TEST(MdbTest, UnconnectedHopiRespectsBound) {
  const auto collection = workload::GenerateSynthetic({.seed = 3,
                                                       .tree_docs = 5,
                                                       .dense_docs = 8,
                                                       .isolated_docs = 2});
  ASSERT_TRUE(collection.ok());
  const BuiltInput built = FromCollection(*collection);
  FlixOptions options;
  options.config = MdbConfig::kUnconnectedHopi;
  options.partition_bound = 60;
  const MetaDocumentSet set = BuildMetaDocuments(built.View(), options);
  CheckInvariants(built, set);
  // Bound can only be exceeded by a single oversized document.
  size_t max_doc = 0;
  for (DocId d = 0; d < collection->NumDocuments(); ++d) {
    max_doc = std::max(max_doc, collection->document(d).NumElements());
  }
  for (const MetaDocument& meta : set.docs) {
    EXPECT_LE(meta.NumNodes(), std::max<size_t>(options.partition_bound, max_doc));
  }
}

TEST(MdbTest, UnconnectedHopiKeepsDocumentsWhole) {
  const auto collection = workload::GenerateSynthetic({.seed = 4});
  ASSERT_TRUE(collection.ok());
  const BuiltInput built = FromCollection(*collection);
  FlixOptions options;
  options.config = MdbConfig::kUnconnectedHopi;
  options.partition_bound = 50;
  const MetaDocumentSet set = BuildMetaDocuments(built.View(), options);
  for (DocId d = 0; d < collection->NumDocuments(); ++d) {
    const uint32_t meta = set.meta_of_node[collection->GlobalId(d, 0)];
    for (xml::ElementId e = 0; e < collection->document(d).NumElements();
         ++e) {
      EXPECT_EQ(set.meta_of_node[collection->GlobalId(d, e)], meta);
    }
  }
}

TEST(MdbTest, HybridSeparatesTreeAndDenseRegions) {
  const auto collection = workload::GenerateSynthetic(
      {.seed = 5, .tree_docs = 6, .dense_docs = 6, .isolated_docs = 3});
  ASSERT_TRUE(collection.ok());
  const BuiltInput built = FromCollection(*collection);
  FlixOptions options;
  options.config = MdbConfig::kHybrid;
  options.partition_bound = 100;
  const MetaDocumentSet set = BuildMetaDocuments(built.View(), options);
  CheckInvariants(built, set);

  // Tree docs live in forest-shaped meta documents.
  size_t forest_metas = 0;
  for (const MetaDocument& meta : set.docs) {
    if (graph::IsForest(meta.graph)) ++forest_metas;
  }
  EXPECT_GT(forest_metas, 0u);
  // Tree region documents are all in forests.
  for (size_t i = 0; i < 6; ++i) {
    const DocId d = collection->FindDocument("tree" + std::to_string(i));
    ASSERT_NE(d, kInvalidDoc);
    const uint32_t m = set.meta_of_node[collection->GlobalId(d, 0)];
    EXPECT_TRUE(graph::IsForest(set.docs[m].graph)) << "tree doc " << i;
  }
}

TEST(MdbTest, EmptyCollection) {
  graph::Digraph empty;
  std::vector<uint32_t> doc_of;
  std::vector<NodeId> roots;
  MdbInput input;
  input.graph = &empty;
  input.doc_of = &doc_of;
  input.doc_roots = &roots;
  for (const MdbConfig config :
       {MdbConfig::kNaive, MdbConfig::kMaximalPpo, MdbConfig::kUnconnectedHopi,
        MdbConfig::kHybrid}) {
    FlixOptions options;
    options.config = config;
    const MetaDocumentSet set = BuildMetaDocuments(input, options);
    EXPECT_TRUE(set.docs.empty());
    EXPECT_EQ(set.num_cross_links, 0u);
  }
}

}  // namespace
}  // namespace flix::core
