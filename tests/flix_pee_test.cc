#include "flix/pee.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "flix/flix.h"
#include "graph/traversal.h"
#include "workload/synthetic_generator.h"
#include "xml/collection.h"

namespace flix::core {
namespace {

// Collection whose element graph crosses several documents:
//   d0: a(0) -> b(1), a -> link(2) --href--> d1 root
//   d1: a(3) -> b(4) -> link(5) --href--> d2#mid
//   d2: a(6) -> c(7 id=mid) -> b(8), plus link(9) --href--> d0 (cycle!)
xml::Collection ChainedCollection() {
  xml::Collection c;
  EXPECT_TRUE(c.AddXml("<a><b/><link href=\"d1\"/></a>", "d0").ok());
  EXPECT_TRUE(c.AddXml("<a><b><link href=\"d2#mid\"/></b></a>", "d1").ok());
  EXPECT_TRUE(c.AddXml(
      R"(<a><c id="mid"><b/></c><link href="d0"/></a>)", "d2").ok());
  c.ResolveAllLinks();
  return c;
}

std::vector<Result> Collect(const Flix& flix, NodeId start,
                            std::string_view name,
                            const QueryOptions& options = {}) {
  return flix.FindDescendantsByName(start, name, options);
}

std::set<NodeId> Nodes(const std::vector<Result>& results) {
  std::set<NodeId> nodes;
  for (const Result& r : results) nodes.insert(r.node);
  return nodes;
}

std::set<NodeId> OracleNodes(const graph::ReachabilityOracle& oracle,
                             NodeId start, TagId tag) {
  std::set<NodeId> nodes;
  for (const graph::NodeDist& nd : oracle.DescendantsByTag(start, tag)) {
    nodes.insert(nd.node);
  }
  return nodes;
}

class PeeConfigTest : public ::testing::TestWithParam<MdbConfig> {};

TEST_P(PeeConfigTest, DescendantsAcrossMetaDocuments) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = GetParam();
  options.partition_bound = 4;  // force several meta documents
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok()) << flix.status().ToString();

  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const TagId tag_b = c.pool().Lookup("b");

  for (const NodeId start : {c.GlobalId(0, 0), c.GlobalId(1, 0),
                             c.GlobalId(2, 0)}) {
    const std::vector<Result> results = Collect(**flix, start, "b");
    EXPECT_EQ(Nodes(results), OracleNodes(oracle, start, tag_b))
        << "config " << MdbConfigName(GetParam()) << " start " << start;
    // Reported distances are true path lengths: never below the shortest.
    for (const Result& r : results) {
      const Distance exact = oracle.Distance(start, r.node);
      EXPECT_GE(r.distance, exact);
      EXPECT_NE(exact, kUnreachable);
    }
    // No duplicates.
    EXPECT_EQ(Nodes(results).size(), results.size());
  }
}

TEST_P(PeeConfigTest, ConnectionTestsMatchOracle) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = GetParam();
  options.partition_bound = 4;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = 0; b < g.NumNodes(); b += 2) {
      EXPECT_EQ((*flix)->IsConnected(a, b), oracle.IsReachable(a, b))
          << a << "->" << b;
      EXPECT_EQ((*flix)->pee().IsConnectedBidirectional(a, b),
                oracle.IsReachable(a, b))
          << "bidi " << a << "->" << b;
    }
  }
}

TEST_P(PeeConfigTest, AncestorsAcrossMetaDocuments) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = GetParam();
  options.partition_bound = 4;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const TagId tag_a = c.pool().Lookup("a");

  // The b element in d2 has ancestors across all three documents.
  const NodeId deep_b = c.GlobalId(2, 2);
  const std::vector<Result> results =
      (*flix)->FindAncestorsByName(deep_b, "a");
  std::set<NodeId> expected;
  for (const graph::NodeDist& nd : oracle.AncestorsByTag(deep_b, tag_a)) {
    expected.insert(nd.node);
  }
  EXPECT_EQ(Nodes(results), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PeeConfigTest,
    ::testing::Values(MdbConfig::kNaive, MdbConfig::kMaximalPpo,
                      MdbConfig::kUnconnectedHopi, MdbConfig::kHybrid),
    [](const ::testing::TestParamInfo<MdbConfig>& info) {
      return std::string(MdbConfigName(info.param));
    });

TEST(PeeTest, MaxResultsStopsEarly) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  QueryOptions options;
  options.max_results = 1;
  const std::vector<Result> results =
      Collect(**flix, c.GlobalId(0, 0), "b", options);
  EXPECT_EQ(results.size(), 1u);
}

TEST(PeeTest, MaxDistanceFiltersFarResults) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  QueryOptions options;
  options.max_distance = 1;
  const std::vector<Result> results =
      Collect(**flix, c.GlobalId(0, 0), "b", options);
  // Only the direct child b of d0's root is within distance 1.
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].node, c.GlobalId(0, 1));
}

TEST(PeeTest, SinkCanAbort) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  int calls = 0;
  (*flix)->FindDescendantsByName(c.GlobalId(0, 0), "b", {},
                                 [&](const Result&) {
                                   ++calls;
                                   return false;  // stop immediately
                                 });
  EXPECT_EQ(calls, 1);
}

TEST(PeeTest, WildcardDescendants) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const NodeId start = c.GlobalId(0, 0);
  std::vector<Result> results;
  (*flix)->pee().FindDescendants(start, {}, [&](const Result& r) {
    results.push_back(r);
    return true;
  });
  std::set<NodeId> expected;
  for (const graph::NodeDist& nd : oracle.Descendants(start)) {
    expected.insert(nd.node);
  }
  EXPECT_EQ(Nodes(results), expected);
}

TEST(PeeTest, TypeQueryFindsAllPairsTargets) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const TagId tag_a = c.pool().Lookup("a");
  const TagId tag_b = c.pool().Lookup("b");

  const std::vector<Result> results = (*flix)->EvaluateTypeQuery("a", "b");
  std::set<NodeId> expected;
  for (const NodeId a : g.NodesWithTag(tag_a)) {
    for (const graph::NodeDist& nd : oracle.DescendantsByTag(a, tag_b)) {
      expected.insert(nd.node);
    }
  }
  EXPECT_EQ(Nodes(results), expected);
}

TEST(PeeTest, FindDistanceReturnsRealPathLength) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  for (NodeId a = 0; a < g.NumNodes(); a += 2) {
    for (NodeId b = 0; b < g.NumNodes(); b += 3) {
      const Distance got = (*flix)->FindDistance(a, b);
      const Distance exact = oracle.Distance(a, b);
      if (exact == kUnreachable) {
        EXPECT_EQ(got, kUnreachable);
      } else {
        EXPECT_NE(got, kUnreachable);
        EXPECT_GE(got, exact);
      }
    }
  }
}

TEST(PeeTest, ConnectionThresholdRespected) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const NodeId start = c.GlobalId(0, 0);
  // d2's deep b is several hops away; a tight threshold must reject it.
  const NodeId deep_b = c.GlobalId(2, 2);
  EXPECT_TRUE((*flix)->IsConnected(start, deep_b));
  EXPECT_FALSE((*flix)->IsConnected(start, deep_b, /*max_distance=*/1));
}

TEST(PeeTest, StreamingMatchesMaterializedResultSet) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const TagId tag_b = c.pool().Lookup("b");

  for (const NodeId start :
       {c.GlobalId(0, 0), c.GlobalId(1, 0), c.GlobalId(2, 0)}) {
    std::vector<Result> streamed;
    std::vector<Result> materialized;
    (*flix)->pee().FindDescendantsByTag(start, tag_b, {},
                                        [&](const Result& r) {
                                          streamed.push_back(r);
                                          return true;
                                        });
    QueryOptions legacy;
    legacy.materialize = true;
    (*flix)->pee().FindDescendantsByTag(start, tag_b, legacy,
                                        [&](const Result& r) {
                                          materialized.push_back(r);
                                          return true;
                                        });
    EXPECT_EQ(Nodes(streamed), Nodes(materialized)) << "start " << start;
    // The streamed merge emits globally ascending — tighter than the
    // legacy per-block order, which is only approximately sorted.
    for (size_t i = 1; i < streamed.size(); ++i) {
      EXPECT_GE(streamed[i].distance, streamed[i - 1].distance);
    }
  }
}

TEST(PeeTest, TopKStopsPullingCursorsEarly) {
  const auto collection = workload::GenerateSynthetic({.seed = 9});
  ASSERT_TRUE(collection.ok());
  auto flix = Flix::Build(*collection, {});
  ASSERT_TRUE(flix.ok());
  const PathExpressionEvaluator& pee = (*flix)->pee();

  // Find a start whose wildcard descendant set is comfortably larger than
  // the requested k, so an early stop has work left to skip.
  NodeId start = kInvalidNode;
  QueryStats full_stats;
  size_t full_count = 0;
  for (DocId doc = 0; doc < collection->NumDocuments(); ++doc) {
    start = collection->GlobalId(doc, 0);
    full_stats = {};
    full_count = 0;
    pee.FindDescendants(start, {},
                        [&](const Result&) {
                          ++full_count;
                          return true;
                        },
                        &full_stats);
    if (full_count > 10) break;
  }
  ASSERT_GT(full_count, 10u);
  ASSERT_GT(full_stats.cursors_opened, 0u);
  ASSERT_GT(full_stats.cursor_pulls, 0u);

  QueryOptions topk;
  topk.max_results = 3;
  QueryStats topk_stats;
  size_t topk_count = 0;
  pee.FindDescendants(start, topk,
                      [&](const Result&) {
                        ++topk_count;
                        return true;
                      },
                      &topk_stats);
  EXPECT_EQ(topk_count, 3u);
  // The streaming evaluator pulls only what the top-k emission forced and
  // credits the untraversed remainder of its open cursors.
  EXPECT_LT(topk_stats.cursor_pulls, full_stats.cursor_pulls);
  EXPECT_GT(topk_stats.cursor_saved, 0u);
}

TEST(PeeTest, AsyncStreamingDeliversSameResults) {
  const xml::Collection c = ChainedCollection();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const NodeId start = c.GlobalId(0, 0);
  const TagId tag_b = c.pool().Lookup("b");

  const std::vector<Result> sync = Collect(**flix, start, "b");

  // Tiny capacity: force producer/consumer interplay.
  AsyncQuery query =
      (*flix)->pee().FindDescendantsByTagAsync(start, tag_b, {}, /*capacity=*/2);
  const std::vector<Result> async = query.DrainAll();
  EXPECT_EQ(async, sync);
}

TEST(PeeTest, AsyncCancellationStopsWorker) {
  const auto collection = workload::GenerateSynthetic({.seed = 9});
  ASSERT_TRUE(collection.ok());
  auto flix = Flix::Build(*collection, {});
  ASSERT_TRUE(flix.ok());
  const TagId tag = collection->pool().Lookup("t0");
  ASSERT_NE(tag, kInvalidTag);

  {
    AsyncQuery query = (*flix)->pee().FindDescendantsByTagAsync(
        collection->GlobalId(0, 0), tag, {}, /*capacity=*/1);
    query.Next();  // maybe one result
  }  // handle destruction cancels the stream and joins the worker
  SUCCEED();
}

TEST(PeeTest, ChildAxisCrossesMetaDocuments) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = MdbConfig::kNaive;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  const PathExpressionEvaluator& pee = (*flix)->pee();

  // d0 root: tree children b(1) and link(2).
  const std::vector<Result> root_children = pee.Children(c.GlobalId(0, 0));
  EXPECT_EQ(Nodes(root_children),
            (std::set<NodeId>{c.GlobalId(0, 1), c.GlobalId(0, 2)}));
  // The link element's child via the cross link: d1's root.
  const std::vector<Result> link_children = pee.Children(c.GlobalId(0, 2));
  EXPECT_EQ(Nodes(link_children), (std::set<NodeId>{c.GlobalId(1, 0)}));
  // Tag filter.
  EXPECT_EQ(pee.ChildrenByTag(c.GlobalId(0, 0), c.pool().Lookup("b")).size(),
            1u);
}

TEST(PeeTest, ParentAxisIncludesLinkOrigins) {
  const xml::Collection c = ChainedCollection();
  FlixOptions options;
  options.config = MdbConfig::kNaive;
  auto flix = Flix::Build(c, options);
  ASSERT_TRUE(flix.ok());
  const PathExpressionEvaluator& pee = (*flix)->pee();

  // d1's root has no tree parent but is the target of d0's link element.
  const std::vector<Result> parents = pee.Parents(c.GlobalId(1, 0));
  EXPECT_EQ(Nodes(parents), (std::set<NodeId>{c.GlobalId(0, 2)}));
  // A mid-document element has its plain tree parent.
  EXPECT_EQ(Nodes(pee.Parents(c.GlobalId(0, 1))),
            (std::set<NodeId>{c.GlobalId(0, 0)}));
  // d0's root is itself linked from d2 (the cycle-closing link element).
  EXPECT_EQ(Nodes(pee.Parents(c.GlobalId(0, 0))),
            (std::set<NodeId>{c.GlobalId(2, 3)}));
}

TEST(PeeTest, ChildAndParentAxesMatchGraph) {
  // Property: Children/Parents agree with the global element graph across
  // configurations.
  const xml::Collection c = ChainedCollection();
  const graph::Digraph g = c.BuildGraph();
  for (const MdbConfig config :
       {MdbConfig::kNaive, MdbConfig::kUnconnectedHopi, MdbConfig::kHybrid}) {
    FlixOptions options;
    options.config = config;
    options.partition_bound = 4;
    auto flix = Flix::Build(c, options);
    ASSERT_TRUE(flix.ok());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      std::set<NodeId> expected_children;
      for (const graph::Digraph::Arc& arc : g.OutArcs(v)) {
        expected_children.insert(arc.target);
      }
      EXPECT_EQ(Nodes((*flix)->pee().Children(v)), expected_children)
          << "children of " << v << " under " << MdbConfigName(config);
      std::set<NodeId> expected_parents;
      for (const graph::Digraph::Arc& arc : g.InArcs(v)) {
        expected_parents.insert(arc.target);
      }
      EXPECT_EQ(Nodes((*flix)->pee().Parents(v)), expected_parents)
          << "parents of " << v << " under " << MdbConfigName(config);
    }
  }
}

TEST(PeeTest, SiblingsExcludeSelf) {
  xml::Collection c;
  ASSERT_TRUE(c.AddXml("<a><b/><c/><d/></a>", "doc").ok());
  c.ResolveAllLinks();
  auto flix = Flix::Build(c, {});
  ASSERT_TRUE(flix.ok());
  const std::vector<Result> siblings =
      (*flix)->pee().Siblings(c.GlobalId(0, 2));  // element c
  EXPECT_EQ(Nodes(siblings),
            (std::set<NodeId>{c.GlobalId(0, 1), c.GlobalId(0, 3)}));
  EXPECT_TRUE((*flix)->pee().Siblings(c.GlobalId(0, 0)).empty());
}

TEST(PeeTest, CyclicLinksDoNotLoopForever) {
  // d0 -> d1 -> d2 -> d0 cycle in ChainedCollection; a wildcard query from
  // any root must terminate and visit each reachable node exactly once.
  const xml::Collection c = ChainedCollection();
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  const size_t expected = oracle.Descendants(c.GlobalId(0, 0)).size();
  for (const MdbConfig config :
       {MdbConfig::kNaive, MdbConfig::kUnconnectedHopi}) {
    FlixOptions options;
    options.config = config;
    options.partition_bound = 4;
    auto flix = Flix::Build(c, options);
    ASSERT_TRUE(flix.ok());
    std::vector<Result> results;
    (*flix)->pee().FindDescendants(c.GlobalId(0, 0), {},
                                   [&](const Result& r) {
                                     results.push_back(r);
                                     return true;
                                   });
    EXPECT_EQ(Nodes(results).size(), results.size());
    EXPECT_EQ(results.size(), expected);
  }
}

}  // namespace
}  // namespace flix::core
