#include "flix/landmarks.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>

#include "flix/flix.h"
#include "flix/mdb.h"
#include "graph/traversal.h"
#include "workload/synthetic_generator.h"
#include "xml/collection.h"

namespace flix::core {
namespace {

// Same shape as flix_pee_test's chained collection: three documents whose
// links form a cycle, so partition_bound=4 forces a >= 3-partition chain
// and every cross-partition query hops at least one super edge.
xml::Collection ChainedCollection() {
  xml::Collection c;
  EXPECT_TRUE(c.AddXml("<a><b/><link href=\"d1\"/></a>", "d0").ok());
  EXPECT_TRUE(c.AddXml("<a><b><link href=\"d2#mid\"/></b></a>", "d1").ok());
  EXPECT_TRUE(c.AddXml(
      R"(<a><c id="mid"><b/></c><link href="d0"/></a>)", "d2").ok());
  c.ResolveAllLinks();
  return c;
}

std::unique_ptr<Flix> MustBuild(const xml::Collection& c, MdbConfig config,
                                size_t partition_bound,
                                size_t landmark_count) {
  FlixOptions options;
  options.config = config;
  options.partition_bound = partition_bound;
  options.landmark_count = landmark_count;
  auto flix = Flix::Build(c, options);
  EXPECT_TRUE(flix.ok()) << flix.status().ToString();
  return std::move(*flix);
}

class LandmarkConfigTest : public ::testing::TestWithParam<MdbConfig> {};

// The central guarantee: with the cache resident, every point query
// returns byte-identical answers to the blind walk, which in turn matches
// the BFS oracle — including a == b, unreachable pairs, and max_distance
// exactly at / one below the true distance.
TEST_P(LandmarkConfigTest, GuidedMatchesBlindAndOracle) {
  const auto collection = workload::GenerateSynthetic({.seed = 42});
  ASSERT_TRUE(collection.ok());
  auto flix = MustBuild(*collection, GetParam(), 60, 8);
  ASSERT_NE(flix->meta_documents().landmarks.Snapshot(), nullptr);

  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  for (NodeId a = 0; a < g.NumNodes(); a += 29) {
    for (NodeId b = 0; b < g.NumNodes(); b += 31) {
      const Distance truth = oracle.Distance(a, b);
      flix->SetLandmarksEnabled(false);
      const Distance blind = flix->FindDistance(a, b);
      flix->SetLandmarksEnabled(true);
      const Distance guided = flix->FindDistance(a, b);
      EXPECT_EQ(guided, blind) << a << "->" << b;
      EXPECT_EQ(guided, truth) << a << "->" << b;
      if (truth != kUnreachable && truth > 0) {
        // A budget exactly at the true distance keeps the answer; one
        // below it must report unreachable — in both modes.
        EXPECT_EQ(flix->FindDistance(a, b, truth), truth);
        EXPECT_EQ(flix->FindDistance(a, b, truth - 1), kUnreachable);
        flix->SetLandmarksEnabled(false);
        EXPECT_EQ(flix->FindDistance(a, b, truth), truth);
        EXPECT_EQ(flix->FindDistance(a, b, truth - 1), kUnreachable);
        flix->SetLandmarksEnabled(true);
      }
      EXPECT_EQ(flix->IsConnected(a, b), truth != kUnreachable);
      EXPECT_EQ(flix->pee().IsConnectedBidirectional(a, b),
                truth != kUnreachable);
    }
    EXPECT_EQ(flix->FindDistance(a, a), 0);
  }
}

TEST_P(LandmarkConfigTest, MultiPartitionChain) {
  const xml::Collection c = ChainedCollection();
  auto flix = MustBuild(c, GetParam(), 4, 8);
  // The per-document configs must split this into a >= 3-partition chain;
  // the merging configs may legally fuse it (the differential check below
  // still runs — it just exercises the local path there).
  if (GetParam() == MdbConfig::kNaive ||
      GetParam() == MdbConfig::kUnconnectedHopi) {
    ASSERT_GE(flix->meta_documents().docs.size(), 3u);
  }
  const graph::Digraph g = c.BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      EXPECT_EQ(flix->FindDistance(a, b), oracle.Distance(a, b))
          << a << "->" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, LandmarkConfigTest,
    ::testing::Values(MdbConfig::kNaive, MdbConfig::kMaximalPpo,
                      MdbConfig::kUnconnectedHopi, MdbConfig::kHybrid),
    [](const ::testing::TestParamInfo<MdbConfig>& info) {
      return std::string(MdbConfigName(info.param));
    });

// h(n, g) never overstates the true distance, and unreachability proofs
// never fire for reachable pairs — the two properties the A* rewrite rests
// on, checked directly against the BFS oracle.
TEST(LandmarkCacheTest, BoundsAreAdmissible) {
  const auto collection = workload::GenerateSynthetic({.seed = 77});
  ASSERT_TRUE(collection.ok());
  auto flix = MustBuild(*collection, MdbConfig::kHybrid, 60, 12);
  const std::shared_ptr<const LandmarkCache> cache =
      flix->meta_documents().landmarks.Snapshot();
  ASSERT_NE(cache, nullptr);
  EXPECT_FALSE(cache->empty());

  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  for (NodeId goal = 0; goal < g.NumNodes(); goal += 53) {
    const LandmarkCache::GoalView view = cache->Goal(goal);
    for (NodeId n = 0; n < g.NumNodes(); n += 17) {
      const Distance truth = oracle.Distance(n, goal);
      if (truth == kUnreachable) continue;
      EXPECT_LE(cache->LowerBound(n, view), truth) << n << "->" << goal;
      EXPECT_FALSE(cache->ProvablyUnreachable(n, view)) << n << "->" << goal;
    }
  }
  EXPECT_TRUE(cache->Validate(g, 32, /*seed=*/1).ok());
}

TEST(LandmarkCacheTest, ValidateCatchesFlippedDistance) {
  const auto collection = workload::GenerateSynthetic({.seed = 19});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();
  auto flix = MustBuild(*collection, MdbConfig::kHybrid, 60, 4);
  const std::shared_ptr<const LandmarkCache> cache =
      flix->meta_documents().landmarks.Snapshot();
  ASSERT_NE(cache, nullptr);

  std::stringstream stream;
  BinaryWriter writer(stream);
  cache->Save(writer);
  ASSERT_TRUE(writer.ok());
  std::string bytes = stream.str();
  // The distance tables are the tail of the serialization; flipping the
  // last byte damages one from-landmark row without breaking the shape.
  bytes.back() = static_cast<char>(bytes.back() ^ 0x2b);
  std::stringstream damaged(bytes);
  BinaryReader reader(damaged);
  StatusOr<LandmarkCache> loaded =
      LandmarkCache::Load(reader, cache->num_nodes());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Full sweep (sample >= nodes) must notice the flip.
  EXPECT_FALSE(loaded->Validate(g, g.NumNodes(), /*seed=*/1).ok());
}

TEST(LandmarkPersistenceTest, HeapRoundTrip) {
  const auto collection = workload::GenerateSynthetic({.seed = 61});
  ASSERT_TRUE(collection.ok());
  auto original = MustBuild(*collection, MdbConfig::kHybrid, 60, 8);
  const auto before = original->meta_documents().landmarks.Snapshot();
  ASSERT_NE(before, nullptr);

  std::stringstream stream;
  ASSERT_TRUE(original->Save(stream).ok());
  auto loaded = Flix::Load(stream, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const auto after = (*loaded)->meta_documents().landmarks.Snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->num_landmarks(), before->num_landmarks());
  EXPECT_EQ(after->generation(), before->generation());
  EXPECT_EQ(std::vector<NodeId>(after->landmarks().begin(),
                                after->landmarks().end()),
            std::vector<NodeId>(before->landmarks().begin(),
                                before->landmarks().end()));
  EXPECT_TRUE(after->Validate(collection->BuildGraph(), 32, 1).ok());
  EXPECT_EQ((*loaded)->options().landmark_count, 8u);
}

TEST(LandmarkPersistenceTest, MappedRoundTrip) {
  const auto collection = workload::GenerateSynthetic({.seed = 62});
  ASSERT_TRUE(collection.ok());
  auto original = MustBuild(*collection, MdbConfig::kHybrid, 60, 8);
  const auto before = original->meta_documents().landmarks.Snapshot();
  ASSERT_NE(before, nullptr);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "landmarks.flix")
          .string();
  ASSERT_TRUE(original->Save(path, Flix::IndexFormat::kMapped).ok());
  auto loaded = Flix::Load(path, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const auto after = (*loaded)->meta_documents().landmarks.Snapshot();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->num_landmarks(), before->num_landmarks());
  EXPECT_EQ(after->generation(), before->generation());
  EXPECT_TRUE(after->Validate(collection->BuildGraph(), 32, 1).ok());

  // Same answers out of the mapped cache.
  const graph::Digraph g = collection->BuildGraph();
  for (NodeId a = 0; a < g.NumNodes(); a += 37) {
    for (NodeId b = 0; b < g.NumNodes(); b += 41) {
      EXPECT_EQ((*loaded)->FindDistance(a, b), original->FindDistance(a, b));
    }
  }
}

TEST(LandmarkLifecycleTest, CountZeroDisablesTheCache) {
  const auto collection = workload::GenerateSynthetic({.seed = 63});
  ASSERT_TRUE(collection.ok());
  auto flix = MustBuild(*collection, MdbConfig::kHybrid, 60, 0);
  EXPECT_EQ(flix->meta_documents().landmarks.Snapshot(), nullptr);
  // Point queries still answer, blind.
  const graph::Digraph g = collection->BuildGraph();
  const graph::ReachabilityOracle oracle(g);
  for (NodeId a = 0; a < g.NumNodes(); a += 43) {
    for (NodeId b = 0; b < g.NumNodes(); b += 47) {
      EXPECT_EQ(flix->FindDistance(a, b), oracle.Distance(a, b));
    }
  }
}

TEST(LandmarkLifecycleTest, RebuildBumpsGeneration) {
  const auto collection = workload::GenerateSynthetic({.seed = 64});
  ASSERT_TRUE(collection.ok());
  auto flix = MustBuild(*collection, MdbConfig::kHybrid, 60, 8);
  const uint64_t before =
      flix->meta_documents().landmarks.Snapshot()->generation();
  flix->RebuildLandmarks();
  EXPECT_EQ(flix->meta_documents().landmarks.Snapshot()->generation(),
            before + 1);
}

TEST(LandmarkRefresherTest, RunOnceAndBackgroundCadence) {
  const auto collection = workload::GenerateSynthetic({.seed = 65});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();
  const std::vector<uint32_t> doc_of = collection->DocOfNode();
  std::vector<NodeId> doc_roots(collection->NumDocuments());
  for (DocId d = 0; d < collection->NumDocuments(); ++d) {
    doc_roots[d] = collection->GlobalId(d, 0);
  }
  MdbInput input;
  input.graph = &g;
  input.doc_of = &doc_of;
  input.doc_roots = &doc_roots;
  FlixOptions options;
  options.config = MdbConfig::kHybrid;
  options.partition_bound = 60;
  MetaDocumentSet set = BuildMetaDocuments(input, options);
  ASSERT_EQ(set.landmarks.Snapshot(), nullptr);

  size_t hook_calls = 0;
  LandmarkRefresher::Options refresher_options;
  refresher_options.landmark_count = 6;
  refresher_options.replacement_hook = [&](LandmarkCache&) { ++hook_calls; };
  LandmarkRefresher refresher(*collection, set, refresher_options);

  EXPECT_EQ(refresher.RunOnce(), 0u);  // no readers in flight
  ASSERT_NE(set.landmarks.Snapshot(), nullptr);
  EXPECT_EQ(set.landmarks.Snapshot()->generation(), 1u);
  EXPECT_EQ(set.landmarks.Snapshot()->num_landmarks(), 6u);
  EXPECT_EQ(hook_calls, 1u);

  refresher.RunOnce();
  EXPECT_EQ(set.landmarks.Snapshot()->generation(), 2u);

  refresher.Start(std::chrono::milliseconds(1));
  const uint64_t base = set.landmarks.Snapshot()->generation();
  for (int i = 0; i < 200; ++i) {
    if (set.landmarks.Snapshot()->generation() > base) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  refresher.Stop();
  EXPECT_GT(set.landmarks.Snapshot()->generation(), base);
  EXPECT_TRUE(set.landmarks.Snapshot()->Validate(g, 16, 1).ok());
}

TEST(LandmarkSelectionTest, DeterministicAndSpread) {
  const auto collection = workload::GenerateSynthetic({.seed = 66});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();
  auto flix = MustBuild(*collection, MdbConfig::kHybrid, 40, 8);
  const auto& set = flix->meta_documents();
  const LandmarkCache first = LandmarkCache::Build(g, set, 8);
  const LandmarkCache second = LandmarkCache::Build(g, set, 8);
  ASSERT_EQ(first.num_landmarks(), second.num_landmarks());
  EXPECT_EQ(std::vector<NodeId>(first.landmarks().begin(),
                                first.landmarks().end()),
            std::vector<NodeId>(second.landmarks().begin(),
                                second.landmarks().end()));
  // One landmark per partition at most: farthest-point seeding never
  // revisits a partition it already covered.
  std::set<uint32_t> partitions;
  for (const NodeId l : first.landmarks()) {
    EXPECT_TRUE(partitions.insert(set.meta_of_node[l]).second);
  }
}

}  // namespace
}  // namespace flix::core
