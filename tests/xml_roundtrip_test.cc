// Property tests: parse(serialize(doc)) reproduces the document for
// randomly generated documents across seeds and sizes, and the full
// collection pipeline (generate -> serialize -> parse -> graph) is stable.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "workload/synthetic_generator.h"
#include "xml/collection.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace flix::xml {
namespace {

struct RoundTripParams {
  uint64_t seed;
  size_t num_elements;
  bool pretty;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripParams> {};

TEST_P(RoundTripTest, ParseSerializeParse) {
  const RoundTripParams& p = GetParam();
  Rng rng(p.seed);
  workload::SyntheticOptions options;
  options.num_tags = 6;
  const std::string text =
      workload::GenerateDocumentXml(options, "doc", p.num_elements, rng);

  NamePool pool;
  StatusOr<Document> first = ParseDocument(text, "doc", pool);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->NumElements(), p.num_elements);

  SerializeOptions sopts;
  sopts.pretty = p.pretty;
  const std::string serialized = Serialize(*first, pool, sopts);
  StatusOr<Document> second = ParseDocument(serialized, "doc2", pool);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  ASSERT_EQ(second->NumElements(), first->NumElements());
  for (ElementId e = 0; e < first->NumElements(); ++e) {
    EXPECT_EQ(second->element(e).tag, first->element(e).tag);
    EXPECT_EQ(second->element(e).parent, first->element(e).parent);
    EXPECT_EQ(second->element(e).children, first->element(e).children);
    EXPECT_EQ(second->element(e).attributes, first->element(e).attributes);
    EXPECT_EQ(second->element(e).text, first->element(e).text);
  }
}

std::vector<RoundTripParams> RoundTripSweep() {
  std::vector<RoundTripParams> params;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (const size_t n : {1u, 5u, 40u, 150u}) {
      for (const bool pretty : {true, false}) {
        params.push_back({seed, n, pretty});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTripTest, ::testing::ValuesIn(RoundTripSweep()),
    [](const ::testing::TestParamInfo<RoundTripParams>& info) {
      return "s" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.num_elements) +
             (info.param.pretty ? "_pretty" : "_compact");
    });

TEST(RoundTripTest, TrickyContentSurvives) {
  NamePool pool;
  Document doc("t");
  const ElementId root = doc.AddElement(pool.Intern("r"), kInvalidElement);
  const ElementId child = doc.AddElement(pool.Intern("c"), root);
  doc.element(child).text = "a<b>&amp;\"quotes\" and 'apostrophes' \xE2\x82\xAC";
  doc.element(child).attributes.push_back({"attr", "<>&\"'"});

  const std::string serialized = Serialize(doc, pool);
  StatusOr<Document> again = ParseDocument(serialized, "t2", pool);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->element(1).text, doc.element(child).text);
  EXPECT_EQ(again->element(1).attributes, doc.element(child).attributes);
}

TEST(RoundTripTest, CollectionGraphStableAcrossSerialization) {
  // Serialize every document of a generated collection, re-parse into a new
  // collection, and compare the element graphs edge for edge.
  const auto original = workload::GenerateSynthetic({.seed = 71});
  ASSERT_TRUE(original.ok());

  Collection reparsed;
  for (DocId d = 0; d < original->NumDocuments(); ++d) {
    const std::string text =
        Serialize(original->document(d), original->pool());
    ASSERT_TRUE(
        reparsed.AddXml(text, original->document(d).name()).ok());
  }
  reparsed.ResolveAllLinks();

  ASSERT_EQ(reparsed.NumElements(), original->NumElements());
  const graph::Digraph g1 = original->BuildGraph();
  const graph::Digraph g2 = reparsed.BuildGraph();
  ASSERT_EQ(g2.NumNodes(), g1.NumNodes());
  ASSERT_EQ(g2.NumEdges(), g1.NumEdges());
  ASSERT_EQ(g2.NumLinkEdges(), g1.NumLinkEdges());

  // The builder inserts elements in arbitrary order while the parser
  // numbers them in document (pre-) order, so re-parsed ids are the
  // preorder permutation of the originals. Recover the mapping by walking
  // each original document the way the serializer does.
  std::vector<NodeId> new_of_old(original->NumElements(), 0);
  for (DocId d = 0; d < original->NumDocuments(); ++d) {
    const Document& doc = original->document(d);
    NodeId next = 0;
    std::vector<ElementId> stack = {doc.root()};
    while (!stack.empty()) {
      const ElementId e = stack.back();
      stack.pop_back();
      new_of_old[original->GlobalId(d, e)] = reparsed.GlobalId(d, next++);
      const auto& children = doc.element(e).children;
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }

  for (NodeId v = 0; v < g1.NumNodes(); ++v) {
    const NodeId w = new_of_old[v];
    // Tag ids can differ between pools; compare names.
    EXPECT_EQ(reparsed.pool().Name(g2.Tag(w)), original->pool().Name(g1.Tag(v)));
    ASSERT_EQ(g2.OutArcs(w).size(), g1.OutArcs(v).size());
    std::set<NodeId> expected;
    std::set<NodeId> actual;
    for (const graph::Digraph::Arc& arc : g1.OutArcs(v)) {
      expected.insert(new_of_old[arc.target]);
    }
    for (const graph::Digraph::Arc& arc : g2.OutArcs(w)) {
      actual.insert(arc.target);
    }
    EXPECT_EQ(actual, expected) << "node " << v;
  }
}

}  // namespace
}  // namespace flix::xml
