#include "graph/tree_utils.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace flix::graph {
namespace {

TEST(TreeUtilsTest, ChainIsForest) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(IsForest(g));
  EXPECT_EQ(ForestRoots(g), std::vector<NodeId>{0});
}

TEST(TreeUtilsTest, MultipleTreesAreForest) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  // Node 4 isolated.
  EXPECT_TRUE(IsForest(g));
  EXPECT_EQ(ForestRoots(g), (std::vector<NodeId>{0, 2, 4}));
}

TEST(TreeUtilsTest, TwoParentsNotForest) {
  Digraph g(3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  EXPECT_FALSE(IsForest(g));
}

TEST(TreeUtilsTest, CycleNotForest) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_FALSE(IsForest(g));

  Digraph self(1);
  self.AddEdge(0, 0);
  EXPECT_FALSE(IsForest(self));
}

TEST(SpanningForestTest, ForestInputUnchanged) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  const SpanningForest sf = ExtractSpanningForest(g);
  EXPECT_TRUE(IsForest(sf.forest));
  EXPECT_EQ(sf.forest.NumEdges(), 3u);
  EXPECT_TRUE(sf.removed.empty());
}

TEST(SpanningForestTest, RemovesSecondParent) {
  Digraph g(3);
  g.AddEdge(0, 2, EdgeKind::kTree);
  g.AddEdge(1, 2, EdgeKind::kLink);
  const SpanningForest sf = ExtractSpanningForest(g);
  EXPECT_TRUE(IsForest(sf.forest));
  ASSERT_EQ(sf.removed.size(), 1u);
  // The tree edge is preferred; the link goes.
  EXPECT_EQ(sf.removed[0], (Edge{1, 2, EdgeKind::kLink}));
}

TEST(SpanningForestTest, PrefersTreeEdgesEvenWhenLinkComesFirst) {
  Digraph g(3);
  // Link inserted first, tree edge second; extraction still keeps the tree
  // edge because tree edges are processed in their own pass.
  g.AddEdge(1, 2, EdgeKind::kLink);
  g.AddEdge(0, 2, EdgeKind::kTree);
  const SpanningForest sf = ExtractSpanningForest(g);
  ASSERT_EQ(sf.removed.size(), 1u);
  EXPECT_EQ(sf.removed[0].kind, EdgeKind::kLink);
}

TEST(SpanningForestTest, BreaksCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  const SpanningForest sf = ExtractSpanningForest(g);
  EXPECT_TRUE(IsForest(sf.forest));
  EXPECT_EQ(sf.forest.NumEdges(), 2u);
  EXPECT_EQ(sf.removed.size(), 1u);
}

TEST(SpanningForestTest, SelfLoopRemoved) {
  Digraph g(1);
  g.AddEdge(0, 0);
  const SpanningForest sf = ExtractSpanningForest(g);
  EXPECT_TRUE(IsForest(sf.forest));
  EXPECT_EQ(sf.removed.size(), 1u);
}

TEST(SpanningForestTest, RandomGraphsAlwaysYieldForests) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Digraph g(30);
    for (int e = 0; e < 80; ++e) {
      g.AddEdge(static_cast<NodeId>(rng.Uniform(30)),
                static_cast<NodeId>(rng.Uniform(30)),
                rng.Bernoulli(0.5) ? EdgeKind::kTree : EdgeKind::kLink);
    }
    const SpanningForest sf = ExtractSpanningForest(g);
    EXPECT_TRUE(IsForest(sf.forest)) << "seed " << seed;
    EXPECT_EQ(sf.forest.NumEdges() + sf.removed.size(), g.NumEdges());
  }
}

TEST(SpanningForestTest, TagsPreserved) {
  Digraph g;
  g.AddNode(3);
  g.AddNode(9);
  g.AddEdge(0, 1);
  const SpanningForest sf = ExtractSpanningForest(g);
  EXPECT_EQ(sf.forest.Tag(0), 3u);
  EXPECT_EQ(sf.forest.Tag(1), 9u);
}

}  // namespace
}  // namespace flix::graph
