#include "flix/streamed_list.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace flix::core {
namespace {

TEST(StreamedListTest, PushThenDrain) {
  StreamedList list;
  EXPECT_TRUE(list.Push({1, 0}));
  EXPECT_TRUE(list.Push({2, 1}));
  list.Close();
  const std::vector<Result> all = list.DrainAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], (Result{1, 0}));
  EXPECT_EQ(all[1], (Result{2, 1}));
}

TEST(StreamedListTest, NextAfterCloseReturnsNullopt) {
  StreamedList list;
  list.Close();
  EXPECT_EQ(list.Next(), std::nullopt);
}

TEST(StreamedListTest, ProducedCountsAllPushes) {
  StreamedList list;
  list.Push({1, 0});
  list.Push({2, 0});
  EXPECT_EQ(list.produced(), 2u);
  list.Next();
  EXPECT_EQ(list.produced(), 2u);  // consuming does not decrease it
}

TEST(StreamedListTest, TryNextNeverBlocks) {
  StreamedList list;
  EXPECT_EQ(list.TryNext(), std::nullopt);  // empty and still open
  EXPECT_TRUE(list.Push({7, 1}));
  const std::optional<Result> r = list.TryNext();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (Result{7, 1}));
  EXPECT_EQ(list.TryNext(), std::nullopt);
  list.Close();
  EXPECT_EQ(list.TryNext(), std::nullopt);
}

TEST(StreamedListTest, DrainAllReservesFromProduced) {
  StreamedList list(256);
  constexpr int kCount = 100;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(list.Push({static_cast<NodeId>(i), i}));
  }
  list.Close();
  const std::vector<Result> all = list.DrainAll();
  ASSERT_EQ(all.size(), static_cast<size_t>(kCount));
  EXPECT_GE(all.capacity(), static_cast<size_t>(kCount));
}

TEST(StreamedListTest, CancelStopsProducer) {
  StreamedList list;
  EXPECT_TRUE(list.Push({1, 0}));
  list.Cancel();
  EXPECT_TRUE(list.cancelled());
  EXPECT_FALSE(list.Push({2, 0}));
  EXPECT_EQ(list.Next(), std::nullopt);
}

TEST(StreamedListTest, ConcurrentProducerConsumer) {
  StreamedList list(16);  // small capacity to force blocking
  constexpr int kCount = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      if (!list.Push({static_cast<NodeId>(i), i})) return;
    }
    list.Close();
  });
  std::vector<Result> got;
  while (std::optional<Result> r = list.Next()) got.push_back(*r);
  producer.join();
  ASSERT_EQ(got.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i].node, static_cast<NodeId>(i));
  }
}

TEST(StreamedListTest, ConsumerCancelUnblocksFullProducer) {
  StreamedList list(2);
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) {
      if (!list.Push({static_cast<NodeId>(i), i})) break;
    }
    producer_done = true;
  });
  // Take a couple of results, then cancel (top-k client behaviour).
  list.Next();
  list.Next();
  list.Cancel();
  producer.join();
  EXPECT_TRUE(producer_done);
}

TEST(StreamedListTest, ConsumerBlocksUntilPush) {
  StreamedList list;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    list.Push({42, 7});
    list.Close();
  });
  const std::optional<Result> r = list.Next();
  producer.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->node, 42u);
}

}  // namespace
}  // namespace flix::core
