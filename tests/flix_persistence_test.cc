// Persistence round-trips: binary I/O primitives, every index strategy, and
// a full Flix save/load whose loaded instance must answer queries exactly
// like the freshly built one.
#include <gtest/gtest.h>

#include <sstream>

#include "common/binary_io.h"
#include "common/rng.h"
#include "flix/flix.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/path_index.h"
#include "index/ppo.h"
#include "index/transitive_closure.h"
#include "workload/synthetic_generator.h"

namespace flix {
namespace {

TEST(BinaryIoTest, PodAndStringRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(1ULL << 40);
  writer.WriteI32(-17);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteString("hello \0 world");
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64(), 1ULL << 40);
  EXPECT_EQ(reader.ReadI32(), -17);
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_FALSE(reader.ReadBool());
  EXPECT_EQ(reader.ReadString(), std::string("hello \0 world"));
  EXPECT_TRUE(reader.ok());
}

TEST(BinaryIoTest, VecRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  const std::vector<uint32_t> flat = {1, 2, 3};
  const std::vector<std::vector<int32_t>> nested = {{-1}, {}, {5, 6}};
  writer.WriteVec(flat);
  writer.WriteNestedVec(nested);

  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadVec<uint32_t>(), flat);
  EXPECT_EQ(reader.ReadNestedVec<int32_t>(), nested);
  EXPECT_TRUE(reader.ok());
}

TEST(BinaryIoTest, TruncatedInputFailsGracefully) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(1000000);  // claims a million entries, provides none
  BinaryReader reader(stream);
  const auto v = reader.ReadVec<uint64_t>();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(reader.failed());
}

TEST(BinaryIoTest, HugeClaimedSizeRejected) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(UINT64_MAX);  // absurd element count
  BinaryReader reader(stream);
  (void)reader.ReadVec<uint64_t>();
  EXPECT_TRUE(reader.failed());
}

graph::Digraph RandomGraph(size_t n, size_t edges, uint64_t seed) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(4)));
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)),
              rng.Bernoulli(0.3) ? graph::EdgeKind::kLink
                                 : graph::EdgeKind::kTree);
  }
  return g;
}

TEST(PersistenceTest, DigraphRoundTrip) {
  const graph::Digraph g = RandomGraph(30, 60, 5);
  std::stringstream stream;
  BinaryWriter writer(stream);
  g.Save(writer);
  BinaryReader reader(stream);
  const graph::Digraph loaded = graph::Digraph::Load(reader);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
  ASSERT_EQ(loaded.NumEdges(), g.NumEdges());
  EXPECT_EQ(loaded.NumLinkEdges(), g.NumLinkEdges());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(loaded.Tag(v), g.Tag(v));
  }
}

// Round-trips one index through SaveIndex/LoadIndex and compares answers.
void CheckIndexRoundTrip(const index::PathIndex& original,
                         const graph::Digraph& g) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  index::SaveIndex(original, writer);
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(stream);
  auto loaded = index::LoadIndex(reader, g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->kind(), original.kind());

  for (NodeId u = 0; u < g.NumNodes(); u += 3) {
    EXPECT_EQ((*loaded)->Descendants(u), original.Descendants(u));
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ((*loaded)->DescendantsByTag(u, tag),
                original.DescendantsByTag(u, tag));
      EXPECT_EQ((*loaded)->AncestorsByTag(u, tag),
                original.AncestorsByTag(u, tag));
    }
    for (NodeId v = 0; v < g.NumNodes(); v += 4) {
      EXPECT_EQ((*loaded)->DistanceBetween(u, v),
                original.DistanceBetween(u, v));
    }
  }
}

TEST(PersistenceTest, PpoRoundTrip) {
  Rng rng(9);
  graph::Digraph g;
  for (int i = 0; i < 40; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(4)));
  for (NodeId i = 1; i < 40; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(i)), i);
  }
  auto built = index::PpoIndex::Build(g);
  ASSERT_TRUE(built.ok());
  CheckIndexRoundTrip(**built, g);
}

TEST(PersistenceTest, HopiRoundTrip) {
  const graph::Digraph g = RandomGraph(50, 110, 11);
  const auto built = index::HopiIndex::Build(g);
  CheckIndexRoundTrip(*built, g);
}

TEST(PersistenceTest, ApexRoundTrip) {
  const graph::Digraph g = RandomGraph(50, 110, 13);
  const auto built = index::ApexIndex::Build(g);
  CheckIndexRoundTrip(*built, g);
}

TEST(PersistenceTest, TcRoundTrip) {
  const graph::Digraph g = RandomGraph(40, 90, 17);
  auto built = index::TransitiveClosureIndex::Build(g);
  ASSERT_TRUE(built.ok());
  CheckIndexRoundTrip(**built, g);
}

TEST(PersistenceTest, LoadIndexRejectsGarbage) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU32(999);  // unknown strategy kind
  graph::Digraph g(1);
  BinaryReader reader(stream);
  EXPECT_FALSE(index::LoadIndex(reader, g).ok());
}

class FlixPersistenceTest
    : public ::testing::TestWithParam<core::MdbConfig> {};

TEST_P(FlixPersistenceTest, FullRoundTrip) {
  const auto collection = workload::GenerateSynthetic({.seed = 81});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = GetParam();
  options.partition_bound = 80;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  std::stringstream stream;
  ASSERT_TRUE((*original)->Save(stream).ok());

  auto loaded = core::Flix::Load(stream, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Same structure...
  EXPECT_EQ((*loaded)->stats().num_meta_documents,
            (*original)->stats().num_meta_documents);
  EXPECT_EQ((*loaded)->stats().num_cross_links,
            (*original)->stats().num_cross_links);
  EXPECT_EQ((*loaded)->stats().num_ppo, (*original)->stats().num_ppo);
  EXPECT_EQ((*loaded)->stats().num_hopi, (*original)->stats().num_hopi);

  // ...and identical query answers.
  const graph::Digraph g = collection->BuildGraph();
  for (const char* tag : {"t0", "t1", "doc", "xref"}) {
    for (DocId d = 0; d < collection->NumDocuments(); d += 4) {
      const NodeId start = collection->GlobalId(d, 0);
      EXPECT_EQ((*loaded)->FindDescendantsByName(start, tag),
                (*original)->FindDescendantsByName(start, tag))
          << "tag " << tag << " doc " << d;
    }
  }
  for (NodeId a = 0; a < g.NumNodes(); a += 37) {
    for (NodeId b = 0; b < g.NumNodes(); b += 41) {
      EXPECT_EQ((*loaded)->IsConnected(a, b), (*original)->IsConnected(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FlixPersistenceTest,
    ::testing::Values(core::MdbConfig::kNaive, core::MdbConfig::kMaximalPpo,
                      core::MdbConfig::kUnconnectedHopi,
                      core::MdbConfig::kHybrid),
    [](const ::testing::TestParamInfo<core::MdbConfig>& info) {
      return std::string(core::MdbConfigName(info.param));
    });

TEST(FlixPersistenceTest, OptionsRoundTripIncludingCache) {
  const auto collection = workload::GenerateSynthetic({.seed = 91});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = core::MdbConfig::kUnconnectedHopi;
  options.partition_bound = 123;
  options.query_cache_capacity = 7;
  options.element_level_partitions = true;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  std::stringstream stream;
  ASSERT_TRUE((*original)->Save(stream).ok());
  auto loaded = core::Flix::Load(stream, *collection);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->options().config, options.config);
  EXPECT_EQ((*loaded)->options().partition_bound, options.partition_bound);
  EXPECT_EQ((*loaded)->options().query_cache_capacity, 7u);
  EXPECT_TRUE((*loaded)->options().element_level_partitions);
  ASSERT_NE((*loaded)->query_cache(), nullptr);
}

TEST(FlixPersistenceTest, LoadRejectsWrongCollection) {
  const auto collection = workload::GenerateSynthetic({.seed = 83});
  ASSERT_TRUE(collection.ok());
  auto original = core::Flix::Build(*collection, {});
  ASSERT_TRUE(original.ok());
  std::stringstream stream;
  ASSERT_TRUE((*original)->Save(stream).ok());

  const auto other =
      workload::GenerateSynthetic({.seed = 84, .tree_docs = 2});
  ASSERT_TRUE(other.ok());
  const auto loaded = core::Flix::Load(stream, *other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CollectionPersistenceTest, RoundTripPreservesEverything) {
  const auto original = workload::GenerateSynthetic({.seed = 87});
  ASSERT_TRUE(original.ok());

  std::stringstream stream;
  ASSERT_TRUE(original->Save(stream).ok());
  auto loaded = xml::Collection::Load(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->NumDocuments(), original->NumDocuments());
  ASSERT_EQ(loaded->NumElements(), original->NumElements());
  EXPECT_EQ(loaded->pool().size(), original->pool().size());
  for (TagId t = 0; t < original->pool().size(); ++t) {
    EXPECT_EQ(loaded->pool().Name(t), original->pool().Name(t));
  }
  for (DocId d = 0; d < original->NumDocuments(); ++d) {
    const xml::Document& a = original->document(d);
    const xml::Document& b = loaded->document(d);
    ASSERT_EQ(b.name(), a.name());
    ASSERT_EQ(b.NumElements(), a.NumElements());
    for (xml::ElementId e = 0; e < a.NumElements(); ++e) {
      EXPECT_EQ(b.element(e).tag, a.element(e).tag);
      EXPECT_EQ(b.element(e).parent, a.element(e).parent);
      EXPECT_EQ(b.element(e).children, a.element(e).children);
      EXPECT_EQ(b.element(e).attributes, a.element(e).attributes);
      EXPECT_EQ(b.element(e).text, a.element(e).text);
    }
  }
  EXPECT_EQ(loaded->links().links, original->links().links);

  // Anchors survive: resolving links again gives the same set.
  loaded->ResolveAllLinks();
  EXPECT_EQ(loaded->links().links, original->links().links);

  // The element graphs are identical, so a saved index works with either.
  const graph::Digraph g1 = original->BuildGraph();
  const graph::Digraph g2 = loaded->BuildGraph();
  EXPECT_EQ(g2.Edges(), g1.Edges());
}

TEST(CollectionPersistenceTest, IndexSavedAgainstLoadedCollection) {
  // Build against the original, save both, load both, query via the loaded
  // pair — the workflow flixctl uses.
  const auto original = workload::GenerateSynthetic({.seed = 89});
  ASSERT_TRUE(original.ok());
  auto flix = core::Flix::Build(*original, {});
  ASSERT_TRUE(flix.ok());

  std::stringstream coll_stream;
  std::stringstream index_stream;
  ASSERT_TRUE(original->Save(coll_stream).ok());
  ASSERT_TRUE((*flix)->Save(index_stream).ok());

  auto loaded_collection = xml::Collection::Load(coll_stream);
  ASSERT_TRUE(loaded_collection.ok());
  auto loaded_flix = core::Flix::Load(index_stream, *loaded_collection);
  ASSERT_TRUE(loaded_flix.ok()) << loaded_flix.status().ToString();

  const NodeId start = loaded_collection->GlobalId(0, 0);
  EXPECT_EQ((*loaded_flix)->FindDescendantsByName(start, "t0"),
            (*flix)->FindDescendantsByName(start, "t0"));
}

TEST(CollectionPersistenceTest, RejectsGarbage) {
  std::stringstream stream("garbage bytes");
  EXPECT_FALSE(xml::Collection::Load(stream).ok());
}

TEST(FlixPersistenceTest, LoadRejectsGarbageFile) {
  const auto collection = workload::GenerateSynthetic({.seed = 85});
  ASSERT_TRUE(collection.ok());
  std::stringstream stream("this is not a flix index");
  EXPECT_FALSE(core::Flix::Load(stream, *collection).ok());
}

}  // namespace
}  // namespace flix
