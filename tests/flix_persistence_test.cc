// Persistence round-trips: binary I/O primitives, every index strategy, and
// a full Flix save/load whose loaded instance must answer queries exactly
// like the freshly built one — through the stream format and through the
// paged (mmap, zero-copy) format, which must also agree with each other.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "check/validator.h"
#include "common/binary_io.h"
#include "common/rng.h"
#include "flix/adapt.h"
#include "flix/flix.h"
#include "index/apex.h"
#include "index/hopi.h"
#include "index/path_index.h"
#include "index/ppo.h"
#include "index/transitive_closure.h"
#include "workload/synthetic_generator.h"

namespace flix {
namespace {

TEST(BinaryIoTest, PodAndStringRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(1ULL << 40);
  writer.WriteI32(-17);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteString("hello \0 world");
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64(), 1ULL << 40);
  EXPECT_EQ(reader.ReadI32(), -17);
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_FALSE(reader.ReadBool());
  EXPECT_EQ(reader.ReadString(), std::string("hello \0 world"));
  EXPECT_TRUE(reader.ok());
}

TEST(BinaryIoTest, VecRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  const std::vector<uint32_t> flat = {1, 2, 3};
  const std::vector<std::vector<int32_t>> nested = {{-1}, {}, {5, 6}};
  writer.WriteVec(flat);
  writer.WriteNestedVec(nested);

  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadVec<uint32_t>(), flat);
  EXPECT_EQ(reader.ReadNestedVec<int32_t>(), nested);
  EXPECT_TRUE(reader.ok());
}

TEST(BinaryIoTest, TruncatedInputFailsGracefully) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(1000000);  // claims a million entries, provides none
  BinaryReader reader(stream);
  const auto v = reader.ReadVec<uint64_t>();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(reader.failed());
}

TEST(BinaryIoTest, HugeClaimedSizeRejected) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(UINT64_MAX);  // absurd element count
  BinaryReader reader(stream);
  (void)reader.ReadVec<uint64_t>();
  EXPECT_TRUE(reader.failed());
}

graph::Digraph RandomGraph(size_t n, size_t edges, uint64_t seed) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(4)));
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)),
              rng.Bernoulli(0.3) ? graph::EdgeKind::kLink
                                 : graph::EdgeKind::kTree);
  }
  return g;
}

TEST(PersistenceTest, DigraphRoundTrip) {
  const graph::Digraph g = RandomGraph(30, 60, 5);
  std::stringstream stream;
  BinaryWriter writer(stream);
  g.Save(writer);
  BinaryReader reader(stream);
  const graph::Digraph loaded = graph::Digraph::Load(reader);
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(loaded.NumNodes(), g.NumNodes());
  ASSERT_EQ(loaded.NumEdges(), g.NumEdges());
  EXPECT_EQ(loaded.NumLinkEdges(), g.NumLinkEdges());
  EXPECT_EQ(loaded.Edges(), g.Edges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(loaded.Tag(v), g.Tag(v));
  }
}

// Round-trips one index through SaveIndex/LoadIndex and compares answers.
void CheckIndexRoundTrip(const index::PathIndex& original,
                         const graph::Digraph& g) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  index::SaveIndex(original, writer);
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(stream);
  auto loaded = index::LoadIndex(reader, g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->kind(), original.kind());

  for (NodeId u = 0; u < g.NumNodes(); u += 3) {
    EXPECT_EQ((*loaded)->Descendants(u), original.Descendants(u));
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ((*loaded)->DescendantsByTag(u, tag),
                original.DescendantsByTag(u, tag));
      EXPECT_EQ((*loaded)->AncestorsByTag(u, tag),
                original.AncestorsByTag(u, tag));
    }
    for (NodeId v = 0; v < g.NumNodes(); v += 4) {
      EXPECT_EQ((*loaded)->DistanceBetween(u, v),
                original.DistanceBetween(u, v));
    }
  }
}

TEST(PersistenceTest, PpoRoundTrip) {
  Rng rng(9);
  graph::Digraph g;
  for (int i = 0; i < 40; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(4)));
  for (NodeId i = 1; i < 40; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(i)), i);
  }
  auto built = index::PpoIndex::Build(g);
  ASSERT_TRUE(built.ok());
  CheckIndexRoundTrip(**built, g);
}

TEST(PersistenceTest, HopiRoundTrip) {
  const graph::Digraph g = RandomGraph(50, 110, 11);
  const auto built = index::HopiIndex::Build(g);
  CheckIndexRoundTrip(*built, g);
}

TEST(PersistenceTest, ApexRoundTrip) {
  const graph::Digraph g = RandomGraph(50, 110, 13);
  const auto built = index::ApexIndex::Build(g);
  CheckIndexRoundTrip(*built, g);
}

TEST(PersistenceTest, TcRoundTrip) {
  const graph::Digraph g = RandomGraph(40, 90, 17);
  auto built = index::TransitiveClosureIndex::Build(g);
  ASSERT_TRUE(built.ok());
  CheckIndexRoundTrip(**built, g);
}

TEST(PersistenceTest, LoadIndexRejectsGarbage) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU32(999);  // unknown strategy kind
  graph::Digraph g(1);
  BinaryReader reader(stream);
  EXPECT_FALSE(index::LoadIndex(reader, g).ok());
}

class FlixPersistenceTest
    : public ::testing::TestWithParam<core::MdbConfig> {};

TEST_P(FlixPersistenceTest, FullRoundTrip) {
  const auto collection = workload::GenerateSynthetic({.seed = 81});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = GetParam();
  options.partition_bound = 80;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  std::stringstream stream;
  ASSERT_TRUE((*original)->Save(stream).ok());

  auto loaded = core::Flix::Load(stream, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Same structure...
  EXPECT_EQ((*loaded)->stats().num_meta_documents,
            (*original)->stats().num_meta_documents);
  EXPECT_EQ((*loaded)->stats().num_cross_links,
            (*original)->stats().num_cross_links);
  EXPECT_EQ((*loaded)->stats().num_ppo, (*original)->stats().num_ppo);
  EXPECT_EQ((*loaded)->stats().num_hopi, (*original)->stats().num_hopi);

  // ...and identical query answers.
  const graph::Digraph g = collection->BuildGraph();
  for (const char* tag : {"t0", "t1", "doc", "xref"}) {
    for (DocId d = 0; d < collection->NumDocuments(); d += 4) {
      const NodeId start = collection->GlobalId(d, 0);
      EXPECT_EQ((*loaded)->FindDescendantsByName(start, tag),
                (*original)->FindDescendantsByName(start, tag))
          << "tag " << tag << " doc " << d;
    }
  }
  for (NodeId a = 0; a < g.NumNodes(); a += 37) {
    for (NodeId b = 0; b < g.NumNodes(); b += 41) {
      EXPECT_EQ((*loaded)->IsConnected(a, b), (*original)->IsConnected(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, FlixPersistenceTest,
    ::testing::Values(core::MdbConfig::kNaive, core::MdbConfig::kMaximalPpo,
                      core::MdbConfig::kUnconnectedHopi,
                      core::MdbConfig::kHybrid),
    [](const ::testing::TestParamInfo<core::MdbConfig>& info) {
      return std::string(core::MdbConfigName(info.param));
    });

TEST(FlixPersistenceTest, OptionsRoundTripIncludingCache) {
  const auto collection = workload::GenerateSynthetic({.seed = 91});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = core::MdbConfig::kUnconnectedHopi;
  options.partition_bound = 123;
  options.query_cache_capacity = 7;
  options.element_level_partitions = true;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  std::stringstream stream;
  ASSERT_TRUE((*original)->Save(stream).ok());
  auto loaded = core::Flix::Load(stream, *collection);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->options().config, options.config);
  EXPECT_EQ((*loaded)->options().partition_bound, options.partition_bound);
  EXPECT_EQ((*loaded)->options().query_cache_capacity, 7u);
  EXPECT_TRUE((*loaded)->options().element_level_partitions);
  ASSERT_NE((*loaded)->query_cache(), nullptr);
}

TEST(FlixPersistenceTest, LoadRejectsWrongCollection) {
  const auto collection = workload::GenerateSynthetic({.seed = 83});
  ASSERT_TRUE(collection.ok());
  auto original = core::Flix::Build(*collection, {});
  ASSERT_TRUE(original.ok());
  std::stringstream stream;
  ASSERT_TRUE((*original)->Save(stream).ok());

  const auto other =
      workload::GenerateSynthetic({.seed = 84, .tree_docs = 2});
  ASSERT_TRUE(other.ok());
  const auto loaded = core::Flix::Load(stream, *other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CollectionPersistenceTest, RoundTripPreservesEverything) {
  const auto original = workload::GenerateSynthetic({.seed = 87});
  ASSERT_TRUE(original.ok());

  std::stringstream stream;
  ASSERT_TRUE(original->Save(stream).ok());
  auto loaded = xml::Collection::Load(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->NumDocuments(), original->NumDocuments());
  ASSERT_EQ(loaded->NumElements(), original->NumElements());
  EXPECT_EQ(loaded->pool().size(), original->pool().size());
  for (TagId t = 0; t < original->pool().size(); ++t) {
    EXPECT_EQ(loaded->pool().Name(t), original->pool().Name(t));
  }
  for (DocId d = 0; d < original->NumDocuments(); ++d) {
    const xml::Document& a = original->document(d);
    const xml::Document& b = loaded->document(d);
    ASSERT_EQ(b.name(), a.name());
    ASSERT_EQ(b.NumElements(), a.NumElements());
    for (xml::ElementId e = 0; e < a.NumElements(); ++e) {
      EXPECT_EQ(b.element(e).tag, a.element(e).tag);
      EXPECT_EQ(b.element(e).parent, a.element(e).parent);
      EXPECT_EQ(b.element(e).children, a.element(e).children);
      EXPECT_EQ(b.element(e).attributes, a.element(e).attributes);
      EXPECT_EQ(b.element(e).text, a.element(e).text);
    }
  }
  EXPECT_EQ(loaded->links().links, original->links().links);

  // Anchors survive: resolving links again gives the same set.
  loaded->ResolveAllLinks();
  EXPECT_EQ(loaded->links().links, original->links().links);

  // The element graphs are identical, so a saved index works with either.
  const graph::Digraph g1 = original->BuildGraph();
  const graph::Digraph g2 = loaded->BuildGraph();
  EXPECT_EQ(g2.Edges(), g1.Edges());
}

TEST(CollectionPersistenceTest, IndexSavedAgainstLoadedCollection) {
  // Build against the original, save both, load both, query via the loaded
  // pair — the workflow flixctl uses.
  const auto original = workload::GenerateSynthetic({.seed = 89});
  ASSERT_TRUE(original.ok());
  auto flix = core::Flix::Build(*original, {});
  ASSERT_TRUE(flix.ok());

  std::stringstream coll_stream;
  std::stringstream index_stream;
  ASSERT_TRUE(original->Save(coll_stream).ok());
  ASSERT_TRUE((*flix)->Save(index_stream).ok());

  auto loaded_collection = xml::Collection::Load(coll_stream);
  ASSERT_TRUE(loaded_collection.ok());
  auto loaded_flix = core::Flix::Load(index_stream, *loaded_collection);
  ASSERT_TRUE(loaded_flix.ok()) << loaded_flix.status().ToString();

  const NodeId start = loaded_collection->GlobalId(0, 0);
  EXPECT_EQ((*loaded_flix)->FindDescendantsByName(start, "t0"),
            (*flix)->FindDescendantsByName(start, "t0"));
}

TEST(CollectionPersistenceTest, RejectsGarbage) {
  std::stringstream stream("garbage bytes");
  EXPECT_FALSE(xml::Collection::Load(stream).ok());
}

TEST(FlixPersistenceTest, LoadRejectsGarbageFile) {
  const auto collection = workload::GenerateSynthetic({.seed = 85});
  ASSERT_TRUE(collection.ok());
  std::stringstream stream("this is not a flix index");
  EXPECT_FALSE(core::Flix::Load(stream, *collection).ok());
}

// ---------------------------------------------------------------------------
// Paged (mmap) format

std::string PagedTempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// Compares every query class the facade offers between two instances built
// over the same collection. Heavier than the spot checks above because the
// paged read path is entirely new code: views must agree with heap answers
// everywhere, not just on a sample.
void ExpectSameAnswers(const core::Flix& a, const core::Flix& b,
                       const xml::Collection& collection) {
  const graph::Digraph g = collection.BuildGraph();
  for (const char* tag : {"t0", "t1", "doc", "xref"}) {
    for (DocId d = 0; d < collection.NumDocuments(); d += 3) {
      const NodeId start = collection.GlobalId(d, 0);
      EXPECT_EQ(b.FindDescendantsByName(start, tag),
                a.FindDescendantsByName(start, tag))
          << "descendants, tag " << tag << " doc " << d;
      EXPECT_EQ(b.FindAncestorsByName(start, tag),
                a.FindAncestorsByName(start, tag))
          << "ancestors, tag " << tag << " doc " << d;
    }
  }
  for (NodeId u = 0; u < g.NumNodes(); u += 37) {
    for (NodeId v = 0; v < g.NumNodes(); v += 41) {
      EXPECT_EQ(b.IsConnected(u, v), a.IsConnected(u, v));
      EXPECT_EQ(b.FindDistance(u, v), a.FindDistance(u, v));
    }
  }
}

class PagedPersistenceTest
    : public ::testing::TestWithParam<core::MdbConfig> {};

TEST_P(PagedPersistenceTest, MappedRoundTrip) {
  const auto collection = workload::GenerateSynthetic({.seed = 81});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = GetParam();
  options.partition_bound = 80;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  const std::string path = PagedTempPath(
      std::string("mapped_roundtrip_") +
      std::string(core::MdbConfigName(GetParam())) + ".flix");
  ASSERT_TRUE((*original)->Save(path, core::Flix::IndexFormat::kMapped).ok());

  auto loaded = core::Flix::Load(path, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The load is zero-copy: every meta-document table is a view into the
  // mapping, not a heap copy.
  const core::MetaDocumentSet& set = (*loaded)->meta_documents();
  EXPECT_TRUE(set.meta_of_node.is_view());
  EXPECT_TRUE(set.local_of_node.is_view());
  ASSERT_FALSE(set.docs.empty());
  for (const core::MetaDocument& meta : set.docs) {
    EXPECT_TRUE(meta.global_nodes.is_view());
    EXPECT_TRUE(meta.graph.is_view());
  }

  // Same structure as the original...
  EXPECT_EQ((*loaded)->stats().num_meta_documents,
            (*original)->stats().num_meta_documents);
  EXPECT_EQ((*loaded)->stats().num_cross_links,
            (*original)->stats().num_cross_links);
  EXPECT_EQ((*loaded)->stats().num_ppo, (*original)->stats().num_ppo);
  EXPECT_EQ((*loaded)->stats().num_hopi, (*original)->stats().num_hopi);
  EXPECT_EQ((*loaded)->stats().num_apex, (*original)->stats().num_apex);

  // ...identical answers everywhere...
  ExpectSameAnswers(**original, **loaded, *collection);

  // ...and the full correctness tooling holds on the mapped views: the
  // structural validator (deep) plus the differential query oracle.
  check::CheckOptions check_options;
  check_options.index.deep = true;
  const check::CheckReport report =
      check::ValidateFramework(**loaded, check_options);
  EXPECT_TRUE(report.ok()) << report.violations.front();
  const check::OracleReport oracle = check::RunDifferentialOracle(**loaded);
  EXPECT_TRUE(oracle.ok()) << oracle.diffs.front();
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PagedPersistenceTest,
    ::testing::Values(core::MdbConfig::kNaive, core::MdbConfig::kMaximalPpo,
                      core::MdbConfig::kUnconnectedHopi,
                      core::MdbConfig::kHybrid),
    [](const ::testing::TestParamInfo<core::MdbConfig>& info) {
      return std::string(core::MdbConfigName(info.param));
    });

TEST(PagedPersistenceTest, HeapAndMappedFilesAgree) {
  const auto collection = workload::GenerateSynthetic({.seed = 93});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = core::MdbConfig::kHybrid;
  options.partition_bound = 80;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  const std::string heap_path = PagedTempPath("agree_heap.flix");
  const std::string mapped_path = PagedTempPath("agree_mapped.flix");
  ASSERT_TRUE((*original)->Save(heap_path).ok());
  ASSERT_TRUE(
      (*original)->Save(mapped_path, core::Flix::IndexFormat::kMapped).ok());

  // Load sniffs the format: the same call handles both files.
  auto heap = core::Flix::Load(heap_path, *collection);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  auto mapped = core::Flix::Load(mapped_path, *collection);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  EXPECT_FALSE((*heap)->meta_documents().meta_of_node.is_view());
  EXPECT_TRUE((*mapped)->meta_documents().meta_of_node.is_view());
  ExpectSameAnswers(**heap, **mapped, *collection);
}

TEST(PagedPersistenceTest, OptionsRoundTripThroughSuperblock) {
  const auto collection = workload::GenerateSynthetic({.seed = 91});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = core::MdbConfig::kUnconnectedHopi;
  options.partition_bound = 123;
  options.query_cache_capacity = 7;
  options.element_level_partitions = true;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  const std::string path = PagedTempPath("options_superblock.flix");
  ASSERT_TRUE((*original)->Save(path, core::Flix::IndexFormat::kMapped).ok());
  auto loaded = core::Flix::Load(path, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->options().config, options.config);
  EXPECT_EQ((*loaded)->options().partition_bound, options.partition_bound);
  EXPECT_EQ((*loaded)->options().query_cache_capacity, 7u);
  EXPECT_TRUE((*loaded)->options().element_level_partitions);
  ASSERT_NE((*loaded)->query_cache(), nullptr);
}

TEST(PagedPersistenceTest, SkippingChecksumVerificationStillLoads) {
  const auto collection = workload::GenerateSynthetic({.seed = 95});
  ASSERT_TRUE(collection.ok());
  auto original = core::Flix::Build(*collection, {});
  ASSERT_TRUE(original.ok());
  const std::string path = PagedTempPath("no_verify.flix");
  ASSERT_TRUE((*original)->Save(path, core::Flix::IndexFormat::kMapped).ok());

  core::Flix::LoadOptions load_options;
  load_options.verify_checksums = false;
  auto loaded = core::Flix::Load(path, *collection, load_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const NodeId start = collection->GlobalId(0, 0);
  EXPECT_EQ((*loaded)->FindDescendantsByName(start, "t0"),
            (*original)->FindDescendantsByName(start, "t0"));
}

TEST(PagedPersistenceTest, MappedLoadRejectsWrongCollection) {
  const auto collection = workload::GenerateSynthetic({.seed = 83});
  ASSERT_TRUE(collection.ok());
  auto original = core::Flix::Build(*collection, {});
  ASSERT_TRUE(original.ok());
  const std::string path = PagedTempPath("wrong_collection.flix");
  ASSERT_TRUE((*original)->Save(path, core::Flix::IndexFormat::kMapped).ok());

  const auto other = workload::GenerateSynthetic({.seed = 84, .tree_docs = 2});
  ASSERT_TRUE(other.ok());
  const auto loaded = core::Flix::Load(path, *other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// The adaptive ISS must work on a mapped instance: the migrator builds an
// ordinary heap index and publishes it over the mapped base; afterwards the
// instance re-saves cleanly over its own backing file (the temp-file+rename
// path — overwriting a live mapping in place would fault).
TEST(PagedPersistenceTest, AdaptiveMigrationOnMappedInstance) {
  const auto collection = workload::GenerateSynthetic({.seed = 97});
  ASSERT_TRUE(collection.ok());
  core::FlixOptions options;
  options.config = core::MdbConfig::kHybrid;
  options.partition_bound = 80;
  auto original = core::Flix::Build(*collection, options);
  ASSERT_TRUE(original.ok());

  const std::string path = PagedTempPath("adapt_mapped.flix");
  ASSERT_TRUE((*original)->Save(path, core::Flix::IndexFormat::kMapped).ok());
  auto loaded = core::Flix::Load(path, *collection);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  core::Flix& flix = **loaded;
  flix.SetAdaptiveIss(true);

  // Migrate the first partition that is not already HOPI (all-HOPI builds
  // fall back to an APEX migration) — proves ReplacePartitionIndex layers a
  // heap index over the mapped base.
  const core::MetaDocumentSet& set = flix.meta_documents();
  ASSERT_FALSE(set.docs.empty());
  core::Recommendation rec;
  rec.best = index::StrategyKind::kHopi;
  rec.migrate = true;
  rec.partition = 0;
  for (uint32_t p = 0; p < set.docs.size(); ++p) {
    if (set.docs[p].index.Acquire()->kind() != index::StrategyKind::kHopi) {
      rec.partition = p;
      break;
    }
  }
  if (set.docs[rec.partition].index.Acquire()->kind() ==
      index::StrategyKind::kHopi) {
    rec.best = index::StrategyKind::kApex;
  }
  rec.current = set.docs[rec.partition].index.Acquire()->kind();

  core::StrategyMigrator migrator(flix);
  ASSERT_TRUE(migrator.Migrate(rec).ok());
  EXPECT_EQ(set.docs[rec.partition].index.Acquire()->kind(), rec.best);

  // Queries still match the freshly built instance after the swap.
  ExpectSameAnswers(**original, flix, *collection);

  // Re-save over the live mapping, then reload the new file.
  ASSERT_TRUE(flix.Save(path, core::Flix::IndexFormat::kMapped).ok());
  auto reloaded = core::Flix::Load(path, *collection);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)
                ->meta_documents()
                .docs[rec.partition]
                .index.Acquire()
                ->kind(),
            rec.best);
  ExpectSameAnswers(**original, **reloaded, *collection);
}

TEST(PagedPersistenceTest, PathLoadRejectsMissingAndGarbageFiles) {
  const auto collection = workload::GenerateSynthetic({.seed = 85});
  ASSERT_TRUE(collection.ok());
  EXPECT_FALSE(
      core::Flix::Load(PagedTempPath("nonexistent.flix"), *collection).ok());

  const std::string path = PagedTempPath("garbage_path.flix");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is neither a stream nor a paged index";
  }
  EXPECT_FALSE(core::Flix::Load(path, *collection).ok());
}

}  // namespace
}  // namespace flix
