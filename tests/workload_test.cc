#include <gtest/gtest.h>

#include "graph/traversal.h"
#include "graph/tree_utils.h"
#include "workload/dblp_generator.h"
#include "workload/inex_generator.h"
#include "workload/query_workload.h"
#include "workload/synthetic_generator.h"

namespace flix::workload {
namespace {

TEST(DblpGeneratorTest, DeterministicForSeed) {
  DblpOptions options;
  options.num_publications = 30;
  Rng rng1(1);
  Rng rng2(1);
  EXPECT_EQ(GeneratePublicationXml(options, 5, rng1),
            GeneratePublicationXml(options, 5, rng2));
}

TEST(DblpGeneratorTest, PublicationsParse) {
  DblpOptions options;
  options.num_publications = 50;
  const auto collection = GenerateDblp(options);
  ASSERT_TRUE(collection.ok()) << collection.status().ToString();
  EXPECT_EQ(collection->NumDocuments(), 50u);
  EXPECT_GT(collection->NumElements(), 50u * 10);
}

TEST(DblpGeneratorTest, VenueMixMatchesPaper) {
  DblpOptions options;
  options.num_publications = 60;
  const auto collection = GenerateDblp(options);
  ASSERT_TRUE(collection.ok());
  const TagId article = collection->pool().Lookup("article");
  const TagId inproceedings = collection->pool().Lookup("inproceedings");
  ASSERT_NE(article, kInvalidTag);
  ASSERT_NE(inproceedings, kInvalidTag);
  size_t articles = 0;
  size_t confs = 0;
  for (DocId d = 0; d < collection->NumDocuments(); ++d) {
    const TagId root = collection->document(d).element(0).tag;
    if (root == article) ++articles;
    if (root == inproceedings) ++confs;
  }
  EXPECT_EQ(articles + confs, collection->NumDocuments());
  // 2 of 6 venues are journals.
  EXPECT_EQ(articles, 20u);
}

TEST(DblpGeneratorTest, CitationsResolveToEarlierPublications) {
  DblpOptions options;
  options.num_publications = 120;
  const auto collection = GenerateDblp(options);
  ASSERT_TRUE(collection.ok());
  size_t inter_links = 0;
  for (const xml::Link& link : collection->links().links) {
    if (!link.IsInterDocument()) continue;
    ++inter_links;
    EXPECT_EQ(link.dst_elem, 0u);           // cites target roots
    EXPECT_LT(link.dst_doc, link.src_doc);  // cites the past
  }
  EXPECT_GT(inter_links, 100u);
}

TEST(DblpGeneratorTest, PaperScaleShape) {
  // Smoke-scale check of the shape knobs: elements/doc and links/doc close
  // to the paper's corpus (168,991 / 6,210 ~ 27.2 and 25,368 / 6,210 ~ 4.1).
  DblpOptions options;
  options.num_publications = 400;
  const auto collection = GenerateDblp(options);
  ASSERT_TRUE(collection.ok());
  const double elems_per_doc =
      static_cast<double>(collection->NumElements()) / 400.0;
  EXPECT_GT(elems_per_doc, 20.0);
  EXPECT_LT(elems_per_doc, 35.0);
  size_t inter = 0;
  for (const xml::Link& link : collection->links().links) {
    if (link.IsInterDocument()) ++inter;
  }
  const double links_per_doc = static_cast<double>(inter) / 400.0;
  EXPECT_GT(links_per_doc, 2.0);
  EXPECT_LT(links_per_doc, 6.5);
}

TEST(DblpGeneratorTest, ZipfSkewInCitations) {
  DblpOptions options;
  options.num_publications = 300;
  const auto collection = GenerateDblp(options);
  ASSERT_TRUE(collection.ok());
  std::vector<size_t> in_cites(300, 0);
  for (const xml::Link& link : collection->links().links) {
    if (link.IsInterDocument()) ++in_cites[link.dst_doc];
  }
  // The most-cited publication collects far more than the median.
  const size_t max_cites = *std::max_element(in_cites.begin(), in_cites.end());
  std::vector<size_t> sorted = in_cites;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(max_cites, 5 * std::max<size_t>(sorted[150], 1));
}

TEST(SyntheticGeneratorTest, RegionsHaveExpectedStructure) {
  SyntheticOptions options;
  options.seed = 41;
  const auto collection = GenerateSynthetic(options);
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ(collection->NumDocuments(),
            options.tree_docs + options.dense_docs + options.isolated_docs);

  // Isolated docs have no links touching them.
  for (size_t i = 0; i < options.isolated_docs; ++i) {
    const DocId d = collection->FindDocument("iso" + std::to_string(i));
    ASSERT_NE(d, kInvalidDoc);
    for (const xml::Link& link : collection->links().links) {
      EXPECT_NE(link.src_doc, d);
      EXPECT_NE(link.dst_doc, d);
    }
  }

  // Tree region: links target roots only and the region's element graph is
  // a forest.
  const graph::Digraph g = collection->BuildGraph();
  std::vector<NodeId> tree_nodes;
  for (size_t i = 0; i < options.tree_docs; ++i) {
    const DocId d = collection->FindDocument("tree" + std::to_string(i));
    for (xml::ElementId e = 0; e < collection->document(d).NumElements(); ++e) {
      tree_nodes.push_back(collection->GlobalId(d, e));
    }
  }
  const graph::Digraph tree_region = g.InducedSubgraph(tree_nodes);
  EXPECT_TRUE(graph::IsForest(tree_region));
}

TEST(SyntheticGeneratorTest, DenseRegionHasLinks) {
  const auto collection = GenerateSynthetic({.seed = 43});
  ASSERT_TRUE(collection.ok());
  size_t dense_links = 0;
  for (const xml::Link& link : collection->links().links) {
    const std::string& name = collection->document(link.src_doc).name();
    if (name.starts_with("dense")) ++dense_links;
  }
  EXPECT_GT(dense_links, 5u);
}

TEST(SyntheticGeneratorTest, DocumentXmlParses) {
  SyntheticOptions options;
  Rng rng(47);
  const std::string text = GenerateDocumentXml(options, "probe", 20, rng);
  xml::Collection c;
  ASSERT_TRUE(c.AddXml(text, "probe").ok());
  EXPECT_EQ(c.document(0).NumElements(), 20u);
}

TEST(InexGeneratorTest, LargeDocumentsFewLinks) {
  InexOptions options;
  options.num_articles = 40;
  const auto collection = GenerateInex(options);
  ASSERT_TRUE(collection.ok()) << collection.status().ToString();
  EXPECT_EQ(collection->NumDocuments(), 40u);
  // INEX shape: large documents...
  const double elems_per_doc =
      static_cast<double>(collection->NumElements()) / 40.0;
  EXPECT_GT(elems_per_doc, 30.0);
  // ...and very few links.
  EXPECT_LT(collection->links().links.size(), 40u);
}

TEST(InexGeneratorTest, DocumentsAreTrees) {
  InexOptions options;
  options.num_articles = 10;
  options.cross_refs_per_article = 0;
  const auto collection = GenerateInex(options);
  ASSERT_TRUE(collection.ok());
  EXPECT_TRUE(collection->links().links.empty());
  const graph::Digraph g = collection->BuildGraph();
  EXPECT_TRUE(graph::IsForest(g));
}

TEST(InexGeneratorTest, ArticleStructure) {
  InexOptions options;
  Rng rng(5);
  const std::string text = GenerateArticleXml(options, 0, 10, rng);
  xml::Collection c;
  ASSERT_TRUE(c.AddXml(text, "probe").ok());
  const xml::Document& doc = c.document(0);
  EXPECT_EQ(c.pool().Name(doc.element(0).tag), "article");
  // Front matter, body and back matter present.
  ASSERT_GE(doc.element(0).children.size(), 3u);
  EXPECT_EQ(c.pool().Name(doc.element(doc.element(0).children[0]).tag), "fm");
  EXPECT_NE(c.pool().Lookup("sec"), kInvalidTag);
  EXPECT_NE(c.pool().Lookup("p"), kInvalidTag);
}

TEST(InexGeneratorTest, CrossRefsResolve) {
  InexOptions options;
  options.num_articles = 30;
  options.cross_refs_per_article = 2;
  const auto collection = GenerateInex(options);
  ASSERT_TRUE(collection.ok());
  EXPECT_GT(collection->links().links.size(), 10u);
  for (const xml::Link& link : collection->links().links) {
    EXPECT_TRUE(link.IsInterDocument());
    EXPECT_EQ(link.dst_elem, 0u);  // refs target article roots
  }
  EXPECT_EQ(collection->links().unresolved, 0u);
}

TEST(QueryWorkloadTest, SamplerProducesValidQueries) {
  const auto collection = GenerateSynthetic({.seed = 51});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();
  QuerySamplerOptions options;
  options.count = 10;
  options.min_results = 2;
  const auto queries = SampleDescendantQueries(*collection, g, options);
  ASSERT_FALSE(queries.empty());
  const graph::ReachabilityOracle oracle(g);
  for (const DescendantQuery& q : queries) {
    EXPECT_GE(oracle.DescendantsByTag(q.start, q.tag).size(), 2u);
    EXPECT_EQ(collection->pool().Lookup(q.tag_name), q.tag);
  }
}

TEST(QueryWorkloadTest, SamplerDeterministic) {
  const auto collection = GenerateSynthetic({.seed = 53});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();
  QuerySamplerOptions options;
  options.count = 5;
  const auto a = SampleDescendantQueries(*collection, g, options);
  const auto b = SampleDescendantQueries(*collection, g, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].tag, b[i].tag);
  }
}

TEST(QueryWorkloadTest, OrderErrorRate) {
  using core::Result;
  EXPECT_EQ(OrderErrorRate({}), 0.0);
  EXPECT_EQ(OrderErrorRate({{0, 1}, {1, 2}, {2, 3}}), 0.0);
  // One adjacent inversion (3 after 5) in four results.
  EXPECT_NEAR(OrderErrorRate({{0, 1}, {1, 5}, {2, 3}, {3, 6}}), 0.25, 1e-9);
  // One out-of-order block boundary, ties are in order.
  EXPECT_NEAR(OrderErrorRate({{0, 9}, {1, 1}, {2, 1}, {3, 1}}), 0.25, 1e-9);
  // Two inversions.
  EXPECT_NEAR(OrderErrorRate({{0, 4}, {1, 2}, {2, 5}, {3, 1}}), 0.5, 1e-9);
}

TEST(QueryWorkloadTest, SameResultSet) {
  using core::Result;
  using graph::NodeDist;
  const std::vector<Result> results = {{3, 1}, {5, 2}};
  EXPECT_TRUE(SameResultSet(results, {{3, 1}, {5, 2}}));
  EXPECT_TRUE(SameResultSet(results, {{5, 9}, {3, 7}}));  // distances ignored
  EXPECT_FALSE(SameResultSet(results, {{3, 1}}));
  EXPECT_FALSE(SameResultSet(results, {{3, 1}, {6, 2}}));
  EXPECT_FALSE(SameResultSet({{3, 1}, {3, 2}}, {{3, 1}, {5, 2}}));
}

TEST(QueryWorkloadTest, ConnectionPairsHalfConnected) {
  const auto collection = GenerateSynthetic({.seed = 57});
  ASSERT_TRUE(collection.ok());
  const graph::Digraph g = collection->BuildGraph();
  const auto pairs = SampleConnectionPairs(g, 20, 59);
  ASSERT_EQ(pairs.size(), 20u);
  const graph::ReachabilityOracle oracle(g);
  size_t connected = 0;
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a, b);
    if (oracle.IsReachable(a, b)) ++connected;
  }
  EXPECT_GE(connected, 10u);
}

}  // namespace
}  // namespace flix::workload
