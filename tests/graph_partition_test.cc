#include "graph/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace flix::graph {
namespace {

// Validates the basic partition contract.
void CheckPartition(const Digraph& g, const PartitionResult& result,
                    size_t max_nodes,
                    const std::vector<uint32_t>* unit_of = nullptr) {
  ASSERT_EQ(result.partition_of.size(), g.NumNodes());
  std::vector<size_t> sizes(result.num_partitions, 0);
  for (const uint32_t p : result.partition_of) {
    ASSERT_LT(p, result.num_partitions);
    ++sizes[p];
  }
  for (const size_t s : sizes) EXPECT_GT(s, 0u);
  // Oversized partitions only permitted when forced by an atomic unit.
  if (unit_of == nullptr) {
    for (const size_t s : sizes) EXPECT_LE(s, max_nodes);
  }
  EXPECT_EQ(result.cut_edges, CountCutEdges(g, result.partition_of));
}

Digraph RandomGraph(size_t n, size_t edges, uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)));
  }
  return g;
}

TEST(PartitionTest, EmptyGraph) {
  Digraph g;
  const PartitionResult r = PartitionBySize(g, {.max_nodes = 10});
  EXPECT_EQ(r.num_partitions, 0u);
}

TEST(PartitionTest, SingleNodeGraph) {
  Digraph g(1);
  const PartitionResult r = PartitionBySize(g, {.max_nodes = 10});
  EXPECT_EQ(r.num_partitions, 1u);
}

TEST(PartitionTest, RespectsSizeBound) {
  const Digraph g = RandomGraph(200, 500, 3);
  PartitionOptions options;
  options.max_nodes = 37;
  const PartitionResult r = PartitionBySize(g, options);
  CheckPartition(g, r, options.max_nodes);
  EXPECT_GE(r.num_partitions, 200u / 37u);
}

TEST(PartitionTest, WholeGraphFitsInOnePartition) {
  // A connected graph below the bound becomes a single partition.
  Digraph g(10);
  for (NodeId i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  const PartitionResult r = PartitionBySize(g, {.max_nodes = 100});
  EXPECT_EQ(r.num_partitions, 1u);
  EXPECT_EQ(r.cut_edges, 0u);
}

TEST(PartitionTest, DisconnectedComponentsSeparated) {
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.AddEdge(4, 5);
  const PartitionResult r = PartitionBySize(g, {.max_nodes = 2});
  CheckPartition(g, r, 2);
  EXPECT_EQ(r.num_partitions, 3u);
  EXPECT_EQ(r.cut_edges, 0u);
}

TEST(PartitionTest, CutSmallerThanRandomAssignment) {
  // Two dense clusters with one bridge: the partitioner should cut only the
  // bridge (or close to it).
  Digraph g(40);
  Rng rng(5);
  for (int e = 0; e < 150; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(20)),
              static_cast<NodeId>(rng.Uniform(20)));
    g.AddEdge(static_cast<NodeId>(20 + rng.Uniform(20)),
              static_cast<NodeId>(20 + rng.Uniform(20)));
  }
  g.AddEdge(5, 25);
  const PartitionResult r = PartitionBySize(g, {.max_nodes = 20});
  CheckPartition(g, r, 20);
  EXPECT_LE(r.cut_edges, 10u);
}

TEST(PartitionTest, UnitsStayTogether) {
  const Digraph g = RandomGraph(100, 300, 9);
  std::vector<uint32_t> unit_of(100);
  for (size_t i = 0; i < 100; ++i) unit_of[i] = static_cast<uint32_t>(i / 10);
  PartitionOptions options;
  options.max_nodes = 30;
  const PartitionResult r = PartitionBySize(g, options, &unit_of);
  CheckPartition(g, r, options.max_nodes, &unit_of);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(r.partition_of[i], r.partition_of[(i / 10) * 10])
        << "node " << i << " split from its unit";
  }
}

TEST(PartitionTest, OversizedUnitGetsOwnPartition) {
  const Digraph g = RandomGraph(50, 100, 11);
  std::vector<uint32_t> unit_of(50, 0);  // one unit holding everything
  const PartitionResult r = PartitionBySize(g, {.max_nodes = 10}, &unit_of);
  EXPECT_EQ(r.num_partitions, 1u);
}

TEST(PartitionTest, RefinementDoesNotBreakBounds) {
  const Digraph g = RandomGraph(300, 900, 13);
  PartitionOptions options;
  options.max_nodes = 50;
  options.refinement_passes = 5;
  const PartitionResult r = PartitionBySize(g, options);
  CheckPartition(g, r, options.max_nodes);
}

TEST(PartitionTest, PackFragmentsFillsPartitionsOnHubGraphs) {
  // Hub-and-spoke: node 0 connects to everyone; once the first partition
  // absorbs the hub, the rest fragments into singletons unless packing
  // folds them together.
  Digraph g(200);
  for (NodeId v = 1; v < 200; ++v) g.AddEdge(0, v);
  PartitionOptions packed;
  packed.max_nodes = 50;
  const PartitionResult with_pack = PartitionBySize(g, packed);
  EXPECT_LE(with_pack.num_partitions, 5u);
  for (const uint32_t p : with_pack.partition_of) {
    EXPECT_LT(p, with_pack.num_partitions);
  }

  PartitionOptions unpacked = packed;
  unpacked.pack_fragments = false;
  const PartitionResult without_pack = PartitionBySize(g, unpacked);
  EXPECT_GT(without_pack.num_partitions, with_pack.num_partitions);
}

TEST(PartitionTest, PackingRespectsBound) {
  const Digraph g = RandomGraph(400, 1200, 23);
  PartitionOptions options;
  options.max_nodes = 60;
  const PartitionResult r = PartitionBySize(g, options);
  CheckPartition(g, r, options.max_nodes);
}

TEST(PartitionTest, RefinementImprovesOrKeepsCut) {
  const Digraph g = RandomGraph(300, 900, 17);
  PartitionOptions no_refine;
  no_refine.max_nodes = 40;
  no_refine.refinement_passes = 0;
  PartitionOptions refine = no_refine;
  refine.refinement_passes = 3;
  const size_t cut_before = PartitionBySize(g, no_refine).cut_edges;
  const size_t cut_after = PartitionBySize(g, refine).cut_edges;
  EXPECT_LE(cut_after, cut_before);
}

}  // namespace
}  // namespace flix::graph
