#include "index/ppo.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/traversal.h"

namespace flix::index {
namespace {

// A small tree: 0(a) with children 1(b) and 4(b); 1 has children 2(c), 3(b).
graph::Digraph SampleTree() {
  graph::Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(2);
  g.AddNode(1);
  g.AddNode(1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(0, 4);
  return g;
}

std::unique_ptr<PpoIndex> MustBuild(const graph::Digraph& g) {
  auto built = PpoIndex::Build(g);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST(PpoTest, RejectsNonForest) {
  graph::Digraph g(3);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  const auto built = PpoIndex::Build(g);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PpoTest, RejectsCycle) {
  graph::Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_FALSE(PpoIndex::Build(g).ok());
}

TEST(PpoTest, PrePostWindowTest) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  // Classic window condition from the paper: x is ancestor of y iff
  // pre(x) < pre(y) && post(x) > post(y).
  EXPECT_LT(ppo->pre(0), ppo->pre(2));
  EXPECT_GT(ppo->post(0), ppo->post(2));
  EXPECT_TRUE(ppo->IsReachable(0, 2));
  EXPECT_TRUE(ppo->IsReachable(1, 3));
  EXPECT_FALSE(ppo->IsReachable(1, 4));
  EXPECT_FALSE(ppo->IsReachable(2, 0));
  EXPECT_TRUE(ppo->IsReachable(2, 2));
}

TEST(PpoTest, DistanceIsDepthDifference) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  EXPECT_EQ(ppo->DistanceBetween(0, 2), 2);
  EXPECT_EQ(ppo->DistanceBetween(0, 4), 1);
  EXPECT_EQ(ppo->DistanceBetween(1, 2), 1);
  EXPECT_EQ(ppo->DistanceBetween(4, 2), kUnreachable);
  EXPECT_EQ(ppo->DistanceBetween(2, 2), 0);
}

TEST(PpoTest, DescendantsByTag) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  const std::vector<NodeDist> result = ppo->DescendantsByTag(0, 1);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0], (NodeDist{1, 1}));
  EXPECT_EQ(result[1], (NodeDist{4, 1}));
  EXPECT_EQ(result[2], (NodeDist{3, 2}));
}

TEST(PpoTest, DescendantsExcludesSelfAndSiblings) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  const std::vector<NodeDist> result = ppo->DescendantsByTag(1, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].node, 3u);
}

TEST(PpoTest, WildcardDescendants) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  EXPECT_EQ(ppo->Descendants(0).size(), 4u);
  EXPECT_EQ(ppo->Descendants(1).size(), 2u);
  EXPECT_EQ(ppo->Descendants(2).size(), 0u);
}

TEST(PpoTest, AncestorsByTag) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  const std::vector<NodeDist> result = ppo->AncestorsByTag(3, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (NodeDist{1, 1}));
  const std::vector<NodeDist> roots = ppo->AncestorsByTag(3, 0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], (NodeDist{0, 2}));
}

TEST(PpoTest, ReachableAmong) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  const std::vector<NodeId> targets = {2, 4};
  const std::vector<NodeDist> result = ppo->ReachableAmong(0, targets);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], (NodeDist{4, 1}));
  EXPECT_EQ(result[1], (NodeDist{2, 2}));
  // Target list containing the start itself.
  const std::vector<NodeId> self_targets = {1, 3};
  const std::vector<NodeDist> with_self = ppo->ReachableAmong(1, self_targets);
  ASSERT_EQ(with_self.size(), 2u);
  EXPECT_EQ(with_self[0], (NodeDist{1, 0}));
}

TEST(PpoTest, MultiRootForest) {
  graph::Digraph g(4);
  g.SetTag(0, 0);
  g.SetTag(1, 1);
  g.SetTag(2, 0);
  g.SetTag(3, 1);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const auto ppo = MustBuild(g);
  EXPECT_TRUE(ppo->IsReachable(0, 1));
  EXPECT_FALSE(ppo->IsReachable(0, 3));
  EXPECT_FALSE(ppo->IsReachable(2, 1));
  EXPECT_EQ(ppo->DescendantsByTag(2, 1).size(), 1u);
}

TEST(PpoTest, SubtreeSizes) {
  const graph::Digraph g = SampleTree();
  const auto ppo = MustBuild(g);
  EXPECT_EQ(ppo->subtree_size(0), 5u);
  EXPECT_EQ(ppo->subtree_size(1), 3u);
  EXPECT_EQ(ppo->subtree_size(2), 1u);
}

TEST(PpoTest, MatchesOracleOnRandomForest) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    graph::Digraph g;
    constexpr size_t kN = 150;
    for (size_t i = 0; i < kN; ++i) g.AddNode(static_cast<TagId>(rng.Uniform(5)));
    // Random forest: each node except roots picks an earlier parent.
    for (NodeId i = 1; i < kN; ++i) {
      if (rng.Bernoulli(0.9)) {
        g.AddEdge(static_cast<NodeId>(rng.Uniform(i)), i);
      }
    }
    const auto ppo = MustBuild(g);
    const graph::ReachabilityOracle oracle(g);
    for (NodeId start = 0; start < kN; start += 13) {
      for (TagId tag = 0; tag < 5; ++tag) {
        EXPECT_EQ(ppo->DescendantsByTag(start, tag),
                  oracle.DescendantsByTag(start, tag))
            << "start " << start << " tag " << tag;
      }
      EXPECT_EQ(ppo->Descendants(start), oracle.Descendants(start));
    }
  }
}

TEST(PpoTest, MemoryBytesScalesLinearly) {
  graph::Digraph small(10);
  for (NodeId i = 1; i < 10; ++i) small.AddEdge(i - 1, i);
  graph::Digraph large(1000);
  for (NodeId i = 1; i < 1000; ++i) large.AddEdge(i - 1, i);
  const auto ppo_small = MustBuild(small);
  const auto ppo_large = MustBuild(large);
  EXPECT_GT(ppo_large->MemoryBytes(), 50 * ppo_small->MemoryBytes());
}

}  // namespace
}  // namespace flix::index
