// Negative-compile case: reading a GUARDED_BY field without holding its
// mutex must be rejected by -Wthread-safety ("requires holding mutex").
// If this file ever compiles, the annotations in common/sync.h have
// degraded to no-ops under clang and the whole discipline is off.
#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    flix::MutexLock lock(mu_);
    ++value_;
  }

  // Deliberately missing MutexLock — the point of this test.
  int Get() const { return value_; }

 private:
  mutable flix::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get();
}
