# Compile-test driver for the Thread Safety Analysis cases (see
# CMakeLists.txt in this directory). Invoked as
#
#   cmake -DCOMPILER=... -DSRC=case.cc -DINCLUDE_DIR=.../src
#         -DEXPECT=PASS|FAIL -DPATTERN=<regex> -P run_tsa_case.cmake
#
# PASS cases must compile cleanly with the TSA warnings promoted to
# errors. FAIL cases must fail to compile AND the diagnostics must match
# PATTERN — a compile failure for any other reason (missing header, syntax
# error in the case itself) fails the test, so a rotted case cannot pass
# by accident.
foreach(var COMPILER SRC INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_tsa_case.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only -Werror
          -Wthread-safety -Wthread-safety-beta
          -I${INCLUDE_DIR} ${SRC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
set(diagnostics "${out}\n${err}")

if(EXPECT STREQUAL "PASS")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "expected a clean compile, got exit ${rc}:\n${diagnostics}")
  endif()
elseif(EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "expected a thread-safety diagnostic, but the compile succeeded")
  endif()
  if(NOT diagnostics MATCHES "${PATTERN}")
    message(FATAL_ERROR
            "compile failed, but not for the intended reason — pattern "
            "'${PATTERN}' not in the diagnostics:\n${diagnostics}")
  endif()
else()
  message(FATAL_ERROR "run_tsa_case.cmake: EXPECT must be PASS or FAIL")
endif()
