// Positive-compile case: the annotated concurrency-facing headers must be
// clean under -Werror -Wthread-safety -Wthread-safety-beta, including when
// a client actually exercises the locked entry points. Guards against an
// annotation being added that breaks every includer.
#include <vector>

#include "flix/meta_document.h"
#include "flix/query_cache.h"

int main() {
  flix::core::QueryCache cache(4);
  cache.Insert(1, 2, {{3, 1}});
  std::vector<flix::core::Result> out;
  const bool hit = cache.Lookup(1, 2, &out);
  (void)cache.Stats();

  flix::core::IndexHandle handle;
  (void)handle.Acquire();
  return hit ? 0 : 1;
}
