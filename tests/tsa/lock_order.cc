// Negative-compile case: acquiring locks against the documented hierarchy
// (engine -> partition handle -> cache -> metrics, DESIGN.md section 8)
// must be rejected by the ACQUIRED_BEFORE/AFTER checks that
// -Wthread-safety-beta enables. The rank tags in flix::lockorder are never
// locked in real code; locking them here directly is the simplest way to
// express an inversion the transitive acquired-before graph must catch.
#include "common/sync.h"

namespace {

void Inverted() {
  flix::MutexLock cache(flix::lockorder::kCache);
  // Cache rank is below engine rank: acquiring an engine-rank lock while
  // holding a cache-rank lock is the inversion under test.
  flix::MutexLock engine(flix::lockorder::kEngine);
}

}  // namespace

int main() {
  Inverted();
  return 0;
}
