// Tests for the span-collection side of obs/trace.h: parent/child nesting
// via the per-thread span stack, the bounded ring buffer, Chrome
// trace-event JSON export, and the slow-query log.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "flix/flix.h"
#include "obs/trace.h"
#include "workload/dblp_generator.h"
#include "xml/collection.h"

namespace flix {
namespace {

using obs::SlowQueryLog;
using obs::TraceCollector;
using obs::TraceEvent;
using obs::TraceSpan;

// Every test must leave the process-global collector disabled.
class TraceCollectorTest : public testing::Test {
 protected:
  void TearDown() override {
    TraceCollector::Global().Disable();
    TraceCollector::Global().Clear();
    SlowQueryLog::Global().Configure(0);
  }
};

const TraceEvent* FindByName(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST_F(TraceCollectorTest, DisabledCollectorRecordsNothing) {
  {
    TraceSpan span(nullptr, "ignored");
    EXPECT_FALSE(span.Collecting());
  }
  EXPECT_TRUE(TraceCollector::Global().Events().empty());
}

TEST_F(TraceCollectorTest, SpansNestViaThreadStack) {
  TraceCollector::Global().Enable();
  {
    TraceSpan outer(nullptr, "outer");
    EXPECT_TRUE(outer.Collecting());
    outer.AddAttr("k", "v");
    outer.AddAttr("n", static_cast<int64_t>(-7));
    {
      TraceSpan middle(nullptr, "middle");
      { TraceSpan inner(nullptr, "inner"); }
      { TraceSpan inner2(nullptr, "inner2"); }
    }
    { TraceSpan sibling(nullptr, "sibling"); }
  }
  const std::vector<TraceEvent> events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 5u);  // finish order: inner, inner2, middle, ...

  const TraceEvent* outer = FindByName(events, "outer");
  const TraceEvent* middle = FindByName(events, "middle");
  const TraceEvent* inner = FindByName(events, "inner");
  const TraceEvent* inner2 = FindByName(events, "inner2");
  const TraceEvent* sibling = FindByName(events, "sibling");
  ASSERT_TRUE(outer && middle && inner && inner2 && sibling);

  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(middle->parent_id, outer->id);
  EXPECT_EQ(inner->parent_id, middle->id);
  EXPECT_EQ(inner2->parent_id, middle->id);
  EXPECT_EQ(sibling->parent_id, outer->id);

  // Children are contained in their parents' time ranges.
  EXPECT_GE(inner->start_ns, middle->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            middle->start_ns + middle->dur_ns);
  EXPECT_GE(middle->start_ns, outer->start_ns);
  EXPECT_LE(middle->start_ns + middle->dur_ns,
            outer->start_ns + outer->dur_ns);

  ASSERT_EQ(outer->attrs.size(), 2u);
  EXPECT_EQ(outer->attrs[0].first, "k");
  EXPECT_EQ(outer->attrs[0].second, "v");
  EXPECT_EQ(outer->attrs[1].second, "-7");
}

TEST_F(TraceCollectorTest, UnnamedAndCancelledSpansAreNotCollected) {
  TraceCollector::Global().Enable();
  {
    TraceSpan unnamed(nullptr);
    TraceSpan named(nullptr, "kept");
    TraceSpan dropped(nullptr, "dropped");
    dropped.Cancel();
  }
  const std::vector<TraceEvent> events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kept");
  // The unnamed span never entered the stack, so "kept" parents to root.
  EXPECT_EQ(events[0].parent_id, 0u);
}

TEST_F(TraceCollectorTest, RingBufferDropsOldestAndCounts) {
  TraceCollector::Global().Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.id = static_cast<uint64_t>(i + 1);
    e.name = "e" + std::to_string(i);
    TraceCollector::Global().Record(std::move(e));
  }
  const std::vector<TraceEvent> events = TraceCollector::Global().Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(TraceCollector::Global().Dropped(), 6u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST_F(TraceCollectorTest, ThreadsGetDistinctOrdinals) {
  TraceCollector::Global().Enable();
  { TraceSpan main_span(nullptr, "on-main"); }
  std::thread worker([] { TraceSpan t(nullptr, "on-worker"); });
  worker.join();
  const std::vector<TraceEvent> events = TraceCollector::Global().Events();
  const TraceEvent* a = FindByName(events, "on-main");
  const TraceEvent* b = FindByName(events, "on-worker");
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->thread, b->thread);
  // A worker-thread root has no parent even while main has a span open.
  EXPECT_EQ(b->parent_id, 0u);
}

TEST_F(TraceCollectorTest, ChromeJsonIsWellFormed) {
  TraceCollector::Global().Enable();
  {
    TraceSpan outer(nullptr, "build \"quoted\"");
    outer.AddAttr("config", "Hy\"brid\\");
    { TraceSpan inner(nullptr, "iss"); }
  }
  const std::string json =
      obs::ToChromeTraceJson(TraceCollector::Global().Events());
  // Structural checks: the document is one object with a traceEvents array
  // of complete ("ph":"X") events, and every quote/backslash is escaped.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.rfind("]}"), json.size() - 2);
  size_t events_count = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) !=
                       std::string::npos;
       pos += 8) {
    ++events_count;
  }
  EXPECT_EQ(events_count, 2u);
  EXPECT_NE(json.find("\"build \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"Hy\\\"brid\\\\\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\""), std::string::npos);

  // Balanced braces/brackets outside string literals.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceCollectorTest, EngineEmitsNestedBuildAndQuerySpans) {
  workload::DblpOptions options;
  options.num_publications = 40;
  auto collection = workload::GenerateDblp(options);
  ASSERT_TRUE(collection.ok());

  TraceCollector::Global().Enable();
  auto flix = core::Flix::Build(*collection, {});
  ASSERT_TRUE(flix.ok());
  (*flix)->FindDescendantsByName(collection->GlobalId(0, 0), "author", {},
                                 [](const core::Result&) { return true; });
  const std::vector<TraceEvent> events = TraceCollector::Global().Events();

  const TraceEvent* build = FindByName(events, "flix.build");
  const TraceEvent* iss = FindByName(events, "flix.iss");
  const TraceEvent* ib = FindByName(events, "flix.ib");
  const TraceEvent* query = FindByName(events, "pee.query");
  const TraceEvent* entry = FindByName(events, "pee.entry");
  ASSERT_TRUE(build && iss && ib && query && entry);
  EXPECT_EQ(iss->parent_id, build->id);
  EXPECT_EQ(ib->parent_id, build->id);
  EXPECT_EQ(entry->parent_id, query->id);
  // Strategy attribution rides on the ISS/IB spans.
  ASSERT_FALSE(ib->attrs.empty());
  bool has_strategy = false;
  for (const auto& [key, value] : ib->attrs) {
    if (key == "strategy") has_strategy = !value.empty();
  }
  EXPECT_TRUE(has_strategy);

  // Partition ids use the key "partition" on every span that carries one —
  // the same field name `flixctl profile --json` emits, so trace and profile
  // output can be joined without a translation table.
  for (const TraceEvent* span : {iss, ib, entry}) {
    bool has_partition = false;
    for (const auto& [key, value] : span->attrs) {
      EXPECT_NE(key, "meta") << span->name << ": renamed to 'partition'";
      if (key == "partition") has_partition = true;
    }
    EXPECT_TRUE(has_partition) << span->name;
  }
}

TEST_F(TraceCollectorTest, SlowQueryLogThresholdAndBound) {
  SlowQueryLog& log = SlowQueryLog::Global();
  log.Configure(/*threshold_ns=*/1000, /*capacity=*/3);
  log.Record("fast", 999);  // below threshold
  for (int i = 0; i < 5; ++i) {
    log.Record("slow" + std::to_string(i), 2000 + static_cast<uint64_t>(i));
  }
  const std::vector<obs::SlowQueryRecord> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().description, "slow2");
  EXPECT_EQ(entries.back().description, "slow4");
  // Sequence numbers keep global arrival order.
  EXPECT_LT(entries.front().seq, entries.back().seq);

  log.Configure(0);
  log.Record("ignored", 1 << 30);
  EXPECT_TRUE(log.Entries().empty());
}

TEST_F(TraceCollectorTest, SlowQueriesAreRecordedByTheEngine) {
  workload::DblpOptions options;
  options.num_publications = 40;
  auto collection = workload::GenerateDblp(options);
  ASSERT_TRUE(collection.ok());
  auto flix = core::Flix::Build(*collection, {});
  ASSERT_TRUE(flix.ok());

  SlowQueryLog::Global().Configure(/*threshold_ns=*/1);  // catch everything
  (*flix)->FindDescendantsByName(collection->GlobalId(0, 0), "author", {},
                                 [](const core::Result&) { return true; });
  const std::vector<obs::SlowQueryRecord> entries =
      SlowQueryLog::Global().Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_NE(entries.front().description.find("pee.query"), std::string::npos);
  EXPECT_GT(entries.front().dur_ns, 0u);
}

}  // namespace
}  // namespace flix
