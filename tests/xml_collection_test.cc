#include "xml/collection.h"

#include <gtest/gtest.h>

#include "graph/digraph.h"

namespace flix::xml {
namespace {

TEST(CollectionTest, AddAndLocateDocuments) {
  Collection c;
  ASSERT_TRUE(c.AddXml("<a><b/><c/></a>", "doc1").ok());
  ASSERT_TRUE(c.AddXml("<x><y/></x>", "doc2").ok());
  EXPECT_EQ(c.NumDocuments(), 2u);
  EXPECT_EQ(c.NumElements(), 5u);
  EXPECT_EQ(c.FindDocument("doc1"), 0u);
  EXPECT_EQ(c.FindDocument("doc2"), 1u);
  EXPECT_EQ(c.FindDocument("nope"), kInvalidDoc);

  EXPECT_EQ(c.GlobalId(0, 0), 0u);
  EXPECT_EQ(c.GlobalId(1, 0), 3u);
  EXPECT_EQ(c.GlobalId(1, 1), 4u);
  for (NodeId n = 0; n < 5; ++n) {
    const Collection::Location loc = c.Locate(n);
    EXPECT_EQ(c.GlobalId(loc.doc, loc.elem), n);
  }
}

TEST(CollectionTest, DuplicateNameRejected) {
  Collection c;
  ASSERT_TRUE(c.AddXml("<a/>", "doc").ok());
  const StatusOr<DocId> dup = c.AddXml("<b/>", "doc");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST(CollectionTest, ParseErrorPropagates) {
  Collection c;
  EXPECT_FALSE(c.AddXml("<a><b></a>", "bad").ok());
  EXPECT_EQ(c.NumDocuments(), 0u);
}

TEST(CollectionTest, IntraDocumentIdrefLink) {
  Collection c;
  ASSERT_TRUE(
      c.AddXml(R"(<a><b id="t"/><c ref="t"/></a>)", "doc").ok());
  const LinkResolution& links = c.ResolveAllLinks();
  ASSERT_EQ(links.links.size(), 1u);
  EXPECT_EQ(links.links[0], (Link{0, 2, 0, 1}));
  EXPECT_FALSE(links.links[0].IsInterDocument());
  EXPECT_EQ(links.unresolved, 0u);
}

TEST(CollectionTest, IdrefsMultipleTokens) {
  Collection c;
  ASSERT_TRUE(c.AddXml(
      R"(<a><b id="x"/><b id="y"/><c idref="x y"/></a>)", "doc").ok());
  const LinkResolution& links = c.ResolveAllLinks();
  EXPECT_EQ(links.links.size(), 2u);
}

TEST(CollectionTest, HashPrefixedIdref) {
  Collection c;
  ASSERT_TRUE(c.AddXml(R"(<a><b id="t"/><c ref="#t"/></a>)", "doc").ok());
  EXPECT_EQ(c.ResolveAllLinks().links.size(), 1u);
}

TEST(CollectionTest, InterDocumentHrefToRoot) {
  Collection c;
  ASSERT_TRUE(c.AddXml("<a><link href=\"other\"/></a>", "main").ok());
  ASSERT_TRUE(c.AddXml("<x><y/></x>", "other").ok());
  const LinkResolution& links = c.ResolveAllLinks();
  ASSERT_EQ(links.links.size(), 1u);
  EXPECT_EQ(links.links[0], (Link{0, 1, 1, 0}));
  EXPECT_TRUE(links.links[0].IsInterDocument());
}

TEST(CollectionTest, InterDocumentHrefToAnchor) {
  Collection c;
  ASSERT_TRUE(c.AddXml(R"(<a><link xlink:href="other#deep"/></a>)", "main").ok());
  ASSERT_TRUE(c.AddXml(R"(<x><y id="deep"/></x>)", "other").ok());
  const LinkResolution& links = c.ResolveAllLinks();
  ASSERT_EQ(links.links.size(), 1u);
  EXPECT_EQ(links.links[0], (Link{0, 1, 1, 1}));
}

TEST(CollectionTest, HrefWithinSameDocument) {
  Collection c;
  ASSERT_TRUE(
      c.AddXml(R"(<a><b id="t"/><c href="#t"/></a>)", "doc").ok());
  const LinkResolution& links = c.ResolveAllLinks();
  ASSERT_EQ(links.links.size(), 1u);
  EXPECT_FALSE(links.links[0].IsInterDocument());
}

TEST(CollectionTest, DanglingLinksCounted) {
  Collection c;
  ASSERT_TRUE(c.AddXml(
      R"(<a><b ref="nothere"/><c href="nodoc"/><d href="a#noanchor"/></a>)",
      "a").ok());
  const LinkResolution& links = c.ResolveAllLinks();
  EXPECT_EQ(links.links.size(), 0u);
  EXPECT_EQ(links.unresolved, 3u);
}

TEST(CollectionTest, BuildGraphHasTreeAndLinkEdges) {
  Collection c;
  ASSERT_TRUE(c.AddXml("<a><b/><c href=\"d2\"/></a>", "d1").ok());
  ASSERT_TRUE(c.AddXml("<x/>", "d2").ok());
  c.ResolveAllLinks();
  const graph::Digraph g = c.BuildGraph();
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);       // a->b, a->c, c->x
  EXPECT_EQ(g.NumLinkEdges(), 1u);   // c->x
  // Tag of root is "a".
  EXPECT_EQ(g.Tag(0), c.pool().Lookup("a"));
  // The link edge goes from element c (global 2) to d2's root (global 3).
  bool found = false;
  for (const graph::Digraph::Arc& arc : g.OutArcs(2)) {
    if (arc.target == 3 && arc.kind == graph::EdgeKind::kLink) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CollectionTest, BuildGraphWithoutResolvedLinks) {
  Collection c;
  ASSERT_TRUE(c.AddXml("<a><b href=\"d2\"/></a>", "d1").ok());
  ASSERT_TRUE(c.AddXml("<x/>", "d2").ok());
  // No ResolveAllLinks call: only tree edges.
  const graph::Digraph g = c.BuildGraph();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.NumLinkEdges(), 0u);
}

TEST(CollectionTest, DocOfNode) {
  Collection c;
  ASSERT_TRUE(c.AddXml("<a><b/></a>", "d1").ok());
  ASSERT_TRUE(c.AddXml("<x><y/><z/></x>", "d2").ok());
  const std::vector<uint32_t> doc_of = c.DocOfNode();
  EXPECT_EQ(doc_of, (std::vector<uint32_t>{0, 0, 1, 1, 1}));
}

TEST(CollectionTest, CiteAttributeActsAsIdref) {
  Collection c;
  ASSERT_TRUE(c.AddXml(
      R"(<a><b id="p1"/><c cite="p1"/></a>)", "doc").ok());
  EXPECT_EQ(c.ResolveAllLinks().links.size(), 1u);
}

TEST(CollectionTest, KeyAttributeRegistersAnchor) {
  Collection c;
  ASSERT_TRUE(c.AddXml(R"(<a key="conf/x"><b/></a>)", "d1").ok());
  ASSERT_TRUE(c.AddXml(R"(<p><q href="d1#conf/x"/></p>)", "d2").ok());
  const LinkResolution& links = c.ResolveAllLinks();
  ASSERT_EQ(links.links.size(), 1u);
  EXPECT_EQ(links.links[0].dst_doc, 0u);
  EXPECT_EQ(links.links[0].dst_elem, 0u);
}

}  // namespace
}  // namespace flix::xml
