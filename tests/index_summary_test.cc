// Tests for the generalized structure-summary index: F&B (forward+backward
// bisimulation) and D(k) (workload-adaptive refinement depth).
#include "index/summary_index.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/binary_io.h"
#include "common/rng.h"
#include "graph/traversal.h"
#include "index/apex.h"

namespace flix::index {
namespace {

graph::Digraph RandomGraph(size_t n, size_t edges, uint64_t seed,
                           size_t num_tags = 4) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<TagId>(rng.Uniform(num_tags)));
  }
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)));
  }
  return g;
}

// Two structures with identical incoming paths but different outgoing
// structure: a(0) -> b(1) -> c(2)  and  a(3) -> b(4)   (b4 has no child).
graph::Digraph ForwardAsymmetric() {
  graph::Digraph g;
  g.AddNode(0);
  g.AddNode(1);
  g.AddNode(2);
  g.AddNode(0);
  g.AddNode(1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  return g;
}

TEST(FbIndexTest, ForwardRefinementSplitsWhatBackwardCannot) {
  const graph::Digraph g = ForwardAsymmetric();
  // Backward-only (1-index / APEX): the two b nodes share a block (same
  // incoming label path a/b).
  const auto backward = ApexIndex::Build(g);
  EXPECT_EQ(backward->BlockOf(1), backward->BlockOf(4));
  // F&B: they differ (one has a c child, the other does not).
  const auto fb = SummaryIndex::BuildFb(g);
  EXPECT_NE(fb->BlockOf(1), fb->BlockOf(4));
  // The a parents consequently split too.
  EXPECT_NE(fb->BlockOf(0), fb->BlockOf(3));
}

TEST(FbIndexTest, SymmetricStructuresShareBlocks) {
  // Two fully identical subtrees must collapse even under F&B.
  graph::Digraph g;
  for (int t = 0; t < 2; ++t) {
    const NodeId root = g.AddNode(0);
    const NodeId mid = g.AddNode(1);
    const NodeId leaf = g.AddNode(2);
    g.AddEdge(root, mid);
    g.AddEdge(mid, leaf);
  }
  const auto fb = SummaryIndex::BuildFb(g);
  EXPECT_EQ(fb->NumBlocks(), 3u);
  EXPECT_EQ(fb->BlockOf(0), fb->BlockOf(3));
  EXPECT_EQ(fb->BlockOf(1), fb->BlockOf(4));
  EXPECT_EQ(fb->BlockOf(2), fb->BlockOf(5));
}

TEST(FbIndexTest, AtLeastAsFineAsBackwardBisimulation) {
  const graph::Digraph g = RandomGraph(60, 130, 91);
  const auto apex = ApexIndex::Build(g);
  const auto fb = SummaryIndex::BuildFb(g);
  EXPECT_GE(fb->NumBlocks(), apex->NumBlocks());
  // F&B must refine the backward partition: two nodes in one F&B block are
  // always in one backward block.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = u + 1; v < g.NumNodes(); ++v) {
      if (fb->BlockOf(u) == fb->BlockOf(v)) {
        EXPECT_EQ(apex->BlockOf(u), apex->BlockOf(v))
            << u << " vs " << v;
      }
    }
  }
}

TEST(FbIndexTest, QueriesMatchOracle) {
  const graph::Digraph g = RandomGraph(70, 150, 93);
  const auto fb = SummaryIndex::BuildFb(g);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId start = 0; start < 70; start += 6) {
    EXPECT_EQ(fb->Descendants(start), oracle.Descendants(start));
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ(fb->DescendantsByTag(start, tag),
                oracle.DescendantsByTag(start, tag));
      EXPECT_EQ(fb->AncestorsByTag(start, tag),
                oracle.AncestorsByTag(start, tag));
    }
  }
}

TEST(DkIndexTest, WorkloadDepthControlsRefinement) {
  // doc(0) -> a(1) -> b(2); doc(0) -> c(3) -> b(4): the two b nodes differ
  // at 2-bisimilarity (different grandparents... actually parents a vs c).
  graph::Digraph g;
  g.AddNode(0);  // doc
  g.AddNode(1);  // a
  g.AddNode(2);  // b under a
  g.AddNode(3);  // c
  g.AddNode(2);  // b under c
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);

  // Workload touching b at depth >= 1 forces the split.
  const auto deep = SummaryIndex::BuildDk(g, {{0, 1, 2}});
  EXPECT_NE(deep->BlockOf(2), deep->BlockOf(4));

  // A workload that never exercises paths into b keeps the tag partition
  // for b (both b nodes in one block).
  const auto shallow = SummaryIndex::BuildDk(g, {{0}});
  EXPECT_EQ(shallow->BlockOf(2), shallow->BlockOf(4));
  EXPECT_LE(shallow->NumBlocks(), deep->NumBlocks());
}

TEST(DkIndexTest, QueriesExactRegardlessOfDepth) {
  // Pruning with a coarse summary must stay sound: results always match the
  // oracle, whatever the workload says.
  const graph::Digraph g = RandomGraph(50, 110, 97);
  const graph::ReachabilityOracle oracle(g);
  for (const auto& workload :
       {std::vector<std::vector<TagId>>{}, {{0}}, {{0, 1}, {2, 3, 1}}}) {
    const auto dk = SummaryIndex::BuildDk(g, workload);
    for (NodeId start = 0; start < 50; start += 7) {
      for (TagId tag = 0; tag < 4; ++tag) {
        EXPECT_EQ(dk->DescendantsByTag(start, tag),
                  oracle.DescendantsByTag(start, tag));
      }
      EXPECT_EQ(dk->Descendants(start), oracle.Descendants(start));
    }
  }
}

TEST(DkIndexTest, CoarserThanFullBisimulation) {
  const graph::Digraph g = RandomGraph(80, 170, 101);
  const auto full = ApexIndex::Build(g);          // fixpoint
  const auto dk = SummaryIndex::BuildDk(g, {{0, 1}});  // shallow workload
  EXPECT_LE(dk->NumBlocks(), full->NumBlocks());
}

TEST(SummaryIndexTest, PersistenceRoundTrip) {
  const graph::Digraph g = RandomGraph(40, 90, 103);
  const auto original = SummaryIndex::BuildFb(g);

  std::stringstream stream;
  BinaryWriter writer(stream);
  SaveIndex(*original, writer);
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(stream);
  auto loaded = LoadIndex(reader, g);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->kind(), StrategyKind::kSummary);
  for (NodeId u = 0; u < g.NumNodes(); u += 5) {
    EXPECT_EQ((*loaded)->Descendants(u), original->Descendants(u));
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ((*loaded)->AncestorsByTag(u, tag),
                original->AncestorsByTag(u, tag));
    }
  }
}

TEST(SummaryIndexTest, NameRegistered) {
  EXPECT_EQ(StrategyName(StrategyKind::kSummary), "SUMMARY");
}

}  // namespace
}  // namespace flix::index
