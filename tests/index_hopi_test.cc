#include "index/hopi.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/traversal.h"

namespace flix::index {
namespace {

graph::Digraph RandomGraph(size_t n, size_t edges, uint64_t seed,
                           size_t num_tags = 4) {
  Rng rng(seed);
  graph::Digraph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<TagId>(rng.Uniform(num_tags)));
  }
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Uniform(n)),
              static_cast<NodeId>(rng.Uniform(n)));
  }
  return g;
}

TEST(HopiTest, ChainDistances) {
  graph::Digraph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1);
  const auto hopi = HopiIndex::Build(g);
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) {
      const Distance expected =
          j >= i ? static_cast<Distance>(j - i) : kUnreachable;
      EXPECT_EQ(hopi->DistanceBetween(i, j), expected) << i << "->" << j;
    }
  }
}

TEST(HopiTest, DiamondShortestPath) {
  graph::Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 4);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  const auto hopi = HopiIndex::Build(g);
  EXPECT_EQ(hopi->DistanceBetween(0, 4), 2);
}

TEST(HopiTest, CycleReachability) {
  graph::Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  const auto hopi = HopiIndex::Build(g);
  EXPECT_EQ(hopi->DistanceBetween(1, 0), 2);
  EXPECT_EQ(hopi->DistanceBetween(0, 3), 3);
  EXPECT_EQ(hopi->DistanceBetween(3, 0), kUnreachable);
  EXPECT_TRUE(hopi->IsReachable(0, 0));
}

TEST(HopiTest, SelfDistanceZeroEvenOnCycle) {
  graph::Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  const auto hopi = HopiIndex::Build(g);
  EXPECT_EQ(hopi->DistanceBetween(0, 0), 0);
  EXPECT_EQ(hopi->DistanceBetween(1, 1), 0);
}

TEST(HopiTest, EmptyAndSingletonGraphs) {
  graph::Digraph empty;
  const auto hopi_empty = HopiIndex::Build(empty);
  EXPECT_EQ(hopi_empty->NumLabelEntries(), 0u);

  graph::Digraph one(1);
  one.SetTag(0, 7);
  const auto hopi_one = HopiIndex::Build(one);
  EXPECT_EQ(hopi_one->DistanceBetween(0, 0), 0);
  EXPECT_TRUE(hopi_one->DescendantsByTag(0, 7).empty());
}

TEST(HopiTest, DescendantsMatchOracle) {
  const graph::Digraph g = RandomGraph(80, 160, 31);
  const auto hopi = HopiIndex::Build(g);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId start = 0; start < 80; start += 7) {
    EXPECT_EQ(hopi->Descendants(start), oracle.Descendants(start));
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ(hopi->DescendantsByTag(start, tag),
                oracle.DescendantsByTag(start, tag));
    }
  }
}

TEST(HopiTest, AncestorsMatchOracle) {
  const graph::Digraph g = RandomGraph(60, 140, 37);
  const auto hopi = HopiIndex::Build(g);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId start = 0; start < 60; start += 5) {
    for (TagId tag = 0; tag < 4; ++tag) {
      EXPECT_EQ(hopi->AncestorsByTag(start, tag),
                oracle.AncestorsByTag(start, tag));
    }
  }
}

TEST(HopiTest, PairwiseDistancesMatchOracle) {
  const graph::Digraph g = RandomGraph(50, 120, 41);
  const auto hopi = HopiIndex::Build(g);
  const graph::ReachabilityOracle oracle(g);
  for (NodeId u = 0; u < 50; u += 3) {
    for (NodeId v = 0; v < 50; v += 4) {
      EXPECT_EQ(hopi->DistanceBetween(u, v), oracle.Distance(u, v))
          << u << "->" << v;
    }
  }
}

TEST(HopiTest, ReachableAmongBothPlans) {
  const graph::Digraph g = RandomGraph(70, 150, 43);
  const auto hopi = HopiIndex::Build(g);
  const graph::ReachabilityOracle oracle(g);

  // Small target list: per-target merge-join plan.
  std::vector<NodeId> small_targets = {1, 5, 9, 13};
  // Large target list: enumeration plan.
  std::vector<NodeId> large_targets;
  for (NodeId v = 0; v < 70; v += 2) large_targets.push_back(v);

  for (const NodeId start : {NodeId{0}, NodeId{20}, NodeId{33}}) {
    for (const auto* targets : {&small_targets, &large_targets}) {
      std::vector<NodeDist> expected;
      for (const NodeId t : *targets) {
        const Distance d =
            t == start ? 0 : oracle.Distance(start, t);
        if (d != kUnreachable) expected.push_back({t, d});
      }
      SortByDistance(expected);
      EXPECT_EQ(hopi->ReachableAmong(start, *targets), expected);
    }
  }
}

TEST(HopiTest, LabelsAreCompactOnChains) {
  // On a long chain the transitive closure is quadratic while the 2-hop
  // cover stays near-linear — the compression HOPI is built on.
  constexpr size_t kN = 255;
  graph::Digraph g(kN);
  for (NodeId i = 0; i + 1 < kN; ++i) g.AddEdge(i, i + 1);
  const size_t tc_pairs = kN * (kN - 1) / 2;
  const auto hopi = HopiIndex::Build(g);
  EXPECT_LT(hopi->NumLabelEntries(), tc_pairs / 4);
}

TEST(HopiTest, PartitionedBuildMatchesGlobalResults) {
  const graph::Digraph g = RandomGraph(100, 220, 47);
  const auto global = HopiIndex::Build(g);
  HopiOptions options;
  options.partition_bound = 20;
  const auto partitioned = HopiIndex::Build(g, options);
  for (NodeId u = 0; u < 100; u += 6) {
    for (NodeId v = 0; v < 100; v += 7) {
      EXPECT_EQ(partitioned->DistanceBetween(u, v),
                global->DistanceBetween(u, v))
          << u << "->" << v;
    }
    EXPECT_EQ(partitioned->Descendants(u), global->Descendants(u));
  }
}

TEST(HopiTest, LabelBytesLessThanTotalMemory) {
  const graph::Digraph g = RandomGraph(40, 80, 53);
  const auto hopi = HopiIndex::Build(g);
  EXPECT_LT(hopi->LabelBytes(), hopi->MemoryBytes());
  EXPECT_GT(hopi->NumLabelEntries(), 0u);
}

TEST(HopiTest, RegisteredProbeSetsMatchGenericPath) {
  const graph::Digraph g = RandomGraph(90, 200, 57);
  const auto plain = HopiIndex::Build(g);
  const auto registered = HopiIndex::Build(g);

  std::vector<NodeId> sources;
  for (NodeId v = 0; v < 90; v += 2) sources.push_back(v);
  std::vector<NodeId> entries;
  for (NodeId v = 1; v < 90; v += 3) entries.push_back(v);
  registered->RegisterLinkSources(sources);
  registered->RegisterEntryNodes(entries);

  for (NodeId start = 0; start < 90; start += 5) {
    // The registered fast path must return exactly what the generic
    // fallback computes.
    EXPECT_EQ(registered->ReachableAmong(start, sources),
              plain->ReachableAmong(start, sources))
        << "sources from " << start;
    EXPECT_EQ(registered->AncestorsAmong(start, entries),
              plain->AncestorsAmong(start, entries))
        << "entries to " << start;
    // A different target list must bypass the fast path and stay correct.
    const std::vector<NodeId> other = {3, 7, 11};
    EXPECT_EQ(registered->ReachableAmong(start, other),
              plain->ReachableAmong(start, other));
  }
}

TEST(HopiTest, DenseGraphEverythingReachable) {
  // Complete bidirectional cycle: every node reaches every node.
  graph::Digraph g(10);
  for (NodeId i = 0; i < 10; ++i) g.AddEdge(i, (i + 1) % 10);
  const auto hopi = HopiIndex::Build(g);
  for (NodeId u = 0; u < 10; ++u) {
    EXPECT_EQ(hopi->Descendants(u).size(), 9u);
  }
}

}  // namespace
}  // namespace flix::index
